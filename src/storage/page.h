// Fixed-size page: the unit of disk I/O and buffering.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/types.h"

namespace reach {

inline constexpr size_t kPageSize = 4096;

/// A page frame. The raw bytes are interpreted by SlottedPage (data pages)
/// or by the storage manager (meta page 0).
class Page {
 public:
  Page() { Reset(); }

  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPageId;
    pin_count_ = 0;
    dirty_ = false;
    io_pending_ = false;
  }

  char* data() { return data_; }
  const char* data() const { return data_; }

  PageId page_id() const { return page_id_; }
  void set_page_id(PageId id) { page_id_ = id; }

  int pin_count() const { return pin_count_; }
  void Pin() { ++pin_count_; }
  void Unpin() {
    if (pin_count_ > 0) --pin_count_;
  }

  bool dirty() const { return dirty_; }
  void set_dirty(bool dirty) { dirty_ = dirty; }

  /// A batched backend read is filling this frame (BufferPool::ReadAhead);
  /// FetchPage must wait for the fill before handing the page out. Guarded
  /// by the owning shard's mutex, like every other frame field.
  bool io_pending() const { return io_pending_; }
  void set_io_pending(bool pending) { io_pending_ = pending; }

 private:
  char data_[kPageSize];
  PageId page_id_ = kInvalidPageId;
  int pin_count_ = 0;
  bool dirty_ = false;
  bool io_pending_ = false;
};

}  // namespace reach
