// Fixed-size page: the unit of disk I/O and buffering.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/types.h"

namespace reach {

inline constexpr size_t kPageSize = 4096;

/// A page frame. The raw bytes are interpreted by SlottedPage (data pages)
/// or by the storage manager (meta page 0).
///
/// Concurrency: `pin_count` and `io_pending` are atomics because the buffer
/// pool's lock-free fetch fast path pins a frame with a CAS and checks
/// io_pending without holding the shard mutex (docs/STORAGE.md "Lock-free
/// page table"). Every other field — dirty, mod_count, wb_in_flight, the
/// page id, and the data bytes of an unpinned frame — is still guarded by
/// the owning shard's mutex. A pin_count of kEvictLatch (-1) means an
/// evictor (or the writeback snapshotter) holds the frame exclusively:
/// TryPin refuses and the reader falls back to the locked path.
class Page {
 public:
  static constexpr int kEvictLatch = -1;

  Page() { Reset(); }

  /// Clear the frame for reuse. Deliberately preserves pin_count_: the
  /// buffer pool resets recycled frames while holding the evict latch, and
  /// dropping it here would let a stale lock-free reader pin a frame that
  /// is mid-fill.
  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPageId;
    io_pending_.store(false, std::memory_order_relaxed);
    last_access_.store(0, std::memory_order_relaxed);
    dirty_ = false;
    wb_in_flight_ = false;
    mod_count_ = 0;
  }

  char* data() { return data_; }
  const char* data() const { return data_; }

  PageId page_id() const { return page_id_; }
  void set_page_id(PageId id) { page_id_ = id; }

  int pin_count() const { return pin_count_.load(std::memory_order_acquire); }
  void Pin() { pin_count_.fetch_add(1, std::memory_order_acq_rel); }
  void Unpin() {
    int c = pin_count_.load(std::memory_order_relaxed);
    while (c > 0 &&
           !pin_count_.compare_exchange_weak(c, c - 1,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
    }
  }

  /// Lock-free pin: succeeds only while the frame is not latched for
  /// eviction (pin_count >= 0). The caller must re-verify the page-table
  /// bucket afterwards — the CAS alone cannot rule out having pinned a
  /// frame that was recycled between the bucket load and the pin.
  bool TryPin() {
    int c = pin_count_.load(std::memory_order_acquire);
    while (c >= 0) {
      if (pin_count_.compare_exchange_weak(c, c + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  /// Evictor's exclusive latch: 0 -> kEvictLatch. Fails if any pin (or a
  /// concurrent TryPin) holds the frame. Caller holds the shard mutex.
  bool TryLatchForEvict() {
    int expected = 0;
    return pin_count_.compare_exchange_strong(expected, kEvictLatch,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed);
  }
  /// Release the evict latch, restoring `pins` (0, or 1 when the evictor
  /// hands the recycled frame straight to its caller pinned).
  void UnlatchTo(int pins) {
    pin_count_.store(pins, std::memory_order_release);
  }

  bool dirty() const { return dirty_; }
  void set_dirty(bool dirty) { dirty_ = dirty; }

  /// Bumped on every dirtying unpin (and NewPage). The background writeback
  /// snapshots (image, mod_count) under the shard mutex and clears `dirty`
  /// at completion only if mod_count is unchanged, so a re-dirtied frame is
  /// never mistaken for clean (docs/STORAGE.md "Background writeback").
  uint64_t mod_count() const { return mod_count_; }
  void bump_mod_count() { ++mod_count_; }

  /// A writeback snapshot of this frame is in flight: eviction skips the
  /// frame and FlushPage waits, so the stale copy and a fresher image can
  /// never race each other to disk.
  bool wb_in_flight() const { return wb_in_flight_; }
  void set_wb_in_flight(bool v) { wb_in_flight_ = v; }

  /// A batched backend read is filling this frame (BufferPool::ReadAhead);
  /// FetchPage must wait for the fill before handing the page out.
  bool io_pending() const { return io_pending_.load(std::memory_order_acquire); }
  void set_io_pending(bool pending) {
    io_pending_.store(pending, std::memory_order_release);
  }

  /// Approximate-LRU clock: the shard's access tick at the last fetch. The
  /// victim scan picks the unpinned frame with the smallest value.
  uint64_t last_access() const {
    return last_access_.load(std::memory_order_relaxed);
  }
  void set_last_access(uint64_t tick) {
    last_access_.store(tick, std::memory_order_relaxed);
  }

 private:
  char data_[kPageSize];
  PageId page_id_ = kInvalidPageId;
  std::atomic<int> pin_count_{0};
  std::atomic<bool> io_pending_{false};
  std::atomic<uint64_t> last_access_{0};
  bool dirty_ = false;
  bool wb_in_flight_ = false;
  uint64_t mod_count_ = 0;
};

}  // namespace reach
