// StorageManager: the facade the OODB layers talk to. Owns the disk
// manager, WAL, buffer pool and object store of one database, and runs
// recovery on open (the EXODUS role in the REACH stack).
#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/object_store.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace reach {

struct StorageOptions {
  size_t buffer_pool_pages = 256;
  /// Buffer pool shard count; 0 defers to REACH_STORAGE / the auto default
  /// (nearest power of two to the hardware concurrency).
  size_t bufferpool_shards = 0;
  /// Batched disk I/O backend for the data file and the WAL; kDefault
  /// defers to REACH_STORAGE (`backend={posix,async,uring}`), else posix.
  DiskBackendKind disk_backend = DiskBackendKind::kDefault;
  /// Background eviction writeback (docs/STORAGE.md "Background
  /// writeback"): -1 defers to REACH_STORAGE `writeback={on,off}` (default
  /// off), 0/1 force it. The watermark is the dirty-frame percentage that
  /// wakes the writeback thread; 0 defers to REACH_STORAGE
  /// `writeback_watermark=<PCT>` (default 50).
  int writeback = -1;
  size_t writeback_watermark = 0;
  WalOptions wal = WalOptions::FromEnv();
};

class StorageManager {
 public:
  /// Open (or create) the database rooted at `base_path`; the data file is
  /// `<base_path>.db` and the log `<base_path>.wal`. Runs crash recovery.
  static Result<std::unique_ptr<StorageManager>> Open(
      const std::string& base_path, const StorageOptions& options = {});

  ObjectStore* objects() { return objects_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  Wal* wal() { return wal_.get(); }

  /// Statistics from the recovery pass executed by Open().
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Transaction log hooks used by the transaction manager.
  Status LogBegin(TxnId txn);
  /// Appends a commit record and returns its LSN. The commit is durable
  /// only once wal()->WaitDurable(lsn) returns OK — the transaction manager
  /// blocks there so concurrent committers share one fsync (group commit).
  Result<Lsn> LogCommit(TxnId txn);
  /// Appends an abort record (after compensations have been logged).
  Status LogAbort(TxnId txn);

  /// Flush all pages and truncate the log. Precondition: no transaction is
  /// active (all undo information in the log becomes unavailable). Event
  /// history records survive the truncation (see
  /// RotateLogKeepingEventHistory).
  Status Checkpoint();

  /// Meta page (page 0) root pointer: where the data dictionary lives.
  Result<Oid> GetMetaRoot();
  Status SetMetaRoot(const Oid& root);

 private:
  StorageManager() = default;

  /// Write the magic + invalid root pointer into a pinned page-0 frame.
  static Status InitMetaPage(Page* meta);

  /// LSN floor persisted in the meta page: on open, the WAL's LSN counter is
  /// raised to this value so LSNs stay monotonic across log truncations
  /// (page LSNs stamped in an earlier epoch must never exceed new LSNs).
  Result<Lsn> ReadLsnFloor();
  Status WriteLsnFloor(Lsn floor);

  /// Truncate the log but preserve the durable event history: the last
  /// event-checkpoint record and every event record after it (everything,
  /// if no checkpoint exists) are re-appended into the fresh log and
  /// flushed. `carried` (optional) receives the record count.
  Status RotateLogKeepingEventHistory(size_t* carried = nullptr);

  static constexpr uint32_t kMetaMagic = 0x52454d54;  // "REMT"
  static constexpr size_t kLsnFloorOffset =
      sizeof(uint32_t) + SlottedPage::kOidEncodedSize;

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<ObjectStore> objects_;
  RecoveryStats recovery_stats_;
};

}  // namespace reach
