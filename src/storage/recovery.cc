#include "storage/recovery.h"

#include <unordered_set>
#include <vector>

namespace reach {

Status RecoveryManager::Recover(RecoveryStats* stats) {
  std::vector<WalRecord> records;
  REACH_RETURN_IF_ERROR(wal_->ReadAll(&records));
  stats->records_scanned = records.size();

  std::unordered_set<TxnId> finished;  // committed or fully aborted
  std::unordered_set<TxnId> seen;
  size_t committed = 0, aborted = 0;
  for (const WalRecord& rec : records) {
    if (rec.txn != kNoTxn) seen.insert(rec.txn);
    if (rec.type == WalRecordType::kCommit) {
      finished.insert(rec.txn);
      ++committed;
    } else if (rec.type == WalRecordType::kAbort) {
      // An abort record means the compensating records are already in the
      // log, so redo alone restores the rolled-back state.
      finished.insert(rec.txn);
      ++aborted;
    }
  }
  stats->committed_txns = committed;
  stats->aborted_txns = aborted;

  // Pass 1: repeat history. Conditional on the page LSN — pages flushed
  // after a record already contain its effect and are left untouched.
  for (const WalRecord& rec : records) {
    if (rec.type != WalRecordType::kPhysical) continue;
    REACH_RETURN_IF_ERROR(
        store_->ApplyImage(rec.page, rec.slot, rec.after, rec.lsn));
    ++stats->records_redone;
  }

  // Pass 2: roll back losers.
  std::unordered_set<TxnId> losers;
  for (TxnId txn : seen) {
    if (!finished.contains(txn)) losers.insert(txn);
  }
  stats->loser_txns = losers.size();
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->type != WalRecordType::kPhysical) continue;
    if (!losers.contains(it->txn)) continue;
    REACH_RETURN_IF_ERROR(store_->ApplyImage(it->page, it->slot, it->before));
    ++stats->records_undone;
  }
  return Status::OK();
}

}  // namespace reach
