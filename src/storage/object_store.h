// OID-addressed object storage on slotted pages (the EXODUS role).
//
// Properties:
//  * OIDs are stable: updates that no longer fit on the home page relocate
//    the body and leave a forwarding stub; readers follow it transparently.
//  * Objects larger than a page are split into a head cell plus a chain of
//    continuation segments on other pages.
//  * Every cell mutation is logged to the WAL as a physical before/after
//    image, making redo and undo idempotent.
//
// Concurrency: readers (Read/Exists/ScanAll) hold a shared operation lock,
// so lookups of distinct objects proceed in parallel and only contend on
// the buffer pool shard of their home page. Mutations hold the lock
// exclusively. The free-space map is striped by `page % N` (N = buffer
// pool shard count) so bulk passes touch independent cache lines.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/buffer_pool.h"
#include "storage/slotted_page.h"
#include "storage/wal.h"

namespace reach {

class ObjectStore {
 public:
  /// `first_data_page`: pages below this are reserved (meta page 0).
  /// `stripes` == 0 matches the buffer pool's shard count so free-space
  /// striping lines up with page sharding.
  ObjectStore(BufferPool* pool, Wal* wal, PageId first_data_page = 1,
              size_t stripes = 0);

  /// Rebuild the free-space map by scanning existing pages. Call once after
  /// recovery / open.
  Status Bootstrap();

  /// Store a new object; returns its stable OID.
  Result<Oid> Insert(TxnId txn, std::string_view bytes);

  /// Read an object (follows forwarding stubs and segment chains).
  Result<std::string> Read(const Oid& oid);

  /// Replace an object's bytes. The OID remains valid.
  Status Update(TxnId txn, const Oid& oid, std::string_view bytes);

  /// Remove an object (frees its body and any segments).
  Status Delete(TxnId txn, const Oid& oid);

  /// True if `oid` currently names a live object.
  bool Exists(const Oid& oid);

  /// Home OIDs of every live object.
  Result<std::vector<Oid>> ScanAll();

  /// Recovery support: apply a physical image directly to a page. Not
  /// WAL-logged — only recovery may use this. A nonzero `lsn` makes the
  /// apply conditional (redo): pages whose pageLSN already covers `lsn`
  /// are left untouched, and applied pages are stamped with `lsn`. Undo
  /// passes 0 to apply unconditionally.
  Status ApplyImage(PageId page, SlotId slot, const WalCellImage& img,
                    Lsn lsn = 0);

  /// Transaction-rollback support: restore a cell to `target`, logging the
  /// change as a regular (compensating) physical record of `txn` so a crash
  /// during rollback still recovers correctly.
  Status ApplyImageLogged(TxnId txn, PageId page, SlotId slot,
                          const WalCellImage& target);

  /// Before-image notification for every logged cell mutation; the
  /// transaction manager uses it to build per-transaction undo chains.
  using MutationListener = std::function<void(
      TxnId, PageId, SlotId, const WalCellImage& before)>;
  void set_mutation_listener(MutationListener listener) {
    mutation_listener_ = std::move(listener);
  }

  /// Number of allocated data pages (benchmark statistic).
  size_t data_page_count();

 private:
  // Envelope kinds prefixed to each stored cell payload.
  static constexpr char kWhole = 0;  // [kWhole][bytes]
  static constexpr char kHead = 1;   // [kHead][next oid][u32 total][chunk]
  static constexpr char kCont = 2;   // [kCont][next oid][chunk]

  static constexpr size_t kEnvelopeMax =
      1 + SlottedPage::kOidEncodedSize + sizeof(uint32_t);
  // Extra bytes requested from PageWithSpace to cover capacity rounding.
  static constexpr size_t kMinCellSlack = SlottedPage::kMinCellSize;
  // Largest single-cell payload we will ever write: leaves room for the page
  // header, one slot entry, and compaction slack on a fresh page.
  static constexpr size_t kMaxCellBytes = kPageSize - 64;
  // Data bytes carried by one continuation segment.
  static constexpr size_t kContChunk = kMaxCellBytes - kEnvelopeMax;
  // Data bytes kept in the head cell of a segmented object (small enough
  // that in-place head updates usually succeed).
  static constexpr size_t kHeadChunk = 1024;

  /// Pick (or allocate) a page with at least `need` insertable bytes.
  Result<PageId> PageWithSpace(size_t need);

  /// Insert one raw cell; logs the mutation; returns its OID.
  Result<Oid> InsertCell(TxnId txn, std::string_view payload, SlotFlag flag);

  /// Delete one raw cell (logs it).
  Status DeleteCell(TxnId txn, const Oid& oid);

  /// Replace the raw payload of `oid`'s cell in place; fails if it no
  /// longer fits there. `new_flag` lets callers convert live<->forward.
  Status UpdateCellInPlace(TxnId txn, const Oid& oid,
                           std::string_view payload, SlotFlag new_flag);

  /// Read the raw cell payload + flag at exactly `oid` (no forwarding).
  Status ReadCell(const Oid& oid, std::string* payload, SlotFlag* flag);

  /// Encode `bytes` into a head payload, inserting continuation segments as
  /// needed (tail first). Returns the head cell payload.
  Result<std::string> BuildBody(TxnId txn, std::string_view bytes);

  /// Free the continuation chain hanging off a head payload.
  Status FreeChain(TxnId txn, const std::string& head_payload);

  /// Concatenate a head payload and its chain into the full object bytes.
  Result<std::string> AssembleBody(const std::string& head_payload);

  /// Append a physical record and stamp `sp`'s page LSN with the record's
  /// LSN, maintaining the ARIES invariant that a flushed page image reflects
  /// exactly the records at or below its pageLSN.
  Status LogPhysical(TxnId txn, SlottedPage* sp, PageId page, SlotId slot,
                     const WalCellImage& before, const WalCellImage& after);

  void NoteFreeSpace(PageId page, const SlottedPage& sp);

  // One stripe of the free-space map (insertable bytes per data page),
  // keyed `page % stripes_.size()`. Heap-allocated and cache-line-aligned
  // like the buffer pool shards. The stripe mutex guards the map itself;
  // lock order is always op_mu_ first, then at most one stripe at a time,
  // so stripes can never deadlock against each other.
  struct alignas(64) Stripe {
    std::mutex mu;
    std::unordered_map<PageId, size_t> free_space;
  };

  Stripe& StripeFor(PageId page) {
    return *stripes_[page % stripes_.size()];
  }

  BufferPool* pool_;
  Wal* wal_;
  PageId first_data_page_;
  // Readers shared, writers exclusive: concurrent Reads of distinct
  // objects never block each other, and mutations (which may relocate
  // cells and rewrite the free-space map) run alone.
  std::shared_mutex op_mu_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  MutationListener mutation_listener_;
};

}  // namespace reach
