// OID-addressed object storage on slotted pages (the EXODUS role).
//
// Properties:
//  * OIDs are stable: updates that no longer fit on the home page relocate
//    the body and leave a forwarding stub; readers follow it transparently.
//  * Objects larger than a page are split into a head cell plus a chain of
//    continuation segments on other pages.
//  * Every cell mutation is logged to the WAL as a physical before/after
//    image, making redo and undo idempotent.
//
// Concurrency: two-tier locking. Readers (Read/Exists/ScanAll) hold the
// operation lock shared plus, one page at a time, a striped per-page lock
// shared, so lookups of distinct objects proceed in parallel. Single-page
// mutations (unsegmented insert, in-place whole-object update, whole-object
// delete) also hold the operation lock shared and take only their page's
// stripe exclusively — readers of *other* pages keep flowing during the
// write. Multi-page mutations (relocation, forwarding, segment chains,
// recovery applies) fall back to the operation lock exclusive. No path ever
// holds two page stripes at once, so the stripes cannot deadlock. The
// free-space map is striped separately by `page % N` (N = buffer pool shard
// count); page stripes are always taken before free-space stripes.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/buffer_pool.h"
#include "storage/slotted_page.h"
#include "storage/wal.h"

namespace reach {

class ObjectStore {
 public:
  /// `first_data_page`: pages below this are reserved (meta page 0).
  /// `stripes` == 0 matches the buffer pool's shard count so free-space
  /// striping lines up with page sharding.
  ObjectStore(BufferPool* pool, Wal* wal, PageId first_data_page = 1,
              size_t stripes = 0);

  /// Pages worth of readahead per batched pool submission — the window used
  /// by ScanAll / Bootstrap, and by scan consumers above the store (query
  /// morsels) so one warming call never floods the pool.
  static constexpr size_t kScanReadAheadPages = 32;

  /// Rebuild the free-space map by scanning existing pages. Call once after
  /// recovery / open.
  Status Bootstrap();

  /// Store a new object; returns its stable OID.
  Result<Oid> Insert(TxnId txn, std::string_view bytes);

  /// Read an object (follows forwarding stubs and segment chains).
  Result<std::string> Read(const Oid& oid);

  /// Replace an object's bytes. The OID remains valid.
  Status Update(TxnId txn, const Oid& oid, std::string_view bytes);

  /// Remove an object (frees its body and any segments).
  Status Delete(TxnId txn, const Oid& oid);

  /// True if `oid` currently names a live object.
  bool Exists(const Oid& oid);

  /// Home OIDs of every live object.
  Result<std::vector<Oid>> ScanAll();

  /// Recovery support: apply a physical image directly to a page. Not
  /// WAL-logged — only recovery may use this. A nonzero `lsn` makes the
  /// apply conditional (redo): pages whose pageLSN already covers `lsn`
  /// are left untouched, and applied pages are stamped with `lsn`. Undo
  /// passes 0 to apply unconditionally.
  Status ApplyImage(PageId page, SlotId slot, const WalCellImage& img,
                    Lsn lsn = 0);

  /// Transaction-rollback support: restore a cell to `target`, logging the
  /// change as a regular (compensating) physical record of `txn` so a crash
  /// during rollback still recovers correctly.
  Status ApplyImageLogged(TxnId txn, PageId page, SlotId slot,
                          const WalCellImage& target);

  /// Before-image notification for every logged cell mutation; the
  /// transaction manager uses it to build per-transaction undo chains.
  using MutationListener = std::function<void(
      TxnId, PageId, SlotId, const WalCellImage& before)>;
  void set_mutation_listener(MutationListener listener) {
    mutation_listener_ = std::move(listener);
  }

  /// Number of allocated data pages (benchmark statistic).
  size_t data_page_count();

 private:
  // Envelope kinds prefixed to each stored cell payload.
  static constexpr char kWhole = 0;  // [kWhole][bytes]
  static constexpr char kHead = 1;   // [kHead][next oid][u32 total][chunk]
  static constexpr char kCont = 2;   // [kCont][next oid][chunk]

  static constexpr size_t kEnvelopeMax =
      1 + SlottedPage::kOidEncodedSize + sizeof(uint32_t);
  // Extra bytes requested from PageWithSpace to cover capacity rounding.
  static constexpr size_t kMinCellSlack = SlottedPage::kMinCellSize;
  // Largest single-cell payload we will ever write: leaves room for the page
  // header, one slot entry, and compaction slack on a fresh page.
  static constexpr size_t kMaxCellBytes = kPageSize - 64;
  // Data bytes carried by one continuation segment.
  static constexpr size_t kContChunk = kMaxCellBytes - kEnvelopeMax;
  // Data bytes kept in the head cell of a segmented object (small enough
  // that in-place head updates usually succeed).
  static constexpr size_t kHeadChunk = 1024;

  /// Pick (or allocate) a page with at least `need` insertable bytes.
  Result<PageId> PageWithSpace(size_t need);

  /// Insert one raw cell; logs the mutation; returns its OID.
  Result<Oid> InsertCell(TxnId txn, std::string_view payload, SlotFlag flag);

  /// Insert one raw cell on exactly `page_id`; OutOfRange if it no longer
  /// fits there (the free-space entry is refreshed so retries move on).
  Result<Oid> InsertCellAt(TxnId txn, PageId page_id, std::string_view payload,
                           SlotFlag flag);

  /// Delete one raw cell (logs it).
  Status DeleteCell(TxnId txn, const Oid& oid);

  /// Replace the raw payload of `oid`'s cell in place; fails if it no
  /// longer fits there. `new_flag` lets callers convert live<->forward.
  Status UpdateCellInPlace(TxnId txn, const Oid& oid,
                           std::string_view payload, SlotFlag new_flag);

  /// Read the raw cell payload + flag at exactly `oid` (no forwarding).
  /// Takes no page stripe — for callers already excluding writers (op_mu_
  /// exclusive, or the oid's stripe held).
  Status ReadCell(const Oid& oid, std::string* payload, SlotFlag* flag);

  /// ReadCell under the oid's page stripe (shared) — the reader-path
  /// variant, safe against concurrent single-page writers.
  Status ReadCellShared(const Oid& oid, std::string* payload, SlotFlag* flag);

  /// Encode `bytes` into a head payload, inserting continuation segments as
  /// needed (tail first). Returns the head cell payload.
  Result<std::string> BuildBody(TxnId txn, std::string_view bytes);

  /// Free the continuation chain hanging off a head payload.
  Status FreeChain(TxnId txn, const std::string& head_payload);

  /// Concatenate a head payload and its chain into the full object bytes.
  Result<std::string> AssembleBody(const std::string& head_payload);

  /// Append a physical record and stamp `sp`'s page LSN with the record's
  /// LSN, maintaining the ARIES invariant that a flushed page image reflects
  /// exactly the records at or below its pageLSN.
  Status LogPhysical(TxnId txn, SlottedPage* sp, PageId page, SlotId slot,
                     const WalCellImage& before, const WalCellImage& after);

  void NoteFreeSpace(PageId page, const SlottedPage& sp);

  // One stripe of the free-space map (insertable bytes per data page),
  // keyed `page % stripes_.size()`. Heap-allocated and cache-line-aligned
  // like the buffer pool shards. The stripe mutex guards the map itself;
  // lock order is always op_mu_ first, then at most one stripe at a time,
  // so stripes can never deadlock against each other.
  struct alignas(64) Stripe {
    std::mutex mu;
    std::unordered_map<PageId, size_t> free_space;
  };

  Stripe& StripeFor(PageId page) {
    return *stripes_[page % stripes_.size()];
  }

  /// Striped per-page lock (see the concurrency note above). Distinct from
  /// the free-space stripes: these order page *content* access, those guard
  /// the free-space map.
  static constexpr size_t kPageLockStripes = 64;
  std::shared_mutex& PageLockFor(PageId page) {
    return page_locks_[page % kPageLockStripes];
  }

  BufferPool* pool_;
  Wal* wal_;
  PageId first_data_page_;
  // Tier one: readers and single-page writers shared, multi-page writers
  // exclusive (see the concurrency note at the top).
  std::shared_mutex op_mu_;
  // Tier two: per-page striped locks ordering page-content access among
  // op_mu_ shared holders.
  std::shared_mutex page_locks_[kPageLockStripes];
  std::vector<std::unique_ptr<Stripe>> stripes_;
  MutationListener mutation_listener_;
};

}  // namespace reach
