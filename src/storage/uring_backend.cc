// io_uring disk backend over raw syscalls (docs/STORAGE.md "Async disk
// backend"). The container/toolchain ships <linux/io_uring.h> but not
// liburing, so ring setup, mmap layout, and the submission/completion
// protocol are implemented directly:
//
//  * one ring per backend instance, guarded by a mutex — callers submit
//    whole batches, so per-batch locking costs nothing measurable;
//  * a batch of N page reads or M coalesced write runs becomes one
//    io_uring_enter doorbell (submit-and-wait) instead of N/M syscalls;
//  * the WAL's append+fsync pair is fused via IOSQE_IO_LINK into a single
//    submission (fused_append), halving the syscall count per group-commit
//    batch.
//
// Compiled only when CMake detects <linux/io_uring.h> (REACH_HAS_IO_URING).
// CreateUringBackend returns nullptr when the kernel rejects
// io_uring_setup (ENOSYS, seccomp EPERM, ...); DiskBackend::Create then
// falls back to the portable async backend.
#include "storage/disk_backend.h"

#if REACH_HAS_IO_URING

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace reach {

namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int SysIoUringRegister(int ring_fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}

template <typename T>
T* RingPtr(void* base, uint32_t off) {
  return reinterpret_cast<T*>(static_cast<char*>(base) + off);
}

class UringBackend : public DiskBackend {
 public:
  static std::unique_ptr<DiskBackend> Make(bool sqpoll) {
    if (sqpoll) {
      // SQPOLL ring setup can succeed on kernels/configs where submissions
      // then fail (privilege checks moved around across kernel versions),
      // so probe with a NOP before trusting it; any failure falls back to
      // a plain ring below.
      auto backend = std::unique_ptr<UringBackend>(new UringBackend());
      if (backend->Init(/*sqpoll=*/true) && backend->ProbeNop()) {
        return backend;
      }
    }
    auto backend = std::unique_ptr<UringBackend>(new UringBackend());
    if (!backend->Init(/*sqpoll=*/false)) return nullptr;
    return backend;
  }

  ~UringBackend() override {
    if (sq_ring_ != MAP_FAILED && sq_ring_ != nullptr) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    if (cq_ring_ != MAP_FAILED && cq_ring_ != nullptr &&
        cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sqes_ != MAP_FAILED && sqes_ != nullptr) {
      ::munmap(sqes_, sqes_bytes_);
    }
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  const char* name() const override { return "uring"; }
  bool fused_append() const override { return true; }

  Status ReadPages(int fd, const std::vector<PageReadRequest>& batch) override {
    std::lock_guard<std::mutex> lock(mu_);
    size_t done = 0;
    while (done < batch.size()) {
      const unsigned n = static_cast<unsigned>(
          std::min<size_t>(batch.size() - done, sq_entries_));
      for (unsigned i = 0; i < n; ++i) {
        io_uring_sqe* sqe = NextSqe();
        const PageReadRequest& req = batch[done + i];
        // A read landing in a registered frame (the common case: the buffer
        // pool registers every frame at startup) upgrades to READ_FIXED —
        // the kernel reuses the pinned mapping instead of walking the
        // user pages per op.
        const int buf_index = RegisteredIndex(req.buf);
        sqe->opcode =
            buf_index >= 0 ? IORING_OP_READ_FIXED : IORING_OP_READ;
        if (buf_index >= 0) sqe->buf_index = static_cast<uint16_t>(buf_index);
        sqe->fd = fd;
        sqe->addr = reinterpret_cast<uint64_t>(req.buf);
        sqe->len = static_cast<uint32_t>(kPageSize);
        sqe->off = static_cast<uint64_t>(req.page) * kPageSize;
        sqe->user_data = kPageSize;  // expected byte count for this op
      }
      REACH_RETURN_IF_ERROR(SubmitAndReap(n, "uring read"));
      done += n;
    }
    return Status::OK();
  }

  Status WriteRuns(int fd, const std::vector<PageWriteRun>& runs) override {
    std::lock_guard<std::mutex> lock(mu_);
    size_t done = 0;
    while (done < runs.size()) {
      const unsigned n = static_cast<unsigned>(
          std::min<size_t>(runs.size() - done, sq_entries_));
      for (unsigned i = 0; i < n; ++i) {
        const PageWriteRun& run = runs[done + i];
        io_uring_sqe* sqe = NextSqe();
        // Fixed buffers are single-range, so only a one-page run from a
        // registered frame can take WRITE_FIXED; multi-page runs (and
        // writeback snapshots, which write from unregistered heap copies)
        // stay on the vectored path.
        const int buf_index =
            run.iov.size() == 1
                ? RegisteredIndex(static_cast<char*>(run.iov[0].iov_base))
                : -1;
        if (buf_index >= 0) {
          sqe->opcode = IORING_OP_WRITE_FIXED;
          sqe->buf_index = static_cast<uint16_t>(buf_index);
          sqe->addr = reinterpret_cast<uint64_t>(run.iov[0].iov_base);
          sqe->len = static_cast<uint32_t>(run.iov[0].iov_len);
        } else {
          sqe->opcode = IORING_OP_WRITEV;
          sqe->addr = reinterpret_cast<uint64_t>(run.iov.data());
          sqe->len = static_cast<uint32_t>(run.iov.size());
        }
        sqe->fd = fd;
        sqe->off = static_cast<uint64_t>(run.first_page) * kPageSize;
        sqe->user_data = run.iov.size() * kPageSize;  // expected bytes
      }
      REACH_RETURN_IF_ERROR(SubmitAndReap(n, "uring writev"));
      done += n;
    }
    return Status::OK();
  }

  bool RegisterBuffers(const std::vector<char*>& bufs,
                       size_t buf_len) override {
    std::lock_guard<std::mutex> lock(mu_);
    // One registration per ring; the kernel caps the table at UIO_MAXIOV
    // (1024) iovecs — oversized pools simply skip the fast path.
    if (!registered_.empty() || bufs.empty() || bufs.size() > 1024) {
      return false;
    }
    std::vector<iovec> iovs(bufs.size());
    for (size_t i = 0; i < bufs.size(); ++i) {
      iovs[i] = iovec{bufs[i], buf_len};
    }
    if (SysIoUringRegister(ring_fd_, IORING_REGISTER_BUFFERS, iovs.data(),
                           static_cast<unsigned>(iovs.size())) < 0) {
      return false;  // e.g. RLIMIT_MEMLOCK too small: stay on the plain ops
    }
    registered_.reserve(bufs.size());
    for (size_t i = 0; i < bufs.size(); ++i) {
      registered_[bufs[i]] = static_cast<uint16_t>(i);
    }
    return true;
  }

  Status AppendSync(int fd, const char* data, size_t len) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (len > 0) {
      // Linked pair: append write, then fsync. The fd is opened O_APPEND
      // and off == -1 selects append semantics; the fsync runs only after
      // the write succeeds (a failed link cancels it with ECANCELED).
      io_uring_sqe* wr = NextSqe();
      wr->opcode = IORING_OP_WRITE;
      wr->fd = fd;
      wr->addr = reinterpret_cast<uint64_t>(data);
      wr->len = static_cast<uint32_t>(len);
      wr->off = static_cast<uint64_t>(-1);
      wr->flags = IOSQE_IO_LINK;
      wr->user_data = len;
      io_uring_sqe* sync = NextSqe();
      sync->opcode = IORING_OP_FSYNC;
      sync->fd = fd;
      sync->user_data = 0;
      return SubmitAndReap(2, "uring append+fsync");
    }
    io_uring_sqe* sync = NextSqe();
    sync->opcode = IORING_OP_FSYNC;
    sync->fd = fd;
    sync->user_data = 0;
    return SubmitAndReap(1, "uring fsync");
  }

 private:
  UringBackend() = default;

  bool Init(bool sqpoll) {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    if (sqpoll) {
      // Kernel-side submission polling: a kernel thread picks staged SQEs
      // up without an io_uring_enter doorbell; after sq_thread_idle ms of
      // quiet it sleeps and sets IORING_SQ_NEED_WAKEUP (see SubmitAndReap).
      params.flags |= IORING_SETUP_SQPOLL;
      params.sq_thread_idle = 2000;
    }
    ring_fd_ = SysIoUringSetup(kRingEntries, &params);
    if (ring_fd_ < 0) return false;
    sqpoll_ = sqpoll;

    sq_entries_ = params.sq_entries;
    sq_ring_bytes_ =
        params.sq_off.array + params.sq_entries * sizeof(uint32_t);
    cq_ring_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    if (params.features & IORING_FEAT_SINGLE_MMAP) {
      sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) return false;
    if (params.features & IORING_FEAT_SINGLE_MMAP) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) return false;
    }
    sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes_ == MAP_FAILED) return false;

    sq_tail_ = RingPtr<uint32_t>(sq_ring_, params.sq_off.tail);
    sq_mask_ = *RingPtr<uint32_t>(sq_ring_, params.sq_off.ring_mask);
    sq_array_ = RingPtr<uint32_t>(sq_ring_, params.sq_off.array);
    sq_flags_ = RingPtr<uint32_t>(sq_ring_, params.sq_off.flags);
    cq_head_ = RingPtr<uint32_t>(cq_ring_, params.cq_off.head);
    cq_tail_ = RingPtr<uint32_t>(cq_ring_, params.cq_off.tail);
    cq_mask_ = *RingPtr<uint32_t>(cq_ring_, params.cq_off.ring_mask);
    cqes_ = RingPtr<io_uring_cqe>(cq_ring_, params.cq_off.cqes);
    sqe_slab_ = static_cast<io_uring_sqe*>(sqes_);
    return true;
  }

  /// Round-trip a NOP through the ring — validates that submissions
  /// actually complete on this ring flavor (used to vet SQPOLL).
  bool ProbeNop() {
    std::lock_guard<std::mutex> lock(mu_);
    io_uring_sqe* sqe = NextSqe();
    sqe->opcode = IORING_OP_NOP;
    sqe->user_data = 0;
    return SubmitAndReap(1, "uring nop").ok();
  }

  /// Registered-buffer table index for `buf`, or -1 when unregistered.
  int RegisteredIndex(const char* buf) const {
    if (registered_.empty()) return -1;
    auto it = registered_.find(buf);
    return it == registered_.end() ? -1 : static_cast<int>(it->second);
  }

  /// Claim the next SQE slot (caller holds mu_ and submits before claiming
  /// more than sq_entries_). Zeroed except for the slot linkage.
  io_uring_sqe* NextSqe() {
    const uint32_t tail = pending_tail_++;
    const uint32_t idx = tail & sq_mask_;
    io_uring_sqe* sqe = &sqe_slab_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array_[idx] = idx;
    return sqe;
  }

  /// Publish `n` staged SQEs, ring the doorbell once, and wait for all `n`
  /// completions. A cqe's user_data carries the expected byte count (0 for
  /// fsync); fewer bytes or a negative res fails the batch.
  Status SubmitAndReap(unsigned n, const char* what) {
    __atomic_store_n(sq_tail_, pending_tail_, __ATOMIC_RELEASE);
    unsigned completed = 0;
    Status result;
    while (completed < n) {
      unsigned flags = IORING_ENTER_GETEVENTS;
      if (sqpoll_ && (__atomic_load_n(sq_flags_, __ATOMIC_ACQUIRE) &
                      IORING_SQ_NEED_WAKEUP)) {
        // The kernel submission thread idled out; one wakeup resumes it
        // (to_submit is ignored in SQPOLL mode — the thread drains the SQ).
        flags |= IORING_ENTER_SQ_WAKEUP;
      }
      int ret = SysIoUringEnter(ring_fd_, n - completed ? n : 0,
                                n - completed, flags);
      if (ret < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string(what) + ": io_uring_enter: " +
                               std::strerror(errno));
      }
      // Everything staged was submitted by the first successful enter.
      uint32_t head = __atomic_load_n(cq_head_, __ATOMIC_ACQUIRE);
      const uint32_t tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      while (head != tail && completed < n) {
        const io_uring_cqe& cqe = cqes_[head & cq_mask_];
        if (cqe.res < 0) {
          if (result.ok() && cqe.res != -ECANCELED) {
            // ECANCELED marks the fsync half of a failed linked pair; the
            // write's own error is the interesting one.
            result = Status::IoError(std::string(what) + ": " +
                                     std::strerror(-cqe.res));
          }
        } else if (static_cast<uint64_t>(cqe.res) < cqe.user_data) {
          if (result.ok()) {
            result = Status::IoError(std::string(what) + ": short io");
          }
        }
        ++head;
        ++completed;
      }
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    }
    return result;
  }

  static constexpr unsigned kRingEntries = 128;

  std::mutex mu_;
  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  uint32_t pending_tail_ = 0;
  bool sqpoll_ = false;
  /// Frame address -> IORING_REGISTER_BUFFERS table index (guarded by mu_
  /// for writes; read-only once RegisterBuffers returns).
  std::unordered_map<const char*, uint16_t> registered_;

  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  void* sqes_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  size_t sqes_bytes_ = 0;

  uint32_t* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  uint32_t* sq_flags_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  io_uring_sqe* sqe_slab_ = nullptr;
};

}  // namespace

std::unique_ptr<DiskBackend> CreateUringBackend(bool sqpoll) {
  return UringBackend::Make(sqpoll);
}

}  // namespace reach

#endif  // REACH_HAS_IO_URING
