#include "storage/object_store.h"

#include <algorithm>
#include <cstring>

namespace reach {

namespace {

/// Pin + wrap a page; unpin in the destructor.
class PageGuard {
 public:
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  ~PageGuard() {
    if (page_ != nullptr) {
      pool_->UnpinPage(page_->page_id(), dirty_);
    }
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  Page* get() { return page_; }
  void MarkDirty() { dirty_ = true; }

 private:
  BufferPool* pool_;
  Page* page_;
  bool dirty_ = false;
};

WalCellImage SnapshotCell(const SlottedPage& sp, SlotId slot) {
  WalCellImage img;
  std::string payload;
  SlotFlag flag;
  Status st = sp.Read(slot, &payload, &flag);
  if (st.ok()) {
    img.flag = static_cast<uint16_t>(flag);
    img.bytes = std::move(payload);
  } else {
    img.flag = static_cast<uint16_t>(SlotFlag::kFree);
  }
  auto gen = sp.Generation(slot);
  img.generation = gen.ok() ? gen.value() : 0;
  return img;
}

}  // namespace

ObjectStore::ObjectStore(BufferPool* pool, Wal* wal, PageId first_data_page,
                         size_t stripes)
    : pool_(pool), wal_(wal), first_data_page_(first_data_page) {
  if (stripes == 0) stripes = pool->shard_count();
  stripes_.reserve(stripes);
  for (size_t s = 0; s < stripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

Status ObjectStore::Bootstrap() {
  std::unique_lock<std::shared_mutex> lock(op_mu_);
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> slock(stripe->mu);
    stripe->free_space.clear();
  }
  // The disk manager knows how many pages exist; scan the data range in
  // readahead-sized chunks so the cold pass goes down as batched backend
  // submissions instead of one synchronous read per page.
  const PageId end = pool_->disk_pages();
  for (PageId base = first_data_page_; base < end;
       base += kScanReadAheadPages) {
    const PageId stop =
        std::min<PageId>(end, base + kScanReadAheadPages);
    std::vector<PageId> chunk;
    chunk.reserve(stop - base);
    for (PageId q = base; q < stop; ++q) chunk.push_back(q);
    REACH_RETURN_IF_ERROR(pool_->ReadAhead(chunk));
    for (PageId p = base; p < stop; ++p) {
      REACH_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(p));
      PageGuard guard(pool_, page);
      SlottedPage sp(page);
      if (sp.IsInitialized()) {
        NoteFreeSpace(p, sp);
      }
    }
  }
  return Status::OK();
}

Status ObjectStore::LogPhysical(TxnId txn, SlottedPage* sp, PageId page,
                                SlotId slot, const WalCellImage& before,
                                const WalCellImage& after) {
  WalRecord rec;
  rec.type = WalRecordType::kPhysical;
  rec.txn = txn;
  rec.page = page;
  rec.slot = slot;
  rec.before = before;
  rec.after = after;
  auto lsn = wal_->Append(std::move(rec));
  if (!lsn.ok()) return lsn.status();
  if (sp) sp->set_lsn(*lsn);
  if (mutation_listener_) mutation_listener_(txn, page, slot, before);
  return Status::OK();
}

void ObjectStore::NoteFreeSpace(PageId page, const SlottedPage& sp) {
  Stripe& stripe = StripeFor(page);
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.free_space[page] = sp.FreeSpaceForInsert();
}

Result<PageId> ObjectStore::PageWithSpace(size_t need) {
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [page, space] : stripe->free_space) {
      if (space >= need) return page;
    }
  }
  REACH_ASSIGN_OR_RETURN(Page * page, pool_->NewPage());
  PageGuard guard(pool_, page);
  guard.MarkDirty();
  SlottedPage sp(page);
  sp.Init();
  PageId id = page->page_id();
  if (id < first_data_page_) {
    // Reserved page numbers are claimed by the storage manager before any
    // object traffic, so this indicates a bootstrapping bug.
    return Status::Internal("data page allocated in reserved range");
  }
  NoteFreeSpace(id, sp);
  return id;
}

Result<Oid> ObjectStore::InsertCell(TxnId txn, std::string_view payload,
                                    SlotFlag flag) {
  if (payload.size() > kMaxCellBytes) {
    return Status::InvalidArgument("cell payload too large");
  }
  REACH_ASSIGN_OR_RETURN(PageId page_id,
                         PageWithSpace(payload.size() + kMinCellSlack));
  return InsertCellAt(txn, page_id, payload, flag);
}

Result<Oid> ObjectStore::InsertCellAt(TxnId txn, PageId page_id,
                                      std::string_view payload,
                                      SlotFlag flag) {
  REACH_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
  PageGuard guard(pool_, page);
  SlottedPage sp(page);
  auto slot = sp.Insert(payload.data(), payload.size(), flag);
  if (!slot.ok()) {
    // A concurrent fast-path insert may have consumed the space this page
    // advertised; refresh the entry so a retry picks elsewhere.
    if (slot.status().IsOutOfRange()) NoteFreeSpace(page_id, sp);
    return slot.status();
  }
  guard.MarkDirty();
  REACH_ASSIGN_OR_RETURN(uint16_t gen, sp.Generation(slot.value()));

  WalCellImage before;
  before.flag = static_cast<uint16_t>(SlotFlag::kFree);
  before.generation = static_cast<uint16_t>(gen - 1);
  WalCellImage after;
  after.flag = static_cast<uint16_t>(flag);
  after.generation = gen;
  after.bytes.assign(payload.data(), payload.size());
  REACH_RETURN_IF_ERROR(
      LogPhysical(txn, &sp, page_id, slot.value(), before, after));

  NoteFreeSpace(page_id, sp);
  Oid oid;
  oid.page = page_id;
  oid.slot = slot.value();
  oid.generation = gen;
  return oid;
}

Status ObjectStore::DeleteCell(TxnId txn, const Oid& oid) {
  REACH_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(oid.page));
  PageGuard guard(pool_, page);
  SlottedPage sp(page);
  if (!sp.Matches(oid.slot, oid.generation)) {
    return Status::NotFound("dangling oid " + oid.ToString());
  }
  WalCellImage before = SnapshotCell(sp, oid.slot);
  REACH_RETURN_IF_ERROR(sp.Delete(oid.slot));
  guard.MarkDirty();
  WalCellImage after;
  after.flag = static_cast<uint16_t>(SlotFlag::kFree);
  after.generation = oid.generation;
  REACH_RETURN_IF_ERROR(LogPhysical(txn, &sp, oid.page, oid.slot, before, after));
  NoteFreeSpace(oid.page, sp);
  return Status::OK();
}

Status ObjectStore::UpdateCellInPlace(TxnId txn, const Oid& oid,
                                      std::string_view payload,
                                      SlotFlag new_flag) {
  REACH_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(oid.page));
  PageGuard guard(pool_, page);
  SlottedPage sp(page);
  if (!sp.Matches(oid.slot, oid.generation)) {
    return Status::NotFound("dangling oid " + oid.ToString());
  }
  WalCellImage before = SnapshotCell(sp, oid.slot);
  REACH_RETURN_IF_ERROR(sp.Update(oid.slot, payload.data(), payload.size()));
  REACH_RETURN_IF_ERROR(sp.SetFlag(oid.slot, new_flag));
  guard.MarkDirty();
  WalCellImage after;
  after.flag = static_cast<uint16_t>(new_flag);
  after.generation = oid.generation;
  after.bytes.assign(payload.data(), payload.size());
  REACH_RETURN_IF_ERROR(LogPhysical(txn, &sp, oid.page, oid.slot, before, after));
  NoteFreeSpace(oid.page, sp);
  return Status::OK();
}

Status ObjectStore::ReadCell(const Oid& oid, std::string* payload,
                             SlotFlag* flag) {
  REACH_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(oid.page));
  PageGuard guard(pool_, page);
  SlottedPage sp(page);
  if (!sp.Matches(oid.slot, oid.generation)) {
    return Status::NotFound("dangling oid " + oid.ToString());
  }
  return sp.Read(oid.slot, payload, flag);
}

Status ObjectStore::ReadCellShared(const Oid& oid, std::string* payload,
                                   SlotFlag* flag) {
  std::shared_lock<std::shared_mutex> plock(PageLockFor(oid.page));
  return ReadCell(oid, payload, flag);
}

Result<std::string> ObjectStore::BuildBody(TxnId txn, std::string_view bytes) {
  if (bytes.size() + 1 <= kMaxCellBytes) {
    std::string payload;
    payload.reserve(bytes.size() + 1);
    payload.push_back(kWhole);
    payload.append(bytes.data(), bytes.size());
    return payload;
  }
  // Large object: head chunk stays with the home cell, the rest is chained
  // across continuation segments, written tail-first so each segment knows
  // its successor.
  size_t head_len = std::min(bytes.size(), kHeadChunk);
  std::string_view rest = bytes.substr(head_len);
  std::vector<std::string_view> chunks;
  for (size_t pos = 0; pos < rest.size(); pos += kContChunk) {
    chunks.push_back(rest.substr(pos, kContChunk));
  }
  Oid next = kInvalidOid;
  for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
    std::string seg;
    seg.reserve(1 + SlottedPage::kOidEncodedSize + it->size());
    seg.push_back(kCont);
    char oid_buf[SlottedPage::kOidEncodedSize];
    SlottedPage::EncodeOid(next, oid_buf);
    seg.append(oid_buf, SlottedPage::kOidEncodedSize);
    seg.append(it->data(), it->size());
    REACH_ASSIGN_OR_RETURN(next, InsertCell(txn, seg, SlotFlag::kMoved));
  }
  std::string head;
  head.reserve(kEnvelopeMax + head_len);
  head.push_back(kHead);
  char oid_buf[SlottedPage::kOidEncodedSize];
  SlottedPage::EncodeOid(next, oid_buf);
  head.append(oid_buf, SlottedPage::kOidEncodedSize);
  uint32_t total = static_cast<uint32_t>(bytes.size());
  head.append(reinterpret_cast<const char*>(&total), sizeof(total));
  head.append(bytes.data(), head_len);
  return head;
}

Status ObjectStore::FreeChain(TxnId txn, const std::string& head_payload) {
  if (head_payload.empty() || head_payload[0] != kHead) return Status::OK();
  Oid next =
      SlottedPage::DecodeOid(head_payload.data() + 1);
  while (next.valid()) {
    std::string seg;
    SlotFlag flag;
    REACH_RETURN_IF_ERROR(ReadCell(next, &seg, &flag));
    if (seg.empty() || seg[0] != kCont) {
      return Status::Corruption("broken segment chain at " + next.ToString());
    }
    Oid following = SlottedPage::DecodeOid(seg.data() + 1);
    REACH_RETURN_IF_ERROR(DeleteCell(txn, next));
    next = following;
  }
  return Status::OK();
}

Result<std::string> ObjectStore::AssembleBody(const std::string& head_payload) {
  if (head_payload.empty()) return Status::Corruption("empty cell payload");
  if (head_payload[0] == kWhole) {
    return head_payload.substr(1);
  }
  if (head_payload[0] != kHead) {
    return Status::Corruption("unexpected envelope kind");
  }
  size_t pos = 1;
  Oid next = SlottedPage::DecodeOid(head_payload.data() + pos);
  pos += SlottedPage::kOidEncodedSize;
  uint32_t total = 0;
  std::memcpy(&total, head_payload.data() + pos, sizeof(total));
  pos += sizeof(total);
  std::string out;
  out.reserve(total);
  out.append(head_payload.data() + pos, head_payload.size() - pos);
  while (next.valid()) {
    std::string seg;
    SlotFlag flag;
    // Reader path (only Read calls this): take each segment's page stripe.
    REACH_RETURN_IF_ERROR(ReadCellShared(next, &seg, &flag));
    if (seg.empty() || seg[0] != kCont) {
      return Status::Corruption("broken segment chain at " + next.ToString());
    }
    next = SlottedPage::DecodeOid(seg.data() + 1);
    out.append(seg.data() + 1 + SlottedPage::kOidEncodedSize,
               seg.size() - 1 - SlottedPage::kOidEncodedSize);
  }
  if (out.size() != total) {
    return Status::Corruption("segment chain length mismatch");
  }
  return out;
}

Result<Oid> ObjectStore::Insert(TxnId txn, std::string_view bytes) {
  if (bytes.size() + 1 <= kMaxCellBytes) {
    // Single-page fast path: an unsegmented object touches exactly one data
    // page, so a shared op lock plus that page's stripe suffices — readers
    // and inserts on other pages keep flowing. The space a page advertises
    // can be stolen between choosing it and locking it, hence the bounded
    // retry; persistent contention falls through to the exclusive path.
    std::shared_lock<std::shared_mutex> lock(op_mu_);
    std::string payload;
    payload.reserve(bytes.size() + 1);
    payload.push_back(kWhole);
    payload.append(bytes.data(), bytes.size());
    for (int attempt = 0; attempt < 8; ++attempt) {
      REACH_ASSIGN_OR_RETURN(PageId page_id,
                             PageWithSpace(payload.size() + kMinCellSlack));
      std::unique_lock<std::shared_mutex> plock(PageLockFor(page_id));
      auto oid = InsertCellAt(txn, page_id, payload, SlotFlag::kLive);
      if (oid.ok() || !oid.status().IsOutOfRange()) return oid;
    }
  }
  std::unique_lock<std::shared_mutex> lock(op_mu_);
  REACH_ASSIGN_OR_RETURN(std::string head, BuildBody(txn, bytes));
  return InsertCell(txn, head, SlotFlag::kLive);
}

Result<std::string> ObjectStore::Read(const Oid& oid) {
  std::shared_lock<std::shared_mutex> lock(op_mu_);
  std::string payload;
  SlotFlag flag;
  REACH_RETURN_IF_ERROR(ReadCellShared(oid, &payload, &flag));
  if (flag == SlotFlag::kForward) {
    Oid body = SlottedPage::DecodeOid(payload.data());
    REACH_RETURN_IF_ERROR(ReadCellShared(body, &payload, &flag));
    if (flag != SlotFlag::kMoved) {
      return Status::Corruption("forward target is not a moved body");
    }
  } else if (flag != SlotFlag::kLive) {
    return Status::NotFound("oid does not name an object home");
  }
  return AssembleBody(payload);
}

Status ObjectStore::Update(TxnId txn, const Oid& oid, std::string_view bytes) {
  if (bytes.size() + 1 <= kMaxCellBytes) {
    // Single-page fast path: a whole-object home cell updated in place
    // touches only oid.page. Forwarded, segmented, or no-longer-fitting
    // objects drop through to the exclusive multi-page path, which re-reads
    // from scratch (the optimistic check is advisory only).
    std::shared_lock<std::shared_mutex> lock(op_mu_);
    std::unique_lock<std::shared_mutex> plock(PageLockFor(oid.page));
    std::string home_payload;
    SlotFlag home_flag;
    REACH_RETURN_IF_ERROR(ReadCell(oid, &home_payload, &home_flag));
    if (home_flag == SlotFlag::kLive && !home_payload.empty() &&
        home_payload[0] == kWhole) {
      std::string head;
      head.reserve(bytes.size() + 1);
      head.push_back(kWhole);
      head.append(bytes.data(), bytes.size());
      Status st = UpdateCellInPlace(txn, oid, head, SlotFlag::kLive);
      if (st.ok() || !st.IsOutOfRange()) return st;
      // Doesn't fit in place any more: relocation is multi-page.
    }
  }
  std::unique_lock<std::shared_mutex> lock(op_mu_);
  std::string home_payload;
  SlotFlag home_flag;
  REACH_RETURN_IF_ERROR(ReadCell(oid, &home_payload, &home_flag));
  if (home_flag != SlotFlag::kLive && home_flag != SlotFlag::kForward) {
    return Status::NotFound("oid does not name an object home");
  }

  // Locate the body cell and free any old continuation chain first.
  Oid body_oid = oid;
  std::string body_payload = home_payload;
  if (home_flag == SlotFlag::kForward) {
    body_oid = SlottedPage::DecodeOid(home_payload.data());
    SlotFlag body_flag;
    REACH_RETURN_IF_ERROR(ReadCell(body_oid, &body_payload, &body_flag));
  }
  REACH_RETURN_IF_ERROR(FreeChain(txn, body_payload));

  REACH_ASSIGN_OR_RETURN(std::string head, BuildBody(txn, bytes));
  SlotFlag body_flag =
      (home_flag == SlotFlag::kLive) ? SlotFlag::kLive : SlotFlag::kMoved;

  // Try the current body cell in place.
  Status st = UpdateCellInPlace(txn, body_oid, head, body_flag);
  if (st.ok()) return Status::OK();
  if (!st.IsOutOfRange()) return st;

  // Relocate: insert the body elsewhere, repoint/convert the home cell.
  if (home_flag == SlotFlag::kForward) {
    REACH_RETURN_IF_ERROR(DeleteCell(txn, body_oid));
  }
  REACH_ASSIGN_OR_RETURN(Oid new_body, InsertCell(txn, head, SlotFlag::kMoved));
  char fwd[SlottedPage::kOidEncodedSize];
  SlottedPage::EncodeOid(new_body, fwd);
  return UpdateCellInPlace(txn, oid,
                           std::string_view(fwd, SlottedPage::kOidEncodedSize),
                           SlotFlag::kForward);
}

Status ObjectStore::Delete(TxnId txn, const Oid& oid) {
  {
    // Single-page fast path: deleting an unsegmented, unforwarded object
    // frees exactly one cell on oid.page.
    std::shared_lock<std::shared_mutex> lock(op_mu_);
    std::unique_lock<std::shared_mutex> plock(PageLockFor(oid.page));
    std::string payload;
    SlotFlag flag;
    REACH_RETURN_IF_ERROR(ReadCell(oid, &payload, &flag));
    if (flag == SlotFlag::kLive && !payload.empty() && payload[0] == kWhole) {
      return DeleteCell(txn, oid);
    }
    if (flag != SlotFlag::kLive && flag != SlotFlag::kForward) {
      return Status::NotFound("oid does not name an object home");
    }
    // Forwarded or segmented: multi-page, exclusive path below.
  }
  std::unique_lock<std::shared_mutex> lock(op_mu_);
  std::string payload;
  SlotFlag flag;
  REACH_RETURN_IF_ERROR(ReadCell(oid, &payload, &flag));
  if (flag == SlotFlag::kForward) {
    Oid body = SlottedPage::DecodeOid(payload.data());
    std::string body_payload;
    SlotFlag body_flag;
    REACH_RETURN_IF_ERROR(ReadCell(body, &body_payload, &body_flag));
    REACH_RETURN_IF_ERROR(FreeChain(txn, body_payload));
    REACH_RETURN_IF_ERROR(DeleteCell(txn, body));
  } else if (flag == SlotFlag::kLive) {
    REACH_RETURN_IF_ERROR(FreeChain(txn, payload));
  } else {
    return Status::NotFound("oid does not name an object home");
  }
  return DeleteCell(txn, oid);
}

bool ObjectStore::Exists(const Oid& oid) {
  std::shared_lock<std::shared_mutex> lock(op_mu_);
  std::string payload;
  SlotFlag flag;
  Status st = ReadCellShared(oid, &payload, &flag);
  return st.ok() && (flag == SlotFlag::kLive || flag == SlotFlag::kForward);
}

Result<std::vector<Oid>> ObjectStore::ScanAll() {
  std::shared_lock<std::shared_mutex> lock(op_mu_);
  // Collect the data pages stripe by stripe, then visit them in page order
  // so the result is deterministic regardless of stripe/shard counts.
  std::vector<PageId> pages;
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> slock(stripe->mu);
    for (const auto& [page_id, _] : stripe->free_space) {
      pages.push_back(page_id);
    }
  }
  std::sort(pages.begin(), pages.end());
  std::vector<Oid> out;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (i % kScanReadAheadPages == 0) {
      // Warm the next window in one batched backend submission; a cold scan
      // becomes ~N/32 submissions instead of N synchronous reads.
      std::vector<PageId> window(
          pages.begin() + i,
          pages.begin() + std::min(pages.size(), i + kScanReadAheadPages));
      REACH_RETURN_IF_ERROR(pool_->ReadAhead(window));
    }
    const PageId page_id = pages[i];
    std::shared_lock<std::shared_mutex> plock(PageLockFor(page_id));
    REACH_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
    PageGuard guard(pool_, page);
    SlottedPage sp(page);
    for (const auto& [slot, flag] : sp.OccupiedSlots()) {
      if (flag == SlotFlag::kLive || flag == SlotFlag::kForward) {
        Oid oid;
        oid.page = page_id;
        oid.slot = slot;
        auto gen = sp.Generation(slot);
        if (!gen.ok()) return gen.status();
        oid.generation = gen.value();
        out.push_back(oid);
      }
    }
  }
  return out;
}

Status ObjectStore::ApplyImage(PageId page_id, SlotId slot,
                               const WalCellImage& img, Lsn lsn) {
  std::unique_lock<std::shared_mutex> lock(op_mu_);
  // Recovery may reference pages the (possibly truncated) data file does
  // not have yet; allocate up to the target page.
  for (;;) {
    auto page = pool_->FetchPage(page_id);
    if (page.ok()) {
      PageGuard guard(pool_, page.value());
      SlottedPage sp(page.value());
      if (!sp.IsInitialized()) sp.Init();
      // Conditional redo: a flushed page image already reflects every
      // record at or below its pageLSN. Re-applying them is not just
      // wasted work — replaying old history on top of a newer page can
      // transiently need more cell space than the page has.
      if (lsn != 0 && sp.lsn() >= lsn) return Status::OK();
      Status st;
      if (img.flag == static_cast<uint16_t>(SlotFlag::kFree)) {
        st = sp.FreeAt(slot, img.generation);
      } else {
        st = sp.PlaceAt(slot, img.generation, img.bytes.data(),
                        img.bytes.size(), static_cast<SlotFlag>(img.flag));
      }
      if (st.ok()) {
        if (lsn != 0) sp.set_lsn(lsn);
        guard.MarkDirty();
        NoteFreeSpace(page_id, sp);
      }
      return st;
    }
    if (!page.status().IsOutOfRange()) return page.status();
    auto fresh = pool_->NewPage();
    if (!fresh.ok()) return fresh.status();
    PageGuard guard(pool_, fresh.value());
    guard.MarkDirty();
    SlottedPage sp(fresh.value());
    sp.Init();
    if (fresh.value()->page_id() >= first_data_page_) {
      NoteFreeSpace(fresh.value()->page_id(), sp);
    }
  }
}

Status ObjectStore::ApplyImageLogged(TxnId txn, PageId page_id, SlotId slot,
                                     const WalCellImage& target) {
  std::unique_lock<std::shared_mutex> lock(op_mu_);
  REACH_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
  PageGuard guard(pool_, page);
  SlottedPage sp(page);
  if (!sp.IsInitialized()) sp.Init();
  WalCellImage before = SnapshotCell(sp, slot);
  Status st;
  if (target.flag == static_cast<uint16_t>(SlotFlag::kFree)) {
    st = sp.FreeAt(slot, target.generation);
  } else {
    st = sp.PlaceAt(slot, target.generation, target.bytes.data(),
                    target.bytes.size(), static_cast<SlotFlag>(target.flag));
  }
  if (!st.ok()) return st;
  guard.MarkDirty();
  NoteFreeSpace(page_id, sp);
  return LogPhysical(txn, &sp, page_id, slot, before, target);
}

size_t ObjectStore::data_page_count() {
  std::shared_lock<std::shared_mutex> lock(op_mu_);
  size_t total = 0;
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> slock(stripe->mu);
    total += stripe->free_space.size();
  }
  return total;
}

}  // namespace reach
