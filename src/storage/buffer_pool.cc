#include "storage/buffer_pool.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace {

struct PoolMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evict_writebacks;
  obs::Gauge* hit_rate;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return PoolMetrics{reg.counter(obs::kBufHit),
                         reg.counter(obs::kBufMiss),
                         reg.counter(obs::kBufEvictWriteback),
                         reg.gauge(obs::kBufHitRate)};
    }();
    return m;
  }
};

}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t pool_size) : disk_(disk) {
  if (pool_size == 0) pool_size = 1;
  frames_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(pool_size - 1 - i);
  }
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  // Evict the least-recently-used unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t frame = *it;
    Page* page = frames_[frame].get();
    if (page->pin_count() > 0) continue;
    if (page->dirty()) {
      REACH_FAULT_POINT(faults::kBufEvictWriteback);
      if (pre_write_hook_) REACH_RETURN_IF_ERROR(pre_write_hook_());
      REACH_RETURN_IF_ERROR(disk_->WritePage(page->page_id(), page->data()));
      page->set_dirty(false);
      PoolMetrics::Get().evict_writebacks->Inc();
    }
    page_table_.erase(page->page_id());
    lru_.erase(lru_pos_[frame]);
    lru_pos_.erase(frame);
    return frame;
  }
  return Status::Busy("all buffer frames pinned");
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  REACH_FAULT_POINT(faults::kBufFetch);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  const bool hit = it != page_table_.end();
  window_hits_ += hit ? 1 : 0;
  if (++window_accesses_ == kHitRateWindow) {
    PoolMetrics::Get().hit_rate->Set(
        static_cast<int64_t>(window_hits_ * 100 / kHitRateWindow));
    window_hits_ = 0;
    window_accesses_ = 0;
  }
  if (hit) {
    ++hits_;
    PoolMetrics::Get().hits->Inc();
    size_t frame = it->second;
    Page* page = frames_[frame].get();
    page->Pin();
    lru_.erase(lru_pos_[frame]);
    lru_.push_front(frame);
    lru_pos_[frame] = lru_.begin();
    return page;
  }
  ++misses_;
  PoolMetrics::Get().misses->Inc();
  REACH_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame());
  Page* page = frames_[frame].get();
  page->Reset();
  if (Status st = disk_->ReadPage(page_id, page->data()); !st.ok()) {
    free_frames_.push_back(frame);  // return the frame on failed read
    return st;
  }
  page->set_page_id(page_id);
  page->Pin();
  page_table_[page_id] = frame;
  lru_.push_front(frame);
  lru_pos_[frame] = lru_.begin();
  return page;
}

Result<Page*> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mu_);
  REACH_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  REACH_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame());
  Page* page = frames_[frame].get();
  page->Reset();
  page->set_page_id(page_id);
  page->Pin();
  page->set_dirty(true);
  page_table_[page_id] = frame;
  lru_.push_front(frame);
  lru_pos_[frame] = lru_.begin();
  return page;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("page not in pool: " + std::to_string(page_id));
  }
  Page* page = frames_[it->second].get();
  if (page->pin_count() == 0) {
    return Status::FailedPrecondition("unpin of unpinned page");
  }
  page->Unpin();
  if (dirty) page->set_dirty(true);
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  REACH_FAULT_POINT(faults::kBufFlushPage);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();  // not cached
  Page* page = frames_[it->second].get();
  if (page->dirty()) {
    if (pre_write_hook_) REACH_RETURN_IF_ERROR(pre_write_hook_());
    REACH_RETURN_IF_ERROR(disk_->WritePage(page_id, page->data()));
    page->set_dirty(false);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  REACH_FAULT_POINT(faults::kBufFlushAll);
  std::lock_guard<std::mutex> lock(mu_);
  bool flushed_log = false;
  for (auto& [page_id, frame] : page_table_) {
    Page* page = frames_[frame].get();
    if (page->dirty()) {
      if (pre_write_hook_ && !flushed_log) {
        REACH_RETURN_IF_ERROR(pre_write_hook_());
        flushed_log = true;
      }
      REACH_RETURN_IF_ERROR(disk_->WritePage(page_id, page->data()));
      page->set_dirty(false);
    }
  }
  return Status::OK();
}

}  // namespace reach
