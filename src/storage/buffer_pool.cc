#include "storage/buffer_pool.h"

#include <cstdlib>
#include <string>
#include <thread>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "storage/slotted_page.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace {

struct PoolMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evict_writebacks;
  obs::Gauge* hit_rate;
  obs::Histogram* shard_hit_rate;
  obs::Histogram* lock_wait_ns;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return PoolMetrics{reg.counter(obs::kBufHit),
                         reg.counter(obs::kBufMiss),
                         reg.counter(obs::kBufEvictWriteback),
                         reg.gauge(obs::kBufHitRate),
                         reg.histogram(obs::kBufShardHitRate),
                         reg.histogram(obs::kBufShardLockWaitNs)};
    }();
    return m;
  }
};

}  // namespace

BufferPoolOptions BufferPoolOptions::Parse(const char* spec) {
  BufferPoolOptions o;
  if (spec == nullptr) return o;
  std::string entry;
  auto apply = [&o](const std::string& e) {
    if (e.empty()) return;
    std::string key = e, value;
    if (size_t eq = e.find('='); eq != std::string::npos) {
      key = e.substr(0, eq);
      value = e.substr(eq + 1);
    }
    if (key == "shards") {
      o.shards = std::strtoull(value.c_str(), nullptr, 0);
    }
    // Unknown entries are ignored so old binaries tolerate new knobs.
  };
  for (const char* p = spec;; ++p) {
    if (*p == '\0' || *p == ',' || *p == ';') {
      apply(entry);
      entry.clear();
      if (*p == '\0') break;
    } else {
      entry.push_back(*p);
    }
  }
  return o;
}

BufferPoolOptions BufferPoolOptions::FromEnv() {
  static const BufferPoolOptions parsed =
      Parse(std::getenv("REACH_STORAGE"));
  return parsed;
}

size_t BufferPoolOptions::ResolveShards(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  // Nearest power of two (ties round up): 3 -> 4, 6 -> 8, 12 -> 16.
  size_t pow2 = 1;
  while (pow2 < hw) pow2 <<= 1;
  if (pow2 > hw && (pow2 - hw) > (hw - pow2 / 2)) pow2 >>= 1;
  return pow2;
}

BufferPool::BufferPool(DiskManager* disk, size_t pool_size, size_t shards)
    : disk_(disk) {
  if (pool_size == 0) pool_size = 1;
  if (shards == 0) shards = BufferPoolOptions::FromEnv().shards;
  shards = BufferPoolOptions::ResolveShards(shards);
  // More shards than frames would force the pool to grow past its budget
  // (every shard needs at least one frame or pages hashing to it could
  // never be cached); clamp instead so tiny eviction-stress pools keep
  // their exact capacity on any core count.
  if (shards > pool_size) shards = pool_size;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& shard = *shards_.back();
    size_t slice = pool_size / shards + (s < pool_size % shards ? 1 : 0);
    shard.frames.reserve(slice);
    for (size_t i = 0; i < slice; ++i) {
      shard.frames.push_back(std::make_unique<Page>());
      shard.free_frames.push_back(slice - 1 - i);
    }
    pool_size_ += slice;
  }
}

std::unique_lock<std::mutex> BufferPool::LockShard(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    const uint64_t start = obs::NowNanosIfEnabled();
    lock.lock();
    if (start != 0) {
      PoolMetrics::Get().lock_wait_ns->RecordAlways(obs::NowNanos() - start);
    }
  }
  return lock;
}

void BufferPool::NoteAccess(Shard& shard, bool hit) {
  shard.window_hits += hit ? 1 : 0;
  if (++shard.window_accesses == kHitRateWindow) {
    const uint64_t pct = shard.window_hits * 100 / kHitRateWindow;
    PoolMetrics::Get().hit_rate->Set(static_cast<int64_t>(pct));
    PoolMetrics::Get().shard_hit_rate->Record(pct);
    shard.window_hits = 0;
    shard.window_accesses = 0;
  }
  if (hit) {
    ++shard.hits;
    PoolMetrics::Get().hits->Inc();
  } else {
    ++shard.misses;
    PoolMetrics::Get().misses->Inc();
  }
}

Status BufferPool::WriteBack(Page* page) {
  if (pre_write_hook_) {
    // ARIES write-ahead rule: the log must be durable up to the page's
    // pageLSN before the page image may reach disk. Non-slotted pages (the
    // meta page) carry no LSN, so they conservatively force the whole log.
    SlottedPage sp(page);
    Lsn page_lsn = sp.IsInitialized() ? sp.lsn() : kInvalidLsn;
    REACH_RETURN_IF_ERROR(pre_write_hook_(page_lsn));
  }
  REACH_RETURN_IF_ERROR(disk_->WritePage(page->page_id(), page->data()));
  page->set_dirty(false);
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    size_t frame = shard.free_frames.back();
    shard.free_frames.pop_back();
    return frame;
  }
  // Evict the least-recently-used unpinned frame.
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    size_t frame = *it;
    Page* page = shard.frames[frame].get();
    if (page->pin_count() > 0) continue;
    if (page->dirty()) {
      REACH_FAULT_POINT(faults::kBufEvictWriteback);
      REACH_RETURN_IF_ERROR(WriteBack(page));
      PoolMetrics::Get().evict_writebacks->Inc();
    }
    shard.page_table.erase(page->page_id());
    shard.lru.erase(shard.lru_pos[frame]);
    shard.lru_pos.erase(frame);
    return frame;
  }
  return Status::Busy("all buffer frames pinned");
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  REACH_FAULT_POINT(faults::kBufFetch);
  Shard& shard = ShardFor(page_id);
  auto lock = LockShard(shard);
  auto it = shard.page_table.find(page_id);
  // A frame mid-fill by ReadAhead is in the table but not yet readable; wait
  // for the batch to land, then re-look-up (a failed fill removes it).
  while (it != shard.page_table.end() &&
         shard.frames[it->second]->io_pending()) {
    shard.io_cv.wait(lock);
    it = shard.page_table.find(page_id);
  }
  const bool hit = it != shard.page_table.end();
  NoteAccess(shard, hit);
  if (hit) {
    size_t frame = it->second;
    Page* page = shard.frames[frame].get();
    page->Pin();
    shard.lru.erase(shard.lru_pos[frame]);
    shard.lru.push_front(frame);
    shard.lru_pos[frame] = shard.lru.begin();
    return page;
  }
  REACH_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame(shard));
  Page* page = shard.frames[frame].get();
  page->Reset();
  if (Status st = disk_->ReadPage(page_id, page->data()); !st.ok()) {
    shard.free_frames.push_back(frame);  // return the frame on failed read
    return st;
  }
  page->set_page_id(page_id);
  page->Pin();
  shard.page_table[page_id] = frame;
  shard.lru.push_front(frame);
  shard.lru_pos[frame] = shard.lru.begin();
  return page;
}

Result<Page*> BufferPool::NewPage() {
  // Allocation has its own lock inside the disk manager; taking the shard
  // lock only after the id is known keeps allocations of pages that hash to
  // different shards fully parallel.
  REACH_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  Shard& shard = ShardFor(page_id);
  auto lock = LockShard(shard);
  REACH_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame(shard));
  Page* page = shard.frames[frame].get();
  page->Reset();
  page->set_page_id(page_id);
  page->Pin();
  page->set_dirty(true);
  shard.page_table[page_id] = frame;
  shard.lru.push_front(frame);
  shard.lru_pos[frame] = shard.lru.begin();
  return page;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  Shard& shard = ShardFor(page_id);
  auto lock = LockShard(shard);
  auto it = shard.page_table.find(page_id);
  if (it == shard.page_table.end()) {
    return Status::NotFound("page not in pool: " + std::to_string(page_id));
  }
  Page* page = shard.frames[it->second].get();
  if (page->pin_count() == 0) {
    return Status::FailedPrecondition("unpin of unpinned page");
  }
  page->Unpin();
  if (dirty) page->set_dirty(true);
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  REACH_FAULT_POINT(faults::kBufFlushPage);
  Shard& shard = ShardFor(page_id);
  auto lock = LockShard(shard);
  auto it = shard.page_table.find(page_id);
  if (it == shard.page_table.end()) return Status::OK();  // not cached
  Page* page = shard.frames[it->second].get();
  if (page->dirty()) {
    REACH_RETURN_IF_ERROR(WriteBack(page));
  }
  return Status::OK();
}

Status BufferPool::ReadAhead(const std::vector<PageId>& pages) {
  // Stage: reserve a pinned io_pending frame per absent page, so nothing can
  // evict or hand out the frame while the batch is in flight.
  std::vector<PageReadRequest> batch;
  std::vector<Page*> staged;
  batch.reserve(pages.size());
  const PageId limit = disk_->num_pages();
  for (PageId page_id : pages) {
    if (page_id >= limit) continue;
    Shard& shard = ShardFor(page_id);
    auto lock = LockShard(shard);
    if (shard.page_table.count(page_id) > 0) continue;  // resident or mid-fill
    auto frame_or = GetVictimFrame(shard);
    if (!frame_or.ok()) continue;  // no evictable frame: FetchPage will read
    Page* page = shard.frames[*frame_or].get();
    page->Reset();
    page->set_page_id(page_id);
    page->set_io_pending(true);
    page->Pin();
    shard.page_table[page_id] = *frame_or;
    shard.lru.push_front(*frame_or);
    shard.lru_pos[*frame_or] = shard.lru.begin();
    staged.push_back(page);
    batch.push_back(PageReadRequest{page_id, page->data()});
  }
  // One batched submission — even when empty, so the disk.backend.* fault
  // points see every readahead pass.
  Status st = disk_->ReadPages(batch);
  // Publish: clear io_pending and wake waiters; on failure unwind the staged
  // frames so FetchPage retries synchronously instead of serving zeros.
  for (Page* page : staged) {
    Shard& shard = ShardFor(page->page_id());
    auto lock = LockShard(shard);
    page->set_io_pending(false);
    page->Unpin();
    if (!st.ok()) {
      auto it = shard.page_table.find(page->page_id());
      size_t frame = it->second;
      shard.page_table.erase(it);
      shard.lru.erase(shard.lru_pos[frame]);
      shard.lru_pos.erase(frame);
      shard.free_frames.push_back(frame);
    }
    shard.io_cv.notify_all();
  }
  return st;
}

Status BufferPool::FlushAll() {
  REACH_FAULT_POINT(faults::kBufFlushAll);
  // Collect and pin every dirty frame so it stays resident after the shard
  // locks drop; the batched submission below needs the images in place.
  std::vector<std::pair<PageId, const char*>> batch;
  std::vector<Page*> pinned;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    auto lock = LockShard(shard);
    for (auto& [page_id, frame] : shard.page_table) {
      Page* page = shard.frames[frame].get();
      if (page->dirty()) {
        page->Pin();
        pinned.push_back(page);
        batch.emplace_back(page_id, page->data());
      }
    }
  }
  // One full log force covers every page in the batch (the per-page hook
  // would force up to each pageLSN individually).
  Status st;
  if (!batch.empty() && pre_write_hook_) st = pre_write_hook_(kInvalidLsn);
  // Single batched submission: DiskManager sorts and coalesces contiguous
  // pages into runs. Submitted even when empty so the disk.backend.* fault
  // points see every checkpoint.
  if (st.ok()) st = disk_->WritePages(std::move(batch));
  for (Page* page : pinned) {
    Shard& shard = ShardFor(page->page_id());
    auto lock = LockShard(shard);
    if (st.ok()) page->set_dirty(false);
    page->Unpin();
  }
  return st;
}

uint64_t BufferPool::hit_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

uint64_t BufferPool::miss_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

}  // namespace reach
