#include "storage/buffer_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "storage/slotted_page.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace {

struct PoolMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evict_writebacks;
  obs::Counter* sync_fallbacks;
  obs::Counter* wb_pages;
  obs::Counter* wb_batches;
  obs::Counter* wb_stall_ns;
  obs::Gauge* hit_rate;
  obs::Gauge* dirty_ratio;
  obs::Histogram* shard_hit_rate;
  obs::Histogram* lock_wait_ns;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return PoolMetrics{reg.counter(obs::kBufHit),
                         reg.counter(obs::kBufMiss),
                         reg.counter(obs::kBufEvictWriteback),
                         reg.counter(obs::kBufEvictSyncFallback),
                         reg.counter(obs::kBufWritebackPages),
                         reg.counter(obs::kBufWritebackBatches),
                         reg.counter(obs::kBufWritebackStallNs),
                         reg.gauge(obs::kBufHitRate),
                         reg.gauge(obs::kBufDirtyRatio),
                         reg.histogram(obs::kBufShardHitRate),
                         reg.histogram(obs::kBufShardLockWaitNs)};
    }();
    return m;
  }
};

constexpr size_t kNoFrame = ~size_t{0};

}  // namespace

BufferPoolOptions BufferPoolOptions::Parse(const char* spec) {
  BufferPoolOptions o;
  if (spec == nullptr) return o;
  std::string entry;
  auto apply = [&o](const std::string& e) {
    if (e.empty()) return;
    std::string key = e, value;
    if (size_t eq = e.find('='); eq != std::string::npos) {
      key = e.substr(0, eq);
      value = e.substr(eq + 1);
    }
    if (key == "shards") {
      o.shards = std::strtoull(value.c_str(), nullptr, 0);
    } else if (key == "writeback") {
      o.writeback =
          (value == "on" || value == "1" || value == "true") ? 1 : 0;
    } else if (key == "writeback_watermark") {
      o.writeback_watermark = std::strtoull(value.c_str(), nullptr, 0);
      if (o.writeback_watermark > 100) o.writeback_watermark = 100;
    }
    // Unknown entries are ignored so old binaries tolerate new knobs.
  };
  for (const char* p = spec;; ++p) {
    if (*p == '\0' || *p == ',' || *p == ';') {
      apply(entry);
      entry.clear();
      if (*p == '\0') break;
    } else {
      entry.push_back(*p);
    }
  }
  return o;
}

BufferPoolOptions BufferPoolOptions::FromEnv() {
  static const BufferPoolOptions parsed =
      Parse(std::getenv("REACH_STORAGE"));
  return parsed;
}

size_t BufferPoolOptions::ResolveShards(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  // Nearest power of two (ties round up): 3 -> 4, 6 -> 8, 12 -> 16.
  size_t pow2 = 1;
  while (pow2 < hw) pow2 <<= 1;
  if (pow2 > hw && (pow2 - hw) > (hw - pow2 / 2)) pow2 >>= 1;
  return pow2;
}

bool BufferPoolOptions::ResolveWriteback(int requested) {
  if (requested >= 0) return requested != 0;
  return FromEnv().writeback == 1;
}

size_t BufferPoolOptions::ResolveWatermark(size_t requested) {
  size_t pct = requested != 0 ? requested : FromEnv().writeback_watermark;
  if (pct == 0) pct = kDefaultWatermarkPct;
  return std::min<size_t>(pct, 100);
}

BufferPool::BufferPool(DiskManager* disk, size_t pool_size, size_t shards)
    : BufferPool(disk, pool_size, [shards] {
        BufferPoolOptions o;
        o.shards = shards;
        return o;
      }()) {}

BufferPool::BufferPool(DiskManager* disk, size_t pool_size,
                       const BufferPoolOptions& options)
    : disk_(disk) {
  if (pool_size == 0) pool_size = 1;
  size_t shards = options.shards;
  if (shards == 0) shards = BufferPoolOptions::FromEnv().shards;
  shards = BufferPoolOptions::ResolveShards(shards);
  // More shards than frames would force the pool to grow past its budget
  // (every shard needs at least one frame or pages hashing to it could
  // never be cached); clamp instead so tiny eviction-stress pools keep
  // their exact capacity on any core count.
  if (shards > pool_size) shards = pool_size;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& shard = *shards_.back();
    size_t slice = pool_size / shards + (s < pool_size % shards ? 1 : 0);
    shard.frames.reserve(slice);
    for (size_t i = 0; i < slice; ++i) {
      shard.frames.push_back(std::make_unique<Page>());
      shard.free_frames.push_back(slice - 1 - i);
    }
    // Fixed-capacity table at 2x the slice: at least half the buckets stay
    // empty-or-tombstone, so inserts always terminate and probe chains stay
    // short; tombstones are reclaimed by a same-size rebuild.
    size_t cap = 16;
    while (cap < slice * 2) cap <<= 1;
    shard.table = std::make_unique<std::atomic<uint64_t>[]>(cap);
    for (size_t b = 0; b < cap; ++b) {
      shard.table[b].store(kEmptyBucket, std::memory_order_relaxed);
    }
    shard.table_mask = cap - 1;
    shard.table_empties = cap;
    pool_size_ += slice;
  }
  // Hand the frames to the disk backend so io_uring can pre-register them
  // (READ_FIXED/WRITE_FIXED land page I/O directly in the frames); a no-op
  // for the posix/async backends.
  std::vector<char*> frame_bufs;
  frame_bufs.reserve(pool_size_);
  for (auto& shard_ptr : shards_) {
    for (auto& frame : shard_ptr->frames) {
      frame_bufs.push_back(frame->data());
    }
  }
  disk_->RegisterFrameBuffers(frame_bufs, kPageSize);
  wb_enabled_ = BufferPoolOptions::ResolveWriteback(options.writeback);
  wb_watermark_pct_ =
      BufferPoolOptions::ResolveWatermark(options.writeback_watermark);
  if (wb_enabled_) {
    wb_thread_ = std::thread(&BufferPool::WritebackThreadMain, this);
  }
}

BufferPool::~BufferPool() {
  if (wb_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wb_mu_);
      wb_stop_ = true;
    }
    wb_cv_.notify_all();
    wb_thread_.join();
  }
}

std::unique_lock<std::mutex> BufferPool::LockShard(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    const uint64_t start = obs::NowNanosIfEnabled();
    lock.lock();
    if (start != 0) {
      PoolMetrics::Get().lock_wait_ns->RecordAlways(obs::NowNanos() - start);
    }
  }
  return lock;
}

void BufferPool::NoteAccess(Shard& shard, bool hit) {
  if (hit) shard.window_hits.fetch_add(1, std::memory_order_relaxed);
  const uint64_t n =
      shard.window_accesses.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n >= kHitRateWindow) {
    // A racing access can slip between the exchange and the store; the
    // window is statistical, so a lost count is fine.
    const uint64_t wh = shard.window_hits.exchange(0, std::memory_order_relaxed);
    shard.window_accesses.store(0, std::memory_order_relaxed);
    const uint64_t pct = std::min<uint64_t>(100, wh * 100 / kHitRateWindow);
    PoolMetrics::Get().hit_rate->Set(static_cast<int64_t>(pct));
    PoolMetrics::Get().shard_hit_rate->Record(pct);
  }
  if (hit) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    PoolMetrics::Get().hits->Inc();
  } else {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    PoolMetrics::Get().misses->Inc();
  }
}

// -- Page table ---------------------------------------------------------------

uint64_t BufferPool::ProbeTable(const Shard& shard, PageId page_id,
                                size_t* bucket) const {
  const size_t mask = shard.table_mask;
  size_t idx = BucketIndex(page_id, mask);
  for (size_t n = 0; n <= mask; ++n) {
    const uint64_t e = shard.table[idx].load(std::memory_order_acquire);
    if (e == kEmptyBucket) return kEmptyBucket;
    if (e != kTombstone && EntryPage(e) == page_id) {
      *bucket = idx;
      return e;
    }
    idx = (idx + 1) & mask;
  }
  return kEmptyBucket;
}

void BufferPool::TableInsert(Shard& shard, PageId page_id, size_t frame) {
  if (shard.table_empties <= (shard.table_mask + 1) / 4) TableRebuild(shard);
  const size_t mask = shard.table_mask;
  size_t idx = BucketIndex(page_id, mask);
  size_t place = kNoFrame;
  for (;;) {
    const uint64_t e = shard.table[idx].load(std::memory_order_relaxed);
    if (e == kEmptyBucket) {
      if (place == kNoFrame) {
        place = idx;
        --shard.table_empties;
      }
      break;
    }
    // Reuse the first tombstone on the probe path; the chain up to the
    // terminating empty bucket stays intact for concurrent readers.
    if (e == kTombstone && place == kNoFrame) place = idx;
    idx = (idx + 1) & mask;
  }
  shard.table[place].store(PackEntry(page_id, frame),
                           std::memory_order_release);
}

void BufferPool::TableErase(Shard& shard, PageId page_id) {
  size_t bucket;
  if (ProbeTable(shard, page_id, &bucket) != kEmptyBucket) {
    // Tombstone, not empty: erasing mid-chain must not cut off entries that
    // probed past this bucket when they were inserted.
    shard.table[bucket].store(kTombstone, std::memory_order_release);
  }
}

void BufferPool::TableRebuild(Shard& shard) {
  // Same-capacity rebuild reclaiming tombstones (the frame count bounds the
  // live entries, so the table never needs to grow). Lock-free readers
  // racing this can see a transient empty bucket — a false miss that the
  // mutex path resolves — but never a false hit: an entry is only ever
  // republished with its unchanged (page, frame) pairing.
  const size_t cap = shard.table_mask + 1;
  std::vector<uint64_t> live;
  live.reserve(shard.frames.size());
  for (size_t b = 0; b < cap; ++b) {
    const uint64_t e = shard.table[b].load(std::memory_order_relaxed);
    if (e != kEmptyBucket && e != kTombstone) live.push_back(e);
    shard.table[b].store(kEmptyBucket, std::memory_order_release);
  }
  shard.table_empties = cap;
  for (const uint64_t e : live) {
    size_t idx = BucketIndex(EntryPage(e), shard.table_mask);
    while (shard.table[idx].load(std::memory_order_relaxed) != kEmptyBucket) {
      idx = (idx + 1) & shard.table_mask;
    }
    shard.table[idx].store(e, std::memory_order_release);
    --shard.table_empties;
  }
}

// -- Dirty accounting ---------------------------------------------------------

void BufferPool::MarkDirty(Page* page) {
  page->set_dirty(true);
  const size_t d = dirty_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  PoolMetrics::Get().dirty_ratio->Set(
      static_cast<int64_t>(d * 100 / pool_size_));
  if (wb_enabled_ && d * 100 >= wb_watermark_pct_ * pool_size_) {
    MaybeKickWriteback();
  }
}

void BufferPool::MarkClean(Page* page) {
  page->set_dirty(false);
  const size_t d = dirty_count_.fetch_sub(1, std::memory_order_relaxed) - 1;
  PoolMetrics::Get().dirty_ratio->Set(
      static_cast<int64_t>(d * 100 / pool_size_));
}

Status BufferPool::WriteBack(Page* page) {
  if (pre_write_hook_) {
    // ARIES write-ahead rule: the log must be durable up to the page's
    // pageLSN before the page image may reach disk. Non-slotted pages (the
    // meta page) carry no LSN, so they conservatively force the whole log.
    SlottedPage sp(page);
    Lsn page_lsn = sp.IsInitialized() ? sp.lsn() : kInvalidLsn;
    REACH_RETURN_IF_ERROR(pre_write_hook_(page_lsn));
  }
  REACH_RETURN_IF_ERROR(disk_->WritePage(page->page_id(), page->data()));
  MarkClean(page);
  return Status::OK();
}

// -- Replacement --------------------------------------------------------------

Result<size_t> BufferPool::GetVictimFrame(Shard& shard,
                                          std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (!shard.free_frames.empty()) {
      size_t frame = shard.free_frames.back();
      shard.free_frames.pop_back();
      Page* page = shard.frames[frame].get();
      // A lock-free reader that loaded a stale bucket can hold a transient
      // pin on a free-listed frame for the few instructions until its
      // re-verify fails; spin it out, then hold the frame latched.
      while (!page->TryLatchForEvict()) {
      }
      return frame;
    }
    // Approximate LRU: scan for the unpinned frame with the oldest access
    // tick. Clean victims are preferred — with background writeback keeping
    // the pool below the watermark, the dirty fallback below (a log force +
    // write under the shard mutex) should be rare.
    size_t best_clean = kNoFrame, best_dirty = kNoFrame;
    uint64_t clean_tick = 0, dirty_tick = 0;
    bool saw_wb_in_flight = false;
    for (size_t f = 0; f < shard.frames.size(); ++f) {
      Page* page = shard.frames[f].get();
      if (page->pin_count() != 0) continue;  // pinned, mid-fill, or latched
      if (page->wb_in_flight()) {
        saw_wb_in_flight = true;
        continue;
      }
      const uint64_t tick = page->last_access();
      if (!page->dirty()) {
        if (best_clean == kNoFrame || tick < clean_tick) {
          best_clean = f;
          clean_tick = tick;
        }
      } else if (best_dirty == kNoFrame || tick < dirty_tick) {
        best_dirty = f;
        dirty_tick = tick;
      }
    }
    if (best_clean != kNoFrame) {
      Page* page = shard.frames[best_clean].get();
      // Latch can fail if a lock-free reader pinned between scan and here;
      // rescan rather than evict under a live pin.
      if (!page->TryLatchForEvict()) continue;
      TableErase(shard, page->page_id());
      return best_clean;
    }
    if (best_dirty != kNoFrame) {
      Page* page = shard.frames[best_dirty].get();
      if (!page->TryLatchForEvict()) continue;
      // Foreground fallback: every evictable frame is dirty, so this miss
      // pays for the log force + write itself.
      Status st = REACH_FAULT_HIT(faults::kBufEvictWriteback);
      if (st.ok()) st = WriteBack(page);
      if (!st.ok()) {
        page->UnlatchTo(0);
        return st;
      }
      PoolMetrics::Get().evict_writebacks->Inc();
      if (wb_enabled_) {
        wb_sync_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        PoolMetrics::Get().sync_fallbacks->Inc();
        MaybeKickWriteback();  // the pool is saturated dirty: get help
      }
      TableErase(shard, page->page_id());
      return best_dirty;
    }
    if (saw_wb_in_flight) {
      // Everything evictable has a writeback snapshot in flight; wait for a
      // completion (which cleans the frame) and rescan.
      shard.io_cv.wait_for(lock, std::chrono::milliseconds(50));
      continue;
    }
    return Status::Busy("all buffer frames pinned");
  }
}

// -- Public API ---------------------------------------------------------------

Page* BufferPool::TryFetchFast(Shard& shard, PageId page_id) {
  size_t bucket;
  const uint64_t entry = ProbeTable(shard, page_id, &bucket);
  if (entry == kEmptyBucket) return nullptr;
  Page* page = shard.frames[EntryFrame(entry)].get();
  if (!page->TryPin()) return nullptr;  // latched by an evictor
  // Order matters: io_pending before the bucket re-verify. The unwind paths
  // erase the bucket before clearing io_pending, so a reader that observes
  // io_pending == false for an unwound frame is guaranteed to observe the
  // erased bucket too. The re-verify itself is the ABA guard: the pin alone
  // cannot rule out having pinned a frame recycled between the probe and
  // the CAS (the evictor erases the bucket before reuse and republishes a
  // new entry only after unlatching).
  if (page->io_pending() ||
      shard.table[bucket].load(std::memory_order_acquire) != entry) {
    page->Unpin();
    return nullptr;
  }
  page->set_last_access(shard.tick.fetch_add(1, std::memory_order_relaxed) +
                        1);
  return page;
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  REACH_FAULT_POINT(faults::kBufFetch);
  Shard& shard = ShardFor(page_id);
  // Lock-free hit fast path: no shard mutex on the hot read.
  if (Page* page = TryFetchFast(shard, page_id)) {
    NoteAccess(shard, true);
    return page;
  }
  auto lock = LockShard(shard);
  bool counted = false;
  for (;;) {
    size_t bucket;
    const uint64_t entry = ProbeTable(shard, page_id, &bucket);
    if (entry != kEmptyBucket) {
      Page* page = shard.frames[EntryFrame(entry)].get();
      // A frame mid-fill by ReadAhead is in the table but not yet readable;
      // wait for the batch to land, then re-probe (a failed fill removes it).
      if (page->io_pending()) {
        shard.io_cv.wait(lock);
        continue;
      }
      page->Pin();
      page->set_last_access(
          shard.tick.fetch_add(1, std::memory_order_relaxed) + 1);
      if (!counted) NoteAccess(shard, true);
      return page;
    }
    if (!counted) {
      NoteAccess(shard, false);
      counted = true;
    }
    REACH_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame(shard, lock));
    Page* page = shard.frames[frame].get();
    // GetVictimFrame can block in io_cv.wait_for — releasing the shard
    // mutex — while every evictable frame has a writeback snapshot in
    // flight. Another fetcher may load this very page meanwhile; filling a
    // second frame would publish a duplicate mapping (and wreck the pin
    // accounting), so re-probe and return the victim if the page appeared.
    if (ProbeTable(shard, page_id, &bucket) != kEmptyBucket) {
      page->Reset();
      page->UnlatchTo(0);
      shard.free_frames.push_back(frame);
      continue;
    }
    page->Reset();  // preserves the evict latch GetVictimFrame returned with
    if (Status st = disk_->ReadPage(page_id, page->data()); !st.ok()) {
      page->UnlatchTo(0);
      shard.free_frames.push_back(frame);  // return the frame on failed read
      return st;
    }
    page->set_page_id(page_id);
    page->set_last_access(shard.tick.fetch_add(1, std::memory_order_relaxed) +
                          1);
    // Publish order: table entry first (release — makes the filled bytes
    // visible to lock-free probers), then the unlatch that lets them pin.
    TableInsert(shard, page_id, frame);
    page->UnlatchTo(1);  // handed to the caller pinned
    return page;
  }
}

Result<Page*> BufferPool::NewPage() {
  // Allocation has its own lock inside the disk manager; taking the shard
  // lock only after the id is known keeps allocations of pages that hash to
  // different shards fully parallel.
  REACH_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  Shard& shard = ShardFor(page_id);
  auto lock = LockShard(shard);
  REACH_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame(shard, lock));
  Page* page = shard.frames[frame].get();
  page->Reset();
  page->set_page_id(page_id);
  page->set_last_access(shard.tick.fetch_add(1, std::memory_order_relaxed) +
                        1);
  MarkDirty(page);
  page->bump_mod_count();
  TableInsert(shard, page_id, frame);
  page->UnlatchTo(1);
  return page;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  Shard& shard = ShardFor(page_id);
  if (!dirty) {
    // Lock-free clean unpin: the caller holds a pin, so the mapping cannot
    // change beneath us — only the atomic pin count is touched.
    size_t bucket;
    const uint64_t entry = ProbeTable(shard, page_id, &bucket);
    if (entry != kEmptyBucket) {
      Page* page = shard.frames[EntryFrame(entry)].get();
      if (page->pin_count() > 0) {
        page->Unpin();
        return Status::OK();
      }
    }
    // Fall through to the locked path for error reporting (and for probes
    // that false-missed against a concurrent table rebuild).
  }
  auto lock = LockShard(shard);
  size_t bucket;
  const uint64_t entry = ProbeTable(shard, page_id, &bucket);
  if (entry == kEmptyBucket) {
    return Status::NotFound("page not in pool: " + std::to_string(page_id));
  }
  Page* page = shard.frames[EntryFrame(entry)].get();
  if (page->pin_count() <= 0) {
    return Status::FailedPrecondition("unpin of unpinned page");
  }
  page->Unpin();
  if (dirty) {
    if (!page->dirty()) MarkDirty(page);
    // Guards the writeback snapshot: a pass only clears `dirty` at
    // completion if no dirtying unpin bumped this meanwhile.
    page->bump_mod_count();
  }
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  REACH_FAULT_POINT(faults::kBufFlushPage);
  Shard& shard = ShardFor(page_id);
  auto lock = LockShard(shard);
  for (;;) {
    size_t bucket;
    const uint64_t entry = ProbeTable(shard, page_id, &bucket);
    if (entry == kEmptyBucket) return Status::OK();  // not cached
    Page* page = shard.frames[EntryFrame(entry)].get();
    if (page->wb_in_flight()) {
      // A background snapshot of this frame is mid-flight; wait it out so
      // the fresh image below cannot be overtaken by the stale copy.
      shard.io_cv.wait_for(lock, std::chrono::milliseconds(50));
      continue;  // re-probe: the frame may have moved or been cleaned
    }
    if (page->dirty()) {
      REACH_RETURN_IF_ERROR(WriteBack(page));
    }
    return Status::OK();
  }
}

Status BufferPool::ReadAhead(const std::vector<PageId>& pages) {
  // Stage: reserve a pinned io_pending frame per absent page, so nothing can
  // evict or hand out the frame while the batch is in flight.
  std::vector<PageReadRequest> batch;
  std::vector<std::pair<Page*, size_t>> staged;
  batch.reserve(pages.size());
  const PageId limit = disk_->num_pages();
  for (PageId page_id : pages) {
    if (page_id >= limit) continue;
    Shard& shard = ShardFor(page_id);
    auto lock = LockShard(shard);
    size_t bucket;
    if (ProbeTable(shard, page_id, &bucket) != kEmptyBucket) {
      continue;  // resident or mid-fill
    }
    auto frame_or = GetVictimFrame(shard, lock);
    if (!frame_or.ok()) continue;  // no evictable frame: FetchPage will read
    Page* page = shard.frames[*frame_or].get();
    // GetVictimFrame can drop the shard mutex waiting on in-flight
    // writebacks; if a fetcher loaded this page meanwhile, a second fill
    // would publish a duplicate mapping — return the victim instead.
    if (ProbeTable(shard, page_id, &bucket) != kEmptyBucket) {
      page->Reset();
      page->UnlatchTo(0);
      shard.free_frames.push_back(*frame_or);
      continue;
    }
    page->Reset();
    page->set_page_id(page_id);
    page->set_io_pending(true);
    page->set_last_access(shard.tick.fetch_add(1, std::memory_order_relaxed) +
                          1);
    TableInsert(shard, page_id, *frame_or);
    page->UnlatchTo(1);  // the staged pin
    staged.emplace_back(page, *frame_or);
    batch.push_back(PageReadRequest{page_id, page->data()});
  }
  // One batched submission — even when empty, so the disk.backend.* fault
  // points see every readahead pass.
  Status st = disk_->ReadPages(batch);
  // Publish: clear io_pending and wake waiters; on failure unwind the staged
  // frames so FetchPage retries synchronously instead of serving zeros.
  for (auto& [page, frame] : staged) {
    Shard& shard = ShardFor(page->page_id());
    auto lock = LockShard(shard);
    if (!st.ok()) {
      // Erase before clearing io_pending: a lock-free reader that sees
      // io_pending clear must also see the bucket gone (see TryFetchFast).
      TableErase(shard, page->page_id());
      page->set_io_pending(false);
      page->Unpin();
      shard.free_frames.push_back(frame);
    } else {
      page->set_io_pending(false);
      page->Unpin();
    }
    shard.io_cv.notify_all();
  }
  return st;
}

Status BufferPool::FlushAll() {
  REACH_FAULT_POINT(faults::kBufFlushAll);
  // Serialize against writeback passes: a checkpoint must never race a
  // stale background snapshot to disk (and holding the pass mutex means no
  // frame is wb_in_flight below).
  std::lock_guard<std::mutex> pass_lock(wb_pass_mu_);
  // Collect and pin every dirty frame so it stays resident after the shard
  // locks drop; the batched submission below needs the images in place.
  std::vector<std::pair<PageId, const char*>> batch;
  std::vector<Page*> pinned;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    auto lock = LockShard(shard);
    for (auto& frame : shard.frames) {
      Page* page = frame.get();
      if (page->page_id() == kInvalidPageId || !page->dirty()) continue;
      page->Pin();
      pinned.push_back(page);
      batch.emplace_back(page->page_id(), page->data());
    }
  }
  // One full log force covers every page in the batch (the per-page hook
  // would force up to each pageLSN individually).
  Status st;
  if (!batch.empty() && pre_write_hook_) st = pre_write_hook_(kInvalidLsn);
  // Single batched submission: DiskManager sorts and coalesces contiguous
  // pages into runs. Submitted even when empty so the disk.backend.* fault
  // points see every checkpoint.
  if (st.ok()) st = disk_->WritePages(std::move(batch));
  for (Page* page : pinned) {
    Shard& shard = ShardFor(page->page_id());
    auto lock = LockShard(shard);
    if (st.ok() && page->dirty()) MarkClean(page);
    page->Unpin();
  }
  return st;
}

// -- Background writeback -----------------------------------------------------

Status BufferPool::WritebackPass() {
  {
    // Fires even when nothing is dirty (the disk.backend.* convention), so
    // every pass — including the shutdown flush-behind — crosses the point.
    Status st = REACH_FAULT_HIT(faults::kBufWriteback);
    if (!st.ok()) return st;
  }
  std::lock_guard<std::mutex> pass_lock(wb_pass_mu_);
  wb_kick_pending_.store(false, std::memory_order_release);
  struct Staged {
    Shard* shard;
    Page* page;
    PageId page_id;
    uint64_t mod_count;
    std::unique_ptr<char[]> image;
  };
  std::vector<Staged> staged;
  Lsn max_lsn = 0;
  bool force_all = false;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    auto lock = LockShard(shard);
    for (auto& frame : shard.frames) {
      Page* page = frame.get();
      if (!page->dirty() || page->wb_in_flight()) continue;
      // The evict latch excludes every pinner for the duration of the copy,
      // so the snapshot cannot be torn by a concurrent mutator; a pinned
      // frame is simply skipped and caught by a later pass.
      if (!page->TryLatchForEvict()) continue;
      auto image = std::make_unique<char[]>(kPageSize);
      std::memcpy(image.get(), page->data(), kPageSize);
      SlottedPage sp(page);
      if (sp.IsInitialized()) {
        max_lsn = std::max(max_lsn, sp.lsn());
      } else {
        force_all = true;  // meta page: no pageLSN, force the whole log
      }
      page->set_wb_in_flight(true);
      page->UnlatchTo(0);
      staged.push_back(Staged{&shard, page, page->page_id(),
                              page->mod_count(), std::move(image)});
    }
  }
  if (staged.empty()) return Status::OK();
  const uint64_t start = obs::NowNanos();
  // One log force up to the batch's max pageLSN (the ARIES write-ahead rule
  // for every snapshot at once), then one batched, coalesced submission.
  Status st;
  if (pre_write_hook_) {
    st = pre_write_hook_(force_all ? kInvalidLsn : max_lsn);
  }
  if (st.ok()) {
    std::vector<std::pair<PageId, const char*>> batch;
    batch.reserve(staged.size());
    for (const Staged& s : staged) {
      batch.emplace_back(s.page_id, s.image.get());
    }
    st = disk_->WritePages(std::move(batch));
  }
  const uint64_t elapsed = obs::NowNanos() - start;
  size_t cleaned = 0;
  for (Staged& s : staged) {
    auto lock = LockShard(*s.shard);
    s.page->set_wb_in_flight(false);
    // Clear dirty only if the frame was not re-dirtied while the snapshot
    // was in flight — mod_count is bumped by every dirtying unpin.
    if (st.ok() && s.page->dirty() && s.page->mod_count() == s.mod_count) {
      MarkClean(s.page);
      ++cleaned;
    }
    s.shard->io_cv.notify_all();
  }
  wb_stall_ns_.fetch_add(elapsed, std::memory_order_relaxed);
  wb_batches_.fetch_add(1, std::memory_order_relaxed);
  wb_pages_.fetch_add(cleaned, std::memory_order_relaxed);
  const PoolMetrics& m = PoolMetrics::Get();
  m.wb_pages->Inc(cleaned);
  m.wb_batches->Inc();
  m.wb_stall_ns->Inc(elapsed);
  return st;
}

void BufferPool::MaybeKickWriteback() {
  if (!wb_thread_.joinable()) return;
  // Collapse kick storms: one wake-up per pass (the pass re-arms this).
  if (wb_kick_pending_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(wb_mu_);
    wb_kick_ = true;
  }
  wb_cv_.notify_one();
}

void BufferPool::WritebackThreadMain() {
  std::unique_lock<std::mutex> lock(wb_mu_);
  while (!wb_stop_) {
    wb_cv_.wait_for(lock, std::chrono::milliseconds(250),
                    [this] { return wb_stop_ || wb_kick_; });
    if (wb_stop_) break;
    const bool kicked = wb_kick_;
    wb_kick_ = false;
    if (!kicked && dirty_count_.load(std::memory_order_relaxed) * 100 <
                       wb_watermark_pct_ * pool_size_) {
      continue;  // periodic wake-up below the watermark: nothing to do
    }
    lock.unlock();
    RunPassOnThread();
    lock.lock();
  }
  // Deliberately no flush-behind pass on shutdown: destruction must not
  // make buffered WAL records or dirty pages durable — tests simulate a
  // crash by dropping the stack, and a clean close checkpoints (FlushAll)
  // before the pool is destroyed anyway.
}

void BufferPool::RunPassOnThread() {
  try {
    // I/O errors stay in the pass (frames simply stay dirty and are retried
    // by the next pass — or by the foreground fallback, which surfaces
    // them); nothing to do with the status here.
    (void)WritebackPass();
  } catch (const FaultInjectedCrash&) {
    // A crash fault must not escape a pool-owned thread (fault_registry.h);
    // park it and rethrow from the next foreground TriggerWriteback —
    // the same convention as the WAL flusher.
    std::lock_guard<std::mutex> lock(wb_mu_);
    wb_parked_crash_ = std::current_exception();
  }
}

Status BufferPool::TriggerWriteback() {
  {
    std::lock_guard<std::mutex> lock(wb_mu_);
    if (wb_parked_crash_) {
      std::exception_ptr crash = wb_parked_crash_;
      wb_parked_crash_ = nullptr;
      std::rethrow_exception(crash);
    }
  }
  return WritebackPass();
}

// -- Statistics ---------------------------------------------------------------

uint64_t BufferPool::hit_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->hits.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t BufferPool::miss_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->misses.load(std::memory_order_relaxed);
  }
  return total;
}

double BufferPool::dirty_ratio() const {
  if (pool_size_ == 0) return 0.0;
  return static_cast<double>(dirty_count_.load(std::memory_order_relaxed)) /
         static_cast<double>(pool_size_);
}

BufferPool::WritebackStats BufferPool::writeback_stats() const {
  WritebackStats s;
  s.enabled = wb_enabled_;
  s.watermark_pct = wb_watermark_pct_;
  s.pages = wb_pages_.load(std::memory_order_relaxed);
  s.batches = wb_batches_.load(std::memory_order_relaxed);
  s.stall_ns = wb_stall_ns_.load(std::memory_order_relaxed);
  s.sync_fallbacks = wb_sync_fallbacks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace reach
