#include "storage/buffer_pool.h"

#include <cstdlib>
#include <string>
#include <thread>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "storage/slotted_page.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace {

struct PoolMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evict_writebacks;
  obs::Gauge* hit_rate;
  obs::Histogram* shard_hit_rate;
  obs::Histogram* lock_wait_ns;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return PoolMetrics{reg.counter(obs::kBufHit),
                         reg.counter(obs::kBufMiss),
                         reg.counter(obs::kBufEvictWriteback),
                         reg.gauge(obs::kBufHitRate),
                         reg.histogram(obs::kBufShardHitRate),
                         reg.histogram(obs::kBufShardLockWaitNs)};
    }();
    return m;
  }
};

}  // namespace

BufferPoolOptions BufferPoolOptions::Parse(const char* spec) {
  BufferPoolOptions o;
  if (spec == nullptr) return o;
  std::string entry;
  auto apply = [&o](const std::string& e) {
    if (e.empty()) return;
    std::string key = e, value;
    if (size_t eq = e.find('='); eq != std::string::npos) {
      key = e.substr(0, eq);
      value = e.substr(eq + 1);
    }
    if (key == "shards") {
      o.shards = std::strtoull(value.c_str(), nullptr, 0);
    }
    // Unknown entries are ignored so old binaries tolerate new knobs.
  };
  for (const char* p = spec;; ++p) {
    if (*p == '\0' || *p == ',' || *p == ';') {
      apply(entry);
      entry.clear();
      if (*p == '\0') break;
    } else {
      entry.push_back(*p);
    }
  }
  return o;
}

BufferPoolOptions BufferPoolOptions::FromEnv() {
  static const BufferPoolOptions parsed =
      Parse(std::getenv("REACH_STORAGE"));
  return parsed;
}

size_t BufferPoolOptions::ResolveShards(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  // Nearest power of two (ties round up): 3 -> 4, 6 -> 8, 12 -> 16.
  size_t pow2 = 1;
  while (pow2 < hw) pow2 <<= 1;
  if (pow2 > hw && (pow2 - hw) > (hw - pow2 / 2)) pow2 >>= 1;
  return pow2;
}

BufferPool::BufferPool(DiskManager* disk, size_t pool_size, size_t shards)
    : disk_(disk) {
  if (pool_size == 0) pool_size = 1;
  if (shards == 0) shards = BufferPoolOptions::FromEnv().shards;
  shards = BufferPoolOptions::ResolveShards(shards);
  // More shards than frames would force the pool to grow past its budget
  // (every shard needs at least one frame or pages hashing to it could
  // never be cached); clamp instead so tiny eviction-stress pools keep
  // their exact capacity on any core count.
  if (shards > pool_size) shards = pool_size;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& shard = *shards_.back();
    size_t slice = pool_size / shards + (s < pool_size % shards ? 1 : 0);
    shard.frames.reserve(slice);
    for (size_t i = 0; i < slice; ++i) {
      shard.frames.push_back(std::make_unique<Page>());
      shard.free_frames.push_back(slice - 1 - i);
    }
    pool_size_ += slice;
  }
}

std::unique_lock<std::mutex> BufferPool::LockShard(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    const uint64_t start = obs::NowNanosIfEnabled();
    lock.lock();
    if (start != 0) {
      PoolMetrics::Get().lock_wait_ns->RecordAlways(obs::NowNanos() - start);
    }
  }
  return lock;
}

void BufferPool::NoteAccess(Shard& shard, bool hit) {
  shard.window_hits += hit ? 1 : 0;
  if (++shard.window_accesses == kHitRateWindow) {
    const uint64_t pct = shard.window_hits * 100 / kHitRateWindow;
    PoolMetrics::Get().hit_rate->Set(static_cast<int64_t>(pct));
    PoolMetrics::Get().shard_hit_rate->Record(pct);
    shard.window_hits = 0;
    shard.window_accesses = 0;
  }
  if (hit) {
    ++shard.hits;
    PoolMetrics::Get().hits->Inc();
  } else {
    ++shard.misses;
    PoolMetrics::Get().misses->Inc();
  }
}

Status BufferPool::WriteBack(Page* page) {
  if (pre_write_hook_) {
    // ARIES write-ahead rule: the log must be durable up to the page's
    // pageLSN before the page image may reach disk. Non-slotted pages (the
    // meta page) carry no LSN, so they conservatively force the whole log.
    SlottedPage sp(page);
    Lsn page_lsn = sp.IsInitialized() ? sp.lsn() : kInvalidLsn;
    REACH_RETURN_IF_ERROR(pre_write_hook_(page_lsn));
  }
  REACH_RETURN_IF_ERROR(disk_->WritePage(page->page_id(), page->data()));
  page->set_dirty(false);
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    size_t frame = shard.free_frames.back();
    shard.free_frames.pop_back();
    return frame;
  }
  // Evict the least-recently-used unpinned frame.
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    size_t frame = *it;
    Page* page = shard.frames[frame].get();
    if (page->pin_count() > 0) continue;
    if (page->dirty()) {
      REACH_FAULT_POINT(faults::kBufEvictWriteback);
      REACH_RETURN_IF_ERROR(WriteBack(page));
      PoolMetrics::Get().evict_writebacks->Inc();
    }
    shard.page_table.erase(page->page_id());
    shard.lru.erase(shard.lru_pos[frame]);
    shard.lru_pos.erase(frame);
    return frame;
  }
  return Status::Busy("all buffer frames pinned");
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  REACH_FAULT_POINT(faults::kBufFetch);
  Shard& shard = ShardFor(page_id);
  auto lock = LockShard(shard);
  auto it = shard.page_table.find(page_id);
  const bool hit = it != shard.page_table.end();
  NoteAccess(shard, hit);
  if (hit) {
    size_t frame = it->second;
    Page* page = shard.frames[frame].get();
    page->Pin();
    shard.lru.erase(shard.lru_pos[frame]);
    shard.lru.push_front(frame);
    shard.lru_pos[frame] = shard.lru.begin();
    return page;
  }
  REACH_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame(shard));
  Page* page = shard.frames[frame].get();
  page->Reset();
  if (Status st = disk_->ReadPage(page_id, page->data()); !st.ok()) {
    shard.free_frames.push_back(frame);  // return the frame on failed read
    return st;
  }
  page->set_page_id(page_id);
  page->Pin();
  shard.page_table[page_id] = frame;
  shard.lru.push_front(frame);
  shard.lru_pos[frame] = shard.lru.begin();
  return page;
}

Result<Page*> BufferPool::NewPage() {
  // Allocation has its own lock inside the disk manager; taking the shard
  // lock only after the id is known keeps allocations of pages that hash to
  // different shards fully parallel.
  REACH_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  Shard& shard = ShardFor(page_id);
  auto lock = LockShard(shard);
  REACH_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame(shard));
  Page* page = shard.frames[frame].get();
  page->Reset();
  page->set_page_id(page_id);
  page->Pin();
  page->set_dirty(true);
  shard.page_table[page_id] = frame;
  shard.lru.push_front(frame);
  shard.lru_pos[frame] = shard.lru.begin();
  return page;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  Shard& shard = ShardFor(page_id);
  auto lock = LockShard(shard);
  auto it = shard.page_table.find(page_id);
  if (it == shard.page_table.end()) {
    return Status::NotFound("page not in pool: " + std::to_string(page_id));
  }
  Page* page = shard.frames[it->second].get();
  if (page->pin_count() == 0) {
    return Status::FailedPrecondition("unpin of unpinned page");
  }
  page->Unpin();
  if (dirty) page->set_dirty(true);
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  REACH_FAULT_POINT(faults::kBufFlushPage);
  Shard& shard = ShardFor(page_id);
  auto lock = LockShard(shard);
  auto it = shard.page_table.find(page_id);
  if (it == shard.page_table.end()) return Status::OK();  // not cached
  Page* page = shard.frames[it->second].get();
  if (page->dirty()) {
    REACH_RETURN_IF_ERROR(WriteBack(page));
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  REACH_FAULT_POINT(faults::kBufFlushAll);
  // One full log force up front covers every page this pass writes, so the
  // per-page hook (which would force up to each pageLSN) is skipped.
  bool flushed_log = false;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    auto lock = LockShard(shard);
    for (auto& [page_id, frame] : shard.page_table) {
      Page* page = shard.frames[frame].get();
      if (page->dirty()) {
        if (pre_write_hook_ && !flushed_log) {
          REACH_RETURN_IF_ERROR(pre_write_hook_(kInvalidLsn));
          flushed_log = true;
        }
        REACH_RETURN_IF_ERROR(disk_->WritePage(page_id, page->data()));
        page->set_dirty(false);
      }
    }
  }
  return Status::OK();
}

uint64_t BufferPool::hit_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

uint64_t BufferPool::miss_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

}  // namespace reach
