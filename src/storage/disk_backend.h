// Pluggable disk I/O backends behind the page API (docs/STORAGE.md "Async
// disk backend").
//
// A DiskBackend turns batches of page-granular requests into syscalls. Three
// implementations, selected via `REACH_STORAGE=backend={posix,async,uring}`:
//
//  * posix — the historical synchronous path: one pread/pwrite per page,
//    executed on the calling thread. Default; semantics unchanged.
//  * async — portable thread-pooled backend: batch members are fanned out
//    over a small worker pool and joined through a CompletionLatch, and
//    contiguous write runs are coalesced into single pwritev submissions.
//  * uring — io_uring via raw syscalls (no liburing dependency): a whole
//    batch becomes one submission ring doorbell instead of N syscalls, and
//    the WAL's append+fsync pair is fused into one linked submission.
//    Compiled only when <linux/io_uring.h> is available (REACH_HAS_IO_URING,
//    CMake feature detect) and falls back to `async` at runtime when the
//    kernel refuses io_uring_setup, so `backend=uring` is always safe to
//    request.
//
// Backends are stateless with respect to files — every call takes the fd —
// so one instance can serve a data file or a WAL. Callers own request
// buffers and run descriptors for the duration of the call; all entry
// points are blocking (submission + completion) and thread-safe.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace reach {

enum class DiskBackendKind {
  kDefault,  // defer to REACH_STORAGE, else posix
  kPosix,
  kAsync,
  kUring,
};

/// Backend selection knobs parsed from the same REACH_STORAGE grammar as
/// BufferPoolOptions (`backend=posix|async|uring`, entries separated by ','
/// or ';'); unknown entries are ignored so the two parsers coexist.
struct DiskBackendOptions {
  DiskBackendKind kind = DiskBackendKind::kDefault;
  /// Worker threads for the async backend (0 = auto: min(4, cores)).
  /// `io_threads=sqpoll` instead requests kernel-side submission polling
  /// for the uring backend (see `sqpoll`).
  size_t io_threads = 0;
  /// io_uring IORING_SETUP_SQPOLL: a kernel thread polls the submission
  /// queue, so batches are picked up without an io_uring_enter syscall.
  /// Requested via `io_threads=sqpoll`; silently downgraded to a plain ring
  /// when the kernel refuses (old kernels, unprivileged setups).
  bool sqpoll = false;

  static DiskBackendOptions FromEnv();
  static DiskBackendOptions Parse(const char* spec);
};

/// One page-granular read: fill `buf` (kPageSize bytes) from `page`.
struct PageReadRequest {
  PageId page = kInvalidPageId;
  char* buf = nullptr;
};

/// A maximal run of contiguous dirty pages, pre-sorted by the caller
/// (DiskManager::WritePages): `iov[i]` is the in-memory image of page
/// `first_page + i`. Coalescing-aware backends write the run with a single
/// pwritev-style submission; the posix backend writes page by page.
struct PageWriteRun {
  PageId first_page = kInvalidPageId;
  std::vector<iovec> iov;
};

class DiskBackend {
 public:
  virtual ~DiskBackend() = default;

  /// Stable identifier ("posix", "async", "uring") — surfaced in tests and
  /// fallback diagnostics.
  virtual const char* name() const = 0;

  /// Execute every read in `batch`. Blocking; returns the first error (the
  /// rest of the batch may or may not have completed on failure).
  virtual Status ReadPages(int fd, const std::vector<PageReadRequest>& batch) = 0;

  /// Execute every coalesced run in `runs`. Blocking; first error wins.
  virtual Status WriteRuns(int fd, const std::vector<PageWriteRun>& runs) = 0;

  /// Append `data` at the file's current end (fd opened O_APPEND) and make
  /// it durable — the WAL flusher's write+fsync pair. The uring backend
  /// fuses the two into one linked submission; others write then fsync.
  /// An empty `data` degenerates to a bare fsync.
  virtual Status AppendSync(int fd, const char* data, size_t len);

  /// True when AppendSync is a single fused submission rather than separate
  /// write and fsync syscalls. The WAL only routes through AppendSync when
  /// fault injection is idle, because the fused form has no window for the
  /// wal.flush.{write,fsync} points (see Wal::WriteAndSync).
  virtual bool fused_append() const { return false; }

  /// Pre-register long-lived page buffers (the buffer pool's frames, each
  /// `buf_len` bytes) with the backend. The uring backend maps them via
  /// IORING_REGISTER_BUFFERS and upgrades page I/O that lands in a
  /// registered frame to READ_FIXED/WRITE_FIXED — the kernel skips the
  /// per-op get_user_pages walk. Returns true when registration is active;
  /// the base implementation (posix/async) is a no-op returning false.
  /// Requests against unregistered buffers (WAL appends, writeback
  /// snapshots) remain valid and take the plain path. At most one
  /// registration per backend instance; called before concurrent I/O
  /// starts.
  virtual bool RegisterBuffers(const std::vector<char*>& bufs,
                               size_t buf_len) {
    (void)bufs;
    (void)buf_len;
    return false;
  }

  /// Construct a backend of `kind` (kDefault resolves via REACH_STORAGE).
  /// `backend=uring` silently yields the async backend when io_uring is
  /// compiled out or rejected by the kernel — CI always exercises the async
  /// completion path even where io_uring is unavailable.
  static std::unique_ptr<DiskBackend> Create(
      DiskBackendKind kind = DiskBackendKind::kDefault);

  /// Resolve kDefault against REACH_STORAGE; never returns kDefault.
  static DiskBackendKind Resolve(DiskBackendKind kind);
};

/// Sort `batch` by page id and group it into maximal contiguous runs, each
/// capped at `max_run_pages` (pwritev's IOV_MAX ceiling). Exposed for unit
/// tests; DiskManager::WritePages is the production caller.
std::vector<PageWriteRun> BuildWriteRuns(
    std::vector<std::pair<PageId, const char*>> batch,
    size_t max_run_pages = 256);

/// io_uring availability at this build/runtime (false when compiled without
/// REACH_HAS_IO_URING or when io_uring_setup fails, e.g. under seccomp).
bool UringBackendAvailable();

#if REACH_HAS_IO_URING
/// Factory for the raw-syscall io_uring backend (uring_backend.cc); returns
/// nullptr when the kernel rejects ring setup. `sqpoll` requests
/// IORING_SETUP_SQPOLL and quietly retries with a plain ring if the kernel
/// refuses that flavor.
std::unique_ptr<DiskBackend> CreateUringBackend(bool sqpoll = false);
#endif

}  // namespace reach
