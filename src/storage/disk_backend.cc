#include "storage/disk_backend.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/completion.h"
#include "common/thread_pool.h"

namespace reach {

namespace {

Status IoError(const char* op, PageId page) {
  return Status::IoError(std::string(op) + " page " + std::to_string(page) +
                         ": " + std::strerror(errno));
}

Status PreadPage(int fd, const PageReadRequest& req) {
  ssize_t n = ::pread(fd, req.buf, kPageSize,
                      static_cast<off_t>(req.page) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) return IoError("pread", req.page);
  return Status::OK();
}

/// Write one coalesced run with a single pwritev; partial writes resume at
/// the interrupted iovec (pwritev may stop short at any byte).
Status PwritevRun(int fd, const PageWriteRun& run) {
  off_t offset = static_cast<off_t>(run.first_page) * kPageSize;
  std::vector<iovec> iov = run.iov;  // resumable cursor
  size_t idx = 0;
  while (idx < iov.size()) {
    int cnt = static_cast<int>(std::min<size_t>(iov.size() - idx, IOV_MAX));
    ssize_t n = ::pwritev(fd, iov.data() + idx, cnt, offset);
    if (n < 0) return IoError("pwritev", run.first_page);
    offset += n;
    while (n > 0 && idx < iov.size()) {
      if (static_cast<size_t>(n) >= iov[idx].iov_len) {
        n -= static_cast<ssize_t>(iov[idx].iov_len);
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + n;
        iov[idx].iov_len -= static_cast<size_t>(n);
        n = 0;
      }
    }
  }
  return Status::OK();
}

// -- posix: the historical synchronous path --------------------------------

class PosixBackend : public DiskBackend {
 public:
  const char* name() const override { return "posix"; }

  Status ReadPages(int fd, const std::vector<PageReadRequest>& batch) override {
    for (const PageReadRequest& req : batch) {
      REACH_RETURN_IF_ERROR(PreadPage(fd, req));
    }
    return Status::OK();
  }

  Status WriteRuns(int fd, const std::vector<PageWriteRun>& runs) override {
    // Page-by-page pwrite, exactly the pre-backend FlushAll behavior; run
    // grouping is ignored.
    for (const PageWriteRun& run : runs) {
      for (size_t i = 0; i < run.iov.size(); ++i) {
        PageId page = run.first_page + static_cast<PageId>(i);
        ssize_t n = ::pwrite(fd, run.iov[i].iov_base, run.iov[i].iov_len,
                             static_cast<off_t>(page) * kPageSize);
        if (n != static_cast<ssize_t>(run.iov[i].iov_len)) {
          return IoError("pwrite", page);
        }
      }
    }
    return Status::OK();
  }
};

// -- async: thread-pooled fan-out ------------------------------------------

class AsyncBackend : public DiskBackend {
 public:
  explicit AsyncBackend(size_t io_threads)
      : pool_(io_threads > 0
                  ? io_threads
                  : std::min<size_t>(
                        4, std::max<size_t>(
                               1, std::thread::hardware_concurrency()))) {}

  const char* name() const override { return "async"; }

  Status ReadPages(int fd, const std::vector<PageReadRequest>& batch) override {
    if (batch.empty()) return Status::OK();
    if (batch.size() == 1) return PreadPage(fd, batch[0]);
    // Slice the batch into one chunk per worker rather than one task per
    // page: the latch handshake is paid per chunk, the preads run in
    // parallel within and across chunks.
    const size_t chunks =
        std::min(batch.size(), pool_.num_threads());
    CompletionLatch latch(chunks);
    const size_t per = (batch.size() + chunks - 1) / chunks;
    for (size_t c = 0; c < chunks; ++c) {
      const size_t begin = c * per;
      const size_t end = std::min(batch.size(), begin + per);
      if (begin >= end) {
        latch.CountDown();
        continue;
      }
      bool accepted = pool_.Submit([fd, &batch, &latch, begin, end] {
        Status st;
        for (size_t i = begin; i < end && st.ok(); ++i) {
          st = PreadPage(fd, batch[i]);
        }
        latch.CountDown(std::move(st));
      });
      if (!accepted) latch.CountDown(Status::Aborted("io pool shut down"));
    }
    return latch.Wait();
  }

  Status WriteRuns(int fd, const std::vector<PageWriteRun>& runs) override {
    if (runs.empty()) return Status::OK();
    if (runs.size() == 1) return PwritevRun(fd, runs[0]);
    CompletionLatch latch(runs.size());
    for (const PageWriteRun& run : runs) {
      bool accepted = pool_.Submit(
          [fd, &run, &latch] { latch.CountDown(PwritevRun(fd, run)); });
      if (!accepted) latch.CountDown(Status::Aborted("io pool shut down"));
    }
    return latch.Wait();
  }

 private:
  ThreadPool pool_;
};

}  // namespace

// -- shared base behavior ---------------------------------------------------

Status DiskBackend::AppendSync(int fd, const char* data, size_t len) {
  if (len > 0) {
    size_t done = 0;
    while (done < len) {
      ssize_t n = ::write(fd, data + done, len - done);
      if (n < 0) {
        return Status::IoError(std::string("append write: ") +
                               std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
  }
  if (::fsync(fd) != 0) {
    return Status::IoError(std::string("append fsync: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

std::vector<PageWriteRun> BuildWriteRuns(
    std::vector<std::pair<PageId, const char*>> batch, size_t max_run_pages) {
  std::vector<PageWriteRun> runs;
  if (batch.empty()) return runs;
  if (max_run_pages == 0) max_run_pages = 1;
  std::sort(batch.begin(), batch.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [page, data] : batch) {
    const bool extends =
        !runs.empty() &&
        runs.back().first_page + runs.back().iov.size() == page &&
        runs.back().iov.size() < max_run_pages;
    if (!extends) {
      runs.emplace_back();
      runs.back().first_page = page;
    }
    runs.back().iov.push_back(
        iovec{const_cast<char*>(data), kPageSize});
  }
  return runs;
}

DiskBackendOptions DiskBackendOptions::Parse(const char* spec) {
  DiskBackendOptions o;
  if (spec == nullptr) return o;
  std::string entry;
  auto apply = [&o](const std::string& e) {
    if (e.empty()) return;
    std::string key = e, value;
    if (size_t eq = e.find('='); eq != std::string::npos) {
      key = e.substr(0, eq);
      value = e.substr(eq + 1);
    }
    if (key == "backend") {
      if (value == "posix") {
        o.kind = DiskBackendKind::kPosix;
      } else if (value == "async") {
        o.kind = DiskBackendKind::kAsync;
      } else if (value == "uring") {
        o.kind = DiskBackendKind::kUring;
      }
      // Unrecognized backend names keep the default (posix) so old binaries
      // tolerate new knobs.
    } else if (key == "io_threads") {
      if (value == "sqpoll") {
        o.sqpoll = true;  // worker count stays auto
      } else {
        o.io_threads = std::strtoull(value.c_str(), nullptr, 0);
      }
    }
  };
  for (const char* p = spec;; ++p) {
    if (*p == '\0' || *p == ',' || *p == ';') {
      apply(entry);
      entry.clear();
      if (*p == '\0') break;
    } else {
      entry.push_back(*p);
    }
  }
  return o;
}

DiskBackendOptions DiskBackendOptions::FromEnv() {
  static const DiskBackendOptions parsed =
      Parse(std::getenv("REACH_STORAGE"));
  return parsed;
}

DiskBackendKind DiskBackend::Resolve(DiskBackendKind kind) {
  if (kind == DiskBackendKind::kDefault) kind = DiskBackendOptions::FromEnv().kind;
  if (kind == DiskBackendKind::kDefault) kind = DiskBackendKind::kPosix;
  return kind;
}

bool UringBackendAvailable() {
#if REACH_HAS_IO_URING
  static const bool available = [] {
    auto probe = CreateUringBackend();
    return probe != nullptr;
  }();
  return available;
#else
  return false;
#endif
}

std::unique_ptr<DiskBackend> DiskBackend::Create(DiskBackendKind kind) {
  switch (Resolve(kind)) {
    case DiskBackendKind::kPosix:
      return std::make_unique<PosixBackend>();
    case DiskBackendKind::kUring:
#if REACH_HAS_IO_URING
      if (auto uring = CreateUringBackend(DiskBackendOptions::FromEnv().sqpoll)) {
        return uring;
      }
#endif
      // Kernel/toolchain without io_uring: fall back to the portable async
      // backend so `backend=uring` configs stay functional everywhere.
      [[fallthrough]];
    case DiskBackendKind::kAsync:
    default:
      return std::make_unique<AsyncBackend>(
          DiskBackendOptions::FromEnv().io_threads);
  }
}

}  // namespace reach
