#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace {

/// Registry handles resolved once; recording through them is lock-free.
struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* fsyncs;
  obs::Counter* flushed_bytes;
  obs::Counter* fsync_saved;
  obs::Histogram* fsync_ns;
  obs::Histogram* group_size;
  obs::Histogram* group_wait_ns;
  obs::Gauge* adaptive_delay_us;

  static const WalMetrics& Get() {
    static const WalMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return WalMetrics{reg.counter(obs::kWalAppendCount),
                        reg.counter(obs::kWalFsyncCount),
                        reg.counter(obs::kWalFlushedBytes),
                        reg.counter(obs::kWalFsyncSaved),
                        reg.histogram(obs::kWalFsyncNs),
                        reg.histogram(obs::kWalGroupSize),
                        reg.histogram(obs::kWalGroupWaitNs),
                        reg.gauge(obs::kWalAdaptiveDelayUs)};
    }();
    return m;
  }
};

uint32_t Fnv1a(const char* data, size_t len) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

template <typename T>
void PutScalar(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetScalar(const char* data, size_t len, size_t* pos, T* v) {
  if (*pos + sizeof(T) > len) return false;
  std::memcpy(v, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void PutImage(std::string* out, const WalCellImage& img) {
  PutScalar<uint16_t>(out, img.flag);
  PutScalar<uint16_t>(out, img.generation);
  PutScalar<uint32_t>(out, static_cast<uint32_t>(img.bytes.size()));
  out->append(img.bytes);
}

bool GetImage(const char* data, size_t len, size_t* pos, WalCellImage* img) {
  uint32_t n = 0;
  if (!GetScalar(data, len, pos, &img->flag)) return false;
  if (!GetScalar(data, len, pos, &img->generation)) return false;
  if (!GetScalar(data, len, pos, &n)) return false;
  if (*pos + n > len) return false;
  img->bytes.assign(data + *pos, n);
  *pos += n;
  return true;
}

}  // namespace

WalOptions WalOptions::Parse(const char* spec) {
  WalOptions o;
  if (spec == nullptr) return o;
  std::string entry;
  auto apply = [&o](const std::string& e) {
    if (e.empty()) return;
    std::string key = e, value;
    if (size_t eq = e.find('='); eq != std::string::npos) {
      key = e.substr(0, eq);
      value = e.substr(eq + 1);
    }
    if (key == "on" || (key == "group" && (value == "on" || value == "1" ||
                                           value == "true"))) {
      o.group_commit = true;
    } else if (key == "off" ||
               (key == "group" &&
                (value == "off" || value == "0" || value == "false"))) {
      o.group_commit = false;
    } else if (key == "max_batch_bytes") {
      o.max_batch_bytes = std::strtoull(value.c_str(), nullptr, 0);
    } else if (key == "max_batch_delay_us") {
      o.max_batch_delay_us =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 0));
    } else if (key == "adaptive") {
      o.adaptive_delay =
          value.empty() || value == "on" || value == "1" || value == "true";
    }
    // Unknown entries are ignored so old binaries tolerate new knobs.
  };
  for (const char* p = spec;; ++p) {
    if (*p == '\0' || *p == ',' || *p == ';') {
      apply(entry);
      entry.clear();
      if (*p == '\0') break;
    } else {
      entry.push_back(*p);
    }
  }
  return o;
}

WalOptions WalOptions::FromEnv() {
  static const WalOptions parsed = Parse(std::getenv("REACH_WAL"));
  return parsed;
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  durable_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       const WalOptions& options,
                                       DiskBackendKind backend) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  auto wal = std::unique_ptr<Wal>(
      new Wal(path, fd, options, DiskBackend::Create(backend)));
  // Restore next_lsn from the existing log tail; everything already in the
  // file is durable as far as this process can know.
  std::vector<WalRecord> records;
  Status st = wal->ReadAll(&records);
  if (!st.ok()) return st;
  for (const WalRecord& r : records) {
    if (r.lsn >= wal->next_lsn_) wal->next_lsn_ = r.lsn + 1;
  }
  wal->durable_lsn_.store(wal->next_lsn_ - 1, std::memory_order_release);
  if (options.group_commit) {
    wal->flusher_ = std::thread(&Wal::FlusherLoop, wal.get());
  }
  return wal;
}

void Wal::EncodeRecord(const WalRecord& rec, std::string* out) {
  std::string body;
  PutScalar<uint8_t>(&body, static_cast<uint8_t>(rec.type));
  PutScalar<uint64_t>(&body, rec.lsn);
  PutScalar<uint64_t>(&body, rec.txn);
  if (rec.type == WalRecordType::kPhysical) {
    PutScalar<uint32_t>(&body, rec.page);
    PutScalar<uint16_t>(&body, rec.slot);
    PutImage(&body, rec.before);
    PutImage(&body, rec.after);
  } else if (IsEventRecord(rec.type)) {
    PutScalar<uint32_t>(&body, static_cast<uint32_t>(rec.payload.size()));
    body.append(rec.payload);
  }
  uint32_t crc = Fnv1a(body.data(), body.size());
  PutScalar<uint32_t>(out, static_cast<uint32_t>(body.size()));
  out->append(body);
  PutScalar<uint32_t>(out, crc);
}

bool Wal::DecodeRecord(const char* data, size_t len, size_t* consumed,
                       WalRecord* out) {
  size_t pos = 0;
  uint32_t body_len = 0;
  if (!GetScalar(data, len, &pos, &body_len)) return false;
  if (pos + body_len + sizeof(uint32_t) > len) return false;
  const char* body = data + pos;
  uint32_t crc_stored = 0;
  size_t crc_pos = pos + body_len;
  if (!GetScalar(data, len, &crc_pos, &crc_stored)) return false;
  if (Fnv1a(body, body_len) != crc_stored) return false;

  size_t bpos = 0;
  uint8_t type = 0;
  uint64_t lsn = 0, txn = 0;
  if (!GetScalar(body, body_len, &bpos, &type)) return false;
  if (!GetScalar(body, body_len, &bpos, &lsn)) return false;
  if (!GetScalar(body, body_len, &bpos, &txn)) return false;
  out->type = static_cast<WalRecordType>(type);
  out->lsn = lsn;
  out->txn = txn;
  if (out->type == WalRecordType::kPhysical) {
    uint32_t page = 0;
    uint16_t slot = 0;
    if (!GetScalar(body, body_len, &bpos, &page)) return false;
    if (!GetScalar(body, body_len, &bpos, &slot)) return false;
    out->page = page;
    out->slot = slot;
    if (!GetImage(body, body_len, &bpos, &out->before)) return false;
    if (!GetImage(body, body_len, &bpos, &out->after)) return false;
  } else if (IsEventRecord(out->type)) {
    uint32_t n = 0;
    if (!GetScalar(body, body_len, &bpos, &n)) return false;
    if (bpos + n > body_len) return false;
    out->payload.assign(body + bpos, n);
    bpos += n;
  }
  *consumed = pos + body_len + sizeof(uint32_t);
  return true;
}

Result<Lsn> Wal::Append(WalRecord record) {
  REACH_FAULT_POINT(faults::kWalAppend);
  std::lock_guard<std::mutex> lock(mu_);
  if (!crash_point_.empty()) throw FaultInjectedCrash(crash_point_);
  record.lsn = next_lsn_++;
  EncodeRecord(record, &buffer_);
  ++buffer_count_;
  WalMetrics::Get().appends->Inc();
  return record.lsn;
}

Status Wal::WriteAndSync(const std::string& data, bool* wrote) {
  if (backend_->fused_append() && !FaultRegistry::enabled()) {
    // One linked append+fsync submission (io_uring backend): half the
    // syscalls per group-commit batch. Skipped whenever fault injection is
    // armed — the fused form has no window for the wal.flush.{write,fsync}
    // points, and every crash/failure test depends on them. On failure the
    // batch is conservatively requeued (*wrote = false); should the write
    // half actually have landed, replay of the duplicate records is
    // idempotent (physical images + conditional redo).
    Status st = backend_->AppendSync(fd_, data.data(), data.size());
    *wrote = st.ok();
    if (st.ok()) {
      if (!data.empty()) {
        WalMetrics::Get().flushed_bytes->Inc(data.size());
      }
      WalMetrics::Get().fsyncs->Inc();
    }
    return st;
  }
  *wrote = data.empty();
  if (!data.empty()) {
    // Crash here: the buffered records are lost entirely.
    REACH_FAULT_POINT(faults::kWalFlushWrite);
    ssize_t n = ::write(fd_, data.data(), data.size());
    if (n != static_cast<ssize_t>(data.size())) {
      return Status::IoError("wal write");
    }
    *wrote = true;
    WalMetrics::Get().flushed_bytes->Inc(data.size());
  }
  // Crash here: records reached the file but were never fsynced (with no OS
  // crash behind it they still replay — the durability-uncertain window).
  REACH_FAULT_POINT(faults::kWalFlushFsync);
  {
    obs::ScopedLatencyTimer timer(WalMetrics::Get().fsync_ns);
    if (::fsync(fd_) != 0) {
      return Status::IoError(std::string("wal fsync: ") +
                             std::strerror(errno));
    }
  }
  WalMetrics::Get().fsyncs->Inc();
  return Status::OK();
}

Status Wal::Flush() {
  Lsn target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!crash_point_.empty()) throw FaultInjectedCrash(crash_point_);
    if (!options_.group_commit) {
      bool wrote = false;
      Status st = WriteAndSync(buffer_, &wrote);
      if (wrote) {
        buffer_.clear();
        buffer_count_ = 0;
      }
      if (st.ok()) {
        durable_lsn_.store(next_lsn_ - 1, std::memory_order_release);
      }
      return st;
    }
    target = next_lsn_ - 1;
  }
  return WaitDurable(target);
}

Status Wal::WaitDurable(Lsn lsn) {
  if (lsn <= durable_lsn_.load(std::memory_order_acquire)) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  if (!options_.group_commit) {
    // Inline mode: flush everything appended so far, which covers `lsn`.
    lock.unlock();
    return Flush();
  }
  if (!crash_point_.empty()) throw FaultInjectedCrash(crash_point_);
  if (lsn >= next_lsn_) lsn = next_lsn_ - 1;  // clamp to appended records
  if (lsn <= durable_lsn_.load(std::memory_order_relaxed)) return Status::OK();

  const uint64_t wait_start = obs::NowNanosIfEnabled();
  auto it = wait_targets_.insert(lsn);
  uint64_t seen_fail_seq = flush_fail_seq_;
  work_cv_.notify_one();
  Status result;
  for (;;) {
    if (!crash_point_.empty()) {
      wait_targets_.erase(it);
      throw FaultInjectedCrash(crash_point_);
    }
    if (durable_lsn_.load(std::memory_order_relaxed) >= lsn) break;
    if (flush_fail_seq_ != seen_fail_seq) {
      seen_fail_seq = flush_fail_seq_;
      if (flush_fail_upto_ >= lsn) {
        // The attempt that covered this LSN failed: every waiter of the
        // batch takes the same status.
        result = flush_fail_status_;
        break;
      }
    }
    if (stop_) {
      result = Status::Aborted("wal closed");
      break;
    }
    durable_cv_.wait(lock);
  }
  wait_targets_.erase(it);
  if (wait_start != 0) {
    WalMetrics::Get().group_wait_ns->RecordAlways(obs::NowNanos() -
                                                  wait_start);
  }
  return result;
}

void Wal::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  // True when the previous batch completed with another request already
  // pending — the signal that committers arrive faster than fsyncs finish,
  // which is when the optional coalescing delay pays off.
  bool back_to_back = false;
  // Adaptive policy state: EWMA of waiters released per batch. The cap
  // bounds how long a committer can be held hostage for coalescing.
  double avg_group = 0.0;
  const uint32_t delay_cap_us =
      options_.max_batch_delay_us > 0 ? options_.max_batch_delay_us : 200;
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || HasPendingWork(); });
    if (stop_) return;
    const uint32_t delay_us = options_.adaptive_delay
                                  ? adaptive_delay_us_.load(
                                        std::memory_order_relaxed)
                                  : options_.max_batch_delay_us;
    if (back_to_back && delay_us > 0) {
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(delay_us);
      while (!stop_ && buffer_.size() < options_.max_batch_bytes &&
             work_cv_.wait_until(lock, deadline) !=
                 std::cv_status::timeout) {
      }
      if (stop_) return;
    }
    std::string batch;
    batch.swap(buffer_);
    const size_t batch_records = buffer_count_;
    buffer_count_ = 0;
    const Lsn target = next_lsn_ - 1;
    io_in_flight_ = true;
    lock.unlock();

    Status st;
    bool wrote = false;
    bool crashed = false;
    std::string crash_at;
    try {
      st = REACH_FAULT_HIT(faults::kWalFlusherBatch);
      if (st.ok()) st = WriteAndSync(batch, &wrote);
    } catch (const FaultInjectedCrash& crash) {
      crashed = true;
      crash_at = crash.point();
    }

    lock.lock();
    io_in_flight_ = false;
    if (crashed) {
      // Simulated process death (see fault_registry.h: a crash escaping a
      // background thread would terminate for real). Park the dead WAL;
      // WaitDurable/Append/Flush rethrow on the committer threads.
      crash_point_ = crash_at;
      durable_cv_.notify_all();
      return;
    }
    if (st.ok()) {
      if (target > durable_lsn_.load(std::memory_order_relaxed)) {
        durable_lsn_.store(target, std::memory_order_release);
      }
      const auto& m = WalMetrics::Get();
      size_t released = static_cast<size_t>(std::distance(
          wait_targets_.begin(), wait_targets_.upper_bound(target)));
      m.group_size->Record(static_cast<uint64_t>(released));
      if (released > 1) m.fsync_saved->Inc(released - 1);
      back_to_back = HasPendingWork();
      if (options_.adaptive_delay) {
        // Feedback loop on the observed group size: near-empty batches
        // under sustained load mean the fsync alone isn't coalescing —
        // grow the delay to collect more joiners. Big groups (or batches
        // approaching the byte cap) mean piggybacking already saturates —
        // shrink back toward zero so committers aren't held up for
        // nothing.
        avg_group = avg_group * 0.75 + static_cast<double>(released) * 0.25;
        const uint32_t cur = adaptive_delay_us_.load(
            std::memory_order_relaxed);
        uint32_t next = cur;
        if (avg_group >= 8.0 || batch.size() >= options_.max_batch_bytes / 2) {
          next = cur / 2;
        } else if (back_to_back && avg_group < 2.0) {
          next = std::min(delay_cap_us, cur + 10);
        }
        if (next != cur) {
          adaptive_delay_us_.store(next, std::memory_order_relaxed);
          m.adaptive_delay_us->Set(static_cast<int64_t>(next));
        }
      }
    } else {
      if (!wrote && !batch.empty()) {
        // The records never reached the file: restore them (in order) so a
        // later flush retries the whole batch.
        buffer_.insert(0, batch);
        buffer_count_ += batch_records;
      }
      ++flush_fail_seq_;
      flush_fail_status_ = st;
      flush_fail_upto_ = target;
      back_to_back = false;
    }
    durable_cv_.notify_all();
  }
}

void Wal::EnsureNextLsnAtLeast(Lsn floor) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_lsn_ < floor) {
    // Everything-durable stays everything-durable: the skipped LSNs have no
    // records, so raising the watermark with the counter avoids a useless
    // fsync-only batch on the next Flush.
    if (durable_lsn_.load(std::memory_order_relaxed) == next_lsn_ - 1) {
      durable_lsn_.store(floor - 1, std::memory_order_release);
    }
    next_lsn_ = floor;
  }
}

Status Wal::ReadAll(std::vector<WalRecord>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  durable_cv_.wait(lock, [this] { return !io_in_flight_; });
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IoError("wal lseek");
  std::string data(static_cast<size_t>(size), '\0');
  if (size > 0) {
    ssize_t n = ::pread(fd_, data.data(), data.size(), 0);
    if (n != size) return Status::IoError("wal read");
  }
  size_t pos = 0;
  while (pos < data.size()) {
    WalRecord rec;
    size_t consumed = 0;
    if (!DecodeRecord(data.data() + pos, data.size() - pos, &consumed, &rec)) {
      // Torn tail write: stop at the last complete record.
      break;
    }
    out->push_back(std::move(rec));
    pos += consumed;
  }
  return Status::OK();
}

Status Wal::Truncate() {
  REACH_FAULT_POINT(faults::kWalTruncate);
  std::unique_lock<std::mutex> lock(mu_);
  durable_cv_.wait(lock, [this] { return !io_in_flight_; });
  buffer_.clear();
  buffer_count_ = 0;
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError(std::string("wal truncate: ") +
                           std::strerror(errno));
  }
  if (::fsync(fd_) != 0) return Status::IoError("wal fsync");
  // An empty log is trivially durable up to the last assigned LSN; release
  // any waiter whose records the checkpoint just made redundant.
  durable_lsn_.store(next_lsn_ - 1, std::memory_order_release);
  durable_cv_.notify_all();
  return Status::OK();
}

}  // namespace reach
