#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace {

/// Registry handles resolved once; recording through them is lock-free.
struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* fsyncs;
  obs::Counter* flushed_bytes;
  obs::Histogram* fsync_ns;

  static const WalMetrics& Get() {
    static const WalMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return WalMetrics{reg.counter(obs::kWalAppendCount),
                        reg.counter(obs::kWalFsyncCount),
                        reg.counter(obs::kWalFlushedBytes),
                        reg.histogram(obs::kWalFsyncNs)};
    }();
    return m;
  }
};

uint32_t Fnv1a(const char* data, size_t len) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

template <typename T>
void PutScalar(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetScalar(const char* data, size_t len, size_t* pos, T* v) {
  if (*pos + sizeof(T) > len) return false;
  std::memcpy(v, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void PutImage(std::string* out, const WalCellImage& img) {
  PutScalar<uint16_t>(out, img.flag);
  PutScalar<uint16_t>(out, img.generation);
  PutScalar<uint32_t>(out, static_cast<uint32_t>(img.bytes.size()));
  out->append(img.bytes);
}

bool GetImage(const char* data, size_t len, size_t* pos, WalCellImage* img) {
  uint32_t n = 0;
  if (!GetScalar(data, len, pos, &img->flag)) return false;
  if (!GetScalar(data, len, pos, &img->generation)) return false;
  if (!GetScalar(data, len, pos, &n)) return false;
  if (*pos + n > len) return false;
  img->bytes.assign(data + *pos, n);
  *pos += n;
  return true;
}

}  // namespace

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  auto wal = std::unique_ptr<Wal>(new Wal(path, fd));
  // Restore next_lsn from the existing log tail.
  std::vector<WalRecord> records;
  Status st = wal->ReadAll(&records);
  if (!st.ok()) return st;
  for (const WalRecord& r : records) {
    if (r.lsn >= wal->next_lsn_) wal->next_lsn_ = r.lsn + 1;
  }
  return wal;
}

void Wal::EncodeRecord(const WalRecord& rec, std::string* out) {
  std::string body;
  PutScalar<uint8_t>(&body, static_cast<uint8_t>(rec.type));
  PutScalar<uint64_t>(&body, rec.lsn);
  PutScalar<uint64_t>(&body, rec.txn);
  if (rec.type == WalRecordType::kPhysical) {
    PutScalar<uint32_t>(&body, rec.page);
    PutScalar<uint16_t>(&body, rec.slot);
    PutImage(&body, rec.before);
    PutImage(&body, rec.after);
  }
  uint32_t crc = Fnv1a(body.data(), body.size());
  PutScalar<uint32_t>(out, static_cast<uint32_t>(body.size()));
  out->append(body);
  PutScalar<uint32_t>(out, crc);
}

bool Wal::DecodeRecord(const char* data, size_t len, size_t* consumed,
                       WalRecord* out) {
  size_t pos = 0;
  uint32_t body_len = 0;
  if (!GetScalar(data, len, &pos, &body_len)) return false;
  if (pos + body_len + sizeof(uint32_t) > len) return false;
  const char* body = data + pos;
  uint32_t crc_stored = 0;
  size_t crc_pos = pos + body_len;
  if (!GetScalar(data, len, &crc_pos, &crc_stored)) return false;
  if (Fnv1a(body, body_len) != crc_stored) return false;

  size_t bpos = 0;
  uint8_t type = 0;
  uint64_t lsn = 0, txn = 0;
  if (!GetScalar(body, body_len, &bpos, &type)) return false;
  if (!GetScalar(body, body_len, &bpos, &lsn)) return false;
  if (!GetScalar(body, body_len, &bpos, &txn)) return false;
  out->type = static_cast<WalRecordType>(type);
  out->lsn = lsn;
  out->txn = txn;
  if (out->type == WalRecordType::kPhysical) {
    uint32_t page = 0;
    uint16_t slot = 0;
    if (!GetScalar(body, body_len, &bpos, &page)) return false;
    if (!GetScalar(body, body_len, &bpos, &slot)) return false;
    out->page = page;
    out->slot = slot;
    if (!GetImage(body, body_len, &bpos, &out->before)) return false;
    if (!GetImage(body, body_len, &bpos, &out->after)) return false;
  }
  *consumed = pos + body_len + sizeof(uint32_t);
  return true;
}

Result<Lsn> Wal::Append(WalRecord record) {
  REACH_FAULT_POINT(faults::kWalAppend);
  std::lock_guard<std::mutex> lock(mu_);
  record.lsn = next_lsn_++;
  EncodeRecord(record, &buffer_);
  ++buffer_count_;
  WalMetrics::Get().appends->Inc();
  return record.lsn;
}

Status Wal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!buffer_.empty()) {
    // Crash here: the buffered records are lost entirely.
    REACH_FAULT_POINT(faults::kWalFlushWrite);
    ssize_t n = ::write(fd_, buffer_.data(), buffer_.size());
    if (n != static_cast<ssize_t>(buffer_.size())) {
      return Status::IoError("wal write");
    }
    WalMetrics::Get().flushed_bytes->Inc(buffer_.size());
    buffer_.clear();
    buffer_count_ = 0;
  }
  // Crash here: records reached the file but were never fsynced (with no OS
  // crash behind it they still replay — the durability-uncertain window).
  REACH_FAULT_POINT(faults::kWalFlushFsync);
  {
    obs::ScopedLatencyTimer timer(WalMetrics::Get().fsync_ns);
    if (::fsync(fd_) != 0) {
      return Status::IoError(std::string("wal fsync: ") +
                             std::strerror(errno));
    }
  }
  WalMetrics::Get().fsyncs->Inc();
  return Status::OK();
}

Status Wal::ReadAll(std::vector<WalRecord>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IoError("wal lseek");
  std::string data(static_cast<size_t>(size), '\0');
  if (size > 0) {
    ssize_t n = ::pread(fd_, data.data(), data.size(), 0);
    if (n != size) return Status::IoError("wal read");
  }
  size_t pos = 0;
  while (pos < data.size()) {
    WalRecord rec;
    size_t consumed = 0;
    if (!DecodeRecord(data.data() + pos, data.size() - pos, &consumed, &rec)) {
      // Torn tail write: stop at the last complete record.
      break;
    }
    out->push_back(std::move(rec));
    pos += consumed;
  }
  return Status::OK();
}

Status Wal::Truncate() {
  REACH_FAULT_POINT(faults::kWalTruncate);
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.clear();
  buffer_count_ = 0;
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError(std::string("wal truncate: ") +
                           std::strerror(errno));
  }
  if (::fsync(fd_) != 0) return Status::IoError("wal fsync");
  return Status::OK();
}

}  // namespace reach
