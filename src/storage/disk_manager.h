// Page-granular file I/O. One database = one data file + one WAL file,
// managed by DiskManager and Wal respectively.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace reach {

class DiskManager {
 public:
  ~DiskManager();

  /// Open (creating if necessary) the data file at `path`.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path);

  Status ReadPage(PageId page_id, char* out);
  Status WritePage(PageId page_id, const char* data);

  /// Extend the file by one page and return its id.
  Result<PageId> AllocatePage();

  /// Flush OS buffers to stable storage.
  Status Sync();

  PageId num_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_pages_;
  }

  const std::string& path() const { return path_; }

 private:
  DiskManager(std::string path, int fd, PageId num_pages)
      : path_(std::move(path)), fd_(fd), num_pages_(num_pages) {}

  std::string path_;
  int fd_ = -1;
  mutable std::mutex mu_;
  PageId num_pages_ = 0;
};

}  // namespace reach
