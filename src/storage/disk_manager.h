// Page-granular file I/O. One database = one data file + one WAL file,
// managed by DiskManager and Wal respectively. Single-page ReadPage/
// WritePage run synchronously on the calling thread; the batched
// ReadPages/WritePages entry points route through a pluggable DiskBackend
// (REACH_STORAGE=backend={posix,async,uring}) that can overlap or coalesce
// the members of a batch.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_backend.h"
#include "storage/page.h"

namespace reach {

class DiskManager {
 public:
  ~DiskManager();

  /// Open (creating if necessary) the data file at `path`. `kind` selects
  /// the batched-I/O backend (kDefault: REACH_STORAGE, else posix).
  static Result<std::unique_ptr<DiskManager>> Open(
      const std::string& path,
      DiskBackendKind kind = DiskBackendKind::kDefault);

  Status ReadPage(PageId page_id, char* out);
  Status WritePage(PageId page_id, const char* data);

  /// Read every page in `batch` through the backend (readahead for
  /// ObjectStore::ScanAll). Blocking until all members complete; first
  /// error wins. Fires disk.backend.{submit,complete} even when empty.
  Status ReadPages(const std::vector<PageReadRequest>& batch);

  /// Write every (page, frame-image) pair in `batch` through the backend
  /// (BufferPool::FlushAll / checkpoint). Pages are sorted and contiguous
  /// neighbours coalesced into pwritev-style runs before submission; the
  /// posix backend degenerates to the historical per-page pwrite loop.
  /// Buffers must stay valid for the duration of the call.
  Status WritePages(std::vector<std::pair<PageId, const char*>> batch);

  /// Pre-register long-lived page buffers (the buffer pool's frames) with
  /// the backend — io_uring maps them once (IORING_REGISTER_BUFFERS) and
  /// serves them with READ_FIXED/WRITE_FIXED zero-copy ops. No-op on other
  /// backends. Returns true when registration is active.
  bool RegisterFrameBuffers(const std::vector<char*>& bufs, size_t buf_len) {
    return backend_->RegisterBuffers(bufs, buf_len);
  }

  /// Extend the file by one page and return its id.
  Result<PageId> AllocatePage();

  /// Flush OS buffers to stable storage.
  Status Sync();

  PageId num_pages() const {
    return num_pages_.load(std::memory_order_acquire);
  }

  const std::string& path() const { return path_; }

  /// The batched-I/O backend in use ("posix", "async", "uring") — uring
  /// configs report what the fallback actually resolved to.
  const char* backend_name() const { return backend_->name(); }

 private:
  DiskManager(std::string path, int fd, PageId num_pages,
              std::unique_ptr<DiskBackend> backend)
      : path_(std::move(path)),
        fd_(fd),
        num_pages_(num_pages),
        backend_(std::move(backend)) {}

  std::string path_;
  int fd_ = -1;
  std::mutex extend_mu_;  // serializes AllocatePage file extension
  std::atomic<PageId> num_pages_{0};
  std::unique_ptr<DiskBackend> backend_;
};

}  // namespace reach
