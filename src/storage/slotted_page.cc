#include "storage/slotted_page.h"

#include <algorithm>
#include <cstring>

namespace reach {

namespace {
constexpr uint16_t FreeFlag() { return static_cast<uint16_t>(SlotFlag::kFree); }

uint16_t CapacityFor(size_t len) {
  return static_cast<uint16_t>(
      std::max(len, SlottedPage::kMinCellSize));
}
}  // namespace

void SlottedPage::Init() {
  std::memset(page_->data(), 0, kPageSize);
  Header* h = header();
  h->magic = kMagic;
  h->slot_count = 0;
  h->cell_start = kPageSize;
  h->page_lsn = 0;
}

bool SlottedPage::IsInitialized() const { return header()->magic == kMagic; }

size_t SlottedPage::ReclaimableBytes() const {
  size_t used = 0;
  for (SlotId i = 0; i < header()->slot_count; ++i) {
    const Slot* sl = slot(i);
    if (sl->flag != FreeFlag()) {
      // After compaction capacity shrinks to max(length, kMinCellSize).
      used += CapacityFor(sl->length);
    }
  }
  size_t occupied = kPageSize - header()->cell_start;
  return occupied > used ? occupied - used : 0;
}

size_t SlottedPage::FreeSpaceForInsert() const {
  size_t free_bytes = ContiguousFree() + ReclaimableBytes();
  bool has_free_slot = false;
  for (SlotId i = 0; i < header()->slot_count; ++i) {
    if (slot(i)->flag == FreeFlag()) {
      has_free_slot = true;
      break;
    }
  }
  size_t slot_cost = has_free_slot ? 0 : sizeof(Slot);
  if (free_bytes < slot_cost + kMinCellSize) return 0;
  return free_bytes - slot_cost;
}

size_t SlottedPage::FreeSpaceForUpdate(SlotId s) const {
  if (s >= header()->slot_count) return 0;
  const Slot* sl = slot(s);
  if (sl->flag == FreeFlag()) return 0;
  return ContiguousFree() + ReclaimableBytes() + CapacityFor(sl->length);
}

void SlottedPage::Compact() {
  struct LiveCell {
    SlotId id;
    uint16_t offset;
    uint16_t length;
  };
  std::vector<LiveCell> cells;
  for (SlotId i = 0; i < header()->slot_count; ++i) {
    Slot* sl = slot(i);
    if (sl->flag != FreeFlag()) {
      cells.push_back({i, sl->offset, sl->length});
    }
  }
  // Move highest-offset cells first so copies never overlap destructively.
  std::sort(cells.begin(), cells.end(),
            [](const LiveCell& a, const LiveCell& b) {
              return a.offset > b.offset;
            });
  uint16_t write_end = kPageSize;
  for (const LiveCell& c : cells) {
    uint16_t cap = CapacityFor(c.length);
    uint16_t new_offset = static_cast<uint16_t>(write_end - cap);
    std::memmove(page_->data() + new_offset, page_->data() + c.offset,
                 c.length);
    Slot* sl = slot(c.id);
    sl->offset = new_offset;
    sl->capacity = cap;
    write_end = new_offset;
  }
  header()->cell_start = write_end;
}

std::optional<std::pair<uint16_t, uint16_t>> SlottedPage::AllocateCell(
    size_t len) {
  uint16_t cap = CapacityFor(len);
  if (cap > ContiguousFree()) {
    if (cap > ContiguousFree() + ReclaimableBytes()) return std::nullopt;
    Compact();
    if (cap > ContiguousFree()) return std::nullopt;
  }
  uint16_t offset = static_cast<uint16_t>(header()->cell_start - cap);
  header()->cell_start = offset;
  return std::make_pair(offset, cap);
}

bool SlottedPage::GrowDirectoryTo(SlotId s) {
  while (header()->slot_count <= s) {
    if (SlotDirEnd() + sizeof(Slot) > header()->cell_start) {
      Compact();
      if (SlotDirEnd() + sizeof(Slot) > header()->cell_start) return false;
    }
    SlotId i = header()->slot_count++;
    Slot* sl = slot(i);
    sl->offset = 0;
    sl->capacity = 0;
    sl->length = 0;
    sl->generation = 0;
    sl->flag = FreeFlag();
  }
  return true;
}

Result<SlotId> SlottedPage::Insert(const char* data, size_t len,
                                   SlotFlag flag) {
  // Prefer reusing a freed slot: keeps the directory dense and lets the
  // generation counter detect dangling OIDs.
  SlotId target = header()->slot_count;
  bool reuse = false;
  for (SlotId i = 0; i < header()->slot_count; ++i) {
    if (slot(i)->flag == FreeFlag()) {
      target = i;
      reuse = true;
      break;
    }
  }
  if (!reuse) {
    uint16_t prev_count = header()->slot_count;
    if (!GrowDirectoryTo(target)) return Status::OutOfRange("page full");
    if (header()->slot_count != prev_count + 1) {
      return Status::Internal("slot directory growth anomaly");
    }
  }
  auto cell = AllocateCell(len);
  if (!cell) {
    if (!reuse) header()->slot_count--;  // roll back directory growth
    return Status::OutOfRange("page full (cell)");
  }
  Slot* sl = slot(target);
  sl->offset = cell->first;
  sl->capacity = cell->second;
  sl->length = static_cast<uint16_t>(len);
  sl->generation = static_cast<uint16_t>(sl->generation + 1);
  sl->flag = static_cast<uint16_t>(flag);
  std::memcpy(page_->data() + cell->first, data, len);
  return target;
}

Status SlottedPage::Update(SlotId s, const char* data, size_t len) {
  if (s >= header()->slot_count) return Status::NotFound("no such slot");
  Slot* sl = slot(s);
  if (sl->flag == FreeFlag()) return Status::NotFound("slot is free");
  if (len <= sl->capacity) {
    std::memcpy(page_->data() + sl->offset, data, len);
    sl->length = static_cast<uint16_t>(len);
    return Status::OK();
  }
  // Reallocate on this page: free the old cell first so compaction can
  // reclaim it, but keep the payload salvageable on failure.
  uint16_t old_flag = sl->flag;
  uint16_t old_gen = sl->generation;
  std::string old_payload(page_->data() + sl->offset, sl->length);
  sl->flag = FreeFlag();
  sl->length = 0;
  auto cell = AllocateCell(len);
  sl = slot(s);
  if (!cell) {
    // Restore the old cell (compaction may have moved memory, so rewrite).
    auto restore = AllocateCell(old_payload.size());
    if (!restore) return Status::Corruption("slotted page restore failed");
    sl->offset = restore->first;
    sl->capacity = restore->second;
    sl->length = static_cast<uint16_t>(old_payload.size());
    sl->generation = old_gen;
    sl->flag = old_flag;
    std::memcpy(page_->data() + restore->first, old_payload.data(),
                old_payload.size());
    return Status::OutOfRange("does not fit");
  }
  sl->offset = cell->first;
  sl->capacity = cell->second;
  sl->length = static_cast<uint16_t>(len);
  sl->generation = old_gen;
  sl->flag = old_flag;
  std::memcpy(page_->data() + cell->first, data, len);
  return Status::OK();
}

Status SlottedPage::Delete(SlotId s) {
  if (s >= header()->slot_count) return Status::NotFound("no such slot");
  Slot* sl = slot(s);
  if (sl->flag == FreeFlag()) return Status::NotFound("slot already free");
  sl->flag = FreeFlag();
  sl->length = 0;
  return Status::OK();
}

Status SlottedPage::Read(SlotId s, std::string* out, SlotFlag* flag) const {
  if (s >= header()->slot_count) return Status::NotFound("no such slot");
  const Slot* sl = slot(s);
  if (sl->flag == FreeFlag()) return Status::NotFound("slot is free");
  out->assign(page_->data() + sl->offset, sl->length);
  *flag = static_cast<SlotFlag>(sl->flag);
  return Status::OK();
}

Result<uint16_t> SlottedPage::Generation(SlotId s) const {
  if (s >= header()->slot_count) return Status::NotFound("no such slot");
  return slot(s)->generation;
}

bool SlottedPage::Matches(SlotId s, uint16_t generation) const {
  if (s >= header()->slot_count) return false;
  const Slot* sl = slot(s);
  return sl->flag != FreeFlag() && sl->generation == generation;
}

Status SlottedPage::SetFlag(SlotId s, SlotFlag flag) {
  if (s >= header()->slot_count) return Status::NotFound("no such slot");
  Slot* sl = slot(s);
  if (sl->flag == FreeFlag()) return Status::NotFound("slot is free");
  sl->flag = static_cast<uint16_t>(flag);
  return Status::OK();
}

Status SlottedPage::SetForward(SlotId s, const Oid& target) {
  if (s >= header()->slot_count) return Status::NotFound("no such slot");
  Slot* sl = slot(s);
  if (sl->flag == FreeFlag()) return Status::NotFound("slot is free");
  char buf[kOidEncodedSize];
  EncodeOid(target, buf);
  REACH_RETURN_IF_ERROR(Update(s, buf, kOidEncodedSize));
  return SetFlag(s, SlotFlag::kForward);
}

Status SlottedPage::PlaceAt(SlotId s, uint16_t generation, const char* data,
                            size_t len, SlotFlag flag) {
  if (!GrowDirectoryTo(s)) {
    return Status::OutOfRange("page full (slot directory)");
  }
  Slot* sl = slot(s);
  // Recovery replays images into slots that may already own a cell (the
  // page reached disk before the crash). Rewrite in place when it fits so
  // repeated redo is idempotent instead of leaking a cell per replay until
  // the page reads as full. Free slots don't own their cell (compaction
  // reclaims it), so those always go through allocation.
  if (sl->flag != FreeFlag() && sl->capacity >= len) {
    std::memcpy(page_->data() + sl->offset, data, len);
    sl->length = static_cast<uint16_t>(len);
    sl->generation = generation;
    sl->flag = static_cast<uint16_t>(flag);
    return Status::OK();
  }
  sl->flag = FreeFlag();
  sl->length = 0;
  auto cell = AllocateCell(len);
  if (!cell) return Status::OutOfRange("page full (cell)");
  sl = slot(s);
  sl->offset = cell->first;
  sl->capacity = cell->second;
  sl->length = static_cast<uint16_t>(len);
  sl->generation = generation;
  sl->flag = static_cast<uint16_t>(flag);
  std::memcpy(page_->data() + cell->first, data, len);
  return Status::OK();
}

Status SlottedPage::FreeAt(SlotId s, uint16_t generation) {
  if (s >= header()->slot_count) return Status::OK();  // already absent
  Slot* sl = slot(s);
  sl->flag = FreeFlag();
  sl->length = 0;
  sl->generation = generation;
  return Status::OK();
}

uint16_t SlottedPage::slot_count() const { return header()->slot_count; }

std::vector<SlotId> SlottedPage::LiveSlots() const {
  std::vector<SlotId> out;
  for (SlotId i = 0; i < header()->slot_count; ++i) {
    if (slot(i)->flag == static_cast<uint16_t>(SlotFlag::kLive)) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::pair<SlotId, SlotFlag>> SlottedPage::OccupiedSlots() const {
  std::vector<std::pair<SlotId, SlotFlag>> out;
  for (SlotId i = 0; i < header()->slot_count; ++i) {
    if (slot(i)->flag != FreeFlag()) {
      out.emplace_back(i, static_cast<SlotFlag>(slot(i)->flag));
    }
  }
  return out;
}

void SlottedPage::EncodeOid(const Oid& oid, char* out) {
  uint32_t page = oid.page;
  uint16_t slot16 = oid.slot;
  uint16_t gen = oid.generation;
  std::memcpy(out, &page, 4);
  std::memcpy(out + 4, &slot16, 2);
  std::memcpy(out + 6, &gen, 2);
}

Oid SlottedPage::DecodeOid(const char* data) {
  Oid oid;
  uint32_t page;
  uint16_t slot16, gen;
  std::memcpy(&page, data, 4);
  std::memcpy(&slot16, data + 4, 2);
  std::memcpy(&gen, data + 6, 2);
  oid.page = page;
  oid.slot = slot16;
  oid.generation = gen;
  return oid;
}

size_t SlottedPage::MaxCellPayload() {
  return kPageSize - sizeof(Header) - sizeof(Slot);
}

}  // namespace reach
