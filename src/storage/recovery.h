// Crash recovery: repeat history (redo every physical record in LSN order),
// then roll back losers (apply before-images of unfinished transactions in
// reverse LSN order). Full before/after images make both passes idempotent.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "storage/object_store.h"
#include "storage/wal.h"

namespace reach {

struct RecoveryStats {
  size_t records_scanned = 0;
  size_t records_redone = 0;
  size_t records_undone = 0;
  size_t committed_txns = 0;
  size_t aborted_txns = 0;
  size_t loser_txns = 0;
  /// Event-history records re-appended across the post-recovery truncation
  /// (last event checkpoint + tail; see StorageManager carryover).
  size_t event_records_carried = 0;
};

class RecoveryManager {
 public:
  RecoveryManager(Wal* wal, ObjectStore* store) : wal_(wal), store_(store) {}

  /// Run the two recovery passes. Pages are modified in the buffer pool;
  /// the caller is responsible for flushing and truncating the log after.
  Status Recover(RecoveryStats* stats);

 private:
  Wal* wal_;
  ObjectStore* store_;
};

}  // namespace reach
