// Slotted-page layout for variable-length objects.
//
//   [header][slot 0][slot 1]...            ...[cell k]...[cell 1][cell 0]
//   header grows right, cell data grows left from the page end.
//
// Each slot carries a generation counter (for dangling-OID detection) and a
// flag distinguishing live cells from forwarding stubs: when an update no
// longer fits on the object's home page, the object moves and the home slot
// keeps a forward pointer so the OID stays stable. Cells always reserve at
// least kMinCellSize bytes, which guarantees a live cell can be converted
// into a forward stub (an encoded Oid) in place.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "storage/page.h"

namespace reach {

enum class SlotFlag : uint16_t {
  kFree = 0,      // slot unused (generation preserved for reuse detection)
  kLive = 1,      // cell holds the object bytes (object's home)
  kForward = 2,   // cell holds a serialized Oid pointing at the new home
  kMoved = 3,     // cell holds bytes for an object whose home is elsewhere
                  // (relocated body or large-object continuation segment)
};

class SlottedPage {
 public:
  static constexpr size_t kMinCellSize = 16;

  /// Wrap an in-memory page buffer. Does not take ownership.
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Format a fresh page (zero slots, all payload free).
  void Init();

  /// True if the page has been formatted by Init().
  bool IsInitialized() const;

  /// Bytes available for a new cell after compaction, accounting for the
  /// slot entry a fresh insert would need.
  size_t FreeSpaceForInsert() const;

  /// Largest payload that could replace the cell in `slot` in place.
  size_t FreeSpaceForUpdate(SlotId slot) const;

  /// Insert a new cell; assigns a slot (reusing freed ones) and bumps the
  /// slot generation. Fails with OutOfRange if the payload cannot fit.
  Result<SlotId> Insert(const char* data, size_t len, SlotFlag flag);

  /// Replace the payload of a live/moved/forward slot (same generation).
  /// Grows within the cell's capacity or by reallocating on this page;
  /// fails with OutOfRange if the page cannot hold the new payload.
  Status Update(SlotId slot, const char* data, size_t len);

  /// Free a slot (generation preserved; bumped on reuse).
  Status Delete(SlotId slot);

  /// Read a cell's payload and flag.
  Status Read(SlotId slot, std::string* out, SlotFlag* flag) const;

  /// Generation currently stored for a slot.
  Result<uint16_t> Generation(SlotId slot) const;

  /// True if `slot` holds a non-free cell with generation `generation`.
  bool Matches(SlotId slot, uint16_t generation) const;

  /// Change a cell's flag without touching its payload.
  Status SetFlag(SlotId slot, SlotFlag flag);

  /// Change a live cell into a forward stub pointing at `target`. Always
  /// succeeds on a live cell thanks to kMinCellSize.
  Status SetForward(SlotId slot, const Oid& target);

  /// Recovery support: force slot `slot` to hold `data` with `generation`
  /// and `flag`, creating intermediate free slots if needed.
  Status PlaceAt(SlotId slot, uint16_t generation, const char* data,
                 size_t len, SlotFlag flag);

  /// Recovery support: force slot `slot` to be free with `generation`.
  Status FreeAt(SlotId slot, uint16_t generation);

  uint16_t slot_count() const;

  /// Slots currently holding live cells (excludes forwards and free slots).
  std::vector<SlotId> LiveSlots() const;

  /// Every non-free slot with its flag (scan support).
  std::vector<std::pair<SlotId, SlotFlag>> OccupiedSlots() const;

  /// Serialize an Oid into 8 bytes (used for forward cells).
  static void EncodeOid(const Oid& oid, char* out);
  static Oid DecodeOid(const char* data);
  static constexpr size_t kOidEncodedSize = 8;

  /// Largest payload a cell on a freshly initialized page can hold.
  static size_t MaxCellPayload();

  /// LSN of the last WAL record applied to this page (ARIES pageLSN). Redo
  /// skips records at or below it, so replaying history onto a page that
  /// was flushed *after* those records is a no-op instead of a re-apply.
  uint64_t lsn() const { return header()->page_lsn; }
  void set_lsn(uint64_t lsn) { header()->page_lsn = lsn; }

 private:
  struct Header {
    uint32_t magic;
    uint16_t slot_count;
    uint16_t cell_start;  // offset of the lowest cell byte
    uint64_t page_lsn;    // last WAL record reflected in this page image
  };
  struct Slot {
    uint16_t offset;
    uint16_t capacity;  // bytes reserved for the cell (>= kMinCellSize)
    uint16_t length;    // bytes in use (<= capacity)
    uint16_t generation;
    uint16_t flag;
  };

  static constexpr uint32_t kMagic = 0x52454348;  // "RECH"

  Header* header() { return reinterpret_cast<Header*>(page_->data()); }
  const Header* header() const {
    return reinterpret_cast<const Header*>(page_->data());
  }
  Slot* slot(SlotId i) {
    return reinterpret_cast<Slot*>(page_->data() + sizeof(Header)) + i;
  }
  const Slot* slot(SlotId i) const {
    return reinterpret_cast<const Slot*>(page_->data() + sizeof(Header)) + i;
  }

  size_t SlotDirEnd() const {
    return sizeof(Header) + header()->slot_count * sizeof(Slot);
  }

  /// Contiguous gap between the slot directory and the lowest cell.
  size_t ContiguousFree() const { return header()->cell_start - SlotDirEnd(); }

  /// Bytes recoverable by compaction (freed cells + shrunk capacities).
  size_t ReclaimableBytes() const;

  /// Slide live cells to the page end, re-packing capacities.
  void Compact();

  /// Reserve max(len, kMinCellSize) bytes of cell space (compacts if
  /// needed); returns {offset, capacity}.
  std::optional<std::pair<uint16_t, uint16_t>> AllocateCell(size_t len);

  /// Ensure the slot directory can hold slot index `s`.
  bool GrowDirectoryTo(SlotId s);

  Page* page_;
};

}  // namespace reach
