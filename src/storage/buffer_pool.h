// Buffer pool: fixed set of in-memory frames fronting the DiskManager,
// with approximate-LRU replacement and pin-count protection.
//
// The pool is partitioned into N independent shards keyed by
// `page_id % N`, each with its own mutex, page table, and slice of the
// frame budget. N defaults to the nearest power of two to the hardware
// concurrency and is overridable via the REACH_STORAGE environment
// variable (`shards=<N>`, grammar mirroring REACH_WAL).
//
// Two mechanisms keep the read path non-blocking (docs/STORAGE.md):
//
//  * Lock-free lookup fast path — each shard's page table is an
//    open-addressing array of atomic<uint64_t> buckets packing
//    (page_id, frame_idx). A FetchPage hit resolves with an acquire probe,
//    a pin CAS, and a bucket re-verify; the shard mutex is taken only on
//    miss, eviction, or a table rebuild.
//  * Background writeback — an optional thread (REACH_STORAGE
//    `writeback=on,writeback_watermark=<PCT>`) snapshots dirty unpinned
//    frames when the dirty ratio crosses the watermark, forces the log up
//    to the batch's max pageLSN, and writes the snapshots through
//    DiskManager::WritePages, so GetVictimFrame almost always finds a
//    clean victim and never does I/O under the shard mutex. When the pool
//    is dirty wall-to-wall, eviction falls back to the historical
//    synchronous write (storage.bufferpool.evict.sync_fallback).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace reach {

/// Storage tuning knobs. Defaults come from the REACH_STORAGE environment
/// variable (entries separated by ',' or ';'): "shards=<N>" sets the buffer
/// pool shard count (0 = auto: nearest power of two to the hardware
/// concurrency), "writeback={on,off}" enables the background writeback
/// thread (default off), "writeback_watermark=<PCT>" sets the dirty-ratio
/// percentage that triggers a pass (default 50). Unknown entries are
/// ignored so old binaries tolerate new knobs.
struct BufferPoolOptions {
  size_t shards = 0;  // 0 = auto
  /// -1 = defer to REACH_STORAGE (off when unset), 0 = off, 1 = on.
  int writeback = -1;
  /// Percent of frames dirty that wakes the writeback thread; 0 = defer to
  /// REACH_STORAGE, else kDefaultWatermarkPct.
  size_t writeback_watermark = 0;

  static constexpr size_t kDefaultWatermarkPct = 50;

  static BufferPoolOptions FromEnv();
  /// Parse a REACH_STORAGE spec string (exposed for tests; FromEnv caches).
  static BufferPoolOptions Parse(const char* spec);
  /// Resolve a requested shard count: 0 becomes the auto default.
  static size_t ResolveShards(size_t requested);
  /// Resolve the writeback toggle / watermark against REACH_STORAGE.
  static bool ResolveWriteback(int requested);
  static size_t ResolveWatermark(size_t requested);
};

class BufferPool {
 public:
  /// `shards` == 0 defers to REACH_STORAGE / the auto default. The frame
  /// budget is sliced evenly across shards; the shard count is clamped to
  /// `pool_size` so the pool never exceeds its frame budget.
  BufferPool(DiskManager* disk, size_t pool_size, size_t shards = 0);
  /// Full-options constructor (writeback toggle + watermark); the
  /// three-argument form defers both to REACH_STORAGE.
  BufferPool(DiskManager* disk, size_t pool_size,
             const BufferPoolOptions& options);
  ~BufferPool();

  /// Pin the page, reading it from disk if absent. Caller must Unpin.
  /// Blocks briefly if the page is mid-fill by a concurrent ReadAhead.
  Result<Page*> FetchPage(PageId page_id);

  /// Warm the pool with `pages` in one batched backend submission
  /// (DiskManager::ReadPages) so subsequent FetchPage calls hit. Pages
  /// already resident, mid-fill, or without an evictable frame are skipped —
  /// FetchPage falls back to a synchronous read for those. Best-effort on
  /// skips, but a failed backend submission is reported (and the staged
  /// frames are released).
  Status ReadAhead(const std::vector<PageId>& pages);

  /// Allocate a fresh page on disk and pin it.
  Result<Page*> NewPage();

  /// Drop a pin; `dirty` marks the frame as needing write-back.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Write a specific page back to disk if dirty. Waits out an in-flight
  /// background writeback of the same frame first, so a stale snapshot and
  /// the fresh image never race each other to disk.
  Status FlushPage(PageId page_id);

  /// Write all dirty frames back to disk in one batched backend submission:
  /// dirty frames are collected and pinned shard by shard, the log is forced
  /// once, and the sorted batch goes down as coalesced runs
  /// (DiskManager::WritePages). Caller must guarantee no concurrent
  /// mutators (the documented Checkpoint precondition); an in-flight
  /// background writeback pass is waited out.
  Status FlushAll();

  /// Run one writeback pass synchronously on the calling thread (the same
  /// code path the background thread runs — available with the thread off,
  /// which is how the crash-injection tests exercise it deterministically).
  /// Rethrows a crash fault the background thread caught and parked.
  Status TriggerWriteback();

  size_t pool_size() const { return pool_size_; }
  size_t shard_count() const { return shards_.size(); }
  /// Pages currently in the underlying data file (readahead upper bound).
  PageId disk_pages() const { return disk_->num_pages(); }

  /// WAL rule hook: invoked before any page reaches disk, so the storage
  /// manager can force the log first (write-ahead invariant). The page's
  /// ARIES pageLSN is passed so the hook only needs to make the log durable
  /// up to it; kInvalidLsn means "unknown" (non-slotted page) and forces
  /// the whole log.
  using PreWriteHook = std::function<Status(Lsn page_lsn)>;
  void set_pre_write_hook(PreWriteHook hook) {
    pre_write_hook_ = std::move(hook);
  }

  /// Statistics for benchmarks (summed over shards).
  uint64_t hit_count() const;
  uint64_t miss_count() const;

  /// Fraction of frames currently dirty (0.0 .. 1.0).
  double dirty_ratio() const;

  struct WritebackStats {
    bool enabled = false;
    size_t watermark_pct = 0;
    uint64_t pages = 0;           // frames cleaned by writeback passes
    uint64_t batches = 0;         // passes that wrote at least one frame
    uint64_t stall_ns = 0;        // ns passes spent in log force + I/O
    uint64_t sync_fallbacks = 0;  // dirty evictions written in foreground
  };
  WritebackStats writeback_stats() const;
  bool writeback_enabled() const { return wb_enabled_; }

 private:
  // One independent partition of the pool. Heap-allocated and
  // cache-line-aligned so neighbouring shards' mutexes never share a line.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    // Signalled when a ReadAhead fill or a writeback snapshot completes
    // (io_pending / wb_in_flight cleared) so waiting FetchPage / FlushPage
    // / eviction callers can stop waiting.
    std::condition_variable io_cv;
    std::vector<std::unique_ptr<Page>> frames;
    // Open-addressing page table: each bucket is kEmptyBucket, kTombstone,
    // or (page_id << 32 | frame_idx). Lock-free readers probe with acquire
    // loads; all writes (insert/erase/rebuild) happen under `mu`. The
    // capacity is fixed at 2x the frame count, so "resize" is a same-size
    // rebuild that reclaims tombstones when empties run low — concurrent
    // readers may see a transient false miss and retry under the mutex,
    // never a false hit.
    std::unique_ptr<std::atomic<uint64_t>[]> table;
    size_t table_mask = 0;
    size_t table_empties = 0;           // guarded by mu
    std::vector<size_t> free_frames;    // guarded by mu
    std::atomic<uint64_t> tick{0};      // approximate-LRU access clock
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    // Sliding window feeding the hit-rate metrics: roughly every
    // kHitRateWindow accesses the shard publishes its hit percentage
    // (gauge = last completed window anywhere, histogram = per-shard
    // distribution). Lock-free counters: a window boundary racing another
    // access can lose a count — the metric is statistical, not exact.
    std::atomic<uint64_t> window_hits{0};
    std::atomic<uint64_t> window_accesses{0};
  };
  static constexpr uint64_t kHitRateWindow = 1024;

  static constexpr uint64_t kEmptyBucket = ~0ull;
  static constexpr uint64_t kTombstone = ~0ull - 1;
  static uint64_t PackEntry(PageId page_id, size_t frame) {
    return (static_cast<uint64_t>(page_id) << 32) |
           static_cast<uint32_t>(frame);
  }
  static PageId EntryPage(uint64_t e) { return static_cast<PageId>(e >> 32); }
  static size_t EntryFrame(uint64_t e) {
    return static_cast<uint32_t>(e & 0xFFFFFFFFu);
  }
  static size_t BucketIndex(PageId page_id, size_t mask) {
    // Fibonacci hash on the high bits: page ids within one shard share
    // their low bits (page % shard_count == shard index).
    return static_cast<size_t>(
               (static_cast<uint64_t>(page_id) * 0x9E3779B97F4A7C15ull) >>
               32) &
           mask;
  }

  Shard& ShardFor(PageId page_id) {
    return *shards_[page_id % shards_.size()];
  }

  /// Lock a shard, recording time spent blocked on a contended mutex into
  /// the storage.bufferpool.shard.lock_wait_ns histogram.
  std::unique_lock<std::mutex> LockShard(Shard& shard);

  /// Lock-free hit attempt: probe, pin CAS, io_pending check, bucket
  /// re-verify (in that order — the verify must be the last load so a
  /// completed unwind is never half-observed). Returns nullptr on miss or
  /// any race; the caller falls back to the locked path.
  Page* TryFetchFast(Shard& shard, PageId page_id);

  /// Probe the table for `page_id`. Safe lock-free and under `mu`. Returns
  /// the packed entry and sets `*bucket`, or kEmptyBucket when absent.
  uint64_t ProbeTable(const Shard& shard, PageId page_id,
                      size_t* bucket) const;
  // Table mutation, caller holds `mu`.
  void TableInsert(Shard& shard, PageId page_id, size_t frame);
  void TableErase(Shard& shard, PageId page_id);
  void TableRebuild(Shard& shard);

  /// Find a reusable frame (free list first, then the least-recently-used
  /// unpinned victim). Prefers clean victims; a dirty victim is written
  /// synchronously (the foreground fallback). Waits out frames whose
  /// snapshots are mid-writeback when nothing else is evictable. The frame
  /// is returned latched (pin_count == kEvictLatch) and absent from the
  /// table; the caller fills it, publishes the new table entry, and
  /// unlatches. Caller holds `lock` on `shard.mu`.
  Result<size_t> GetVictimFrame(Shard& shard,
                                std::unique_lock<std::mutex>& lock);

  /// Write one dirty frame back to disk. Caller holds `shard.mu`; the frame
  /// must not be concurrently mutable (latched, or pinned by the caller
  /// with no other writers).
  Status WriteBack(Page* page);

  /// Dirty-bit transitions with pool-wide accounting (dirty_count_ + the
  /// dirty-ratio gauge). Caller holds the owning shard's `mu`.
  void MarkDirty(Page* page);
  void MarkClean(Page* page);

  /// Hit/miss bookkeeping for one access (lock-free).
  void NoteAccess(Shard& shard, bool hit);

  // -- Background writeback --------------------------------------------------
  /// One pass: snapshot dirty unpinned frames shard by shard (each copied
  /// under an evict latch so no mutator can tear it), force the log up to
  /// the batch's max pageLSN, write the snapshots as one batch, then clear
  /// dirty bits whose frames were not re-dirtied meanwhile (mod_count
  /// check). Serialized against FlushAll and other passes by wb_pass_mu_.
  Status WritebackPass();
  void WritebackThreadMain();
  /// Run a pass on the writeback thread, parking an injected crash fault
  /// instead of letting it escape the thread (rethrown by the next
  /// TriggerWriteback).
  void RunPassOnThread();
  void MaybeKickWriteback();

  DiskManager* disk_;
  size_t pool_size_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  PreWriteHook pre_write_hook_;

  bool wb_enabled_ = false;
  size_t wb_watermark_pct_ = BufferPoolOptions::kDefaultWatermarkPct;
  std::atomic<size_t> dirty_count_{0};
  /// Serializes writeback passes against each other and against FlushAll,
  /// so a checkpoint never races a stale snapshot to disk. Ordered before
  /// any shard mutex.
  std::mutex wb_pass_mu_;
  std::thread wb_thread_;
  std::mutex wb_mu_;  // guards wb_stop_ / wb_kick_ / wb_parked_crash_
  std::condition_variable wb_cv_;
  bool wb_stop_ = false;
  bool wb_kick_ = false;
  std::atomic<bool> wb_kick_pending_{false};
  std::exception_ptr wb_parked_crash_;

  std::atomic<uint64_t> wb_pages_{0};
  std::atomic<uint64_t> wb_batches_{0};
  std::atomic<uint64_t> wb_stall_ns_{0};
  std::atomic<uint64_t> wb_sync_fallbacks_{0};
};

}  // namespace reach
