// Buffer pool: fixed set of in-memory frames with LRU replacement and
// pin-count protection, fronting the DiskManager.
//
// The pool is partitioned into N independent shards keyed by
// `page_id % N`, each with its own mutex, page table, LRU list, and slice
// of the frame budget, so concurrent fetches of distinct pages never
// contend on one lock. N defaults to the nearest power of two to the
// hardware concurrency and is overridable via the REACH_STORAGE
// environment variable (`shards=<N>`, grammar mirroring REACH_WAL).
#pragma once

#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace reach {

/// Storage tuning knobs. Defaults come from the REACH_STORAGE environment
/// variable (entries separated by ',' or ';'): "shards=<N>" sets the buffer
/// pool shard count (0 = auto: nearest power of two to the hardware
/// concurrency). Unknown entries are ignored so old binaries tolerate new
/// knobs.
struct BufferPoolOptions {
  size_t shards = 0;  // 0 = auto

  static BufferPoolOptions FromEnv();
  /// Parse a REACH_STORAGE spec string (exposed for tests; FromEnv caches).
  static BufferPoolOptions Parse(const char* spec);
  /// Resolve a requested shard count: 0 becomes the auto default.
  static size_t ResolveShards(size_t requested);
};

class BufferPool {
 public:
  /// `shards` == 0 defers to REACH_STORAGE / the auto default. The frame
  /// budget is sliced evenly across shards; the shard count is clamped to
  /// `pool_size` so the pool never exceeds its frame budget.
  BufferPool(DiskManager* disk, size_t pool_size, size_t shards = 0);

  /// Pin the page, reading it from disk if absent. Caller must Unpin.
  /// Blocks briefly if the page is mid-fill by a concurrent ReadAhead.
  Result<Page*> FetchPage(PageId page_id);

  /// Warm the pool with `pages` in one batched backend submission
  /// (DiskManager::ReadPages) so subsequent FetchPage calls hit. Pages
  /// already resident, mid-fill, or without an evictable frame are skipped —
  /// FetchPage falls back to a synchronous read for those. Best-effort on
  /// skips, but a failed backend submission is reported (and the staged
  /// frames are released).
  Status ReadAhead(const std::vector<PageId>& pages);

  /// Allocate a fresh page on disk and pin it.
  Result<Page*> NewPage();

  /// Drop a pin; `dirty` marks the frame as needing write-back.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Write a specific page back to disk if dirty.
  Status FlushPage(PageId page_id);

  /// Write all dirty frames back to disk in one batched backend submission:
  /// dirty frames are collected and pinned shard by shard, the log is forced
  /// once, and the sorted batch goes down as coalesced runs
  /// (DiskManager::WritePages). Caller must guarantee no concurrent
  /// mutators (the documented Checkpoint precondition).
  Status FlushAll();

  size_t pool_size() const { return pool_size_; }
  size_t shard_count() const { return shards_.size(); }
  /// Pages currently in the underlying data file (readahead upper bound).
  PageId disk_pages() const { return disk_->num_pages(); }

  /// WAL rule hook: invoked before any page reaches disk, so the storage
  /// manager can force the log first (write-ahead invariant). The page's
  /// ARIES pageLSN is passed so the hook only needs to make the log durable
  /// up to it; kInvalidLsn means "unknown" (non-slotted page) and forces
  /// the whole log.
  using PreWriteHook = std::function<Status(Lsn page_lsn)>;
  void set_pre_write_hook(PreWriteHook hook) {
    pre_write_hook_ = std::move(hook);
  }

  /// Statistics for benchmarks (summed over shards).
  uint64_t hit_count() const;
  uint64_t miss_count() const;

 private:
  // One independent partition of the pool. Heap-allocated and
  // cache-line-aligned so neighbouring shards' mutexes never share a line.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    // Signalled when a ReadAhead fill completes (io_pending cleared) so
    // concurrent FetchPage callers of the same page can stop waiting.
    std::condition_variable io_cv;
    std::vector<std::unique_ptr<Page>> frames;
    std::unordered_map<PageId, size_t> page_table;
    std::list<size_t> lru;  // front = most recently used
    std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos;
    std::vector<size_t> free_frames;
    uint64_t hits = 0;
    uint64_t misses = 0;
    // Sliding window feeding the hit-rate metrics: every kHitRateWindow
    // accesses the shard publishes its hit percentage (gauge = last
    // completed window anywhere, histogram = per-shard distribution) and
    // the window resets, so eviction-policy regressions show up fast.
    uint64_t window_hits = 0;
    uint64_t window_accesses = 0;
  };
  static constexpr uint64_t kHitRateWindow = 1024;

  Shard& ShardFor(PageId page_id) {
    return *shards_[page_id % shards_.size()];
  }

  /// Lock a shard, recording time spent blocked on a contended mutex into
  /// the storage.bufferpool.shard.lock_wait_ns histogram.
  std::unique_lock<std::mutex> LockShard(Shard& shard);

  /// Find a reusable frame (free list first, then LRU victim). Flushes the
  /// victim if dirty. Caller holds `shard.mu`.
  Result<size_t> GetVictimFrame(Shard& shard);

  /// Write one dirty frame back to disk. Caller holds `shard.mu`.
  Status WriteBack(Page* page);

  /// Hit/miss bookkeeping for one access. Caller holds `shard.mu`.
  void NoteAccess(Shard& shard, bool hit);

  DiskManager* disk_;
  size_t pool_size_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  PreWriteHook pre_write_hook_;
};

}  // namespace reach
