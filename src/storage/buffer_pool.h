// Buffer pool: fixed set of in-memory frames with LRU replacement and
// pin-count protection, fronting the DiskManager.
#pragma once

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace reach {

class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t pool_size);

  /// Pin the page, reading it from disk if absent. Caller must Unpin.
  Result<Page*> FetchPage(PageId page_id);

  /// Allocate a fresh page on disk and pin it.
  Result<Page*> NewPage();

  /// Drop a pin; `dirty` marks the frame as needing write-back.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Write a specific page back to disk if dirty.
  Status FlushPage(PageId page_id);

  /// Write all dirty frames back to disk.
  Status FlushAll();

  size_t pool_size() const { return frames_.size(); }

  /// WAL rule hook: invoked before any page reaches disk, so the storage
  /// manager can force the log first (write-ahead invariant).
  void set_pre_write_hook(std::function<Status()> hook) {
    pre_write_hook_ = std::move(hook);
  }

  /// Statistics for benchmarks.
  uint64_t hit_count() const { return hits_; }
  uint64_t miss_count() const { return misses_; }

 private:
  /// Find a reusable frame (free list first, then LRU victim). Flushes the
  /// victim if dirty. Returns nullptr if every frame is pinned.
  Result<size_t> GetVictimFrame();

  DiskManager* disk_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;  // front = most recently used
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  std::vector<size_t> free_frames_;
  std::function<Status()> pre_write_hook_;
  std::mutex mu_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Sliding window feeding the storage.bufferpool.hit_rate gauge: every
  // kHitRateWindow accesses the hit percentage is published and the window
  // resets, so eviction-policy regressions show up in one number.
  static constexpr uint64_t kHitRateWindow = 1024;
  uint64_t window_hits_ = 0;
  uint64_t window_accesses_ = 0;
};

}  // namespace reach
