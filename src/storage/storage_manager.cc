#include "storage/storage_manager.h"

#include <cstring>

namespace reach {

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const std::string& base_path, const StorageOptions& options) {
  auto sm = std::unique_ptr<StorageManager>(new StorageManager());
  REACH_ASSIGN_OR_RETURN(sm->disk_, DiskManager::Open(base_path + ".db"));
  REACH_ASSIGN_OR_RETURN(sm->wal_, Wal::Open(base_path + ".wal"));
  sm->pool_ = std::make_unique<BufferPool>(sm->disk_.get(),
                                           options.buffer_pool_pages);
  Wal* wal = sm->wal_.get();
  sm->pool_->set_pre_write_hook([wal] { return wal->Flush(); });
  sm->objects_ = std::make_unique<ObjectStore>(sm->pool_.get(), wal,
                                               /*first_data_page=*/1);

  // Ensure the meta page exists.
  if (sm->disk_->num_pages() == 0) {
    REACH_ASSIGN_OR_RETURN(Page * meta, sm->pool_->NewPage());
    if (meta->page_id() != 0) {
      return Status::Internal("meta page must be page 0");
    }
    uint32_t magic = kMetaMagic;
    std::memcpy(meta->data(), &magic, sizeof(magic));
    char invalid[SlottedPage::kOidEncodedSize];
    SlottedPage::EncodeOid(kInvalidOid, invalid);
    std::memcpy(meta->data() + sizeof(magic), invalid, sizeof(invalid));
    REACH_RETURN_IF_ERROR(sm->pool_->UnpinPage(0, /*dirty=*/true));
    REACH_RETURN_IF_ERROR(sm->pool_->FlushPage(0));
  }

  // Crash recovery, then checkpoint so the log starts empty.
  RecoveryManager recovery(wal, sm->objects_.get());
  REACH_RETURN_IF_ERROR(recovery.Recover(&sm->recovery_stats_));
  REACH_RETURN_IF_ERROR(sm->pool_->FlushAll());
  REACH_RETURN_IF_ERROR(sm->disk_->Sync());
  REACH_RETURN_IF_ERROR(wal->Truncate());

  REACH_RETURN_IF_ERROR(sm->objects_->Bootstrap());
  return sm;
}

Status StorageManager::LogBegin(TxnId txn) {
  WalRecord rec;
  rec.type = WalRecordType::kBegin;
  rec.txn = txn;
  auto lsn = wal_->Append(std::move(rec));
  return lsn.ok() ? Status::OK() : lsn.status();
}

Status StorageManager::LogCommit(TxnId txn) {
  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  rec.txn = txn;
  auto lsn = wal_->Append(std::move(rec));
  if (!lsn.ok()) return lsn.status();
  return wal_->Flush();
}

Status StorageManager::LogAbort(TxnId txn) {
  WalRecord rec;
  rec.type = WalRecordType::kAbort;
  rec.txn = txn;
  auto lsn = wal_->Append(std::move(rec));
  if (!lsn.ok()) return lsn.status();
  return wal_->Flush();
}

Status StorageManager::Checkpoint() {
  REACH_RETURN_IF_ERROR(pool_->FlushAll());
  REACH_RETURN_IF_ERROR(disk_->Sync());
  return wal_->Truncate();
}

Result<Oid> StorageManager::GetMetaRoot() {
  REACH_ASSIGN_OR_RETURN(Page * meta, pool_->FetchPage(0));
  uint32_t magic = 0;
  std::memcpy(&magic, meta->data(), sizeof(magic));
  if (magic != kMetaMagic) {
    pool_->UnpinPage(0, false);
    return Status::Corruption("bad meta page magic");
  }
  Oid root = SlottedPage::DecodeOid(meta->data() + sizeof(magic));
  REACH_RETURN_IF_ERROR(pool_->UnpinPage(0, false));
  return root;
}

Status StorageManager::SetMetaRoot(const Oid& root) {
  REACH_ASSIGN_OR_RETURN(Page * meta, pool_->FetchPage(0));
  char buf[SlottedPage::kOidEncodedSize];
  SlottedPage::EncodeOid(root, buf);
  std::memcpy(meta->data() + sizeof(uint32_t), buf, sizeof(buf));
  REACH_RETURN_IF_ERROR(pool_->UnpinPage(0, /*dirty=*/true));
  return pool_->FlushPage(0);
}

}  // namespace reach
