#include "storage/storage_manager.h"

#include <cstring>

#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const std::string& base_path, const StorageOptions& options) {
  auto sm = std::unique_ptr<StorageManager>(new StorageManager());
  REACH_ASSIGN_OR_RETURN(
      sm->disk_, DiskManager::Open(base_path + ".db", options.disk_backend));
  REACH_ASSIGN_OR_RETURN(sm->wal_, Wal::Open(base_path + ".wal", options.wal,
                                             options.disk_backend));
  BufferPoolOptions pool_options;
  pool_options.shards = options.bufferpool_shards;
  pool_options.writeback = options.writeback;
  pool_options.writeback_watermark = options.writeback_watermark;
  sm->pool_ = std::make_unique<BufferPool>(
      sm->disk_.get(), options.buffer_pool_pages, pool_options);
  Wal* wal = sm->wal_.get();
  // Write-ahead invariant: force the log up to the page's LSN before its
  // image reaches disk. Pages without an LSN (the meta page) force the
  // whole log.
  sm->pool_->set_pre_write_hook([wal](Lsn page_lsn) {
    return page_lsn == kInvalidLsn ? wal->Flush() : wal->FlushUpTo(page_lsn);
  });
  sm->objects_ = std::make_unique<ObjectStore>(sm->pool_.get(), wal,
                                               /*first_data_page=*/1);

  // Ensure the meta page exists.
  if (sm->disk_->num_pages() == 0) {
    REACH_ASSIGN_OR_RETURN(Page * meta, sm->pool_->NewPage());
    if (meta->page_id() != 0) {
      return Status::Internal("meta page must be page 0");
    }
    REACH_RETURN_IF_ERROR(sm->InitMetaPage(meta));
    REACH_RETURN_IF_ERROR(sm->pool_->UnpinPage(0, /*dirty=*/true));
    REACH_RETURN_IF_ERROR(sm->pool_->FlushPage(0));
  } else {
    // A crash between allocating page 0 and its first successful write
    // leaves an all-zero meta page on disk; finish the interrupted
    // initialization. A *nonzero* bad-magic page is real corruption and is
    // left for GetMetaRoot to report.
    REACH_ASSIGN_OR_RETURN(Page * meta, sm->pool_->FetchPage(0));
    uint32_t magic = 0;
    std::memcpy(&magic, meta->data(), sizeof(magic));
    bool all_zero = true;
    for (size_t i = 0; i < kPageSize && all_zero; ++i) {
      all_zero = meta->data()[i] == 0;
    }
    if (magic != kMetaMagic && all_zero) {
      REACH_RETURN_IF_ERROR(sm->InitMetaPage(meta));
      REACH_RETURN_IF_ERROR(sm->pool_->UnpinPage(0, /*dirty=*/true));
      REACH_RETURN_IF_ERROR(sm->pool_->FlushPage(0));
    } else {
      REACH_RETURN_IF_ERROR(sm->pool_->UnpinPage(0, /*dirty=*/false));
    }
  }

  // Raise the WAL's LSN counter to the persisted floor before any record is
  // appended, so this epoch's LSNs exceed every page LSN stamped before the
  // last truncation.
  REACH_ASSIGN_OR_RETURN(Lsn floor, sm->ReadLsnFloor());
  wal->EnsureNextLsnAtLeast(floor);

  // Crash recovery, then checkpoint so the log starts empty. The new floor
  // must reach disk before the truncate makes the old LSNs unrecoverable.
  RecoveryManager recovery(wal, sm->objects_.get());
  REACH_RETURN_IF_ERROR(recovery.Recover(&sm->recovery_stats_));
  REACH_RETURN_IF_ERROR(sm->pool_->FlushAll());
  REACH_RETURN_IF_ERROR(sm->WriteLsnFloor(wal->next_lsn()));
  REACH_RETURN_IF_ERROR(sm->disk_->Sync());
  REACH_RETURN_IF_ERROR(sm->RotateLogKeepingEventHistory(
      &sm->recovery_stats_.event_records_carried));

  REACH_RETURN_IF_ERROR(sm->objects_->Bootstrap());
  return sm;
}

Status StorageManager::InitMetaPage(Page* meta) {
  uint32_t magic = kMetaMagic;
  std::memcpy(meta->data(), &magic, sizeof(magic));
  char invalid[SlottedPage::kOidEncodedSize];
  SlottedPage::EncodeOid(kInvalidOid, invalid);
  std::memcpy(meta->data() + sizeof(magic), invalid, sizeof(invalid));
  Lsn floor = 0;
  std::memcpy(meta->data() + kLsnFloorOffset, &floor, sizeof(floor));
  return Status::OK();
}

Status StorageManager::LogBegin(TxnId txn) {
  WalRecord rec;
  rec.type = WalRecordType::kBegin;
  rec.txn = txn;
  auto lsn = wal_->Append(std::move(rec));
  return lsn.ok() ? Status::OK() : lsn.status();
}

Result<Lsn> StorageManager::LogCommit(TxnId txn) {
  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  rec.txn = txn;
  return wal_->Append(std::move(rec));
}

Status StorageManager::LogAbort(TxnId txn) {
  WalRecord rec;
  rec.type = WalRecordType::kAbort;
  rec.txn = txn;
  auto lsn = wal_->Append(std::move(rec));
  if (!lsn.ok()) return lsn.status();
  return wal_->Flush();
}

Status StorageManager::Checkpoint() {
  REACH_RETURN_IF_ERROR(pool_->FlushAll());
  REACH_RETURN_IF_ERROR(WriteLsnFloor(wal_->next_lsn()));
  REACH_RETURN_IF_ERROR(disk_->Sync());
  return RotateLogKeepingEventHistory();
}

Status StorageManager::RotateLogKeepingEventHistory(size_t* carried) {
  if (carried != nullptr) *carried = 0;
  REACH_FAULT_POINT(faults::kEventHistoryCarryover);
  std::vector<WalRecord> records;
  REACH_RETURN_IF_ERROR(wal_->ReadAll(&records));
  // Keep the last event checkpoint and every event record after it; with no
  // checkpoint the whole history is the replay tail.
  std::vector<WalRecord> keep;
  for (WalRecord& rec : records) {
    if (!IsEventRecord(rec.type)) continue;
    if (rec.type == WalRecordType::kEventCheckpoint) keep.clear();
    keep.push_back(std::move(rec));
  }
  REACH_RETURN_IF_ERROR(wal_->Truncate());
  if (keep.empty()) return Status::OK();
  for (WalRecord& rec : keep) {
    rec.lsn = kInvalidLsn;  // reassigned in the fresh epoch
    auto lsn = wal_->Append(std::move(rec));
    if (!lsn.ok()) return lsn.status();
  }
  if (carried != nullptr) *carried = keep.size();
  return wal_->Flush();
}

Result<Lsn> StorageManager::ReadLsnFloor() {
  REACH_ASSIGN_OR_RETURN(Page * meta, pool_->FetchPage(0));
  Lsn floor = 0;
  std::memcpy(&floor, meta->data() + kLsnFloorOffset, sizeof(floor));
  REACH_RETURN_IF_ERROR(pool_->UnpinPage(0, /*dirty=*/false));
  return floor;
}

Status StorageManager::WriteLsnFloor(Lsn floor) {
  REACH_ASSIGN_OR_RETURN(Page * meta, pool_->FetchPage(0));
  std::memcpy(meta->data() + kLsnFloorOffset, &floor, sizeof(floor));
  REACH_RETURN_IF_ERROR(pool_->UnpinPage(0, /*dirty=*/true));
  return pool_->FlushPage(0);
}

Result<Oid> StorageManager::GetMetaRoot() {
  REACH_ASSIGN_OR_RETURN(Page * meta, pool_->FetchPage(0));
  uint32_t magic = 0;
  std::memcpy(&magic, meta->data(), sizeof(magic));
  if (magic != kMetaMagic) {
    pool_->UnpinPage(0, false);
    return Status::Corruption("bad meta page magic");
  }
  Oid root = SlottedPage::DecodeOid(meta->data() + sizeof(magic));
  REACH_RETURN_IF_ERROR(pool_->UnpinPage(0, false));
  return root;
}

Status StorageManager::SetMetaRoot(const Oid& root) {
  REACH_ASSIGN_OR_RETURN(Page * meta, pool_->FetchPage(0));
  char buf[SlottedPage::kOidEncodedSize];
  SlottedPage::EncodeOid(root, buf);
  std::memcpy(meta->data() + sizeof(uint32_t), buf, sizeof(buf));
  REACH_RETURN_IF_ERROR(pool_->UnpinPage(0, /*dirty=*/true));
  return pool_->FlushPage(0);
}

}  // namespace reach
