// Write-ahead log. Every object mutation is logged as a physical
// before/after image, which makes redo and undo idempotent: recovery replays
// after-images of committed transactions and before-images of losers.
//
// Durability is tracked by a monotonic durable-LSN watermark. With group
// commit enabled (the default) a dedicated flusher thread performs the
// write+fsync for all concurrent committers: each committer appends its
// commit record, then blocks on WaitDurable(lsn) until the watermark passes
// its LSN, so N concurrent commits share one fsync (see docs/STORAGE.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_backend.h"

namespace reach {

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kPhysical = 2,  // insert/update/delete/forward, all as state transitions
  kCommit = 3,
  kAbort = 4,
  kCheckpoint = 5,
  // Durable event history (docs/EVENTS.md "Durability & recovery"). These
  // carry an opaque payload encoded by core/events/event_durability.h; the
  // envelope txn stays kNoTxn so data recovery's loser analysis never sees
  // an event record as an unfinished transaction.
  kEventOccurrence = 6,  // one cross-txn leaf occurrence, logged at Signal
  kEventCheckpoint = 7,  // compositor partial-state snapshot (replay floor)
  kEventTombstone = 8,   // consumption (completion fired) or expiry cutoff
};

/// Records that belong to the event history rather than data recovery.
/// Truncation preserves them (see StorageManager carryover).
inline bool IsEventRecord(WalRecordType type) {
  return type == WalRecordType::kEventOccurrence ||
         type == WalRecordType::kEventCheckpoint ||
         type == WalRecordType::kEventTombstone;
}

/// Cell state on a page: flag + generation + payload bytes. flag==0 (kFree)
/// means "no cell" (the payload must be empty then).
struct WalCellImage {
  uint16_t flag = 0;
  uint16_t generation = 0;
  std::string bytes;
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  Lsn lsn = kInvalidLsn;
  TxnId txn = kNoTxn;
  // kPhysical only:
  PageId page = kInvalidPageId;
  SlotId slot = 0;
  WalCellImage before;
  WalCellImage after;
  // Event records only: opaque body framed by the record envelope.
  std::string payload;
};

/// Group-commit policy knobs. Defaults come from the REACH_WAL environment
/// variable (grammar mirroring REACH_METRICS, entries separated by ',' or
/// ';'): "group=on|off", "max_batch_bytes=<N>", "max_batch_delay_us=<N>",
/// "adaptive[=on|off]". Bare "on"/"off" toggles group commit.
struct WalOptions {
  /// Commit piggybacking via the background flusher thread. Off = the
  /// classic inline path: every Flush() does its own write+fsync.
  bool group_commit = true;
  /// When committers arrive back-to-back (a flush request is already
  /// pending as the previous batch completes), the flusher may linger up to
  /// max_batch_delay_us for more joiners, but never past max_batch_bytes of
  /// buffered records. 0 delay = pure piggybacking: whatever accumulated
  /// while the previous fsync ran forms the next batch.
  size_t max_batch_bytes = 1u << 20;
  uint32_t max_batch_delay_us = 0;
  /// Drive the coalescing delay from the observed batch size instead of the
  /// fixed max_batch_delay_us: near-empty batches under sustained load grow
  /// the delay (more joiners per fsync), full batches shrink it back (no
  /// point delaying committers the fsync already coalesces). The current
  /// value is visible as the storage.wal.adaptive_delay_us gauge and via
  /// current_batch_delay_us(). max_batch_delay_us, when nonzero, caps the
  /// adaptive delay (default cap 200us).
  bool adaptive_delay = false;

  static WalOptions FromEnv();
  /// Parse a REACH_WAL spec string (exposed for tests; FromEnv caches).
  static WalOptions Parse(const char* spec);
};

class Wal {
 public:
  ~Wal();

  /// Open (creating if necessary) the log file at `path`. Starts the
  /// flusher thread when options.group_commit is set. `backend` selects the
  /// disk backend used for fused append+fsync submissions (see
  /// WriteAndSync); kDefault defers to REACH_STORAGE.
  static Result<std::unique_ptr<Wal>> Open(
      const std::string& path, const WalOptions& options = WalOptions::FromEnv(),
      DiskBackendKind backend = DiskBackendKind::kDefault);

  /// Append a record; assigns and returns its LSN. Buffered until flushed.
  Result<Lsn> Append(WalRecord record);

  /// Force everything appended so far to stable storage. With group commit
  /// this is WaitDurable(last appended LSN); without, an inline write+fsync.
  Status Flush();

  /// Block until every record with LSN <= lsn is on stable storage. A failed
  /// batch write/fsync fails every waiter of that batch with the same
  /// status; waiters that arrive afterwards trigger a retry.
  Status WaitDurable(Lsn lsn);

  /// Alias of WaitDurable for call sites that read better as a flush.
  Status FlushUpTo(Lsn lsn) { return WaitDurable(lsn); }

  /// Highest LSN known to be on stable storage (monotonic watermark).
  Lsn durable_lsn() const { return durable_lsn_.load(std::memory_order_acquire); }

  /// Read every record currently in the log (for recovery).
  Status ReadAll(std::vector<WalRecord>* out);

  /// Discard the log contents (after a checkpoint has made them redundant).
  Status Truncate();

  Lsn next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_;
  }

  /// Raise next_lsn to at least `floor`. The storage manager persists an LSN
  /// floor in the meta page before each truncation so LSNs stay monotonic
  /// across restarts — otherwise a fresh (truncated) log would restart at 1
  /// and page LSNs stamped in an earlier epoch would wrongly suppress redo.
  void EnsureNextLsnAtLeast(Lsn floor);

  /// Number of appends that have not yet reached the log file.
  size_t unflushed_records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffer_count_;
  }

  const WalOptions& options() const { return options_; }

  /// The coalescing delay the flusher would apply to the next back-to-back
  /// batch: the adaptive value when options().adaptive_delay is set, the
  /// fixed max_batch_delay_us otherwise.
  uint32_t current_batch_delay_us() const {
    return options_.adaptive_delay
               ? adaptive_delay_us_.load(std::memory_order_relaxed)
               : options_.max_batch_delay_us;
  }

  /// The disk backend's name ("posix", "async", "uring") — what fused
  /// appends actually route through after fallback resolution.
  const char* backend_name() const { return backend_->name(); }

 private:
  Wal(std::string path, int fd, WalOptions options,
      std::unique_ptr<DiskBackend> backend)
      : path_(std::move(path)),
        fd_(fd),
        options_(options),
        backend_(std::move(backend)) {}

  static void EncodeRecord(const WalRecord& rec, std::string* out);
  static bool DecodeRecord(const char* data, size_t len, size_t* consumed,
                           WalRecord* out);

  /// write(2) `data` (may be empty: fsync-only retry after a failed sync),
  /// then fsync. *wrote is set once the bytes reached the file — on a write
  /// failure the caller must requeue them. Called with mu_ held on the
  /// inline path and without it from the flusher (fd_ is immutable).
  Status WriteAndSync(const std::string& data, bool* wrote);

  void FlusherLoop();

  /// True when a waiter's target is not yet durable. Callers hold mu_.
  bool HasPendingWork() const {
    return !wait_targets_.empty() &&
           *wait_targets_.rbegin() > durable_lsn_.load(std::memory_order_relaxed);
  }

  std::string path_;
  int fd_;
  WalOptions options_;
  /// Disk backend for the flush path. Only consulted when it offers a fused
  /// append (io_uring linked write+fsync) and fault injection is idle;
  /// otherwise WriteAndSync keeps the classic write-then-fsync sequence with
  /// its wal.flush.{write,fsync} fault points.
  std::unique_ptr<DiskBackend> backend_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // committers -> flusher
  std::condition_variable durable_cv_;  // flusher -> committers
  std::thread flusher_;
  bool stop_ = false;
  /// Set while the flusher holds the fd without mu_ (its write/fsync);
  /// ReadAll/Truncate wait for it to clear before touching the file.
  bool io_in_flight_ = false;
  Lsn next_lsn_ = 1;
  std::string buffer_;  // encoded records not yet written to the file
  size_t buffer_count_ = 0;
  std::atomic<Lsn> durable_lsn_{0};
  /// Coalescing delay chosen by the adaptive policy (flusher writes, anyone
  /// reads). Starts at 0 = pure piggybacking until load proves otherwise.
  std::atomic<uint32_t> adaptive_delay_us_{0};
  /// Outstanding WaitDurable targets; the max element is the flusher's work
  /// signal (failed waiters remove themselves, so a persistent I/O error
  /// cannot spin the flusher).
  std::multiset<Lsn> wait_targets_;
  /// Batch-failure delivery: each failed attempt bumps the sequence number;
  /// a waiter whose LSN is covered by flush_fail_upto_ takes the status.
  uint64_t flush_fail_seq_ = 0;
  Status flush_fail_status_;
  Lsn flush_fail_upto_ = 0;
  /// Non-empty once a crash fault fired on the flusher thread: the simulated
  /// process death is re-thrown on the committer threads (see fault_registry.h
  /// — a crash escaping a background thread would terminate for real).
  std::string crash_point_;
};

}  // namespace reach
