// Write-ahead log. Every object mutation is logged as a physical
// before/after image, which makes redo and undo idempotent: recovery replays
// after-images of committed transactions and before-images of losers.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace reach {

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kPhysical = 2,  // insert/update/delete/forward, all as state transitions
  kCommit = 3,
  kAbort = 4,
  kCheckpoint = 5,
};

/// Cell state on a page: flag + generation + payload bytes. flag==0 (kFree)
/// means "no cell" (the payload must be empty then).
struct WalCellImage {
  uint16_t flag = 0;
  uint16_t generation = 0;
  std::string bytes;
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  Lsn lsn = kInvalidLsn;
  TxnId txn = kNoTxn;
  // kPhysical only:
  PageId page = kInvalidPageId;
  SlotId slot = 0;
  WalCellImage before;
  WalCellImage after;
};

class Wal {
 public:
  ~Wal();

  /// Open (creating if necessary) the log file at `path`.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path);

  /// Append a record; assigns and returns its LSN. Buffered until Flush.
  Result<Lsn> Append(WalRecord record);

  /// Force buffered records to stable storage (fsync).
  Status Flush();

  /// Read every record currently in the log (for recovery).
  Status ReadAll(std::vector<WalRecord>* out);

  /// Discard the log contents (after a checkpoint has made them redundant).
  Status Truncate();

  Lsn next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_;
  }

  /// Raise next_lsn to at least `floor`. The storage manager persists an LSN
  /// floor in the meta page before each truncation so LSNs stay monotonic
  /// across restarts — otherwise a fresh (truncated) log would restart at 1
  /// and page LSNs stamped in an earlier epoch would wrongly suppress redo.
  void EnsureNextLsnAtLeast(Lsn floor) {
    std::lock_guard<std::mutex> lock(mu_);
    if (next_lsn_ < floor) next_lsn_ = floor;
  }

  /// Number of appends that have not yet been fsynced.
  size_t unflushed_records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffer_count_;
  }

 private:
  Wal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  static void EncodeRecord(const WalRecord& rec, std::string* out);
  static bool DecodeRecord(const char* data, size_t len, size_t* consumed,
                           WalRecord* out);

  std::string path_;
  int fd_;
  mutable std::mutex mu_;
  Lsn next_lsn_ = 1;
  std::string buffer_;
  size_t buffer_count_ = 0;
};

}  // namespace reach
