#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace {

struct DiskMetrics {
  obs::Histogram* batch_pages;
  obs::Histogram* coalesced_runs;
  obs::Gauge* submit_depth;
  obs::Histogram* complete_ns;

  static DiskMetrics& Instance() {
    static DiskMetrics metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return DiskMetrics{reg.histogram(obs::kDiskBatchPages),
                         reg.histogram(obs::kDiskCoalescedRuns),
                         reg.gauge(obs::kDiskSubmitDepth),
                         reg.histogram(obs::kDiskCompleteNs)};
    }();
    return metrics;
  }
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(const std::string& path,
                                                       DiskBackendKind kind) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek " + path + ": " + std::strerror(errno));
  }
  if (size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::Corruption(path + ": size not a multiple of page size");
  }
  auto pages = static_cast<PageId>(size / static_cast<off_t>(kPageSize));
  return std::unique_ptr<DiskManager>(
      new DiskManager(path, fd, pages, DiskBackend::Create(kind)));
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  REACH_FAULT_POINT(faults::kDiskReadPage);
  if (page_id >= num_pages()) {
    return Status::OutOfRange("read past end: page " +
                              std::to_string(page_id));
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pread page " + std::to_string(page_id));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  REACH_FAULT_POINT(faults::kDiskWritePage);
  if (page_id >= num_pages()) {
    return Status::OutOfRange("write past end: page " +
                              std::to_string(page_id));
  }
  ssize_t n = ::pwrite(fd_, data, kPageSize,
                       static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pwrite page " + std::to_string(page_id));
  }
  return Status::OK();
}

Status DiskManager::ReadPages(const std::vector<PageReadRequest>& batch) {
  // submit/complete fire unconditionally — even for empty batches — so every
  // readahead pass crosses both points regardless of backend or pool state.
  REACH_FAULT_POINT(faults::kDiskBackendSubmit);
  Status st;
  if (!batch.empty()) {
    const PageId limit = num_pages();
    for (const PageReadRequest& req : batch) {
      if (req.page >= limit) {
        return Status::OutOfRange("read past end: page " +
                                  std::to_string(req.page));
      }
    }
    DiskMetrics& metrics = DiskMetrics::Instance();
    metrics.batch_pages->Record(batch.size());
    metrics.submit_depth->Set(static_cast<int64_t>(batch.size()));
    const uint64_t start = NowNs();
    st = backend_->ReadPages(fd_, batch);
    metrics.complete_ns->Record(NowNs() - start);
  }
  REACH_FAULT_POINT(faults::kDiskBackendComplete);
  return st;
}

Status DiskManager::WritePages(
    std::vector<std::pair<PageId, const char*>> batch) {
  REACH_FAULT_POINT(faults::kDiskBackendSubmit);
  Status st;
  if (!batch.empty()) {
    const PageId limit = num_pages();
    for (const auto& [page, data] : batch) {
      if (page >= limit) {
        return Status::OutOfRange("write past end: page " +
                                  std::to_string(page));
      }
    }
    DiskMetrics& metrics = DiskMetrics::Instance();
    metrics.batch_pages->Record(batch.size());
    metrics.submit_depth->Set(static_cast<int64_t>(batch.size()));
    std::vector<PageWriteRun> runs = BuildWriteRuns(std::move(batch));
    metrics.coalesced_runs->Record(runs.size());
    const uint64_t start = NowNs();
    st = backend_->WriteRuns(fd_, runs);
    metrics.complete_ns->Record(NowNs() - start);
  }
  REACH_FAULT_POINT(faults::kDiskBackendComplete);
  return st;
}

Result<PageId> DiskManager::AllocatePage() {
  REACH_FAULT_POINT(faults::kDiskAllocatePage);
  std::lock_guard<std::mutex> lock(extend_mu_);
  PageId id = num_pages_.load(std::memory_order_relaxed);
  char zeros[kPageSize] = {};
  ssize_t n =
      ::pwrite(fd_, zeros, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("extend to page " + std::to_string(id));
  }
  num_pages_.store(id + 1, std::memory_order_release);
  return id;
}

Status DiskManager::Sync() {
  REACH_FAULT_POINT(faults::kDiskSync);
  if (::fsync(fd_) != 0) {
    return Status::IoError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace reach
