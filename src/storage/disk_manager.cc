#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek " + path + ": " + std::strerror(errno));
  }
  if (size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::Corruption(path + ": size not a multiple of page size");
  }
  auto pages = static_cast<PageId>(size / static_cast<off_t>(kPageSize));
  return std::unique_ptr<DiskManager>(new DiskManager(path, fd, pages));
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  REACH_FAULT_POINT(faults::kDiskReadPage);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (page_id >= num_pages_) {
      return Status::OutOfRange("read past end: page " +
                                std::to_string(page_id));
    }
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pread page " + std::to_string(page_id));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  REACH_FAULT_POINT(faults::kDiskWritePage);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (page_id >= num_pages_) {
      return Status::OutOfRange("write past end: page " +
                                std::to_string(page_id));
    }
  }
  ssize_t n = ::pwrite(fd_, data, kPageSize,
                       static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pwrite page " + std::to_string(page_id));
  }
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  REACH_FAULT_POINT(faults::kDiskAllocatePage);
  std::lock_guard<std::mutex> lock(mu_);
  PageId id = num_pages_;
  char zeros[kPageSize] = {};
  ssize_t n =
      ::pwrite(fd_, zeros, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("extend to page " + std::to_string(id));
  }
  ++num_pages_;
  return id;
}

Status DiskManager::Sync() {
  REACH_FAULT_POINT(faults::kDiskSync);
  if (::fsync(fd_) != 0) {
    return Status::IoError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace reach
