// SentryEvent: what a sentry announces on the meta-architecture bus. Any
// operation performed in the context of the application — method calls,
// state changes, persistence operations, transaction boundaries — becomes a
// SentryEvent, and policy managers (persistence, indexing, change, and the
// REACH rule subsystem) extend behaviour by reacting to them.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "oodb/value.h"

namespace reach {

enum class SentryKind : uint8_t {
  kMethodBefore = 0,
  kMethodAfter = 1,
  kStateChange = 2,  // attribute written; args = {old value, new value}
  kPersist = 3,      // object made persistent
  kFetch = 4,        // object dereferenced / faulted in
  kDelete = 5,       // object deleted
  kTxnBegin = 6,
  kTxnCommit = 7,
  kTxnAbort = 8,
};

inline constexpr int kNumSentryKinds = 9;

const char* SentryKindName(SentryKind kind);

struct SentryEvent {
  SentryKind kind = SentryKind::kMethodAfter;
  std::string class_name;  // class of the receiver (empty for txn events)
  std::string member;      // method or attribute name
  Oid oid;                 // receiver (invalid for transient/txn events)
  TxnId txn = kNoTxn;      // transaction in which the event was raised
  Timestamp timestamp = 0;
  /// Steady-clock nanoseconds at the detection point, stamped only while
  /// metrics are enabled (0 = unmeasured). Origin of the observability
  /// pipeline spans (obs/pipeline_span.h); distinct from `timestamp`, which
  /// is the logical event time used by the algebra.
  uint64_t detect_ns = 0;
  std::vector<Value> args;  // method args / {old, new} for state changes
  Value result;             // return value (kMethodAfter only)

  std::string ToString() const;
};

}  // namespace reach
