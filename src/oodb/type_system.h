// Type system: class descriptors with single inheritance, attribute and
// method metadata, and the method implementation registry. This is the data
// dictionary's type half — Open OODB uses the host language's type system;
// REACH mirrors it dynamically so sentries, rules, and queries can reason
// about classes at run time.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "oodb/value.h"

namespace reach {

class DbObject;
class Session;

struct AttributeDescriptor {
  std::string name;
  ValueType type = ValueType::kNull;
  Value default_value;
};

/// A method body: runs against an object inside a session (so it can read
/// and write other persistent objects transactionally).
using MethodImpl =
    std::function<Result<Value>(Session&, DbObject&, const std::vector<Value>&)>;

struct MethodDescriptor {
  std::string name;
  MethodImpl impl;
};

class ClassDescriptor {
 public:
  ClassDescriptor(std::string name, std::string parent)
      : name_(std::move(name)), parent_(std::move(parent)) {}

  const std::string& name() const { return name_; }
  const std::string& parent() const { return parent_; }

  void AddAttribute(AttributeDescriptor attr) {
    attributes_.push_back(std::move(attr));
  }
  void AddMethod(MethodDescriptor method) {
    methods_.push_back(std::move(method));
  }

  const std::vector<AttributeDescriptor>& attributes() const {
    return attributes_;
  }
  const std::vector<MethodDescriptor>& methods() const { return methods_; }

  const AttributeDescriptor* FindAttribute(const std::string& attr) const {
    for (const auto& a : attributes_) {
      if (a.name == attr) return &a;
    }
    return nullptr;
  }
  const MethodDescriptor* FindMethod(const std::string& method) const {
    for (const auto& m : methods_) {
      if (m.name == method) return &m;
    }
    return nullptr;
  }

 private:
  std::string name_;
  std::string parent_;  // empty for root classes
  std::vector<AttributeDescriptor> attributes_;
  std::vector<MethodDescriptor> methods_;
};

/// Builder used when registering a class.
class ClassBuilder {
 public:
  ClassBuilder(std::string name, std::string parent = "")
      : desc_(std::make_unique<ClassDescriptor>(std::move(name),
                                                std::move(parent))) {}

  ClassBuilder& Attribute(std::string name, ValueType type,
                          Value default_value = Value()) {
    desc_->AddAttribute({std::move(name), type, std::move(default_value)});
    return *this;
  }
  ClassBuilder& Method(std::string name, MethodImpl impl) {
    desc_->AddMethod({std::move(name), std::move(impl)});
    return *this;
  }

  std::unique_ptr<ClassDescriptor> Build() { return std::move(desc_); }

 private:
  std::unique_ptr<ClassDescriptor> desc_;
};

class TypeSystem {
 public:
  /// Register a class; its parent (if named) must already exist.
  Status RegisterClass(std::unique_ptr<ClassDescriptor> desc);

  const ClassDescriptor* Find(const std::string& name) const;

  bool IsRegistered(const std::string& name) const {
    return Find(name) != nullptr;
  }

  /// True if `cls` is `ancestor` or transitively derives from it.
  bool IsSubclassOf(const std::string& cls, const std::string& ancestor) const;

  /// Attribute lookup walking the inheritance chain.
  const AttributeDescriptor* ResolveAttribute(const std::string& cls,
                                              const std::string& attr) const;

  /// Virtual dispatch: most-derived method implementation.
  const MethodDescriptor* ResolveMethod(const std::string& cls,
                                        const std::string& method) const;

  /// All attributes of `cls` including inherited ones (base-first).
  std::vector<const AttributeDescriptor*> AllAttributes(
      const std::string& cls) const;

  /// Registered class names, including `cls` and every subclass of it.
  std::vector<std::string> SelfAndSubclasses(const std::string& cls) const;

  std::vector<std::string> AllClassNames() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<ClassDescriptor>> classes_;
};

}  // namespace reach
