// DataDictionary: the globally known repository of names. Maps external
// names ("Block A") to OIDs; persisted as a single root object whose OID
// lives in the storage meta page. Extent anchors and other system objects
// are registered here under reserved "__" names.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/storage_manager.h"

namespace reach {

class DataDictionary {
 public:
  explicit DataDictionary(StorageManager* storage) : storage_(storage) {}

  /// Load (or create) the dictionary root object. Runs in its own
  /// bootstrap transaction id supplied by the caller.
  Status Bootstrap(TxnId boot_txn);

  /// Bind `name` to `oid` (fails if already bound).
  Status Bind(TxnId txn, const std::string& name, const Oid& oid);

  /// Rebind `name` (inserts if absent).
  Status Rebind(TxnId txn, const std::string& name, const Oid& oid);

  Result<Oid> Lookup(const std::string& name);

  Status Unbind(TxnId txn, const std::string& name);

  Result<std::vector<std::string>> Names();

 private:
  /// Read and parse the dictionary object.
  Result<std::vector<std::pair<std::string, Oid>>> Load();
  Status Store(TxnId txn,
               const std::vector<std::pair<std::string, Oid>>& entries);

  StorageManager* storage_;
  std::mutex mu_;
  Oid root_;
};

}  // namespace reach
