#include "oodb/session.h"

#include <algorithm>

#include "obs/metrics.h"

namespace reach {

Session::~Session() { (void)AbortAll(); }

Status Session::Begin() {
  REACH_ASSIGN_OR_RETURN(TxnId txn, db_->txns()->Begin(current_txn()));
  txn_stack_.push_back(txn);
  return Status::OK();
}

Status Session::Commit() {
  REACH_RETURN_IF_ERROR(RequireTxn());
  TxnId txn = txn_stack_.back();
  txn_stack_.pop_back();
  Status st = db_->txns()->Commit(txn);
  // Failed commit implies rollback. Most failures (dependency misses,
  // pre-commit hooks) abort inside the transaction manager, but an early
  // failure (e.g. a log I/O error before the state change) can leave the
  // transaction active and still holding locks — roll it back here rather
  // than leak a lock-holding orphan that blocks later transactions.
  if (!st.ok() && db_->txns()->IsActive(txn)) {
    Status abort_st = db_->txns()->Abort(txn);
    (void)abort_st;
  }
  return st;
}

Status Session::Abort() {
  REACH_RETURN_IF_ERROR(RequireTxn());
  TxnId txn = txn_stack_.back();
  txn_stack_.pop_back();
  return db_->txns()->Abort(txn);
}

Status Session::AbortAll() {
  Status first = Status::OK();
  while (!txn_stack_.empty()) {
    TxnId txn = txn_stack_.back();
    txn_stack_.pop_back();
    if (db_->txns()->IsActive(txn)) {
      Status st = db_->txns()->Abort(txn);
      if (first.ok() && !st.ok()) first = st;
    }
  }
  return first;
}

Status Session::InTxn(const std::function<Status(Session&)>& fn) {
  REACH_RETURN_IF_ERROR(Begin());
  Status st = fn(*this);
  if (!st.ok()) {
    Status abort_st = Abort();
    (void)abort_st;
    return st;
  }
  return Commit();
}

Result<DbObject> Session::New(const std::string& class_name) {
  return DbObject::Create(*db_->types(), class_name);
}

Result<Oid> Session::Persist(DbObject* obj) {
  REACH_RETURN_IF_ERROR(RequireTxn());
  return db_->persistence()->Persist(current_txn(), obj);
}

Result<Oid> Session::PersistNew(
    const std::string& class_name,
    std::vector<std::pair<std::string, Value>> attrs) {
  REACH_ASSIGN_OR_RETURN(DbObject obj, New(class_name));
  for (auto& [name, value] : attrs) {
    if (db_->types()->ResolveAttribute(class_name, name) == nullptr) {
      return Status::NotFound("attribute " + class_name + "." + name);
    }
    obj.Set(name, std::move(value));
  }
  return Persist(&obj);
}

Result<std::shared_ptr<DbObject>> Session::Fetch(const Oid& oid) {
  REACH_RETURN_IF_ERROR(RequireTxn());
  return db_->persistence()->Fetch(current_txn(), oid);
}

Result<std::shared_ptr<DbObject>> Session::FetchByName(
    const std::string& name) {
  REACH_ASSIGN_OR_RETURN(Oid oid, Lookup(name));
  return Fetch(oid);
}

Status Session::Delete(const Oid& oid) {
  REACH_RETURN_IF_ERROR(RequireTxn());
  return db_->persistence()->Delete(current_txn(), oid);
}

Status Session::Bind(const std::string& name, const Oid& oid) {
  REACH_RETURN_IF_ERROR(RequireTxn());
  return db_->dictionary()->Bind(current_txn(), name, oid);
}

Result<Oid> Session::Lookup(const std::string& name) {
  return db_->dictionary()->Lookup(name);
}

Status Session::Unbind(const std::string& name) {
  REACH_RETURN_IF_ERROR(RequireTxn());
  return db_->dictionary()->Unbind(current_txn(), name);
}

Status Session::SetAttr(const Oid& oid, const std::string& attr,
                        Value value) {
  REACH_RETURN_IF_ERROR(RequireTxn());
  REACH_ASSIGN_OR_RETURN(std::shared_ptr<DbObject> obj, Fetch(oid));
  if (db_->types()->ResolveAttribute(obj->class_name(), attr) == nullptr) {
    return Status::NotFound("attribute " + obj->class_name() + "." + attr);
  }
  Value old = obj->Get(attr);
  // Write-through under an X lock; the cache copy is replaced atomically.
  DbObject updated = *obj;
  updated.Set(attr, value);
  REACH_RETURN_IF_ERROR(db_->persistence()->Write(current_txn(), updated));

  if (db_->bus()->Monitored(SentryKind::kStateChange, obj->class_name(),
                            attr)) {
    SentryEvent ev;
    ev.detect_ns = obs::NowNanosIfEnabled();
    ev.kind = SentryKind::kStateChange;
    ev.class_name = obj->class_name();
    ev.member = attr;
    ev.oid = oid;
    ev.txn = current_txn();
    ev.timestamp = db_->clock()->Now();
    ev.args = {std::move(old), std::move(value)};
    db_->bus()->Announce(ev);
  }
  return Status::OK();
}

Result<Value> Session::GetAttr(const Oid& oid, const std::string& attr) {
  REACH_ASSIGN_OR_RETURN(std::shared_ptr<DbObject> obj, Fetch(oid));
  return obj->Get(attr);
}

Result<Value> Session::DoInvoke(DbObject* obj, const std::string& method,
                                std::vector<Value>* args) {
  const MethodDescriptor* m =
      db_->types()->ResolveMethod(obj->class_name(), method);
  if (m == nullptr) {
    return Status::NotFound("method " + obj->class_name() + "::" + method);
  }
  bool before = db_->bus()->Monitored(SentryKind::kMethodBefore,
                                      obj->class_name(), method);
  bool after = db_->bus()->Monitored(SentryKind::kMethodAfter,
                                     obj->class_name(), method);
  SentryEvent ev;
  if (before || after) {
    ev.detect_ns = obs::NowNanosIfEnabled();
    ev.class_name = obj->class_name();
    ev.member = method;
    ev.oid = obj->oid();
    ev.txn = current_txn();
    ev.args = *args;
  }
  if (before) {
    ev.kind = SentryKind::kMethodBefore;
    ev.timestamp = db_->clock()->Now();
    db_->bus()->Announce(ev);
  }
  REACH_ASSIGN_OR_RETURN(Value result, m->impl(*this, *obj, *args));
  if (after) {
    ev.kind = SentryKind::kMethodAfter;
    ev.timestamp = db_->clock()->Now();
    // Detection of the after-event is now, not before the method body ran.
    ev.detect_ns = obs::NowNanosIfEnabled();
    ev.result = result;
    db_->bus()->Announce(ev);
  }
  return result;
}

Result<Value> Session::Invoke(const Oid& oid, const std::string& method,
                              std::vector<Value> args) {
  REACH_RETURN_IF_ERROR(RequireTxn());
  REACH_ASSIGN_OR_RETURN(std::shared_ptr<DbObject> obj, Fetch(oid));
  // Work on a copy so method bodies mutate through SetAttr (sentried), not
  // by aliasing the shared cache entry.
  DbObject copy = *obj;
  return DoInvoke(&copy, method, &args);
}

Result<Value> Session::Invoke(DbObject* obj, const std::string& method,
                              std::vector<Value> args) {
  return DoInvoke(obj, method, &args);
}

Result<std::vector<Oid>> Session::Extent(const std::string& class_name,
                                         bool include_subclasses) {
  REACH_RETURN_IF_ERROR(RequireTxn());
  std::vector<Oid> out;
  std::vector<std::string> classes =
      include_subclasses ? db_->types()->SelfAndSubclasses(class_name)
                         : std::vector<std::string>{class_name};
  for (const std::string& cls : classes) {
    REACH_ASSIGN_OR_RETURN(std::vector<Oid> part,
                           db_->persistence()->Extent(current_txn(), cls));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Result<Session::ExtentScan> Session::ExtentMorsels(
    const std::string& class_name, size_t morsel_pages,
    bool include_subclasses) {
  if (morsel_pages == 0) morsel_pages = 1;
  ExtentScan scan;
  REACH_ASSIGN_OR_RETURN(scan.oids, Extent(class_name, include_subclasses));
  // Canonical scan order: Oid's (page, slot, generation) ordering groups
  // each home page's objects into one contiguous run.
  std::sort(scan.oids.begin(), scan.oids.end());
  ExtentMorsel cur;
  for (size_t i = 0; i < scan.oids.size(); ++i) {
    PageId page = scan.oids[i].page;
    bool new_page = cur.pages.empty() || cur.pages.back() != page;
    if (new_page && cur.pages.size() == morsel_pages) {
      cur.end = i;
      scan.morsels.push_back(std::move(cur));
      cur = ExtentMorsel{};
      cur.begin = i;
    }
    if (cur.pages.empty() || cur.pages.back() != page) {
      cur.pages.push_back(page);
    }
  }
  if (!cur.pages.empty()) {
    cur.end = scan.oids.size();
    scan.morsels.push_back(std::move(cur));
  }
  return scan;
}

Status Session::FetchMany(const std::vector<Oid>& oids,
                          std::vector<std::shared_ptr<DbObject>>* out) {
  REACH_RETURN_IF_ERROR(RequireTxn());
  return db_->persistence()->FetchMany(current_txn(), oids, out);
}

}  // namespace reach
