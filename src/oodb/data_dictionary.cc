#include "oodb/data_dictionary.h"

#include <cstring>

#include "storage/slotted_page.h"

namespace reach {

namespace {
void PutString(std::string* out, const std::string& s) {
  uint32_t len = static_cast<uint32_t>(s.size());
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(s);
}

bool GetString(const std::string& data, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (*pos + sizeof(len) > data.size()) return false;
  std::memcpy(&len, data.data() + *pos, sizeof(len));
  *pos += sizeof(len);
  if (*pos + len > data.size()) return false;
  s->assign(data.data() + *pos, len);
  *pos += len;
  return true;
}
}  // namespace

Status DataDictionary::Bootstrap(TxnId boot_txn) {
  std::lock_guard<std::mutex> lock(mu_);
  REACH_ASSIGN_OR_RETURN(Oid root, storage_->GetMetaRoot());
  if (root.valid()) {
    root_ = root;
    return Status::OK();
  }
  // First open: create an empty dictionary object.
  std::string bytes;
  uint32_t count = 0;
  bytes.append(reinterpret_cast<const char*>(&count), sizeof(count));
  REACH_ASSIGN_OR_RETURN(root_,
                         storage_->objects()->Insert(boot_txn, bytes));
  return storage_->SetMetaRoot(root_);
}

Result<std::vector<std::pair<std::string, Oid>>> DataDictionary::Load() {
  REACH_ASSIGN_OR_RETURN(std::string bytes, storage_->objects()->Read(root_));
  std::vector<std::pair<std::string, Oid>> entries;
  size_t pos = 0;
  uint32_t count = 0;
  if (bytes.size() < sizeof(count)) {
    return Status::Corruption("dictionary: truncated header");
  }
  std::memcpy(&count, bytes.data(), sizeof(count));
  pos += sizeof(count);
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!GetString(bytes, &pos, &name)) {
      return Status::Corruption("dictionary: truncated name");
    }
    if (pos + SlottedPage::kOidEncodedSize > bytes.size()) {
      return Status::Corruption("dictionary: truncated oid");
    }
    Oid oid = SlottedPage::DecodeOid(bytes.data() + pos);
    pos += SlottedPage::kOidEncodedSize;
    entries.emplace_back(std::move(name), oid);
  }
  return entries;
}

Status DataDictionary::Store(
    TxnId txn, const std::vector<std::pair<std::string, Oid>>& entries) {
  std::string bytes;
  uint32_t count = static_cast<uint32_t>(entries.size());
  bytes.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, oid] : entries) {
    PutString(&bytes, name);
    char buf[SlottedPage::kOidEncodedSize];
    SlottedPage::EncodeOid(oid, buf);
    bytes.append(buf, sizeof(buf));
  }
  return storage_->objects()->Update(txn, root_, bytes);
}

Status DataDictionary::Bind(TxnId txn, const std::string& name,
                            const Oid& oid) {
  std::lock_guard<std::mutex> lock(mu_);
  REACH_ASSIGN_OR_RETURN(auto entries, Load());
  for (const auto& [n, _] : entries) {
    if (n == name) return Status::AlreadyExists("name " + name);
  }
  entries.emplace_back(name, oid);
  return Store(txn, entries);
}

Status DataDictionary::Rebind(TxnId txn, const std::string& name,
                              const Oid& oid) {
  std::lock_guard<std::mutex> lock(mu_);
  REACH_ASSIGN_OR_RETURN(auto entries, Load());
  for (auto& [n, o] : entries) {
    if (n == name) {
      o = oid;
      return Store(txn, entries);
    }
  }
  entries.emplace_back(name, oid);
  return Store(txn, entries);
}

Result<Oid> DataDictionary::Lookup(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  REACH_ASSIGN_OR_RETURN(auto entries, Load());
  for (const auto& [n, oid] : entries) {
    if (n == name) return oid;
  }
  return Status::NotFound("name " + name);
}

Status DataDictionary::Unbind(TxnId txn, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  REACH_ASSIGN_OR_RETURN(auto entries, Load());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].first == name) {
      entries.erase(entries.begin() + i);
      return Store(txn, entries);
    }
  }
  return Status::NotFound("name " + name);
}

Result<std::vector<std::string>> DataDictionary::Names() {
  std::lock_guard<std::mutex> lock(mu_);
  REACH_ASSIGN_OR_RETURN(auto entries, Load());
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const auto& [n, _] : entries) names.push_back(n);
  return names;
}

}  // namespace reach
