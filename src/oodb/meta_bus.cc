#include "oodb/meta_bus.h"

#include <algorithm>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace reach {

namespace {

struct BusMetrics {
  obs::Counter* useful;
  obs::Counter* useless;

  static const BusMetrics& Get() {
    static const BusMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return BusMetrics{reg.counter(obs::kBusAnnounceUseful),
                        reg.counter(obs::kBusAnnounceUseless)};
    }();
    return m;
  }
};

}  // namespace

const char* SentryKindName(SentryKind kind) {
  switch (kind) {
    case SentryKind::kMethodBefore: return "method-before";
    case SentryKind::kMethodAfter: return "method-after";
    case SentryKind::kStateChange: return "state-change";
    case SentryKind::kPersist: return "persist";
    case SentryKind::kFetch: return "fetch";
    case SentryKind::kDelete: return "delete";
    case SentryKind::kTxnBegin: return "txn-begin";
    case SentryKind::kTxnCommit: return "txn-commit";
    case SentryKind::kTxnAbort: return "txn-abort";
  }
  return "?";
}

std::string SentryEvent::ToString() const {
  std::string out = SentryKindName(kind);
  if (!class_name.empty()) {
    out += " " + class_name;
    if (!member.empty()) out += "::" + member;
  }
  if (oid.valid()) out += " on " + oid.ToString();
  if (txn != kNoTxn) out += " in txn " + std::to_string(txn);
  return out;
}

void MetaBus::Subscribe(PolicyManager* pm, SentryKind kind,
                        const std::string& class_name,
                        const std::string& member) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t k = static_cast<size_t>(kind);
  subs_[k].push_back({pm, class_name, member});
  if (class_name.empty() || member.empty()) {
    wildcard_[k] = true;
  } else {
    exact_[k].insert(class_name + "::" + member);
  }
}

void MetaBus::Unsubscribe(PolicyManager* pm) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t k = 0; k < subs_.size(); ++k) {
    auto& vec = subs_[k];
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [pm](const Subscription& s) {
                               return s.pm == pm;
                             }),
              vec.end());
    // Rebuild the interest tables for this kind.
    wildcard_[k] = false;
    exact_[k].clear();
    for (const Subscription& s : vec) {
      if (s.class_name.empty() || s.member.empty()) {
        wildcard_[k] = true;
      } else {
        exact_[k].insert(s.class_name + "::" + s.member);
      }
    }
  }
}

bool MetaBus::Monitored(SentryKind kind, const std::string& class_name,
                        const std::string& member) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t k = static_cast<size_t>(kind);
  if (wildcard_[k]) return true;
  if (exact_[k].empty()) return false;
  // Heterogeneous probe: no "<class>::<member>" concatenation (and no
  // allocation) on this per-sentried-call path.
  return exact_[k].find(InterestKey{class_name, member}) != exact_[k].end();
}

size_t MetaBus::Announce(const SentryEvent& event) {
  std::vector<PolicyManager*> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Subscription& sub : subs_[static_cast<size_t>(event.kind)]) {
      if (MatchesFilter(sub, event)) targets.push_back(sub.pm);
    }
  }
  if (targets.empty()) {
    useless_.fetch_add(1, std::memory_order_relaxed);
    BusMetrics::Get().useless->Inc();
    return 0;
  }
  useful_.fetch_add(1, std::memory_order_relaxed);
  BusMetrics::Get().useful->Inc();
  for (PolicyManager* pm : targets) pm->OnEvent(event);
  return targets.size();
}

std::vector<std::string> MetaBus::PolicyManagerNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& vec : subs_) {
    for (const Subscription& sub : vec) {
      std::string n = sub.pm->name();
      if (std::find(names.begin(), names.end(), n) == names.end()) {
        names.push_back(n);
      }
    }
  }
  return names;
}

}  // namespace reach
