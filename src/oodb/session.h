// Session: the application's handle onto a Database. Carries the current
// transaction stack (Begin inside an active transaction starts a nested
// subtransaction) and is the implicitly sentried path for object access:
// attribute writes raise state-change events and method invocations raise
// method events on the meta bus.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "oodb/database.h"
#include "oodb/db_object.h"

namespace reach {

class Session {
 public:
  explicit Session(Database* db) : db_(db) {}
  ~Session();

  Database* db() { return db_; }

  // -- Transactions ------------------------------------------------------

  /// Begin a transaction; nested if one is already active on this session.
  Status Begin();
  /// Commit the innermost active transaction.
  Status Commit();
  /// Abort the innermost active transaction.
  Status Abort();
  /// Abort everything on the stack (also run by the destructor).
  Status AbortAll();

  TxnId current_txn() const {
    return txn_stack_.empty() ? kNoTxn : txn_stack_.back();
  }
  size_t txn_depth() const { return txn_stack_.size(); }

  /// Run `fn` in its own (sub)transaction: commit on OK, abort on error.
  Status InTxn(const std::function<Status(Session&)>& fn);

  // -- Objects -----------------------------------------------------------

  /// Create a transient object of `class_name` with default attributes.
  Result<DbObject> New(const std::string& class_name);

  /// Make `obj` persistent; returns its new OID.
  Result<Oid> Persist(DbObject* obj);

  /// Create + persist in one step.
  Result<Oid> PersistNew(const std::string& class_name,
                         std::vector<std::pair<std::string, Value>> attrs);

  Result<std::shared_ptr<DbObject>> Fetch(const Oid& oid);
  Result<std::shared_ptr<DbObject>> FetchByName(const std::string& name);

  Status Delete(const Oid& oid);

  /// Bind / resolve dictionary names.
  Status Bind(const std::string& name, const Oid& oid);
  Result<Oid> Lookup(const std::string& name);
  Status Unbind(const std::string& name);

  // -- Sentried attribute access -----------------------------------------

  /// Write an attribute (write-through). Raises a state-change event with
  /// {old, new} parameters.
  Status SetAttr(const Oid& oid, const std::string& attr, Value value);

  Result<Value> GetAttr(const Oid& oid, const std::string& attr);

  // -- Sentried method invocation ----------------------------------------

  /// Invoke a method on a persistent object. Announces method-before, runs
  /// the most-derived implementation, announces method-after (with the
  /// result). Immediate rules run inside the announcement, so this call
  /// returns only after the go-ahead — the §6.4 semantics.
  Result<Value> Invoke(const Oid& oid, const std::string& method,
                       std::vector<Value> args = {});

  /// Invoke on a transient object.
  Result<Value> Invoke(DbObject* obj, const std::string& method,
                       std::vector<Value> args = {});

  /// Extent of `class_name` including subclasses.
  Result<std::vector<Oid>> Extent(const std::string& class_name,
                                  bool include_subclasses = true);

  /// One page-aligned partition of an extent scan: `pages` are the distinct
  /// home pages (ascending, at most the morsel size), [begin, end) the
  /// slice of ExtentScan::oids whose objects live on them.
  struct ExtentMorsel {
    std::vector<PageId> pages;
    size_t begin = 0;
    size_t end = 0;
  };

  /// An extent in canonical scan order — OIDs sorted by (page, slot,
  /// generation) — partitioned into morsels of at most `morsel_pages`
  /// distinct home pages each. The canonical order makes morsel boundaries
  /// (and thus parallel query merges) independent of extent-chunk layout.
  struct ExtentScan {
    std::vector<Oid> oids;
    std::vector<ExtentMorsel> morsels;
  };

  Result<ExtentScan> ExtentMorsels(const std::string& class_name,
                                   size_t morsel_pages,
                                   bool include_subclasses = true);

  /// Batch Fetch in input order (see PersistencePm::FetchMany). Safe to call
  /// from parallel query workers while the session's transaction stack is
  /// stable.
  Status FetchMany(const std::vector<Oid>& oids,
                   std::vector<std::shared_ptr<DbObject>>* out);

  // -- Engine-internal transaction adoption --------------------------------

  /// Push an existing transaction onto this session's stack without
  /// beginning a new one. Used by the rule engine to run rule bodies
  /// inside subtransactions it manages itself.
  void AdoptTxn(TxnId txn) { txn_stack_.push_back(txn); }

  /// Pop the innermost transaction without committing or aborting it.
  TxnId ReleaseTxn() {
    TxnId txn = current_txn();
    if (!txn_stack_.empty()) txn_stack_.pop_back();
    return txn;
  }

 private:
  Result<Value> DoInvoke(DbObject* obj, const std::string& method,
                         std::vector<Value>* args);

  Status RequireTxn() const {
    return txn_stack_.empty()
               ? Status::FailedPrecondition("no active transaction")
               : Status::OK();
  }

  Database* db_;
  std::vector<TxnId> txn_stack_;
};

}  // namespace reach
