// Value: the dynamic attribute/parameter type of the REACH object model.
// Attribute values, method arguments, and event parameters are Values, so
// rules and queries can inspect them without compile-time knowledge of the
// application's classes.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace reach {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  kRef = 5,   // reference to a persistent object
  kList = 6,
};

class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}                       // NOLINT
  Value(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(int64_t v) : data_(v) {}                    // NOLINT
  Value(double v) : data_(v) {}                     // NOLINT
  Value(const char* s) : data_(std::string(s)) {}   // NOLINT
  Value(std::string s) : data_(std::move(s)) {}     // NOLINT
  Value(Oid oid) : data_(oid) {}                    // NOLINT
  Value(std::vector<Value> list) : data_(std::move(list)) {}  // NOLINT

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_ref() const { return type() == ValueType::kRef; }
  bool is_list() const { return type() == ValueType::kList; }
  /// Int or double.
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  Oid as_ref() const { return std::get<Oid>(data_); }
  const std::vector<Value>& as_list() const {
    return std::get<std::vector<Value>>(data_);
  }
  std::vector<Value>& as_list() { return std::get<std::vector<Value>>(data_); }

  /// Numeric value widened to double (ints convert); 0.0 for non-numerics.
  double AsNumber() const {
    if (is_int()) return static_cast<double>(as_int());
    if (is_double()) return as_double();
    return 0.0;
  }

  /// Structural equality (int/double compare numerically).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Ordering for ORDER BY and comparison predicates. Values of different
  /// non-numeric types compare by type tag.
  std::partial_ordering operator<=>(const Value& other) const;

  /// Binary encoding appended to `out` (see Decode).
  void Encode(std::string* out) const;

  /// Decode one value from data[*pos...]; advances *pos.
  static Result<Value> Decode(const std::string& data, size_t* pos);

  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, Oid,
               std::vector<Value>>
      data_;
};

}  // namespace reach
