#include "oodb/type_system.h"

namespace reach {

Status TypeSystem::RegisterClass(std::unique_ptr<ClassDescriptor> desc) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = desc->name();
  if (classes_.contains(name)) {
    return Status::AlreadyExists("class " + name);
  }
  if (!desc->parent().empty() && !classes_.contains(desc->parent())) {
    return Status::NotFound("parent class " + desc->parent());
  }
  classes_[name] = std::move(desc);
  return Status::OK();
}

const ClassDescriptor* TypeSystem::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : it->second.get();
}

bool TypeSystem::IsSubclassOf(const std::string& cls,
                              const std::string& ancestor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string cur = cls;
  while (!cur.empty()) {
    if (cur == ancestor) return true;
    auto it = classes_.find(cur);
    if (it == classes_.end()) return false;
    cur = it->second->parent();
  }
  return false;
}

const AttributeDescriptor* TypeSystem::ResolveAttribute(
    const std::string& cls, const std::string& attr) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string cur = cls;
  while (!cur.empty()) {
    auto it = classes_.find(cur);
    if (it == classes_.end()) return nullptr;
    if (const AttributeDescriptor* a = it->second->FindAttribute(attr)) {
      return a;
    }
    cur = it->second->parent();
  }
  return nullptr;
}

const MethodDescriptor* TypeSystem::ResolveMethod(
    const std::string& cls, const std::string& method) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string cur = cls;
  while (!cur.empty()) {
    auto it = classes_.find(cur);
    if (it == classes_.end()) return nullptr;
    if (const MethodDescriptor* m = it->second->FindMethod(method)) {
      return m;
    }
    cur = it->second->parent();
  }
  return nullptr;
}

std::vector<const AttributeDescriptor*> TypeSystem::AllAttributes(
    const std::string& cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Collect the chain root-first so base attributes come first.
  std::vector<const ClassDescriptor*> chain;
  std::string cur = cls;
  while (!cur.empty()) {
    auto it = classes_.find(cur);
    if (it == classes_.end()) break;
    chain.push_back(it->second.get());
    cur = it->second->parent();
  }
  std::vector<const AttributeDescriptor*> out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const auto& a : (*it)->attributes()) out.push_back(&a);
  }
  return out;
}

std::vector<std::string> TypeSystem::SelfAndSubclasses(
    const std::string& cls) const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, desc] : classes_) {
    std::string cur = name;
    while (!cur.empty()) {
      if (cur == cls) {
        out.push_back(name);
        break;
      }
      auto it = classes_.find(cur);
      if (it == classes_.end()) break;
      cur = it->second->parent();
    }
  }
  return out;
}

std::vector<std::string> TypeSystem::AllClassNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(classes_.size());
  for (const auto& [name, _] : classes_) out.push_back(name);
  return out;
}

}  // namespace reach
