// In-line wrapper sentries for native C++ classes.
//
// Open OODB's preprocessor rewrites application classes so every member
// function announces before/after events without changing declarations or
// call syntax. The modern C++ equivalent is a zero-dependency wrapper
// template: `Sentried<T>` holds a T and forwards member calls through
// `Call(...)`, announcing to the MetaBus only when the bus reports interest
// (useless overhead reduces to one hash probe — the paper's §6.2 goal).
//
//   Sentried<River> river(bus, "River", River{});
//   river.Call("updateWaterLevel", &River::updateWaterLevel, 35);
//
// Unmonitored types keep calling methods directly; monitored and
// unmonitored declarations and call sites stay structurally identical,
// which is the transparency requirement of §6.1.
#pragma once

#include <string>
#include <type_traits>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "oodb/meta_bus.h"

namespace reach {

namespace sentry_detail {

struct SentryMetrics {
  obs::Counter* calls;
  obs::Counter* announced;

  static const SentryMetrics& Get() {
    static const SentryMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return SentryMetrics{reg.counter(obs::kSentryCalls),
                           reg.counter(obs::kSentryAnnounced)};
    }();
    return m;
  }
};

/// Best-effort conversion of a native argument to a Value for event
/// parameters; unconvertible types become null (the rule can still react to
/// the event, it just cannot inspect that parameter).
template <typename A>
Value ToValue(const A& arg) {
  using D = std::decay_t<A>;
  if constexpr (std::is_same_v<D, bool>) {
    return Value(arg);
  } else if constexpr (std::is_integral_v<D>) {
    return Value(static_cast<int64_t>(arg));
  } else if constexpr (std::is_floating_point_v<D>) {
    return Value(static_cast<double>(arg));
  } else if constexpr (std::is_convertible_v<D, std::string>) {
    return Value(std::string(arg));
  } else if constexpr (std::is_same_v<D, Oid>) {
    return Value(arg);
  } else {
    return Value();
  }
}

}  // namespace sentry_detail

template <typename T>
class Sentried {
 public:
  Sentried(MetaBus* bus, std::string class_name, T instance)
      : bus_(bus),
        class_name_(std::move(class_name)),
        instance_(std::move(instance)) {}

  /// Direct access for state the application reads without a sentry (the
  /// paper notes C++ allows this; state-change detection then requires the
  /// Session/StateChange path instead).
  T* operator->() { return &instance_; }
  T& get() { return instance_; }
  const T& get() const { return instance_; }

  /// Invoke a member function through the sentry: announces method-before
  /// and method-after events when the bus shows interest.
  template <typename R, typename... MArgs, typename... Args>
  R Call(const char* method, R (T::*fn)(MArgs...), Args&&... args) {
    sentry_detail::SentryMetrics::Get().calls->Inc();
    bool before = bus_->Monitored(SentryKind::kMethodBefore, class_name_,
                                  method);
    bool after =
        bus_->Monitored(SentryKind::kMethodAfter, class_name_, method);
    if (!before && !after) {
      // Potentially-useful overhead only: two interest probes.
      return (instance_.*fn)(std::forward<Args>(args)...);
    }
    sentry_detail::SentryMetrics::Get().announced->Inc();
    SentryEvent ev;
    ev.detect_ns = obs::NowNanosIfEnabled();
    ev.class_name = class_name_;
    ev.member = method;
    ev.args = {sentry_detail::ToValue(args)...};
    if (before) {
      ev.kind = SentryKind::kMethodBefore;
      bus_->Announce(ev);
    }
    if constexpr (std::is_void_v<R>) {
      (instance_.*fn)(std::forward<Args>(args)...);
      if (after) {
        ev.kind = SentryKind::kMethodAfter;
        ev.detect_ns = obs::NowNanosIfEnabled();
        bus_->Announce(ev);
      }
    } else {
      R result = (instance_.*fn)(std::forward<Args>(args)...);
      if (after) {
        ev.kind = SentryKind::kMethodAfter;
        ev.detect_ns = obs::NowNanosIfEnabled();
        ev.result = sentry_detail::ToValue(result);
        bus_->Announce(ev);
      }
      return result;
    }
  }

  /// Const-member overload.
  template <typename R, typename... MArgs, typename... Args>
  R Call(const char* method, R (T::*fn)(MArgs...) const,
         Args&&... args) const {
    sentry_detail::SentryMetrics::Get().calls->Inc();
    bool before = bus_->Monitored(SentryKind::kMethodBefore, class_name_,
                                  method);
    bool after =
        bus_->Monitored(SentryKind::kMethodAfter, class_name_, method);
    if (!before && !after) {
      return (instance_.*fn)(std::forward<Args>(args)...);
    }
    sentry_detail::SentryMetrics::Get().announced->Inc();
    SentryEvent ev;
    ev.detect_ns = obs::NowNanosIfEnabled();
    ev.class_name = class_name_;
    ev.member = method;
    ev.args = {sentry_detail::ToValue(args)...};
    if (before) {
      ev.kind = SentryKind::kMethodBefore;
      bus_->Announce(ev);
    }
    if constexpr (std::is_void_v<R>) {
      (instance_.*fn)(std::forward<Args>(args)...);
      if (after) {
        ev.kind = SentryKind::kMethodAfter;
        ev.detect_ns = obs::NowNanosIfEnabled();
        bus_->Announce(ev);
      }
    } else {
      R result = (instance_.*fn)(std::forward<Args>(args)...);
      if (after) {
        ev.kind = SentryKind::kMethodAfter;
        ev.detect_ns = obs::NowNanosIfEnabled();
        ev.result = sentry_detail::ToValue(result);
        bus_->Announce(ev);
      }
      return result;
    }
  }

 private:
  MetaBus* bus_;
  std::string class_name_;
  T instance_;
};

}  // namespace reach
