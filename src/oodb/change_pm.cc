#include "oodb/change_pm.h"

namespace reach {

ChangePm::ChangePm(MetaBus* bus, TransactionManager* txns)
    : bus_(bus), txns_(txns) {
  bus_->Subscribe(this, SentryKind::kStateChange);
  bus_->Subscribe(this, SentryKind::kPersist);
  bus_->Subscribe(this, SentryKind::kDelete);
  txns_->AddListener(this);
}

ChangePm::~ChangePm() {
  bus_->Unsubscribe(this);
  txns_->RemoveListener(this);
}

void ChangePm::OnEvent(const SentryEvent& event) {
  if (event.txn == kNoTxn || !event.oid.valid()) return;
  total_changes_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  changes_[event.txn].insert(event.oid);
}

void ChangePm::OnCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  changes_.erase(txn);
}

void ChangePm::OnAbort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  changes_.erase(txn);
}

void ChangePm::OnCommitChild(TxnId child, TxnId parent) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = changes_.find(child);
  if (it == changes_.end()) return;
  changes_[parent].merge(it->second);
  changes_.erase(child);
}

std::vector<Oid> ChangePm::ChangedObjects(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = changes_.find(txn);
  if (it == changes_.end()) return {};
  return std::vector<Oid>(it->second.begin(), it->second.end());
}

}  // namespace reach
