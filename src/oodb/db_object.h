// DbObject: the in-memory representation of a persistent object — a class
// name plus attribute values, with binary (de)serialization to the object
// store format.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "oodb/type_system.h"
#include "oodb/value.h"

namespace reach {

class DbObject {
 public:
  DbObject() = default;
  explicit DbObject(std::string class_name)
      : class_name_(std::move(class_name)) {}

  /// Create with every declared (and inherited) attribute set to its
  /// default value.
  static Result<DbObject> Create(const TypeSystem& types,
                                 const std::string& class_name);

  const std::string& class_name() const { return class_name_; }

  const Oid& oid() const { return oid_; }
  void set_oid(const Oid& oid) { oid_ = oid; }
  bool persistent() const { return oid_.valid(); }

  bool Has(const std::string& attr) const { return attrs_.contains(attr); }
  const Value& Get(const std::string& attr) const;
  void Set(const std::string& attr, Value value) {
    attrs_[attr] = std::move(value);
  }

  const std::unordered_map<std::string, Value>& attributes() const {
    return attrs_;
  }

  /// Serialize to the object-store byte format.
  std::string Serialize() const;
  static Result<DbObject> Deserialize(const std::string& bytes);

  std::string ToString() const;

 private:
  std::string class_name_;
  Oid oid_;  // invalid while transient
  std::unordered_map<std::string, Value> attrs_;
};

}  // namespace reach
