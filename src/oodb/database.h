// Database: the assembled Open-OODB-style system — storage, transactions,
// the meta bus, type system, data dictionary, and the standard policy
// managers. REACH (src/core) extends this with the active subsystem.
#pragma once

#include <memory>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "oodb/change_pm.h"
#include "oodb/data_dictionary.h"
#include "oodb/indexing_pm.h"
#include "oodb/meta_bus.h"
#include "oodb/persistence_pm.h"
#include "oodb/type_system.h"
#include "storage/storage_manager.h"
#include "txn/transaction_manager.h"

namespace reach {

struct DatabaseOptions {
  StorageOptions storage;
  /// Clock used for event timestamps and temporal events; nullptr selects
  /// a RealClock owned by the database.
  Clock* clock = nullptr;
};

class Database {
 public:
  ~Database();

  /// Open (or create) a database at `base_path` (`<base>.db` / `<base>.wal`).
  static Result<std::unique_ptr<Database>> Open(
      const std::string& base_path, const DatabaseOptions& options = {});

  TypeSystem* types() { return &types_; }
  MetaBus* bus() { return &bus_; }
  StorageManager* storage() { return storage_.get(); }
  TransactionManager* txns() { return txns_.get(); }
  DataDictionary* dictionary() { return dictionary_.get(); }
  PersistencePm* persistence() { return persistence_.get(); }
  ChangePm* change() { return change_.get(); }
  IndexingPm* indexing() { return indexing_.get(); }
  Clock* clock() { return clock_; }

 private:
  Database() = default;

  /// Bridges transaction lifecycle onto the bus as flow-control events.
  class TxnEventBridge : public TxnListener {
   public:
    explicit TxnEventBridge(Database* db) : db_(db) {}
    void OnBegin(TxnId txn, TxnId parent) override;
    void OnCommit(TxnId txn) override;
    void OnAbort(TxnId txn) override;

   private:
    Database* db_;
  };

  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_ = nullptr;
  TypeSystem types_;
  MetaBus bus_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<TransactionManager> txns_;
  std::unique_ptr<DataDictionary> dictionary_;
  std::unique_ptr<PersistencePm> persistence_;
  std::unique_ptr<ChangePm> change_;
  std::unique_ptr<IndexingPm> indexing_;
  std::unique_ptr<TxnEventBridge> txn_bridge_;
};

}  // namespace reach
