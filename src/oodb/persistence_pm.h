// Persistence policy manager: object faulting, the object cache, class
// extents (as chunked linked lists), and write-through of attribute
// updates. Announces persist/fetch/delete events on the meta bus.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "oodb/data_dictionary.h"
#include "oodb/db_object.h"
#include "oodb/meta_bus.h"
#include "oodb/type_system.h"
#include "storage/storage_manager.h"
#include "txn/transaction_manager.h"

namespace reach {

class PersistencePm : public PolicyManager, public TxnListener {
 public:
  PersistencePm(StorageManager* storage, TransactionManager* txns,
                DataDictionary* dictionary, TypeSystem* types, MetaBus* bus);
  ~PersistencePm() override;

  std::string name() const override { return "Persistence PM"; }
  void OnEvent(const SentryEvent& event) override { (void)event; }

  /// TxnListener: drop cached versions of objects an aborted transaction
  /// touched (the store already rolled them back).
  void OnAbort(TxnId txn) override;
  void OnCommit(TxnId txn) override;
  /// Nested commit: the child's touch set moves into the parent so a later
  /// parent abort still invalidates the child's cache entries.
  void OnCommitChild(TxnId child, TxnId parent) override;

  /// Make a transient object persistent: assigns an OID, stores it, adds
  /// it to its class extent, announces kPersist.
  Result<Oid> Persist(TxnId txn, DbObject* obj);

  /// Fault an object in (S-locks it). Announces kFetch.
  Result<std::shared_ptr<DbObject>> Fetch(TxnId txn, const Oid& oid);

  /// Batch fault: S-locks all OIDs with one lock-manager pass, resolves
  /// cache hits under one mutex hold, reads misses outside any lock, then
  /// inserts them in one pass. `out` holds the objects in input order.
  /// Announces kFetch per object (when monitored), like Fetch. Safe to call
  /// from several threads of one transaction concurrently (query morsels).
  Status FetchMany(TxnId txn, const std::vector<Oid>& oids,
                   std::vector<std::shared_ptr<DbObject>>* out);

  /// Write an updated attribute set back to the store (X-locks the OID).
  Status Write(TxnId txn, const DbObject& obj);

  /// Delete a persistent object: removes it from its extent, announces
  /// kDelete (with the object's class so deletion-triggered rules fire —
  /// the §4 layered-architecture pain point), then frees storage.
  Status Delete(TxnId txn, const Oid& oid);

  /// OIDs in the extent of exactly `class_name`.
  Result<std::vector<Oid>> Extent(TxnId txn, const std::string& class_name);

  /// Cache statistics.
  size_t cached_objects() const;
  uint64_t faults() const { return faults_; }

 private:
  static constexpr size_t kChunkCapacity = 256;

  /// Extent anchors are named "__extent::<Class>" in the dictionary.
  static std::string ExtentName(const std::string& class_name) {
    return "__extent::" + class_name;
  }

  /// Get (creating on demand) the anchor object for a class extent.
  Result<Oid> ExtentAnchor(TxnId txn, const std::string& class_name);

  Status ExtentAdd(TxnId txn, const std::string& class_name, const Oid& oid);
  Status ExtentRemove(TxnId txn, const std::string& class_name,
                      const Oid& oid);

  void TrackTouch(TxnId txn, const Oid& oid);

  StorageManager* storage_;
  TransactionManager* txns_;
  DataDictionary* dictionary_;
  TypeSystem* types_;
  MetaBus* bus_;

  mutable std::mutex mu_;
  std::unordered_map<Oid, std::shared_ptr<DbObject>> cache_;
  std::unordered_map<TxnId, std::unordered_set<Oid>> touched_;
  uint64_t faults_ = 0;
};

}  // namespace reach
