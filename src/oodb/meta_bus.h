// MetaBus: the Open OODB meta-architecture "software bus". Sentries
// announce events; policy managers plugged into the bus receive the ones
// they registered interest in. The interest table lets sentries skip
// announcement entirely when nobody cares (eliminating useless overhead,
// the paper's §6.2 classification).
#pragma once

#include <array>
#include <atomic>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "oodb/sentry_event.h"

namespace reach {

/// A pluggable database component (persistence, transactions, indexing,
/// change tracking, rule management, ...).
class PolicyManager {
 public:
  virtual ~PolicyManager() = default;
  virtual std::string name() const = 0;
  virtual void OnEvent(const SentryEvent& event) = 0;
};

class MetaBus {
 public:
  /// Plug `pm` into the bus for events of `kind`. A member filter of ""
  /// means every class/member; otherwise interest is exact on
  /// "<class>::<member>".
  void Subscribe(PolicyManager* pm, SentryKind kind,
                 const std::string& class_name = "",
                 const std::string& member = "");

  void Unsubscribe(PolicyManager* pm);

  /// Is any policy manager interested? Sentries consult this before
  /// constructing an event (useful vs. useless overhead).
  bool Monitored(SentryKind kind, const std::string& class_name,
                 const std::string& member) const;

  /// Dispatch to every interested policy manager; returns how many
  /// received it.
  size_t Announce(const SentryEvent& event);

  /// Overhead accounting (paper §6.2).
  uint64_t useful_announcements() const { return useful_.load(); }
  uint64_t useless_announcements() const { return useless_.load(); }

  std::vector<std::string> PolicyManagerNames() const;

 private:
  struct Subscription {
    PolicyManager* pm;
    std::string class_name;  // empty = wildcard
    std::string member;      // empty = wildcard
  };

  static bool MatchesFilter(const Subscription& sub, const SentryEvent& ev) {
    if (!sub.class_name.empty() && sub.class_name != ev.class_name) {
      return false;
    }
    if (!sub.member.empty() && sub.member != ev.member) return false;
    return true;
  }

  mutable std::mutex mu_;
  std::array<std::vector<Subscription>, kNumSentryKinds> subs_;
  // Fast interest test: per kind, whether a wildcard subscription exists
  // plus the set of exact "<class>::<member>" keys.
  std::array<bool, kNumSentryKinds> wildcard_{};
  std::array<std::unordered_set<std::string>, kNumSentryKinds> exact_;
  std::atomic<uint64_t> useful_{0};
  std::atomic<uint64_t> useless_{0};
};

}  // namespace reach
