// MetaBus: the Open OODB meta-architecture "software bus". Sentries
// announce events; policy managers plugged into the bus receive the ones
// they registered interest in. The interest table lets sentries skip
// announcement entirely when nobody cares (eliminating useless overhead,
// the paper's §6.2 classification).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "oodb/sentry_event.h"

namespace reach {

/// A pluggable database component (persistence, transactions, indexing,
/// change tracking, rule management, ...).
class PolicyManager {
 public:
  virtual ~PolicyManager() = default;
  virtual std::string name() const = 0;
  virtual void OnEvent(const SentryEvent& event) = 0;
};

class MetaBus {
 public:
  /// Plug `pm` into the bus for events of `kind`. A member filter of ""
  /// means every class/member; otherwise interest is exact on
  /// "<class>::<member>".
  void Subscribe(PolicyManager* pm, SentryKind kind,
                 const std::string& class_name = "",
                 const std::string& member = "");

  void Unsubscribe(PolicyManager* pm);

  /// Is any policy manager interested? Sentries consult this before
  /// constructing an event (useful vs. useless overhead).
  bool Monitored(SentryKind kind, const std::string& class_name,
                 const std::string& member) const;

  /// Dispatch to every interested policy manager; returns how many
  /// received it.
  size_t Announce(const SentryEvent& event);

  /// Overhead accounting (paper §6.2).
  uint64_t useful_announcements() const { return useful_.load(); }
  uint64_t useless_announcements() const { return useless_.load(); }

  std::vector<std::string> PolicyManagerNames() const;

 private:
  struct Subscription {
    PolicyManager* pm;
    std::string class_name;  // empty = wildcard
    std::string member;      // empty = wildcard
  };

  static bool MatchesFilter(const Subscription& sub, const SentryEvent& ev) {
    if (!sub.class_name.empty() && sub.class_name != ev.class_name) {
      return false;
    }
    if (!sub.member.empty() && sub.member != ev.member) return false;
    return true;
  }

  /// Probe key for the exact-interest set: the two halves of a
  /// "<class>::<member>" key, so the per-call Monitored check (every
  /// sentried method invocation) hashes and compares in place instead of
  /// allocating the concatenation.
  struct InterestKey {
    std::string_view class_name;
    std::string_view member;
  };

  struct InterestHash {
    using is_transparent = void;
    static size_t Fnv(size_t h, std::string_view s) {
      for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= UINT64_C(1099511628211);
      }
      return h;
    }
    size_t operator()(std::string_view s) const {
      return Fnv(UINT64_C(14695981039346656037), s);
    }
    size_t operator()(const std::string& s) const {
      return (*this)(std::string_view(s));
    }
    size_t operator()(const InterestKey& k) const {
      size_t h = Fnv(UINT64_C(14695981039346656037), k.class_name);
      h = Fnv(h, "::");
      return Fnv(h, k.member);
    }
  };

  struct InterestEq {
    using is_transparent = void;
    static bool Matches(std::string_view s, const InterestKey& k) {
      const size_t n = k.class_name.size();
      return s.size() == n + 2 + k.member.size() &&
             s.compare(0, n, k.class_name) == 0 && s[n] == ':' &&
             s[n + 1] == ':' &&
             s.compare(n + 2, std::string_view::npos, k.member) == 0;
    }
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
    bool operator()(std::string_view a, const InterestKey& b) const {
      return Matches(a, b);
    }
    bool operator()(const InterestKey& a, std::string_view b) const {
      return Matches(b, a);
    }
    bool operator()(const InterestKey& a, const InterestKey& b) const {
      return a.class_name == b.class_name && a.member == b.member;
    }
  };

  using InterestSet =
      std::unordered_set<std::string, InterestHash, InterestEq>;

  mutable std::mutex mu_;
  std::array<std::vector<Subscription>, kNumSentryKinds> subs_;
  // Fast interest test: per kind, whether a wildcard subscription exists
  // plus the set of exact "<class>::<member>" keys (heterogeneous lookup —
  // see InterestKey).
  std::array<bool, kNumSentryKinds> wildcard_{};
  std::array<InterestSet, kNumSentryKinds> exact_;
  std::atomic<uint64_t> useful_{0};
  std::atomic<uint64_t> useless_{0};
};

}  // namespace reach
