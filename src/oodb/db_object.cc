#include "oodb/db_object.h"

#include <cstring>

namespace reach {

namespace {
const Value kNullValue;

void PutString(std::string* out, const std::string& s) {
  uint16_t len = static_cast<uint16_t>(s.size());
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(s);
}

bool GetString(const std::string& data, size_t* pos, std::string* s) {
  uint16_t len = 0;
  if (*pos + sizeof(len) > data.size()) return false;
  std::memcpy(&len, data.data() + *pos, sizeof(len));
  *pos += sizeof(len);
  if (*pos + len > data.size()) return false;
  s->assign(data.data() + *pos, len);
  *pos += len;
  return true;
}
}  // namespace

Result<DbObject> DbObject::Create(const TypeSystem& types,
                                  const std::string& class_name) {
  if (!types.IsRegistered(class_name)) {
    return Status::NotFound("class " + class_name + " not registered");
  }
  DbObject obj(class_name);
  for (const AttributeDescriptor* attr : types.AllAttributes(class_name)) {
    obj.Set(attr->name, attr->default_value);
  }
  return obj;
}

const Value& DbObject::Get(const std::string& attr) const {
  auto it = attrs_.find(attr);
  return it == attrs_.end() ? kNullValue : it->second;
}

std::string DbObject::Serialize() const {
  std::string out;
  PutString(&out, class_name_);
  uint16_t count = static_cast<uint16_t>(attrs_.size());
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, value] : attrs_) {
    PutString(&out, name);
    value.Encode(&out);
  }
  return out;
}

Result<DbObject> DbObject::Deserialize(const std::string& bytes) {
  size_t pos = 0;
  DbObject obj;
  if (!GetString(bytes, &pos, &obj.class_name_)) {
    return Status::Corruption("object: truncated class name");
  }
  uint16_t count = 0;
  if (pos + sizeof(count) > bytes.size()) {
    return Status::Corruption("object: truncated attribute count");
  }
  std::memcpy(&count, bytes.data() + pos, sizeof(count));
  pos += sizeof(count);
  for (uint16_t i = 0; i < count; ++i) {
    std::string name;
    if (!GetString(bytes, &pos, &name)) {
      return Status::Corruption("object: truncated attribute name");
    }
    REACH_ASSIGN_OR_RETURN(Value v, Value::Decode(bytes, &pos));
    obj.attrs_[name] = std::move(v);
  }
  return obj;
}

std::string DbObject::ToString() const {
  std::string out = class_name_ + "{";
  bool first = true;
  for (const auto& [name, value] : attrs_) {
    if (!first) out += ", ";
    first = false;
    out += name + "=" + value.ToString();
  }
  out += "}";
  if (oid_.valid()) out += "@" + oid_.ToString();
  return out;
}

}  // namespace reach
