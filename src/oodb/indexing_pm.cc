#include "oodb/indexing_pm.h"

#include <algorithm>

namespace reach {

IndexingPm::IndexingPm(MetaBus* bus, TransactionManager* txns,
                       TypeSystem* types, PersistencePm* persistence)
    : bus_(bus), txns_(txns), types_(types), persistence_(persistence) {
  bus_->Subscribe(this, SentryKind::kStateChange);
  bus_->Subscribe(this, SentryKind::kPersist);
  bus_->Subscribe(this, SentryKind::kDelete);
  txns_->AddListener(this);
}

IndexingPm::~IndexingPm() {
  bus_->Unsubscribe(this);
  txns_->RemoveListener(this);
}

std::vector<IndexingPm::Index*> IndexingPm::Covering(
    const std::string& event_class, const std::string& attr) {
  std::vector<Index*> out;
  for (auto& [key, index] : indexes_) {
    if (!attr.empty() && index.attr != attr) continue;
    if (types_->IsSubclassOf(event_class, index.class_name)) {
      out.push_back(&index);
    }
  }
  return out;
}

namespace {
Value DecodeIndexKey(const std::string& key) {
  size_t pos = 0;
  auto v = Value::Decode(key, &pos);
  return v.ok() ? *v : Value();
}
}  // namespace

void IndexingPm::InsertEntry(Index* index, const Oid& oid,
                             const std::string& key, TxnId txn) {
  index->buckets[key].push_back(oid);
  index->reverse[oid] = key;
  if (index->kind == IndexKind::kOrdered) {
    index->ordered[DecodeIndexKey(key)].push_back(oid);
  }
  maintenance_ops_.fetch_add(1, std::memory_order_relaxed);
  if (txn != kNoTxn) {
    undo_[txn].push_back(
        {IndexKey(index->class_name, index->attr), true, oid, key});
  }
}

void IndexingPm::RemoveEntry(Index* index, const Oid& oid, TxnId txn) {
  auto rit = index->reverse.find(oid);
  if (rit == index->reverse.end()) return;
  std::string key = rit->second;
  auto bit = index->buckets.find(key);
  if (bit != index->buckets.end()) {
    auto& vec = bit->second;
    vec.erase(std::remove(vec.begin(), vec.end(), oid), vec.end());
    if (vec.empty()) index->buckets.erase(bit);
  }
  if (index->kind == IndexKind::kOrdered) {
    auto oit = index->ordered.find(DecodeIndexKey(key));
    if (oit != index->ordered.end()) {
      auto& vec = oit->second;
      vec.erase(std::remove(vec.begin(), vec.end(), oid), vec.end());
      if (vec.empty()) index->ordered.erase(oit);
    }
  }
  index->reverse.erase(rit);
  maintenance_ops_.fetch_add(1, std::memory_order_relaxed);
  if (txn != kNoTxn) {
    undo_[txn].push_back(
        {IndexKey(index->class_name, index->attr), false, oid, key});
  }
}

void IndexingPm::OnEvent(const SentryEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (event.kind) {
    case SentryKind::kStateChange: {
      // args = {old value, new value}
      if (event.args.size() != 2) return;
      for (Index* index : Covering(event.class_name, event.member)) {
        RemoveEntry(index, event.oid, event.txn);
        InsertEntry(index, event.oid, KeyOf(event.args[1]), event.txn);
      }
      break;
    }
    case SentryKind::kPersist: {
      // Index every covered attribute of the new object.
      for (Index* index : Covering(event.class_name, "")) {
        auto obj = persistence_->Fetch(event.txn, event.oid);
        if (!obj.ok()) return;
        InsertEntry(index, event.oid, KeyOf(obj.value()->Get(index->attr)),
                    event.txn);
      }
      break;
    }
    case SentryKind::kDelete: {
      for (Index* index : Covering(event.class_name, "")) {
        RemoveEntry(index, event.oid, event.txn);
      }
      break;
    }
    default:
      break;
  }
}

void IndexingPm::OnCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  undo_.erase(txn);
}

void IndexingPm::OnCommitChild(TxnId child, TxnId parent) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = undo_.find(child);
  if (it == undo_.end()) return;
  auto& parent_ops = undo_[parent];
  parent_ops.insert(parent_ops.end(),
                    std::make_move_iterator(it->second.begin()),
                    std::make_move_iterator(it->second.end()));
  undo_.erase(it);
}

void IndexingPm::OnAbort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = undo_.find(txn);
  if (it == undo_.end()) return;
  std::vector<UndoOp> ops = std::move(it->second);
  undo_.erase(it);
  for (auto op = ops.rbegin(); op != ops.rend(); ++op) {
    auto iit = indexes_.find(op->index_key);
    if (iit == indexes_.end()) continue;
    Index& index = iit->second;
    if (op->was_insert) {
      // Revert an insert.
      auto bit = index.buckets.find(op->value_key);
      if (bit != index.buckets.end()) {
        auto& vec = bit->second;
        vec.erase(std::remove(vec.begin(), vec.end(), op->oid), vec.end());
        if (vec.empty()) index.buckets.erase(bit);
      }
      if (index.kind == IndexKind::kOrdered) {
        auto oit = index.ordered.find(DecodeIndexKey(op->value_key));
        if (oit != index.ordered.end()) {
          auto& vec = oit->second;
          vec.erase(std::remove(vec.begin(), vec.end(), op->oid), vec.end());
          if (vec.empty()) index.ordered.erase(oit);
        }
      }
      if (index.reverse[op->oid] == op->value_key) {
        index.reverse.erase(op->oid);
      }
    } else {
      // Revert a remove.
      index.buckets[op->value_key].push_back(op->oid);
      index.reverse[op->oid] = op->value_key;
      if (index.kind == IndexKind::kOrdered) {
        index.ordered[DecodeIndexKey(op->value_key)].push_back(op->oid);
      }
    }
  }
}

Status IndexingPm::CreateIndex(TxnId txn, const std::string& class_name,
                               const std::string& attr, IndexKind kind) {
  if (types_->ResolveAttribute(class_name, attr) == nullptr) {
    return Status::NotFound("attribute " + class_name + "." + attr);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (indexes_.contains(IndexKey(class_name, attr))) {
      return Status::AlreadyExists("index on " + IndexKey(class_name, attr));
    }
  }
  // Build outside the lock: extent scans fault objects in.
  Index fresh;
  fresh.class_name = class_name;
  fresh.attr = attr;
  fresh.kind = kind;
  for (const std::string& cls : types_->SelfAndSubclasses(class_name)) {
    REACH_ASSIGN_OR_RETURN(std::vector<Oid> extent,
                           persistence_->Extent(txn, cls));
    for (const Oid& oid : extent) {
      REACH_ASSIGN_OR_RETURN(std::shared_ptr<DbObject> obj,
                             persistence_->Fetch(txn, oid));
      std::string key = KeyOf(obj->Get(attr));
      fresh.buckets[key].push_back(oid);
      fresh.reverse[oid] = key;
      if (kind == IndexKind::kOrdered) {
        fresh.ordered[obj->Get(attr)].push_back(oid);
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  indexes_[IndexKey(class_name, attr)] = std::move(fresh);
  return Status::OK();
}

Status IndexingPm::DropIndex(const std::string& class_name,
                             const std::string& attr) {
  std::lock_guard<std::mutex> lock(mu_);
  if (indexes_.erase(IndexKey(class_name, attr)) == 0) {
    return Status::NotFound("index on " + IndexKey(class_name, attr));
  }
  return Status::OK();
}

bool IndexingPm::HasIndex(const std::string& class_name,
                          const std::string& attr) const {
  std::lock_guard<std::mutex> lock(mu_);
  return indexes_.contains(IndexKey(class_name, attr));
}

bool IndexingPm::HasOrderedIndex(const std::string& class_name,
                                 const std::string& attr) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = indexes_.find(IndexKey(class_name, attr));
  return it != indexes_.end() && it->second.kind == IndexKind::kOrdered;
}

Status IndexingPm::RangeLookupInto(const std::string& class_name,
                                   const std::string& attr, const Value* lo,
                                   bool lo_inclusive, const Value* hi,
                                   bool hi_inclusive,
                                   std::vector<Oid>* out) const {
  out->clear();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = indexes_.find(IndexKey(class_name, attr));
  if (it == indexes_.end() || it->second.kind != IndexKind::kOrdered) {
    return Status::NotFound("ordered index on " +
                            IndexKey(class_name, attr));
  }
  const auto& ordered = it->second.ordered;
  auto begin = lo == nullptr
                   ? ordered.begin()
                   : (lo_inclusive ? ordered.lower_bound(*lo)
                                   : ordered.upper_bound(*lo));
  auto end = hi == nullptr
                 ? ordered.end()
                 : (hi_inclusive ? ordered.upper_bound(*hi)
                                 : ordered.lower_bound(*hi));
  for (auto cur = begin; cur != end; ++cur) {
    out->insert(out->end(), cur->second.begin(), cur->second.end());
  }
  return Status::OK();
}

Result<std::vector<Oid>> IndexingPm::RangeLookup(
    const std::string& class_name, const std::string& attr, const Value* lo,
    bool lo_inclusive, const Value* hi, bool hi_inclusive) const {
  std::vector<Oid> out;
  REACH_RETURN_IF_ERROR(RangeLookupInto(class_name, attr, lo, lo_inclusive,
                                        hi, hi_inclusive, &out));
  return out;
}

Status IndexingPm::LookupInto(const std::string& class_name,
                              const std::string& attr, const Value& value,
                              std::vector<Oid>* out) const {
  out->clear();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = indexes_.find(IndexKey(class_name, attr));
  if (it == indexes_.end()) {
    return Status::NotFound("index on " + IndexKey(class_name, attr));
  }
  auto bit = it->second.buckets.find(KeyOf(value));
  if (bit == it->second.buckets.end()) return Status::OK();
  out->assign(bit->second.begin(), bit->second.end());
  return Status::OK();
}

Result<std::vector<Oid>> IndexingPm::Lookup(const std::string& class_name,
                                            const std::string& attr,
                                            const Value& value) const {
  std::vector<Oid> out;
  REACH_RETURN_IF_ERROR(LookupInto(class_name, attr, value, &out));
  return out;
}

}  // namespace reach
