// Change policy manager: tracks which persistent objects each transaction
// modified (state-change, persist, delete events). Other components —
// index maintenance, deferred-rule parameterization, the benches — consume
// the per-transaction change sets.
#pragma once

#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "oodb/meta_bus.h"
#include "txn/transaction_manager.h"

namespace reach {

class ChangePm : public PolicyManager, public TxnListener {
 public:
  ChangePm(MetaBus* bus, TransactionManager* txns);
  ~ChangePm() override;

  std::string name() const override { return "Change PM"; }
  void OnEvent(const SentryEvent& event) override;

  void OnCommit(TxnId txn) override;
  void OnAbort(TxnId txn) override;
  void OnCommitChild(TxnId child, TxnId parent) override;

  /// Objects modified by `txn` so far.
  std::vector<Oid> ChangedObjects(TxnId txn) const;

  uint64_t total_changes() const { return total_changes_.load(); }

 private:
  MetaBus* bus_;
  TransactionManager* txns_;
  mutable std::mutex mu_;
  std::unordered_map<TxnId, std::unordered_set<Oid>> changes_;
  std::atomic<uint64_t> total_changes_{0};
};

}  // namespace reach
