#include "oodb/value.h"

#include <cstring>

#include "storage/slotted_page.h"

namespace reach {

namespace {
template <typename T>
void PutScalar(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetScalar(const std::string& data, size_t* pos, T* v) {
  if (*pos + sizeof(T) > data.size()) return false;
  std::memcpy(v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}
}  // namespace

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return AsNumber() == other.AsNumber();
  }
  return data_ == other.data_;
}

std::partial_ordering Value::operator<=>(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return as_int() <=> other.as_int();
    return AsNumber() <=> other.AsNumber();
  }
  if (type() != other.type()) return type() <=> other.type();
  switch (type()) {
    case ValueType::kNull:
      return std::partial_ordering::equivalent;
    case ValueType::kBool:
      return as_bool() <=> other.as_bool();
    case ValueType::kString:
      return as_string() <=> other.as_string();
    case ValueType::kRef:
      return as_ref() <=> other.as_ref();
    case ValueType::kList: {
      const auto& a = as_list();
      const auto& b = other.as_list();
      for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
        auto c = a[i] <=> b[i];
        if (c != std::partial_ordering::equivalent) return c;
      }
      return a.size() <=> b.size();
    }
    default:
      return std::partial_ordering::unordered;
  }
}

void Value::Encode(std::string* out) const {
  PutScalar<uint8_t>(out, static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutScalar<uint8_t>(out, as_bool() ? 1 : 0);
      break;
    case ValueType::kInt:
      PutScalar<int64_t>(out, as_int());
      break;
    case ValueType::kDouble:
      PutScalar<double>(out, as_double());
      break;
    case ValueType::kString: {
      PutScalar<uint32_t>(out, static_cast<uint32_t>(as_string().size()));
      out->append(as_string());
      break;
    }
    case ValueType::kRef: {
      char buf[SlottedPage::kOidEncodedSize];
      SlottedPage::EncodeOid(as_ref(), buf);
      out->append(buf, sizeof(buf));
      break;
    }
    case ValueType::kList: {
      PutScalar<uint32_t>(out, static_cast<uint32_t>(as_list().size()));
      for (const Value& v : as_list()) v.Encode(out);
      break;
    }
  }
}

Result<Value> Value::Decode(const std::string& data, size_t* pos) {
  uint8_t tag = 0;
  if (!GetScalar(data, pos, &tag)) {
    return Status::Corruption("value: truncated tag");
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value();
    case ValueType::kBool: {
      uint8_t b = 0;
      if (!GetScalar(data, pos, &b)) {
        return Status::Corruption("value: truncated bool");
      }
      return Value(b != 0);
    }
    case ValueType::kInt: {
      int64_t v = 0;
      if (!GetScalar(data, pos, &v)) {
        return Status::Corruption("value: truncated int");
      }
      return Value(v);
    }
    case ValueType::kDouble: {
      double v = 0;
      if (!GetScalar(data, pos, &v)) {
        return Status::Corruption("value: truncated double");
      }
      return Value(v);
    }
    case ValueType::kString: {
      uint32_t len = 0;
      if (!GetScalar(data, pos, &len) || *pos + len > data.size()) {
        return Status::Corruption("value: truncated string");
      }
      Value v(data.substr(*pos, len));
      *pos += len;
      return v;
    }
    case ValueType::kRef: {
      if (*pos + SlottedPage::kOidEncodedSize > data.size()) {
        return Status::Corruption("value: truncated ref");
      }
      Oid oid = SlottedPage::DecodeOid(data.data() + *pos);
      *pos += SlottedPage::kOidEncodedSize;
      return Value(oid);
    }
    case ValueType::kList: {
      uint32_t n = 0;
      if (!GetScalar(data, pos, &n)) {
        return Status::Corruption("value: truncated list");
      }
      std::vector<Value> list;
      list.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        REACH_ASSIGN_OR_RETURN(Value v, Decode(data, pos));
        list.push_back(std::move(v));
      }
      return Value(std::move(list));
    }
    default:
      return Status::Corruption("value: unknown tag " + std::to_string(tag));
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return as_bool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble:
      return std::to_string(as_double());
    case ValueType::kString:
      return "\"" + as_string() + "\"";
    case ValueType::kRef:
      return as_ref().ToString();
    case ValueType::kList: {
      std::string out = "[";
      for (size_t i = 0; i < as_list().size(); ++i) {
        if (i > 0) out += ", ";
        out += as_list()[i].ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

}  // namespace reach
