#include "oodb/database.h"

namespace reach {

void Database::TxnEventBridge::OnBegin(TxnId txn, TxnId parent) {
  SentryEvent ev;
  ev.kind = SentryKind::kTxnBegin;
  ev.txn = txn;
  ev.timestamp = db_->clock()->Now();
  if (parent != kNoTxn) ev.args.push_back(Value(static_cast<int64_t>(parent)));
  db_->bus_.Announce(ev);
}

void Database::TxnEventBridge::OnCommit(TxnId txn) {
  SentryEvent ev;
  ev.kind = SentryKind::kTxnCommit;
  ev.txn = txn;
  ev.timestamp = db_->clock()->Now();
  db_->bus_.Announce(ev);
}

void Database::TxnEventBridge::OnAbort(TxnId txn) {
  SentryEvent ev;
  ev.kind = SentryKind::kTxnAbort;
  ev.txn = txn;
  ev.timestamp = db_->clock()->Now();
  db_->bus_.Announce(ev);
}

Database::~Database() {
  if (txns_ && txn_bridge_) txns_->RemoveListener(txn_bridge_.get());
}

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& base_path, const DatabaseOptions& options) {
  auto db = std::unique_ptr<Database>(new Database());
  if (options.clock != nullptr) {
    db->clock_ = options.clock;
  } else {
    db->owned_clock_ = std::make_unique<RealClock>();
    db->clock_ = db->owned_clock_.get();
  }
  REACH_ASSIGN_OR_RETURN(db->storage_,
                         StorageManager::Open(base_path, options.storage));
  db->txns_ = std::make_unique<TransactionManager>(db->storage_.get());
  db->dictionary_ = std::make_unique<DataDictionary>(db->storage_.get());

  // Dictionary bootstrap runs in its own transaction.
  REACH_ASSIGN_OR_RETURN(TxnId boot, db->txns_->Begin());
  Status st = db->dictionary_->Bootstrap(boot);
  if (!st.ok()) {
    (void)db->txns_->Abort(boot);
    return st;
  }
  REACH_RETURN_IF_ERROR(db->txns_->Commit(boot));

  db->persistence_ = std::make_unique<PersistencePm>(
      db->storage_.get(), db->txns_.get(), db->dictionary_.get(),
      &db->types_, &db->bus_);
  db->change_ = std::make_unique<ChangePm>(&db->bus_, db->txns_.get());
  db->indexing_ = std::make_unique<IndexingPm>(
      &db->bus_, db->txns_.get(), &db->types_, db->persistence_.get());
  db->txn_bridge_ = std::make_unique<TxnEventBridge>(db.get());
  db->txns_->AddListener(db->txn_bridge_.get());
  return db;
}

}  // namespace reach
