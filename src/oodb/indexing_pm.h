// Indexing policy manager: in-memory hash indexes over object attributes,
// maintained through the meta bus (persist / state-change / delete events)
// — the index-maintenance-as-active-rules idea the paper's conclusions
// sketch. Indexes are rebuilt from extents on open.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "oodb/meta_bus.h"
#include "oodb/persistence_pm.h"
#include "oodb/type_system.h"
#include "txn/transaction_manager.h"

namespace reach {

/// Hash indexes serve equality probes; ordered indexes additionally serve
/// range scans (and cost a tree insert per maintenance op).
enum class IndexKind { kHash, kOrdered };

class IndexingPm : public PolicyManager, public TxnListener {
 public:
  IndexingPm(MetaBus* bus, TransactionManager* txns, TypeSystem* types,
             PersistencePm* persistence);
  ~IndexingPm() override;

  std::string name() const override { return "Indexing PM"; }
  void OnEvent(const SentryEvent& event) override;

  void OnCommit(TxnId txn) override;
  void OnAbort(TxnId txn) override;
  /// Nested commit: the child's index undo log joins the parent's so a
  /// later parent abort reverts the child's index maintenance too.
  void OnCommitChild(TxnId child, TxnId parent) override;

  /// Create an index on `<class>.<attr>` (covers subclasses), built by
  /// scanning the current extent inside `txn`.
  Status CreateIndex(TxnId txn, const std::string& class_name,
                     const std::string& attr,
                     IndexKind kind = IndexKind::kHash);

  Status DropIndex(const std::string& class_name, const std::string& attr);

  bool HasIndex(const std::string& class_name, const std::string& attr) const;

  /// True if an ordered index exists on `<class>.<attr>`.
  bool HasOrderedIndex(const std::string& class_name,
                       const std::string& attr) const;

  /// Equality lookup; NotFound if no such index.
  Result<std::vector<Oid>> Lookup(const std::string& class_name,
                                  const std::string& attr,
                                  const Value& value) const;

  /// Equality lookup into a caller-provided buffer (cleared, then filled) —
  /// a repeat caller reuses the buffer's capacity instead of paying a fresh
  /// vector copy per probe. NotFound if no such index.
  Status LookupInto(const std::string& class_name, const std::string& attr,
                    const Value& value, std::vector<Oid>* out) const;

  /// Range scan over an ordered index. Null bounds are open ends.
  Result<std::vector<Oid>> RangeLookup(const std::string& class_name,
                                       const std::string& attr,
                                       const Value* lo, bool lo_inclusive,
                                       const Value* hi,
                                       bool hi_inclusive) const;

  /// Range scan into a caller-provided buffer (cleared, then filled).
  Status RangeLookupInto(const std::string& class_name,
                         const std::string& attr, const Value* lo,
                         bool lo_inclusive, const Value* hi,
                         bool hi_inclusive, std::vector<Oid>* out) const;

  uint64_t maintenance_ops() const { return maintenance_ops_.load(); }

 private:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return (a <=> b) == std::partial_ordering::less;
    }
  };
  struct Index {
    std::string class_name;
    std::string attr;
    IndexKind kind = IndexKind::kHash;
    std::unordered_map<std::string, std::vector<Oid>> buckets;  // key->oids
    std::unordered_map<Oid, std::string> reverse;               // oid->key
    std::map<Value, std::vector<Oid>, ValueLess> ordered;  // kOrdered only
  };
  struct UndoOp {
    std::string index_key;  // "<class>.<attr>"
    bool was_insert;        // true: remove on undo; false: re-insert
    Oid oid;
    std::string value_key;
  };

  static std::string KeyOf(const Value& v) {
    std::string key;
    v.Encode(&key);
    return key;
  }
  static std::string IndexKey(const std::string& cls,
                              const std::string& attr) {
    return cls + "." + attr;
  }

  void InsertEntry(Index* index, const Oid& oid, const std::string& key,
                   TxnId txn);
  void RemoveEntry(Index* index, const Oid& oid, TxnId txn);

  /// Indexes whose class covers `event_class` and attr matches.
  std::vector<Index*> Covering(const std::string& event_class,
                               const std::string& attr);

  MetaBus* bus_;
  TransactionManager* txns_;
  TypeSystem* types_;
  PersistencePm* persistence_;

  mutable std::mutex mu_;
  std::map<std::string, Index> indexes_;  // by IndexKey
  std::unordered_map<TxnId, std::vector<UndoOp>> undo_;
  std::atomic<uint64_t> maintenance_ops_{0};
};

}  // namespace reach
