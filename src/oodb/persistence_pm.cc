#include "oodb/persistence_pm.h"

#include <cstring>

#include "storage/slotted_page.h"

namespace reach {

namespace {

// Extent chunk layout: [next chunk oid (8)][count u16][oid]*count
// Anchor layout: [head chunk oid (8)]

struct Chunk {
  Oid next;
  std::vector<Oid> oids;
};

std::string EncodeChunk(const Chunk& c) {
  std::string out;
  char buf[SlottedPage::kOidEncodedSize];
  SlottedPage::EncodeOid(c.next, buf);
  out.append(buf, sizeof(buf));
  uint16_t count = static_cast<uint16_t>(c.oids.size());
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Oid& oid : c.oids) {
    SlottedPage::EncodeOid(oid, buf);
    out.append(buf, sizeof(buf));
  }
  return out;
}

Result<Chunk> DecodeChunk(const std::string& bytes) {
  Chunk c;
  size_t pos = 0;
  if (bytes.size() < SlottedPage::kOidEncodedSize + sizeof(uint16_t)) {
    return Status::Corruption("extent chunk truncated");
  }
  c.next = SlottedPage::DecodeOid(bytes.data());
  pos += SlottedPage::kOidEncodedSize;
  uint16_t count = 0;
  std::memcpy(&count, bytes.data() + pos, sizeof(count));
  pos += sizeof(count);
  if (pos + count * SlottedPage::kOidEncodedSize > bytes.size()) {
    return Status::Corruption("extent chunk truncated (oids)");
  }
  c.oids.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    c.oids.push_back(SlottedPage::DecodeOid(bytes.data() + pos));
    pos += SlottedPage::kOidEncodedSize;
  }
  return c;
}

std::string EncodeAnchor(const Oid& head) {
  char buf[SlottedPage::kOidEncodedSize];
  SlottedPage::EncodeOid(head, buf);
  return std::string(buf, sizeof(buf));
}

Result<Oid> DecodeAnchor(const std::string& bytes) {
  if (bytes.size() < SlottedPage::kOidEncodedSize) {
    return Status::Corruption("extent anchor truncated");
  }
  return SlottedPage::DecodeOid(bytes.data());
}

}  // namespace

PersistencePm::PersistencePm(StorageManager* storage,
                             TransactionManager* txns,
                             DataDictionary* dictionary, TypeSystem* types,
                             MetaBus* bus)
    : storage_(storage),
      txns_(txns),
      dictionary_(dictionary),
      types_(types),
      bus_(bus) {
  txns_->AddListener(this);
}

PersistencePm::~PersistencePm() { txns_->RemoveListener(this); }

void PersistencePm::OnAbort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = touched_.find(txn);
  if (it == touched_.end()) return;
  for (const Oid& oid : it->second) cache_.erase(oid);
  touched_.erase(it);
}

void PersistencePm::OnCommit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  touched_.erase(txn);
}

void PersistencePm::OnCommitChild(TxnId child, TxnId parent) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = touched_.find(child);
  if (it == touched_.end()) return;
  touched_[parent].merge(it->second);
  touched_.erase(child);
}

void PersistencePm::TrackTouch(TxnId txn, const Oid& oid) {
  std::lock_guard<std::mutex> lock(mu_);
  touched_[txn].insert(oid);
}

Result<Oid> PersistencePm::Persist(TxnId txn, DbObject* obj) {
  if (txn == kNoTxn) {
    return Status::FailedPrecondition("persist outside a transaction");
  }
  if (obj->persistent()) {
    return Status::FailedPrecondition("object is already persistent");
  }
  if (!types_->IsRegistered(obj->class_name())) {
    return Status::NotFound("class " + obj->class_name() +
                            " not registered");
  }
  REACH_ASSIGN_OR_RETURN(Oid oid,
                         storage_->objects()->Insert(txn, obj->Serialize()));
  obj->set_oid(oid);
  REACH_RETURN_IF_ERROR(
      txns_->locks()->Acquire(txn, oid, LockMode::kExclusive));
  REACH_RETURN_IF_ERROR(ExtentAdd(txn, obj->class_name(), oid));
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_[oid] = std::make_shared<DbObject>(*obj);
  }
  TrackTouch(txn, oid);

  SentryEvent ev;
  ev.kind = SentryKind::kPersist;
  ev.class_name = obj->class_name();
  ev.oid = oid;
  ev.txn = txn;
  bus_->Announce(ev);
  return oid;
}

Result<std::shared_ptr<DbObject>> PersistencePm::Fetch(TxnId txn,
                                                       const Oid& oid) {
  if (txn == kNoTxn) {
    return Status::FailedPrecondition("fetch outside a transaction");
  }
  REACH_RETURN_IF_ERROR(txns_->locks()->Acquire(txn, oid, LockMode::kShared));
  std::shared_ptr<DbObject> obj;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(oid);
    if (it != cache_.end()) obj = it->second;
  }
  if (!obj) {
    REACH_ASSIGN_OR_RETURN(std::string bytes, storage_->objects()->Read(oid));
    REACH_ASSIGN_OR_RETURN(DbObject parsed, DbObject::Deserialize(bytes));
    parsed.set_oid(oid);
    obj = std::make_shared<DbObject>(std::move(parsed));
    std::lock_guard<std::mutex> lock(mu_);
    ++faults_;
    cache_[oid] = obj;
  }
  if (bus_->Monitored(SentryKind::kFetch, obj->class_name(), "")) {
    SentryEvent ev;
    ev.kind = SentryKind::kFetch;
    ev.class_name = obj->class_name();
    ev.oid = oid;
    ev.txn = txn;
    bus_->Announce(ev);
  }
  return obj;
}

Status PersistencePm::FetchMany(TxnId txn, const std::vector<Oid>& oids,
                                std::vector<std::shared_ptr<DbObject>>* out) {
  if (txn == kNoTxn) {
    return Status::FailedPrecondition("fetch outside a transaction");
  }
  REACH_RETURN_IF_ERROR(txns_->locks()->AcquireSharedBatch(txn, oids));
  out->clear();
  out->resize(oids.size());
  std::vector<size_t> misses;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < oids.size(); ++i) {
      auto it = cache_.find(oids[i]);
      if (it != cache_.end()) {
        (*out)[i] = it->second;
      } else {
        misses.push_back(i);
      }
    }
  }
  // Read and deserialize misses outside the cache mutex; the S locks keep
  // the stored bytes stable.
  for (size_t i : misses) {
    REACH_ASSIGN_OR_RETURN(std::string bytes,
                           storage_->objects()->Read(oids[i]));
    REACH_ASSIGN_OR_RETURN(DbObject parsed, DbObject::Deserialize(bytes));
    parsed.set_oid(oids[i]);
    (*out)[i] = std::make_shared<DbObject>(std::move(parsed));
  }
  if (!misses.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i : misses) {
      faults_++;
      // A concurrent fetch may have cached the object meanwhile; keep the
      // existing entry so every caller sees one shared instance.
      auto [it, inserted] = cache_.emplace(oids[i], (*out)[i]);
      if (!inserted) (*out)[i] = it->second;
    }
  }
  for (size_t i = 0; i < oids.size(); ++i) {
    const std::shared_ptr<DbObject>& obj = (*out)[i];
    if (bus_->Monitored(SentryKind::kFetch, obj->class_name(), "")) {
      SentryEvent ev;
      ev.kind = SentryKind::kFetch;
      ev.class_name = obj->class_name();
      ev.oid = oids[i];
      ev.txn = txn;
      bus_->Announce(ev);
    }
  }
  return Status::OK();
}

Status PersistencePm::Write(TxnId txn, const DbObject& obj) {
  if (txn == kNoTxn) {
    return Status::FailedPrecondition("write outside a transaction");
  }
  if (!obj.persistent()) {
    return Status::FailedPrecondition("object is not persistent");
  }
  REACH_RETURN_IF_ERROR(
      txns_->locks()->Acquire(txn, obj.oid(), LockMode::kExclusive));
  REACH_RETURN_IF_ERROR(
      storage_->objects()->Update(txn, obj.oid(), obj.Serialize()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_[obj.oid()] = std::make_shared<DbObject>(obj);
  }
  TrackTouch(txn, obj.oid());
  return Status::OK();
}

Status PersistencePm::Delete(TxnId txn, const Oid& oid) {
  if (txn == kNoTxn) {
    return Status::FailedPrecondition("delete outside a transaction");
  }
  REACH_RETURN_IF_ERROR(
      txns_->locks()->Acquire(txn, oid, LockMode::kExclusive));
  // Need the class to fix the extent and parameterize the delete event.
  REACH_ASSIGN_OR_RETURN(std::shared_ptr<DbObject> obj, Fetch(txn, oid));
  REACH_RETURN_IF_ERROR(ExtentRemove(txn, obj->class_name(), oid));

  // Announce before the storage delete so rules can still read the object
  // (the persistent-C++ destructor-event semantics of §4).
  SentryEvent ev;
  ev.kind = SentryKind::kDelete;
  ev.class_name = obj->class_name();
  ev.oid = oid;
  ev.txn = txn;
  bus_->Announce(ev);

  REACH_RETURN_IF_ERROR(storage_->objects()->Delete(txn, oid));
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.erase(oid);
  }
  TrackTouch(txn, oid);
  return Status::OK();
}

Result<Oid> PersistencePm::ExtentAnchor(TxnId txn,
                                        const std::string& class_name) {
  std::string name = ExtentName(class_name);
  auto found = dictionary_->Lookup(name);
  if (found.ok()) return found;
  if (!found.status().IsNotFound()) return found.status();
  // Create a fresh anchor; a concurrent creator may win the Bind race.
  REACH_ASSIGN_OR_RETURN(
      Oid anchor,
      storage_->objects()->Insert(txn, EncodeAnchor(kInvalidOid)));
  Status bind = dictionary_->Bind(txn, name, anchor);
  if (bind.IsAlreadyExists()) {
    REACH_RETURN_IF_ERROR(storage_->objects()->Delete(txn, anchor));
    return dictionary_->Lookup(name);
  }
  if (!bind.ok()) return bind;
  return anchor;
}

Status PersistencePm::ExtentAdd(TxnId txn, const std::string& class_name,
                                const Oid& oid) {
  REACH_ASSIGN_OR_RETURN(Oid anchor, ExtentAnchor(txn, class_name));
  REACH_RETURN_IF_ERROR(
      txns_->locks()->Acquire(txn, anchor, LockMode::kExclusive));
  REACH_ASSIGN_OR_RETURN(std::string anchor_bytes,
                         storage_->objects()->Read(anchor));
  REACH_ASSIGN_OR_RETURN(Oid head, DecodeAnchor(anchor_bytes));
  if (head.valid()) {
    REACH_ASSIGN_OR_RETURN(std::string chunk_bytes,
                           storage_->objects()->Read(head));
    REACH_ASSIGN_OR_RETURN(Chunk chunk, DecodeChunk(chunk_bytes));
    if (chunk.oids.size() < kChunkCapacity) {
      chunk.oids.push_back(oid);
      return storage_->objects()->Update(txn, head, EncodeChunk(chunk));
    }
  }
  Chunk fresh;
  fresh.next = head;
  fresh.oids.push_back(oid);
  REACH_ASSIGN_OR_RETURN(Oid new_head,
                         storage_->objects()->Insert(txn, EncodeChunk(fresh)));
  return storage_->objects()->Update(txn, anchor, EncodeAnchor(new_head));
}

Status PersistencePm::ExtentRemove(TxnId txn, const std::string& class_name,
                                   const Oid& oid) {
  REACH_ASSIGN_OR_RETURN(Oid anchor, ExtentAnchor(txn, class_name));
  REACH_RETURN_IF_ERROR(
      txns_->locks()->Acquire(txn, anchor, LockMode::kExclusive));
  REACH_ASSIGN_OR_RETURN(std::string anchor_bytes,
                         storage_->objects()->Read(anchor));
  REACH_ASSIGN_OR_RETURN(Oid cur, DecodeAnchor(anchor_bytes));
  while (cur.valid()) {
    REACH_ASSIGN_OR_RETURN(std::string chunk_bytes,
                           storage_->objects()->Read(cur));
    REACH_ASSIGN_OR_RETURN(Chunk chunk, DecodeChunk(chunk_bytes));
    for (size_t i = 0; i < chunk.oids.size(); ++i) {
      if (chunk.oids[i] == oid) {
        chunk.oids.erase(chunk.oids.begin() + i);
        return storage_->objects()->Update(txn, cur, EncodeChunk(chunk));
      }
    }
    cur = chunk.next;
  }
  return Status::NotFound("oid not in extent of " + class_name);
}

Result<std::vector<Oid>> PersistencePm::Extent(TxnId txn,
                                               const std::string& class_name) {
  std::string name = ExtentName(class_name);
  auto anchor = dictionary_->Lookup(name);
  if (anchor.status().IsNotFound()) return std::vector<Oid>{};  // empty
  if (!anchor.ok()) return anchor.status();
  REACH_RETURN_IF_ERROR(
      txns_->locks()->Acquire(txn, anchor.value(), LockMode::kShared));
  REACH_ASSIGN_OR_RETURN(std::string anchor_bytes,
                         storage_->objects()->Read(anchor.value()));
  REACH_ASSIGN_OR_RETURN(Oid cur, DecodeAnchor(anchor_bytes));
  std::vector<Oid> out;
  while (cur.valid()) {
    REACH_ASSIGN_OR_RETURN(std::string chunk_bytes,
                           storage_->objects()->Read(cur));
    REACH_ASSIGN_OR_RETURN(Chunk chunk, DecodeChunk(chunk_bytes));
    out.insert(out.end(), chunk.oids.begin(), chunk.oids.end());
    cur = chunk.next;
  }
  return out;
}

size_t PersistencePm::cached_objects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace reach
