// Completion plumbing for asynchronous I/O: a latch that fans a batch of
// submitted operations back into one blocking caller, merging per-operation
// statuses into a single result (first error wins, later ones are dropped).
//
// Used by the async disk backends (storage/disk_backend.h): the submitting
// thread creates one latch per batch, hands CountDown to each worker/
// completion, and blocks in Wait until every operation reported in.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/status.h"

namespace reach {

class CompletionLatch {
 public:
  explicit CompletionLatch(size_t expected) : remaining_(expected) {}

  CompletionLatch(const CompletionLatch&) = delete;
  CompletionLatch& operator=(const CompletionLatch&) = delete;

  /// Report one operation complete. Thread-safe; callable from any worker or
  /// completion-reaper thread. The first non-OK status becomes the batch
  /// status.
  void CountDown(Status st = Status::OK()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!st.ok() && status_.ok()) status_ = std::move(st);
    if (remaining_ > 0 && --remaining_ == 0) cv_.notify_all();
  }

  /// Block until every expected operation counted down; returns the merged
  /// batch status.
  Status Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
    return status_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
  Status status_;
};

}  // namespace reach
