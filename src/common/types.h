// Fundamental identifier and scalar types shared by every REACH layer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace reach {

/// Logical page number within a database file.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Slot index within a slotted page.
using SlotId = uint16_t;

/// Transaction identifier. Id 0 is reserved for "no transaction".
using TxnId = uint64_t;
inline constexpr TxnId kNoTxn = 0;

/// Log sequence number in the write-ahead log.
using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;

/// Monotonic timestamp in microseconds (source: reach::Clock).
using Timestamp = int64_t;

/// Identifier of a registered (primitive or composite) event type.
using EventTypeId = uint32_t;
inline constexpr EventTypeId kInvalidEventType = 0;

/// Identifier of a registered ECA rule.
using RuleId = uint32_t;
inline constexpr RuleId kInvalidRuleId = 0;

/// Persistent object identifier: physical address {page, slot} plus a
/// generation counter so dangling references can be detected after reuse.
struct Oid {
  PageId page = kInvalidPageId;
  SlotId slot = 0;
  uint16_t generation = 0;

  bool valid() const { return page != kInvalidPageId; }
  bool operator==(const Oid&) const = default;
  auto operator<=>(const Oid&) const = default;

  /// Human-readable form "page.slot.gen" used by the data dictionary.
  std::string ToString() const;
};

inline constexpr Oid kInvalidOid{};

}  // namespace reach

template <>
struct std::hash<reach::Oid> {
  size_t operator()(const reach::Oid& oid) const noexcept {
    uint64_t v = (static_cast<uint64_t>(oid.page) << 32) |
                 (static_cast<uint64_t>(oid.slot) << 16) | oid.generation;
    return std::hash<uint64_t>{}(v);
  }
};
