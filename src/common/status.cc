#include "common/status.h"

#include "common/types.h"

namespace reach {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kAlreadyExists: return "AlreadyExists";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kNotSupported: return "NotSupported";
    case Status::Code::kAborted: return "Aborted";
    case Status::Code::kBusy: return "Busy";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kIoError: return "IoError";
    case Status::Code::kOutOfRange: return "OutOfRange";
    case Status::Code::kFailedPrecondition: return "FailedPrecondition";
    case Status::Code::kTimedOut: return "TimedOut";
    case Status::Code::kInternal: return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

std::string Oid::ToString() const {
  if (!valid()) return "oid(invalid)";
  return "oid(" + std::to_string(page) + "." + std::to_string(slot) + "." +
         std::to_string(generation) + ")";
}

}  // namespace reach
