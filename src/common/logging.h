// Minimal leveled logger. Off by default so benchmarks measure the system,
// not the log stream.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace reach {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& Get() {
    static Logger instance;
    return instance;
  }

  void set_level(LogLevel level) { level_.store(level); }
  LogLevel level() const { return level_.load(); }

  void Log(LogLevel level, const std::string& msg);

 private:
  std::atomic<LogLevel> level_{LogLevel::kOff};
  std::mutex mu_;
};

#define REACH_LOG(level, stream_expr)                                   \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::reach::Logger::Get().level())) {             \
      std::ostringstream _oss;                                          \
      _oss << stream_expr;                                              \
      ::reach::Logger::Get().Log(level, _oss.str());                    \
    }                                                                   \
  } while (0)

#define REACH_DEBUG(s) REACH_LOG(::reach::LogLevel::kDebug, s)
#define REACH_INFO(s) REACH_LOG(::reach::LogLevel::kInfo, s)
#define REACH_WARN(s) REACH_LOG(::reach::LogLevel::kWarn, s)
#define REACH_ERROR(s) REACH_LOG(::reach::LogLevel::kError, s)

}  // namespace reach
