// Status: the error-reporting idiom used across REACH (no exceptions on the
// core paths, following the RocksDB/Arrow convention).
#pragma once

#include <string>
#include <utility>

namespace reach {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kAlreadyExists,
    kInvalidArgument,
    kNotSupported,      // e.g. an illegal Table-1 event/coupling combination
    kAborted,           // transaction aborted (deadlock, user abort, rule)
    kBusy,              // lock not available in try-lock mode
    kCorruption,        // storage-level integrity violation
    kIoError,
    kOutOfRange,
    kFailedPrecondition,
    kTimedOut,
    kInternal,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

/// Propagate a non-OK Status to the caller.
#define REACH_STATUS_CONCAT_IMPL_(a, b) a##b
#define REACH_STATUS_CONCAT_(a, b) REACH_STATUS_CONCAT_IMPL_(a, b)
#define REACH_RETURN_IF_ERROR(expr)                                  \
  do {                                                               \
    ::reach::Status REACH_STATUS_CONCAT_(_st_, __LINE__) = (expr);   \
    if (!REACH_STATUS_CONCAT_(_st_, __LINE__).ok())                  \
      return REACH_STATUS_CONCAT_(_st_, __LINE__);                   \
  } while (0)

}  // namespace reach
