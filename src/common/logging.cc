#include "common/logging.h"

namespace reach {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::Log(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << "[" << LevelName(level) << "] " << msg << "\n";
}

}  // namespace reach
