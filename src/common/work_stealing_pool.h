// Work-stealing task pool: per-worker deques plus stealing, replacing the
// central mutex+deque ThreadPool on the event-composition hot path. Each
// worker owns a queue; producers enqueue to their own queue when they *are*
// a worker (composition cascades stay cache-local) and round-robin across
// queues otherwise, so N detecting threads never serialize on one pool
// mutex. An idle worker steals from the back of a sibling's queue (the
// owner pops the front), skipping victims whose lock is busy.
//
// Quiesce semantics match ThreadPool::WaitIdle: drained means every queue
// is empty AND every worker is idle — tracked by one atomic `pending_`
// (queued + running) that workers decrement only after the task body
// returns, so tasks that submit follow-up tasks (composite events feeding
// further compositors) keep the pool non-idle until the cascade dies out.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reach {

template <typename Task>
class WorkStealingPool {
 public:
  using Runner = std::function<void(Task&)>;

  WorkStealingPool(size_t num_threads, Runner runner)
      : runner_(std::move(runner)),
        queues_(num_threads == 0 ? 1 : num_threads) {
    workers_.reserve(queues_.size());
    for (size_t i = 0; i < queues_.size(); ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~WorkStealingPool() { Shutdown(); }

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueue a task. Returns false if the pool is shutting down.
  bool Submit(Task task) {
    WorkerQueue& q = queues_[HomeQueue()];
    {
      std::lock_guard<std::mutex> lock(q.mu);
      if (shutdown_.load(std::memory_order_relaxed)) return false;
      pending_.fetch_add(1);
      queued_.fetch_add(1);
      q.tasks.push_back(std::move(task));
    }
    if (sleepers_.load() > 0) {
      std::lock_guard<std::mutex> lock(sleep_mu_);
      work_cv_.notify_one();
    }
    return true;
  }

  /// Enqueue `tasks` with one queue-lock acquisition and one wake-up pass —
  /// the batched-admission counterpart of Submit (docs/EVENTS.md "Batched
  /// pipeline"). All tasks land on one queue, in order; siblings steal from
  /// its back as usual. Returns false (enqueuing nothing) on shutdown.
  bool SubmitBatch(std::vector<Task> tasks) {
    if (tasks.empty()) return true;
    WorkerQueue& q = queues_[HomeQueue()];
    {
      std::lock_guard<std::mutex> lock(q.mu);
      if (shutdown_.load(std::memory_order_relaxed)) return false;
      pending_.fetch_add(tasks.size());
      queued_.fetch_add(tasks.size());
      for (Task& t : tasks) q.tasks.push_back(std::move(t));
    }
    if (sleepers_.load() > 0) {
      std::lock_guard<std::mutex> lock(sleep_mu_);
      work_cv_.notify_all();
    }
    return true;
  }

  /// Block until every queue is empty and every worker is idle.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(sleep_mu_);
    idle_cv_.wait(lock, [&] { return pending_.load() == 0; });
  }

  /// Stop accepting tasks, drain the queues, join workers. Idempotent.
  void Shutdown() {
    {
      // Hold every queue lock while flipping the flag so no Submit is
      // mid-push against a pool whose workers already decided to exit.
      std::vector<std::unique_lock<std::mutex>> locks;
      locks.reserve(queues_.size());
      for (WorkerQueue& q : queues_) locks.emplace_back(q.mu);
      shutdown_.store(true);
    }
    {
      std::lock_guard<std::mutex> lock(sleep_mu_);
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  /// Invoked (from a worker thread) each time a task is taken from another
  /// worker's queue. Set before any Submit; used to mirror a metrics
  /// counter without coupling this header to the obs layer.
  void set_steal_callback(std::function<void()> cb) {
    steal_cb_ = std::move(cb);
  }

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently enqueued across all queues (excluding running ones).
  size_t QueueDepth() const { return queued_.load(); }

  uint64_t steal_count() const { return steals_.load(); }

 private:
  struct alignas(64) WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// Workers enqueue to their own queue; external threads round-robin.
  size_t HomeQueue() {
    if (tls_pool_ == this) return tls_index_;
    return next_queue_.fetch_add(1, std::memory_order_relaxed) %
           queues_.size();
  }

  /// Owner dequeue: drain up to kOwnerDrain tasks from the front of our own
  /// queue under one lock (batch dequeue — the per-task lock acquisition was
  /// half the pop cost), falling back to stealing a single task otherwise.
  /// Drained tasks are no longer visible to thieves; the drain cap bounds
  /// how much work a slow task can strand behind it.
  static constexpr size_t kOwnerDrain = 8;

  size_t TryTake(size_t me, std::vector<Task>* out) {
    {
      WorkerQueue& mine = queues_[me];
      std::lock_guard<std::mutex> lock(mine.mu);
      if (!mine.tasks.empty()) {
        const size_t take = std::min(kOwnerDrain, mine.tasks.size());
        for (size_t i = 0; i < take; ++i) {
          out->push_back(std::move(mine.tasks.front()));
          mine.tasks.pop_front();
        }
        queued_.fetch_sub(take);
        return take;
      }
    }
    Task stolen;
    if (TrySteal(me, &stolen)) {
      out->push_back(std::move(stolen));
      return 1;
    }
    return 0;
  }

  bool TrySteal(size_t me, Task* out) {
    for (size_t k = 1; k < queues_.size(); ++k) {
      WorkerQueue& victim = queues_[(me + k) % queues_.size()];
      std::unique_lock<std::mutex> lock(victim.mu, std::try_to_lock);
      // A busy victim lock means its owner is actively pushing/popping;
      // move on rather than blocking — a missed steal only delays us until
      // the next scan.
      if (!lock.owns_lock() || victim.tasks.empty()) continue;
      *out = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      queued_.fetch_sub(1);
      lock.unlock();
      steals_.fetch_add(1, std::memory_order_relaxed);
      if (steal_cb_) steal_cb_();
      return true;
    }
    return false;
  }

  void WorkerLoop(size_t me) {
    tls_pool_ = this;
    tls_index_ = me;
    std::vector<Task> taken;
    taken.reserve(kOwnerDrain);
    for (;;) {
      taken.clear();
      if (TryTake(me, &taken) > 0) {
        for (Task& task : taken) {
          runner_(task);
          // Decrement per task (not per drain) so WaitIdle only observes
          // idle when every taken task has actually finished running.
          if (pending_.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> lock(sleep_mu_);
            idle_cv_.notify_all();
          }
        }
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleepers_.fetch_add(1);
      work_cv_.wait(lock, [&] {
        return shutdown_.load() || queued_.load() > 0;
      });
      sleepers_.fetch_sub(1);
      if (shutdown_.load() && queued_.load() == 0) return;
    }
  }

  Runner runner_;
  std::function<void()> steal_cb_;
  std::vector<WorkerQueue> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pending_{0};  // queued + running
  std::atomic<size_t> queued_{0};   // queued only
  std::atomic<size_t> sleepers_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex sleep_mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;

  static inline thread_local const void* tls_pool_ = nullptr;
  static inline thread_local size_t tls_index_ = 0;
};

}  // namespace reach
