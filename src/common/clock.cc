#include "common/clock.h"

#include <chrono>

namespace reach {

namespace {
Timestamp SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Timestamp RealClock::Now() const { return SteadyNowMicros(); }

void RealClock::SleepUntil(Timestamp deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t start_gen = wake_generation_;
  cv_.wait_for(lock,
               std::chrono::microseconds(
                   deadline > SteadyNowMicros() ? deadline - SteadyNowMicros()
                                                : 0),
               [&] {
                 return SteadyNowMicros() >= deadline ||
                        wake_generation_ != start_gen;
               });
}

void RealClock::WakeAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++wake_generation_;
  }
  cv_.notify_all();
}

void VirtualClock::Advance(Timestamp delta_us) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_.fetch_add(delta_us);
    ++wake_generation_;
  }
  cv_.notify_all();
}

void VirtualClock::Set(Timestamp now_us) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Timestamp cur = now_.load();
    if (now_us > cur) now_.store(now_us);
    ++wake_generation_;
  }
  cv_.notify_all();
}

void VirtualClock::SleepUntil(Timestamp deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t start_gen = wake_generation_;
  cv_.wait(lock, [&] {
    return now_.load() >= deadline || wake_generation_ != start_gen;
  });
}

void VirtualClock::WakeAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++wake_generation_;
  }
  cv_.notify_all();
}

}  // namespace reach
