// Clock abstraction. Temporal events (absolute, periodic, milestones) must be
// testable deterministically, so all time in REACH flows through a Clock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "common/types.h"

namespace reach {

/// Source of microsecond timestamps. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds. Monotonic non-decreasing.
  virtual Timestamp Now() const = 0;

  /// Block until Now() >= `deadline` or `WakeAll()` is called (virtual
  /// clocks wake sleepers on every Advance).
  virtual void SleepUntil(Timestamp deadline) = 0;

  /// Wake any thread blocked in SleepUntil (used on shutdown).
  virtual void WakeAll() = 0;
};

/// Wall-clock backed by std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  Timestamp Now() const override;
  void SleepUntil(Timestamp deadline) override;
  void WakeAll() override;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool wake_generation_bumped_ = false;
  uint64_t wake_generation_ = 0;
};

/// Manually advanced clock for deterministic tests and benchmarks.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override { return now_.load(); }

  /// Move time forward by `delta_us` and wake sleepers.
  void Advance(Timestamp delta_us);

  /// Jump to an absolute time (must not go backwards) and wake sleepers.
  void Set(Timestamp now_us);

  void SleepUntil(Timestamp deadline) override;
  void WakeAll() override;

 private:
  std::atomic<Timestamp> now_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t wake_generation_ = 0;
};

}  // namespace reach
