// Deterministic PRNG (xorshift128+) for workload generators and property
// tests. Seeded explicitly so every run is reproducible.
#pragma once

#include <cstdint>

namespace reach {

class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    s0_ = seed ? seed : 1;
    s1_ = SplitMix(s0_);
    s0_ = SplitMix(s1_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) / (1ULL << 53);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  static uint64_t SplitMix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  uint64_t s0_, s1_;
};

}  // namespace reach
