// Unbounded multi-producer/multi-consumer queue. Event objects travel from
// the sentries through the ECA managers to the compositor threads on these.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace reach {

template <typename T>
class MpmcQueue {
 public:
  MpmcQueue() = default;
  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Push an item; returns false after Close().
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block for the next item. Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Stop accepting pushes and wake all blocked consumers.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace reach
