// Result<T>: a value-or-Status holder, the Arrow-style companion to Status.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace reach {

template <typename T>
class Result {
 public:
  /// Implicit from a value — enables `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  /// Implicit from a non-OK Status — enables `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluate a Result-returning expression; assign value or propagate Status.
#define REACH_ASSIGN_OR_RETURN(lhs, expr)        \
  auto REACH_CONCAT_(_res, __LINE__) = (expr);   \
  if (!REACH_CONCAT_(_res, __LINE__).ok())       \
    return REACH_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(REACH_CONCAT_(_res, __LINE__)).value()

#define REACH_CONCAT_IMPL_(a, b) a##b
#define REACH_CONCAT_(a, b) REACH_CONCAT_IMPL_(a, b)

}  // namespace reach
