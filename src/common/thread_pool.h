// Fixed-size worker pool used for parallel rule execution, detached
// transactions, event compositors, and the global-history background process.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace reach {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>=1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution. Returns false if the pool is
  /// shutting down.
  bool Submit(std::function<void()> task);

  /// Enqueue a task and get a future for its completion.
  template <typename F>
  auto SubmitWithResult(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto prom = std::make_shared<std::promise<R>>();
    std::future<R> fut = prom->get_future();
    bool accepted = Submit([prom, fn = std::forward<F>(fn)]() mutable {
      if constexpr (std::is_void_v<R>) {
        fn();
        prom->set_value();
      } else {
        prom->set_value(fn());
      }
    });
    if (!accepted) {
      prom->set_exception(std::make_exception_ptr(
          std::runtime_error("thread pool shut down")));
    }
    return fut;
  }

  /// Block until the queue is empty and all workers are idle.
  void WaitIdle();

  /// Stop accepting tasks, drain the queue, join workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently queued (excluding running ones); for tests/benches.
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace reach
