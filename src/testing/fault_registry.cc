#include "testing/fault_registry.h"

#include <algorithm>
#include <cstdlib>

#include "testing/fault_points.h"

namespace reach {

std::atomic<bool> FaultRegistry::enabled_{false};

namespace {

constexpr uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

/// SplitMix64 finalizer: maps (seed, key) to a uniform 64-bit value so keyed
/// probability decisions are independent of evaluation order.
uint64_t MixKey(uint64_t seed, uint64_t key) {
  uint64_t x = seed ^ (key + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ToUnitDouble(uint64_t v) {
  return static_cast<double>(v >> 11) / static_cast<double>(1ULL << 53);
}

Status::Code CodeFromName(const std::string& name) {
  if (name == "io") return Status::Code::kIoError;
  if (name == "corruption") return Status::Code::kCorruption;
  if (name == "aborted") return Status::Code::kAborted;
  if (name == "busy") return Status::Code::kBusy;
  if (name == "timedout") return Status::Code::kTimedOut;
  if (name == "notfound") return Status::Code::kNotFound;
  if (name == "internal") return Status::Code::kInternal;
  return Status::Code::kIoError;
}

}  // namespace

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

FaultRegistry::FaultRegistry() : rng_(kDefaultSeed), seed_(kDefaultSeed) {
  for (const char* name : faults::kAll) points_.emplace(name, Point{});
  if (const char* seed = std::getenv("REACH_FAULTS_SEED")) {
    SetSeed(std::strtoull(seed, nullptr, 0));
  }
  if (const char* spec = std::getenv("REACH_FAULTS")) ParseEnv(spec);
}

// REACH_FAULTS grammar (entries separated by ';' or ','):
//   <point>=error[:<code>][@<nth>]     one-shot error on the nth hit
//   <point>=crash[@<nth>]              simulated crash on the nth hit
//   <point>=perror[:<code>]:<p>        error with probability p per hit
void FaultRegistry::ParseEnv(const char* spec) {
  std::string s(spec);
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find_first_of(";,", start);
    if (end == std::string::npos) end = s.size();
    std::string entry = s.substr(start, end - start);
    start = end + 1;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    std::string point = entry.substr(0, eq);
    std::string action = entry.substr(eq + 1);

    uint64_t nth = 1;
    if (size_t at = action.find('@'); at != std::string::npos) {
      nth = std::strtoull(action.c_str() + at + 1, nullptr, 0);
      if (nth == 0) nth = 1;
      action.resize(at);
    }
    // Split "kind[:arg[:arg]]".
    std::vector<std::string> parts;
    for (size_t p = 0; p <= action.size();) {
      size_t colon = action.find(':', p);
      if (colon == std::string::npos) colon = action.size();
      parts.push_back(action.substr(p, colon - p));
      p = colon + 1;
    }
    const std::string& kind = parts[0];
    if (kind == "crash") {
      ArmCrash(point, nth);
    } else if (kind == "perror") {
      Status::Code code = Status::Code::kIoError;
      double prob = 0.0;
      if (parts.size() == 2) {
        prob = std::strtod(parts[1].c_str(), nullptr);
      } else if (parts.size() >= 3) {
        code = CodeFromName(parts[1]);
        prob = std::strtod(parts[2].c_str(), nullptr);
      }
      ArmErrorWithProbability(point, code, prob);
    } else {  // "error" (default)
      Status::Code code = parts.size() >= 2 ? CodeFromName(parts[1])
                                            : Status::Code::kIoError;
      ArmError(point, code, nth);
    }
  }
}

void FaultRegistry::Arm(const std::string& point, Armed fault) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[point];  // unknown names register on first arm
  p.armed = true;
  p.fault = fault;
  RecomputeEnabled();
}

void FaultRegistry::ArmError(const std::string& point, Status::Code code,
                             uint64_t nth, bool one_shot) {
  Armed fault;
  fault.kind = ActionKind::kError;
  fault.code = code;
  fault.remaining = nth == 0 ? 1 : nth;
  fault.one_shot = one_shot;
  Arm(point, fault);
}

void FaultRegistry::ArmCrash(const std::string& point, uint64_t nth) {
  Armed fault;
  fault.kind = ActionKind::kCrash;
  fault.remaining = nth == 0 ? 1 : nth;
  fault.one_shot = true;
  Arm(point, fault);
}

void FaultRegistry::ArmErrorWithProbability(const std::string& point,
                                            Status::Code code, double p) {
  Armed fault;
  fault.kind = ActionKind::kError;
  fault.code = code;
  fault.probability = p;
  fault.one_shot = false;
  Arm(point, fault);
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
  RecomputeEnabled();
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, p] : points_) {
    p.armed = false;
    p.hits = 0;
    p.fired = 0;
  }
  fired_total_ = 0;
  RecomputeEnabled();
}

void FaultRegistry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  rng_ = Random(seed);
}

uint64_t FaultRegistry::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

std::vector<std::string> FaultRegistry::Points() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, _] : points_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t FaultRegistry::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultRegistry::FiredCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fired;
}

uint64_t FaultRegistry::total_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_total_;
}

void FaultRegistry::RecomputeEnabled() {
  bool any = false;
  for (const auto& [_, p] : points_) {
    if (p.armed) {
      any = true;
      break;
    }
  }
  enabled_.store(any, std::memory_order_relaxed);
}

Status FaultRegistry::MakeError(Status::Code code, const std::string& point) {
  std::string msg = "injected fault at " + point;
  switch (code) {
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(msg));
    case Status::Code::kAborted:
      return Status::Aborted(std::move(msg));
    case Status::Code::kBusy:
      return Status::Busy(std::move(msg));
    case Status::Code::kTimedOut:
      return Status::TimedOut(std::move(msg));
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kInternal:
      return Status::Internal(std::move(msg));
    default:
      return Status::IoError(std::move(msg));
  }
}

Status FaultRegistry::Evaluate(const char* point) {
  return DoEvaluate(point, /*keyed=*/false, 0);
}

Status FaultRegistry::EvaluateKeyed(const char* point, uint64_t key) {
  return DoEvaluate(point, /*keyed=*/true, key);
}

Status FaultRegistry::DoEvaluate(const char* point, bool keyed, uint64_t key) {
  bool crash = false;
  Status result = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    Point& p = points_[point];
    ++p.hits;
    if (!p.armed) return Status::OK();
    Armed& fault = p.fault;

    bool fire;
    if (fault.probability >= 0.0) {
      double draw = keyed ? ToUnitDouble(MixKey(seed_, key))
                          : rng_.NextDouble();
      fire = draw < fault.probability;
    } else {
      fire = fault.remaining <= 1;
      if (!fire) --fault.remaining;
    }
    if (!fire) return Status::OK();

    ++p.fired;
    ++fired_total_;
    if (fault.one_shot) {
      p.armed = false;
      RecomputeEnabled();
    }
    if (fault.kind == ActionKind::kCrash) {
      crash = true;
    } else {
      result = MakeError(fault.code, point);
    }
  }
  if (crash) throw FaultInjectedCrash(point);
  return result;
}

namespace {
// The hot-path macros consult the static enabled_ gate without touching the
// singleton, so nothing would ever parse REACH_FAULTS in a binary that only
// arms faults from the environment. Constructing the registry at program
// start closes that hole.
[[maybe_unused]] const bool kEnvParsedAtStartup =
    (FaultRegistry::Instance(), true);
}  // namespace

}  // namespace reach
