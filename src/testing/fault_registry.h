// Deterministic fault injection. A FaultRegistry holds a set of named fault
// points (see fault_points.h) compiled into the I/O, transaction, and rule
// layers via REACH_FAULT_POINT. Tests arm a point with an action — an
// injected Status error or a simulated crash — and a trigger — the nth
// future hit, or a probability drawn from a seeded PRNG — then drive a
// workload and observe how the failure surfaces.
//
// Determinism: nth-hit triggers count hits under the registry lock, so a
// single-threaded workload replays identically. Probability triggers come in
// two flavours: Evaluate() draws from the registry's seeded PRNG (stream
// order = schedule order), while EvaluateKeyed(point, key) hashes
// (seed, key) — the decision depends only on the key, never on thread
// interleaving, which is what lets serial and parallel rule execution see
// the *same* injected aborts.
//
// Overhead when disabled: one relaxed atomic bool load per fault point
// (verified by bench_fault_overhead and the <2% pipeline-regression gate).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace reach {

/// Thrown by a fault point armed with ArmCrash: simulates the process dying
/// at that instruction. The test harness catches it at the top of the
/// workload, destroys the component stack *without clean shutdown* (the
/// repo-wide crash convention: dirty pages and unflushed WAL buffer are
/// lost), and reopens to exercise recovery. Only arm crash faults on paths
/// executed by the test's own thread — an escape from a pool thread
/// terminates the process.
class FaultInjectedCrash : public std::exception {
 public:
  explicit FaultInjectedCrash(std::string point)
      : point_(std::move(point)),
        what_("injected crash at fault point " + point_) {}
  const char* what() const noexcept override { return what_.c_str(); }
  const std::string& point() const { return point_; }

 private:
  std::string point_;
  std::string what_;
};

class FaultRegistry {
 public:
  /// Process-wide singleton. First call parses REACH_FAULTS /
  /// REACH_FAULTS_SEED from the environment (format in docs/TESTING.md).
  static FaultRegistry& Instance();

  /// Fast global gate: true iff any point is armed. Inlined into the
  /// REACH_FAULT_POINT macro so disabled injection costs one relaxed load.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  // -- Arming ---------------------------------------------------------------

  /// Inject `code` on the `nth` future hit of `point` (nth=1: next hit).
  /// one_shot disarms after firing; otherwise every hit from the nth on
  /// fires.
  void ArmError(const std::string& point, Status::Code code, uint64_t nth = 1,
                bool one_shot = true);

  /// Throw FaultInjectedCrash on the nth future hit.
  void ArmCrash(const std::string& point, uint64_t nth = 1);

  /// Inject `code` with probability `p` per hit. Unkeyed hits draw from the
  /// registry PRNG; keyed hits (EvaluateKeyed) hash (seed, key).
  void ArmErrorWithProbability(const std::string& point, Status::Code code,
                               double p);

  void Disarm(const std::string& point);
  /// Disarm every point and zero all hit/fired counters.
  void DisarmAll();

  /// Reseed the PRNG used by probability triggers.
  void SetSeed(uint64_t seed);
  uint64_t seed() const;

  // -- Introspection --------------------------------------------------------

  /// Every registered point name, sorted (the fault-sweep test iterates
  /// this).
  std::vector<std::string> Points() const;
  uint64_t HitCount(const std::string& point) const;
  uint64_t FiredCount(const std::string& point) const;
  uint64_t total_fired() const;

  // -- Hot path (called via REACH_FAULT_POINT) ------------------------------

  Status Evaluate(const char* point);
  /// Like Evaluate, but probability triggers decide from hash(seed, key):
  /// deterministic per key regardless of thread schedule.
  Status EvaluateKeyed(const char* point, uint64_t key);

 private:
  enum class ActionKind { kError, kCrash };
  struct Armed {
    ActionKind kind = ActionKind::kError;
    Status::Code code = Status::Code::kIoError;
    uint64_t remaining = 1;  // nth-hit countdown (0 = fire now)
    double probability = -1.0;  // >= 0 selects the probability trigger
    bool one_shot = true;
  };
  struct Point {
    bool armed = false;
    Armed fault;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  FaultRegistry();
  void ParseEnv(const char* spec);
  void Arm(const std::string& point, Armed fault);
  Status DoEvaluate(const char* point, bool keyed, uint64_t key);
  static Status MakeError(Status::Code code, const std::string& point);
  void RecomputeEnabled();  // callers hold mu_

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Point> points_;
  Random rng_;
  uint64_t seed_;
  uint64_t fired_total_ = 0;
};

/// Evaluate a fault point and propagate an injected error to the caller
/// (works in functions returning Status or Result<T>). Crash faults throw.
#define REACH_FAULT_POINT(point)                                          \
  do {                                                                    \
    if (::reach::FaultRegistry::enabled()) {                              \
      ::reach::Status _reach_fault_st =                                   \
          ::reach::FaultRegistry::Instance().Evaluate(point);             \
      if (!_reach_fault_st.ok()) return _reach_fault_st;                  \
    }                                                                     \
  } while (0)

/// Expression form for call sites that handle the Status themselves.
#define REACH_FAULT_HIT(point)                               \
  (::reach::FaultRegistry::enabled()                         \
       ? ::reach::FaultRegistry::Instance().Evaluate(point)  \
       : ::reach::Status::OK())

#define REACH_FAULT_HIT_KEYED(point, key)                              \
  (::reach::FaultRegistry::enabled()                                   \
       ? ::reach::FaultRegistry::Instance().EvaluateKeyed(point, key)  \
       : ::reach::Status::OK())

}  // namespace reach
