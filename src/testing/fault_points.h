// Central manifest of named fault points. Every REACH_FAULT_POINT call site
// uses one of these constants, and the registry pre-registers the whole
// list, so torture suites can enumerate every point without first having to
// drive execution through it.
//
// Naming scheme: `component.operation[.phase]` — e.g. `wal.flush.fsync` is
// the phase of Wal::Flush between the buffered write and the fsync. See
// docs/TESTING.md.
#pragma once

namespace reach::faults {

// -- DiskManager -----------------------------------------------------------
inline constexpr const char* kDiskReadPage = "disk.read_page";
inline constexpr const char* kDiskWritePage = "disk.write_page";
inline constexpr const char* kDiskAllocatePage = "disk.allocate_page";
inline constexpr const char* kDiskSync = "disk.sync";
/// Batched backend path (DiskManager::ReadPages/WritePages): `submit` fires
/// before the batch is handed to the DiskBackend, `complete` after its
/// completions are reaped — both fire even for empty batches, so every
/// checkpoint/readahead crosses them regardless of backend.
inline constexpr const char* kDiskBackendSubmit = "disk.backend.submit";
inline constexpr const char* kDiskBackendComplete = "disk.backend.complete";

// -- Wal -------------------------------------------------------------------
inline constexpr const char* kWalAppend = "wal.append";
inline constexpr const char* kWalFlushWrite = "wal.flush.write";
inline constexpr const char* kWalFlushFsync = "wal.flush.fsync";
inline constexpr const char* kWalTruncate = "wal.truncate";
/// Start of a group-commit batch attempt, evaluated on the flusher thread.
/// An injected error fails every WaitDurable waiter of the batch with the
/// same status; an injected crash simulates the process dying mid-batch
/// (rethrown on the committer threads — see Wal::FlusherLoop).
inline constexpr const char* kWalFlusherBatch = "wal.flusher.batch";

// -- Durable event history (docs/EVENTS.md "Durability & recovery") --------
/// Appending one cross-txn occurrence record at Signal time.
inline constexpr const char* kEventHistoryAppend = "wal.event_history.append";
/// Writing a compositor partial-state checkpoint record.
inline constexpr const char* kEventHistoryCheckpoint =
    "wal.event_history.checkpoint";
/// Replaying checkpoint + tail into a compositor at DefineComposite time.
inline constexpr const char* kEventHistoryReplay = "wal.event_history.replay";
/// Re-appending surviving event records across a log truncation.
inline constexpr const char* kEventHistoryCarryover =
    "wal.event_history.carryover";

// -- BufferPool ------------------------------------------------------------
inline constexpr const char* kBufFetch = "bufferpool.fetch";
inline constexpr const char* kBufEvictWriteback = "bufferpool.evict.writeback";
inline constexpr const char* kBufFlushPage = "bufferpool.flush_page";
inline constexpr const char* kBufFlushAll = "bufferpool.flush_all";
/// Start of one background-writeback pass (BufferPool::WritebackPass) —
/// fires even when nothing is dirty, like the disk.backend.* convention, so
/// every pass (including the flush-behind pass on pool shutdown) crosses
/// it. On the writeback thread an injected crash is caught and parked, then
/// rethrown from the next foreground TriggerWriteback.
inline constexpr const char* kBufWriteback = "bufferpool.writeback";

// -- TransactionManager ----------------------------------------------------
inline constexpr const char* kTxnBegin = "txn.begin";
inline constexpr const char* kTxnCommitEntry = "txn.commit.entry";
inline constexpr const char* kTxnCommitForce = "txn.commit.force";
inline constexpr const char* kTxnAbortEntry = "txn.abort.entry";

// -- Query executor --------------------------------------------------------
/// Start of one extent-scan morsel (both the serial fallback and parallel
/// workers cross it). An injected error fails the whole query with that
/// status — no partial rows are returned. On a parallel worker an injected
/// crash is caught and rethrown on the thread that issued the query; the
/// serial path throws on the caller directly.
inline constexpr const char* kQueryMorsel = "query.morsel";

// -- RuleEngine ------------------------------------------------------------
inline constexpr const char* kRuleDeferredFlush = "rule.deferred.flush";
inline constexpr const char* kRuleSubtxnExec = "rule.subtxn.exec";
inline constexpr const char* kRuleDetachedExec = "rule.detached.exec";

inline constexpr const char* kAll[] = {
    kDiskReadPage,    kDiskWritePage,     kDiskAllocatePage, kDiskSync,
    kDiskBackendSubmit, kDiskBackendComplete,
    kWalAppend,       kWalFlushWrite,     kWalFlushFsync,    kWalTruncate,
    kWalFlusherBatch,
    kEventHistoryAppend, kEventHistoryCheckpoint, kEventHistoryReplay,
    kEventHistoryCarryover,
    kBufFetch,        kBufEvictWriteback, kBufFlushPage,     kBufFlushAll,
    kBufWriteback,
    kTxnBegin,        kTxnCommitEntry,    kTxnCommitForce,   kTxnAbortEntry,
    kQueryMorsel,
    kRuleDeferredFlush, kRuleSubtxnExec,  kRuleDetachedExec,
};

}  // namespace reach::faults
