// Pipeline spans: per-stage latency of one event occurrence travelling
// sentry -> ECA-manager dispatch -> compositor -> rule execution.
//
// A span is not an object that travels with the occurrence — that would put
// an allocation on the hot path. Instead the occurrence carries one origin
// timestamp (`detect_ns`, 0 = unmeasured), stamped where detection happens,
// and each downstream stage records `now - origin` into that stage's
// histogram. Stage histograms are process-wide and live in the
// MetricsRegistry; the rule engine additionally tags its stages by coupling
// mode (rules.exec_ns.<mode>, rules.fire_lag_ns.<mode>).
#pragma once

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace reach::obs {

/// The three untagged pipeline stage histograms, resolved once per process.
struct PipelineSpans {
  Histogram* sentry_to_signal;
  Histogram* signal_to_dispatch;
  Histogram* signal_to_compose;

  static const PipelineSpans& Get() {
    static const PipelineSpans spans = [] {
      MetricsRegistry& reg = MetricsRegistry::Instance();
      return PipelineSpans{reg.histogram(kSpanSentryToSignal),
                           reg.histogram(kSpanSignalToDispatch),
                           reg.histogram(kSpanSignalToCompose)};
    }();
    return spans;
  }
};

/// Record `now - origin_ns` into `hist`. No-op when the origin was never
/// stamped (metrics were off at detection) or metrics are off now.
inline void RecordSpanSince(Histogram* hist, uint64_t origin_ns) {
  if (origin_ns == 0 || !MetricsEnabled()) return;
  uint64_t now = NowNanos();
  hist->RecordAlways(now > origin_ns ? now - origin_ns : 0);
}

}  // namespace reach::obs
