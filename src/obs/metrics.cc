#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace reach::obs {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

/// Stable per-thread shard assignment: threads round-robin over shards in
/// creation order, so a fixed thread population spreads evenly.
size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % Histogram::kShards;
  return shard;
}

void AppendJsonKey(std::string* out, const std::string& key) {
  out->push_back('"');
  // Metric names are plain identifiers (dots, dashes, alnum); escape the two
  // characters that could break the quoting anyway.
  for (char c : key) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\":");
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  int msb = 63 - std::countl_zero(value);
  int shift = msb - kSubBits;
  size_t sub = (value >> shift) & (kSubBuckets - 1);
  return static_cast<size_t>(msb - kSubBits + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return index;
  size_t octave = index / kSubBuckets;
  uint64_t sub = index % kSubBuckets;
  return (static_cast<uint64_t>(kSubBuckets) + sub) << (octave - 1);
}

void Histogram::RecordAlways(uint64_t value) {
  Shard& s = shards_[ThreadShard()];
  s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = s.max.load(std::memory_order_relaxed);
  while (value > prev &&
         !s.max.compare_exchange_weak(prev, value,
                                      std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
  }
  for (uint64_t n : snap.buckets) snap.count += n;
  return snap;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

uint64_t HistogramSnapshot::ValueAtPercentile(double p) const {
  if (count == 0) return 0;
  if (p > 100.0) p = 100.0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::BucketLowerBound(i);
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  if (const char* spec = std::getenv("REACH_METRICS")) ParseEnv(spec);
}

// REACH_METRICS grammar (entries separated by ',' or ';'):
//   on | 1 | true     enable collection
//   off | 0           disable collection (overrides an earlier enable)
//   dump=<path>       enable, and write SnapshotJson() to <path> at exit
void MetricsRegistry::ParseEnv(const char* spec) {
  std::string s(spec);
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find_first_of(",;", start);
    if (end == std::string::npos) end = s.size();
    std::string entry = s.substr(start, end - start);
    start = end + 1;
    if (entry == "on" || entry == "1" || entry == "true") {
      SetEnabled(true);
    } else if (entry == "off" || entry == "0" || entry == "false") {
      SetEnabled(false);
    } else if (entry.rfind("dump=", 0) == 0) {
      SetEnabled(true);
      static std::string dump_path;  // read by the single atexit hook
      dump_path = entry.substr(5);
      std::atexit([] {
        MetricsRegistry::Instance().DumpJson(dump_path);
      });
    }
    if (end == s.size()) break;
  }
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, _] : counters_) out.push_back("counter/" + name);
  for (const auto& [name, _] : gauges_) out.push_back("gauge/" + name);
  for (const auto& [name, _] : histograms_) out.push_back("histogram/" + name);
  return out;  // each map is sorted; kinds grouped
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"enabled\": ";
  out += MetricsEnabled() ? "true" : "false";
  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += " " + std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += " " + std::to_string(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap = h->Snapshot();
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += " {\"count\": " + std::to_string(snap.count);
    out += ", \"sum\": " + std::to_string(snap.sum);
    out += ", \"max\": " + std::to_string(snap.max);
    out += ", \"p50\": " + std::to_string(snap.ValueAtPercentile(50));
    out += ", \"p95\": " + std::to_string(snap.ValueAtPercentile(95));
    out += ", \"p99\": " + std::to_string(snap.ValueAtPercentile(99));
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

bool MetricsRegistry::DumpJson(const std::string& path) const {
  std::string json = SnapshotJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

namespace {
// Nothing would ever parse REACH_METRICS in a process that only records
// through cached metric pointers; constructing the registry at program
// start closes that hole (same trick as the FaultRegistry).
[[maybe_unused]] const bool kEnvParsedAtStartup =
    (MetricsRegistry::Instance(), true);
}  // namespace

}  // namespace reach::obs
