// Low-overhead process-wide metrics. A MetricsRegistry (mirroring the
// FaultRegistry pattern from src/testing/) owns named counters, gauges, and
// sharded atomic histograms; components cache stable pointers at
// construction and record through them on hot paths.
//
// Overhead when disabled: every Record/Inc first consults a process-wide
// relaxed atomic bool (MetricsEnabled) and returns — the same bar
// REACH_FAULT_POINT sets for disabled fault injection, pinned by
// bench_obs_overhead. When enabled, counters are one relaxed fetch_add and
// histogram recording is two relaxed fetch_adds plus a CAS-free max update
// into a per-thread shard (no locks, no allocation).
//
// Enable programmatically (MetricsRegistry::Instance().SetEnabled(true)) or
// via the REACH_METRICS environment variable (grammar in
// docs/OBSERVABILITY.md): "on" enables, "dump=<path>" additionally writes
// SnapshotJson() to <path> at process exit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace reach::obs {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Fast global gate: one relaxed load. All recording is a no-op when false.
inline bool MetricsEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Monotonic nanoseconds for span/latency measurement. Metrics measure
/// real elapsed time (steady_clock), independent of the logical Clock that
/// drives temporal events.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// NowNanos() when metrics are on, 0 otherwise — the idiom for stamping
/// origin timestamps (0 = "not measured") without paying for the clock read
/// in the disabled case.
inline uint64_t NowNanosIfEnabled() {
  return MetricsEnabled() ? NowNanos() : 0;
}

class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Unconditional add (callers that already checked the gate).
  void IncAlways(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void Set(int64_t v) {
    if (!MetricsEnabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n) {
    if (!MetricsEnabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time aggregation of one histogram (see Histogram::Snapshot).
/// Percentiles are lower-bound estimates: exact for values < 8, within
/// one sub-bucket (≤ 12.5% relative error) above that. `max` is exact.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // aggregated per-bucket counts

  /// Smallest recorded-value lower bound v such that at least p percent of
  /// recordings were <= bucket(v). p in (0, 100]. Returns 0 when empty.
  uint64_t ValueAtPercentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) /
                                                      static_cast<double>(count); }
};

/// Lock-free histogram with exponential buckets (8 linear sub-buckets per
/// power of two) sharded over threads to keep concurrent recording off a
/// single cache line. Value domain: uint64 (nanoseconds, bytes, counts).
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 8
  // Index 0..7 exact; octave o >= 1 covers [8<<(o-1), 16<<(o-1)).
  static constexpr size_t kNumBuckets = (64 - kSubBits + 1) * kSubBuckets;
  static constexpr size_t kShards = 8;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    if (!MetricsEnabled()) return;
    RecordAlways(value);
  }
  void RecordAlways(uint64_t value);

  /// Aggregate all shards. Safe while other threads record (relaxed reads;
  /// the snapshot is a consistent-enough view, never torn per counter).
  HistogramSnapshot Snapshot() const;

  void Reset();

  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kNumBuckets] = {};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  Shard shards_[kShards];
};

/// Records elapsed nanoseconds into `hist` on destruction. When metrics are
/// disabled at construction the clock is never read and the destructor is a
/// no-op (start_ == 0).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist)
      : hist_(hist), start_(NowNanosIfEnabled()) {}
  ~ScopedLatencyTimer() {
    if (start_ != 0) hist_->RecordAlways(NowNanos() - start_);
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_;
};

class MetricsRegistry {
 public:
  /// Process-wide singleton. First call parses REACH_METRICS from the
  /// environment.
  static MetricsRegistry& Instance();

  static bool enabled() { return MetricsEnabled(); }
  void SetEnabled(bool on) {
    internal::g_enabled.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create by name. Returned pointers are stable for the process
  /// lifetime (metrics are never deleted; ResetAll zeroes in place), so
  /// components cache them at construction and record lock-free.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Zero every registered metric (tests, bench warm-up isolation).
  void ResetAll();

  /// Registered metric names, sorted, prefixed by kind ("counter/...").
  std::vector<std::string> Names() const;

  /// JSON object with all counters, gauges, and histogram summaries
  /// (count/sum/max/p50/p95/p99), keys sorted for deterministic output.
  std::string SnapshotJson() const;

  /// Write SnapshotJson() to `path` (used by the REACH_METRICS=dump=...
  /// at-exit hook and by benchmarks that record baselines).
  bool DumpJson(const std::string& path) const;

 private:
  MetricsRegistry();
  void ParseEnv(const char* spec);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace reach::obs
