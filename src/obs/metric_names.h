// Central manifest of well-known metric names (the metric catalog —
// documented in docs/OBSERVABILITY.md). Call sites cache the pointer once:
//
//   obs::Counter* fsyncs =
//       obs::MetricsRegistry::Instance().counter(obs::kWalFsyncCount);
//
// Naming scheme: `component.measurement[_unit]` — `_ns` suffixes mark
// nanosecond latency histograms. Dynamic tags (coupling mode, stage) are
// appended as a final `.tag` segment.
#pragma once

namespace reach::obs {

// -- Storage ---------------------------------------------------------------
inline constexpr const char* kWalAppendCount = "storage.wal.append";
inline constexpr const char* kWalFsyncCount = "storage.wal.fsync";
inline constexpr const char* kWalFsyncNs = "storage.wal.fsync_ns";
inline constexpr const char* kWalFlushedBytes = "storage.wal.flushed_bytes";
/// Group commit: waiters released per flusher batch, time a committer spent
/// blocked in WaitDurable, and fsyncs avoided by piggybacking (released
/// waiters beyond the first share one fsync).
inline constexpr const char* kWalGroupSize = "storage.wal.group.size";
inline constexpr const char* kWalGroupWaitNs = "storage.wal.group.wait_ns";
inline constexpr const char* kWalFsyncSaved = "storage.wal.fsync_saved";
/// Current coalescing delay chosen by the adaptive policy (REACH_WAL=
/// adaptive), in microseconds.
inline constexpr const char* kWalAdaptiveDelayUs =
    "storage.wal.adaptive_delay_us";
inline constexpr const char* kBufHit = "storage.bufferpool.hit";
inline constexpr const char* kBufMiss = "storage.bufferpool.miss";
inline constexpr const char* kBufEvictWriteback =
    "storage.bufferpool.evict_writeback";
/// Windowed hit rate in percent: the gauge holds the last completed
/// 1024-access window of any shard, the histogram the distribution of
/// per-shard window hit rates (values 0..100, not nanoseconds).
inline constexpr const char* kBufHitRate = "storage.bufferpool.hit_rate";
inline constexpr const char* kBufShardHitRate =
    "storage.bufferpool.shard.hit_rate";
/// Time spent blocked on a contended buffer pool shard mutex (contention
/// is near-zero when the shard count matches the core count).
inline constexpr const char* kBufShardLockWaitNs =
    "storage.bufferpool.shard.lock_wait_ns";
/// Background writeback (docs/STORAGE.md "Background writeback"): percent
/// of pool frames currently dirty (gauge), frames cleaned and passes
/// completed by the writeback thread (counters), cumulative nanoseconds the
/// writeback passes spent forcing the log and writing batches — I/O time
/// taken off the foreground eviction path — and dirty evictions that still
/// had to write synchronously because no clean victim existed.
inline constexpr const char* kBufDirtyRatio = "storage.bufferpool.dirty_ratio";
inline constexpr const char* kBufWritebackPages =
    "storage.bufferpool.writeback.pages";
inline constexpr const char* kBufWritebackBatches =
    "storage.bufferpool.writeback.batches";
inline constexpr const char* kBufWritebackStallNs =
    "storage.bufferpool.writeback.stall_ns";
inline constexpr const char* kBufEvictSyncFallback =
    "storage.bufferpool.evict.sync_fallback";
/// Batched disk backend (docs/STORAGE.md "Async disk backend"): pages per
/// batched ReadPages/WritePages call (count histogram), coalesced contiguous
/// runs per write batch (count histogram), submission depth handed to the
/// backend in one call (gauge: last batch), and wall time of one batched
/// call from submit to final completion.
inline constexpr const char* kDiskBatchPages = "storage.disk.batch.pages";
inline constexpr const char* kDiskCoalescedRuns =
    "storage.disk.coalesced_runs";
inline constexpr const char* kDiskSubmitDepth = "storage.disk.submit_depth";
inline constexpr const char* kDiskCompleteNs = "storage.disk.complete_ns";

// -- Transactions ----------------------------------------------------------
inline constexpr const char* kTxnBegun = "txn.begun";
inline constexpr const char* kTxnCommitted = "txn.committed";
inline constexpr const char* kTxnAborted = "txn.aborted";
inline constexpr const char* kTxnCommitNs = "txn.commit_ns";

// -- OODB meta bus / sentries ----------------------------------------------
inline constexpr const char* kBusAnnounceUseful = "oodb.bus.announce.useful";
inline constexpr const char* kBusAnnounceUseless =
    "oodb.bus.announce.useless";
inline constexpr const char* kSentryCalls = "oodb.sentry.calls";
inline constexpr const char* kSentryAnnounced = "oodb.sentry.announced";

// -- Event pipeline (see pipeline_span.h) ----------------------------------
inline constexpr const char* kEventsSignaled = "events.signaled";
inline constexpr const char* kEventsComposed = "events.composed";
inline constexpr const char* kCompositorFed = "events.compositor.fed";
inline constexpr const char* kCompositorCompletions =
    "events.compositor.completions";
inline constexpr const char* kCompositorExpired =
    "events.compositor.expired_partials";
inline constexpr const char* kCompositorDiscardedEot =
    "events.compositor.discarded_at_eot";
/// Time spent blocked on a contended compositor instance-map stripe mutex
/// (single-txn instances stripe over txn % kStripes; near-zero unless many
/// transactions hash to the same stripe or a cross-txn compositor is hot).
inline constexpr const char* kCompositorLockWaitNs =
    "events.compositor.lock_wait_ns";
/// Work-stealing composition pool: tasks queued across all worker queues at
/// the last enqueue (gauge), and tasks taken from a sibling's queue.
inline constexpr const char* kCompositionQueueDepth =
    "events.composition.queue_depth";
inline constexpr const char* kCompositionSteals = "events.composition.steals";
/// Copy-on-write republishes of the snapshot dispatch table (event/listener
/// /compositor definitions; the steady-state Signal path never writes).
inline constexpr const char* kDispatchRepublish = "events.dispatch.republish";
/// Batched pipeline (docs/EVENTS.md "Batched pipeline"): occurrences per
/// admission-buffer flush (a count histogram, not nanoseconds), flushes
/// dispatched, and occurrences that bypassed batching through the scalar
/// fallback (listener-bearing, durable cross-txn, temporal, or composite).
inline constexpr const char* kEventsBatchSize = "events.batch.size";
inline constexpr const char* kEventsBatchFlushes = "events.batch.flushes";
inline constexpr const char* kEventsBatchFallbacks = "events.batch.fallbacks";
/// Durable event history: cross-txn occurrences logged to the WAL, logged
/// occurrences re-fed into compositors during recovery replay, cumulative
/// bytes of compositor-state checkpoint records, and append/checkpoint
/// failures
/// that were absorbed on the Signal path (surfaced via
/// EventManager::history_status()).
inline constexpr const char* kEventHistoryLogged = "events.history.logged";
inline constexpr const char* kEventHistoryReplayed = "events.history.replayed";
inline constexpr const char* kEventHistoryCheckpointBytes =
    "events.history.checkpoint_bytes";
inline constexpr const char* kEventHistoryLogFailures =
    "events.history.log_failures";

/// Sentry announcement -> EventManager::Signal entry (detection latency).
inline constexpr const char* kSpanSentryToSignal =
    "pipeline.sentry_to_signal_ns";
/// Signal entry -> synchronous listeners (rule firing) done: the
/// application's go-ahead latency for immediate rules.
inline constexpr const char* kSpanSignalToDispatch =
    "pipeline.signal_to_dispatch_ns";
/// Leaf detection -> composite completion raised by a compositor (includes
/// the async composition queue wait).
inline constexpr const char* kSpanSignalToCompose =
    "pipeline.signal_to_compose_ns";

// -- Query executor --------------------------------------------------------
/// Executor wall time per query (plan already built; includes the parallel
/// fan-out and merge), morsels per extent-scan query (a count histogram,
/// not nanoseconds), degree of parallelism of the last query (gauge; 1 =
/// serial fallback or index plan), and objects examined (counter).
inline constexpr const char* kQueryExecNs = "query.exec_ns";
inline constexpr const char* kQueryMorsels = "query.morsels";
inline constexpr const char* kQueryParallelWorkers = "query.parallel_workers";
inline constexpr const char* kQueryRowsScanned = "query.rows_scanned";
/// Whole QueryPm::Execute span: plan + execute (parse excluded when the
/// caller hands over a pre-parsed statement).
inline constexpr const char* kSpanQueryExec = "pipeline.query_exec_ns";

// -- Rules -----------------------------------------------------------------
inline constexpr const char* kRulesImmediateRuns = "rules.immediate_runs";
inline constexpr const char* kRulesDeferredRuns = "rules.deferred_runs";
inline constexpr const char* kRulesDetachedRuns = "rules.detached_runs";
inline constexpr const char* kRulesFailures = "rules.failures";
inline constexpr const char* kRulesDependencySkips = "rules.dependency_skips";
inline constexpr const char* kRulesDeferredRounds = "rules.deferred_rounds";
/// Per coupling mode: "rules.exec_ns.<mode>" (condition+action execution)
/// and "rules.fire_lag_ns.<mode>" (event detection -> execution start).
inline constexpr const char* kRulesExecNsPrefix = "rules.exec_ns.";
inline constexpr const char* kRulesFireLagNsPrefix = "rules.fire_lag_ns.";
/// Per-rule breakdown: "rules.exec_ns.rule.<name>". Bounded cardinality —
/// at most kPerRuleHistogramCap rules hold a histogram at a time; when the
/// cap is full, a newly executing rule evicts the least-recently-executed
/// holder (see rule_engine.cc), so the hot set is always localizable
/// without enabling the full RuleTrace.
inline constexpr const char* kRulesExecNsRulePrefix = "rules.exec_ns.rule.";
/// Evict-and-replace admissions above: incremented each time a cold rule's
/// per-rule histogram slot is handed to a newly executing rule.
inline constexpr const char* kRulesHistogramEvicted =
    "rules.histogram.evicted";

}  // namespace reach::obs
