#include "query/parser.h"

namespace reach {

namespace {
Status Unexpected(const Token& tok, const std::string& what) {
  return Status::InvalidArgument("expected " + what + " near '" + tok.text +
                                 "' at " + std::to_string(tok.position));
}
}  // namespace

Result<ExprPtr> ExprParser::ParseOr() {
  REACH_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (Cur().IsIdent("or") || Cur().IsSymbol("||")) {
    Advance();
    REACH_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Expr::Binary(ExprOp::kOr, left, right);
  }
  return left;
}

Result<ExprPtr> ExprParser::ParseAnd() {
  REACH_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (Cur().IsIdent("and") || Cur().IsSymbol("&&")) {
    Advance();
    REACH_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = Expr::Binary(ExprOp::kAnd, left, right);
  }
  return left;
}

Result<ExprPtr> ExprParser::ParseNot() {
  if (Cur().IsIdent("not") || Cur().IsSymbol("!")) {
    Advance();
    REACH_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return Expr::Unary(ExprOp::kNot, operand);
  }
  return ParseComparison();
}

Result<ExprPtr> ExprParser::ParseComparison() {
  REACH_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  struct OpMap {
    const char* sym;
    ExprOp op;
  };
  static const OpMap kOps[] = {
      {"==", ExprOp::kEq}, {"=", ExprOp::kEq},  {"!=", ExprOp::kNe},
      {"<=", ExprOp::kLe}, {">=", ExprOp::kGe}, {"<", ExprOp::kLt},
      {">", ExprOp::kGt},
  };
  for (const OpMap& m : kOps) {
    if (Cur().IsSymbol(m.sym)) {
      Advance();
      REACH_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return Expr::Binary(m.op, left, right);
    }
  }
  return left;
}

Result<ExprPtr> ExprParser::ParseAdditive() {
  REACH_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  for (;;) {
    if (Cur().IsSymbol("+")) {
      Advance();
      REACH_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Binary(ExprOp::kAdd, left, right);
    } else if (Cur().IsSymbol("-")) {
      Advance();
      REACH_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Binary(ExprOp::kSub, left, right);
    } else {
      return left;
    }
  }
}

Result<ExprPtr> ExprParser::ParseMultiplicative() {
  REACH_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  for (;;) {
    if (Cur().IsSymbol("*")) {
      Advance();
      REACH_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Expr::Binary(ExprOp::kMul, left, right);
    } else if (Cur().IsSymbol("/")) {
      Advance();
      REACH_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Expr::Binary(ExprOp::kDiv, left, right);
    } else if (Cur().IsSymbol("%")) {
      Advance();
      REACH_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Expr::Binary(ExprOp::kMod, left, right);
    } else {
      return left;
    }
  }
}

Result<ExprPtr> ExprParser::ParseUnary() {
  if (Cur().IsSymbol("-")) {
    Advance();
    REACH_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return Expr::Unary(ExprOp::kNeg, operand);
  }
  return ParsePrimary();
}

Result<ExprPtr> ExprParser::ParsePrimary() {
  const Token& tok = Cur();
  switch (tok.type) {
    case TokenType::kInt: {
      Advance();
      return Expr::Literal(Value(tok.int_value));
    }
    case TokenType::kDouble: {
      Advance();
      return Expr::Literal(Value(tok.double_value));
    }
    case TokenType::kString: {
      Advance();
      return Expr::Literal(Value(tok.text));
    }
    case TokenType::kIdent: {
      if (tok.IsIdent("true")) {
        Advance();
        return Expr::Literal(Value(true));
      }
      if (tok.IsIdent("false")) {
        Advance();
        return Expr::Literal(Value(false));
      }
      if (tok.IsIdent("null")) {
        Advance();
        return Expr::Literal(Value());
      }
      std::vector<std::string> path{tok.text};
      Advance();
      while (Cur().IsSymbol(".") || Cur().IsSymbol("->")) {
        Advance();
        if (Cur().type != TokenType::kIdent) {
          return Unexpected(Cur(), "attribute name");
        }
        path.push_back(Cur().text);
        Advance();
      }
      return Expr::Path(std::move(path));
    }
    case TokenType::kSymbol:
      if (tok.IsSymbol("(")) {
        Advance();
        REACH_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        if (!Cur().IsSymbol(")")) return Unexpected(Cur(), "')'");
        Advance();
        return inner;
      }
      break;
    default:
      break;
  }
  return Unexpected(tok, "expression");
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  REACH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  size_t pos = 0;
  ExprParser parser(&tokens, &pos);
  REACH_ASSIGN_OR_RETURN(ExprPtr expr, parser.Parse());
  if (tokens[pos].type != TokenType::kEnd) {
    return Unexpected(tokens[pos], "end of expression");
  }
  return expr;
}

Result<SelectStatement> ParseSelect(const std::string& query) {
  REACH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(query));
  size_t pos = 0;
  auto cur = [&]() -> const Token& { return tokens[pos]; };

  SelectStatement stmt;
  if (!cur().IsIdent("select")) return Unexpected(cur(), "'select'");
  ++pos;
  if (cur().IsSymbol("*")) {
    ++pos;
  } else {
    for (;;) {
      if (cur().type != TokenType::kIdent) {
        return Unexpected(cur(), "attribute or aggregate");
      }
      SelectItem item;
      std::string name = cur().text;
      if (tokens[pos + 1].IsSymbol("(")) {
        if (name == "count") {
          item.kind = SelectItem::Kind::kCount;
        } else if (name == "sum") {
          item.kind = SelectItem::Kind::kSum;
        } else if (name == "avg") {
          item.kind = SelectItem::Kind::kAvg;
        } else if (name == "min") {
          item.kind = SelectItem::Kind::kMin;
        } else if (name == "max") {
          item.kind = SelectItem::Kind::kMax;
        } else {
          return Unexpected(cur(), "aggregate function");
        }
        pos += 2;  // name + '('
        if (cur().IsSymbol("*")) {
          if (item.kind != SelectItem::Kind::kCount) {
            return Unexpected(cur(), "attribute (only count accepts *)");
          }
          ++pos;
        } else if (cur().type == TokenType::kIdent) {
          item.attr = cur().text;
          ++pos;
        } else {
          return Unexpected(cur(), "attribute or '*'");
        }
        if (!cur().IsSymbol(")")) return Unexpected(cur(), "')'");
        ++pos;
      } else {
        item.attr = name;
        ++pos;
      }
      stmt.items.push_back(std::move(item));
      if (!cur().IsSymbol(",")) break;
      ++pos;
    }
  }
  if (!cur().IsIdent("from")) return Unexpected(cur(), "'from'");
  ++pos;
  if (cur().type != TokenType::kIdent) return Unexpected(cur(), "class name");
  stmt.class_name = cur().text;
  ++pos;
  if (cur().IsIdent("as")) {
    ++pos;
    if (cur().type != TokenType::kIdent) return Unexpected(cur(), "alias");
    stmt.alias = cur().text;
    ++pos;
  } else {
    stmt.alias = stmt.class_name;
  }
  if (cur().IsIdent("where")) {
    ++pos;
    ExprParser parser(&tokens, &pos);
    REACH_ASSIGN_OR_RETURN(stmt.where, parser.Parse());
  }
  if (cur().IsIdent("group")) {
    ++pos;
    if (!cur().IsIdent("by")) return Unexpected(cur(), "'by'");
    ++pos;
    if (cur().type != TokenType::kIdent) {
      return Unexpected(cur(), "group-by attribute");
    }
    stmt.group_by = cur().text;
    ++pos;
  }
  if (cur().IsIdent("order")) {
    ++pos;
    if (!cur().IsIdent("by")) return Unexpected(cur(), "'by'");
    ++pos;
    if (cur().type != TokenType::kIdent) {
      return Unexpected(cur(), "order-by path");
    }
    stmt.order_by.push_back(cur().text);
    ++pos;
    while (cur().IsSymbol(".")) {
      ++pos;
      if (cur().type != TokenType::kIdent) {
        return Unexpected(cur(), "attribute name");
      }
      stmt.order_by.push_back(cur().text);
      ++pos;
    }
    if (cur().IsIdent("desc")) {
      stmt.order_desc = true;
      ++pos;
    } else if (cur().IsIdent("asc")) {
      ++pos;
    }
  }
  if (cur().IsIdent("limit")) {
    ++pos;
    if (cur().type != TokenType::kInt || cur().int_value < 0) {
      return Unexpected(cur(), "limit count");
    }
    stmt.limit = static_cast<size_t>(cur().int_value);
    ++pos;
  }
  if (cur().type != TokenType::kEnd) {
    return Unexpected(cur(), "end of query");
  }
  return stmt;
}

}  // namespace reach
