// Query executor: runs a planned statement. Index plans probe serially in
// index order; extent scans are partitioned into page-aligned morsels and
// fanned over a shared worker pool (docs/QUERY.md "Morsel execution").
// Each worker warms its morsel via BufferPool::ReadAhead, batch-fetches the
// morsel's objects, applies the plan's fast predicate prefix before full
// evaluation, and accumulates partial results (rows tagged with their
// canonical scan ordinal, and per-group aggregate states). Partials merge
// in worker order over contiguous morsel slices, so parallel output is
// byte-identical to the serial fallback.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "oodb/session.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/query_options.h"

namespace reach {

struct QueryRow {
  Oid oid;
  std::vector<Value> values;  // projected attributes ([] for select *)
};

struct QueryResult {
  std::vector<QueryRow> rows;
  bool used_index = false;
  size_t scanned = 0;    // objects examined
  size_t morsels = 0;    // extent-scan morsels executed (0 for index plans)
  size_t workers = 1;    // degree of parallelism actually used
  uint64_t exec_ns = 0;  // executor wall time
};

/// Execute `plan` for `stmt` within the session's current transaction.
/// `plan` must have been built from `stmt` (its fast prefix points into the
/// statement's expression tree).
Result<QueryResult> ExecutePlan(Session& session, const SelectStatement& stmt,
                                const QueryPlan& plan,
                                const QueryOptions& options);

/// EvalEnv over one candidate object: `<alias>.attr` resolves to the
/// object's attribute; a bare `<alias>` resolves to its OID; single-segment
/// paths also try the object's attributes directly.
class ObjectEnv : public EvalEnv {
 public:
  ObjectEnv(Session* session, const std::string& alias, const DbObject* obj)
      : session_(session), alias_(alias), obj_(obj) {}

  Result<Value> Resolve(const std::vector<std::string>& path) override;

 private:
  Session* session_;
  std::string alias_;
  const DbObject* obj_;
};

}  // namespace reach
