#include "query/planner.h"

namespace reach {

namespace {

/// If `expr` is `<path> <cmp> <literal>` (either side) with a path of the
/// form `attr` or `<alias>.attr`, return the attribute, the normalized
/// operator (as if the path were on the left), and the literal. A bare
/// single-segment path equal to the alias resolves to the OID, not an
/// attribute, so it is excluded.
bool SimpleComparison(const Expr* expr, const std::string& alias,
                      std::string* attr, ExprOp* op, const Value** literal) {
  switch (expr->op()) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      break;
    default:
      return false;
  }
  const ExprPtr& l = expr->operands()[0];
  const ExprPtr& r = expr->operands()[1];
  const Expr* path = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (l->op() == ExprOp::kPath && r->op() == ExprOp::kLiteral) {
    path = l.get();
    lit = r.get();
  } else if (r->op() == ExprOp::kPath && l->op() == ExprOp::kLiteral) {
    path = r.get();
    lit = l.get();
    flipped = true;  // literal <cmp> path
  } else {
    return false;
  }
  const auto& segs = path->path();
  if (segs.size() == 1 && segs[0] != alias) {
    *attr = segs[0];
  } else if (segs.size() == 2 && segs[0] == alias) {
    *attr = segs[1];
  } else {
    return false;
  }
  *op = expr->op();
  if (flipped) {
    switch (*op) {
      case ExprOp::kLt: *op = ExprOp::kGt; break;
      case ExprOp::kLe: *op = ExprOp::kGe; break;
      case ExprOp::kGt: *op = ExprOp::kLt; break;
      case ExprOp::kGe: *op = ExprOp::kLe; break;
      default: break;
    }
  }
  *literal = &lit->literal();
  return true;
}

/// Flatten a left-deep/right-deep `and` tree into evaluation order.
void FlattenAnd(const ExprPtr& expr, std::vector<const Expr*>* out) {
  if (expr->op() == ExprOp::kAnd) {
    FlattenAnd(expr->operands()[0], out);
    FlattenAnd(expr->operands()[1], out);
  } else {
    out->push_back(expr.get());
  }
}

/// Compile the fast-path prefix: simple comparisons from the front of the
/// AND-conjunct list, stopping at the first conjunct that needs the full
/// evaluator (so an error in conjunct k still surfaces before conjunct k+1
/// is considered, exactly like short-circuit evaluation).
void CompileFastPrefix(const SelectStatement& stmt, QueryPlan* plan) {
  if (!stmt.where) {
    plan->fast_exact = true;
    return;
  }
  std::vector<const Expr*> conjuncts;
  FlattenAnd(stmt.where, &conjuncts);
  for (const Expr* conjunct : conjuncts) {
    QueryPlan::FastComparison fc;
    if (!SimpleComparison(conjunct, stmt.alias, &fc.attr, &fc.op,
                          &fc.literal)) {
      return;  // residual: the executor re-evaluates the full where clause
    }
    plan->fast_prefix.push_back(std::move(fc));
  }
  plan->fast_exact = true;
}

}  // namespace

Result<QueryPlan> PlanQuery(Session& session, const SelectStatement& stmt) {
  Database* db = session.db();
  if (!db->types()->IsRegistered(stmt.class_name)) {
    return Status::NotFound("class " + stmt.class_name);
  }
  for (const SelectItem& item : stmt.items) {
    if (item.attr.empty()) continue;  // count(*)
    if (db->types()->ResolveAttribute(stmt.class_name, item.attr) ==
        nullptr) {
      return Status::NotFound("attribute " + stmt.class_name + "." +
                              item.attr);
    }
  }

  QueryPlan plan;
  plan.aggregate_mode = stmt.has_aggregates() || !stmt.group_by.empty();
  if (plan.aggregate_mode) {
    if (!stmt.group_by.empty() &&
        db->types()->ResolveAttribute(stmt.class_name, stmt.group_by) ==
            nullptr) {
      return Status::NotFound("attribute " + stmt.class_name + "." +
                              stmt.group_by);
    }
    for (const SelectItem& item : stmt.items) {
      if (!item.is_aggregate() && item.attr != stmt.group_by) {
        return Status::InvalidArgument(
            "non-aggregate select item '" + item.attr +
            "' must be the group-by attribute");
      }
    }
  }

  std::string index_attr;
  ExprOp index_op = ExprOp::kEq;
  const Value* index_value = nullptr;
  bool indexable =
      stmt.where != nullptr &&
      SimpleComparison(stmt.where.get(), stmt.alias, &index_attr, &index_op,
                       &index_value) &&
      index_op != ExprOp::kNe;
  if (indexable && index_op == ExprOp::kEq &&
      db->indexing()->HasIndex(stmt.class_name, index_attr)) {
    REACH_RETURN_IF_ERROR(db->indexing()->LookupInto(
        stmt.class_name, index_attr, *index_value, &plan.candidates));
    plan.access = QueryPlan::Access::kIndexEq;
  } else if (indexable &&
             db->indexing()->HasOrderedIndex(stmt.class_name, index_attr)) {
    const Value* lo = nullptr;
    const Value* hi = nullptr;
    bool lo_inc = true, hi_inc = true;
    switch (index_op) {
      case ExprOp::kEq: lo = hi = index_value; break;
      case ExprOp::kLt: hi = index_value; hi_inc = false; break;
      case ExprOp::kLe: hi = index_value; break;
      case ExprOp::kGt: lo = index_value; lo_inc = false; break;
      case ExprOp::kGe: lo = index_value; break;
      default: break;
    }
    REACH_RETURN_IF_ERROR(db->indexing()->RangeLookupInto(
        stmt.class_name, index_attr, lo, lo_inc, hi, hi_inc,
        &plan.candidates));
    plan.access = index_op == ExprOp::kEq ? QueryPlan::Access::kIndexEq
                                          : QueryPlan::Access::kIndexRange;
  } else {
    plan.access = QueryPlan::Access::kExtentScan;
    CompileFastPrefix(stmt, &plan);
  }
  return plan;
}

}  // namespace reach
