// Predicate/expression AST shared by OQL[C++] queries and REACH rule
// conditions, with an environment-based evaluator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "oodb/value.h"

namespace reach {

enum class ExprOp {
  kLiteral,
  kPath,      // ident(.ident)* — resolved by the environment
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr, kNot,
  kNeg,       // unary minus
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  static ExprPtr Literal(Value v);
  static ExprPtr Path(std::vector<std::string> segments);
  static ExprPtr Binary(ExprOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Unary(ExprOp op, ExprPtr operand);

  ExprOp op() const { return op_; }
  const Value& literal() const { return literal_; }
  const std::vector<std::string>& path() const { return path_; }
  const std::vector<ExprPtr>& operands() const { return operands_; }

  std::string ToString() const;

 private:
  explicit Expr(ExprOp op) : op_(op) {}

  ExprOp op_;
  Value literal_;
  std::vector<std::string> path_;
  std::vector<ExprPtr> operands_;
};

/// Resolves path expressions ("river.waterTemp", "x") to values.
class EvalEnv {
 public:
  virtual ~EvalEnv() = default;
  virtual Result<Value> Resolve(const std::vector<std::string>& path) = 0;
};

/// Evaluate `expr` under `env`. Comparison with null yields false; `and` /
/// `or` short-circuit; arithmetic requires numeric operands.
Result<Value> Evaluate(const ExprPtr& expr, EvalEnv* env);

/// Apply one comparison operator with the evaluator's exact semantics
/// (null operands, incomparable-value errors). Exposed so the query
/// executor's fast path cannot drift from full expression evaluation.
Result<Value> CompareValues(ExprOp op, const Value& l, const Value& r);

/// Evaluate and coerce to a condition result (null/false => false).
Result<bool> EvaluateBool(const ExprPtr& expr, EvalEnv* env);

}  // namespace reach
