#include "query/query_pm.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace reach {

Result<QueryResult> QueryPm::Execute(Session& session,
                                     const std::string& query,
                                     const QueryOptions& options) {
  REACH_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(query));
  return Execute(session, stmt, options);
}

Result<QueryResult> QueryPm::Execute(Session& session,
                                     const SelectStatement& stmt,
                                     const QueryOptions& options) {
  static obs::Histogram* span =
      obs::MetricsRegistry::Instance().histogram(obs::kSpanQueryExec);
  obs::ScopedLatencyTimer timer(span);
  REACH_ASSIGN_OR_RETURN(QueryPlan plan, PlanQuery(session, stmt));
  return ExecutePlan(session, stmt, plan, options);
}

}  // namespace reach
