#include "query/query_pm.h"

#include <algorithm>
#include <map>

namespace reach {

Result<Value> ObjectEnv::Resolve(const std::vector<std::string>& path) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  size_t attr_start = 0;
  if (path[0] == alias_) {
    if (path.size() == 1) return Value(obj_->oid());
    attr_start = 1;
  }
  // First attribute must exist on the candidate object.
  const std::string& attr = path[attr_start];
  if (!obj_->Has(attr)) {
    return Status::NotFound("attribute " + attr + " on " +
                            obj_->class_name());
  }
  Value v = obj_->Get(attr);
  // Follow reference attributes for multi-segment paths (o.ref.attr).
  for (size_t i = attr_start + 1; i < path.size(); ++i) {
    if (!v.is_ref()) {
      return Status::InvalidArgument("path segment '" + path[i] +
                                     "' applied to non-reference value");
    }
    REACH_ASSIGN_OR_RETURN(std::shared_ptr<DbObject> next,
                           session_->Fetch(v.as_ref()));
    if (!next->Has(path[i])) {
      return Status::NotFound("attribute " + path[i] + " on " +
                              next->class_name());
    }
    v = next->Get(path[i]);
  }
  return v;
}

namespace {

/// If the predicate is `<alias>.<attr> <cmp> <literal>` (either side),
/// return attr, the normalized operator (as if the path were on the left),
/// and the literal so an index can serve it.
bool IndexableComparison(const ExprPtr& where, const std::string& alias,
                         std::string* attr, ExprOp* op, Value* literal) {
  if (!where) return false;
  switch (where->op()) {
    case ExprOp::kEq:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      break;
    default:
      return false;
  }
  const ExprPtr& l = where->operands()[0];
  const ExprPtr& r = where->operands()[1];
  const Expr* path = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (l->op() == ExprOp::kPath && r->op() == ExprOp::kLiteral) {
    path = l.get();
    lit = r.get();
  } else if (r->op() == ExprOp::kPath && l->op() == ExprOp::kLiteral) {
    path = r.get();
    lit = l.get();
    flipped = true;  // literal <cmp> path
  } else {
    return false;
  }
  const auto& segs = path->path();
  if (segs.size() == 1) {
    *attr = segs[0];
  } else if (segs.size() == 2 && segs[0] == alias) {
    *attr = segs[1];
  } else {
    return false;
  }
  *op = where->op();
  if (flipped) {
    switch (*op) {
      case ExprOp::kLt: *op = ExprOp::kGt; break;
      case ExprOp::kLe: *op = ExprOp::kGe; break;
      case ExprOp::kGt: *op = ExprOp::kLt; break;
      case ExprOp::kGe: *op = ExprOp::kLe; break;
      default: break;
    }
  }
  *literal = lit->literal();
  return true;
}

}  // namespace

Result<QueryResult> QueryPm::Execute(Session& session,
                                     const std::string& query) {
  REACH_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(query));
  return Execute(session, stmt);
}

Result<QueryResult> QueryPm::Execute(Session& session,
                                     const SelectStatement& stmt) {
  Database* db = session.db();
  if (!db->types()->IsRegistered(stmt.class_name)) {
    return Status::NotFound("class " + stmt.class_name);
  }
  for (const SelectItem& item : stmt.items) {
    if (item.attr.empty()) continue;  // count(*)
    if (db->types()->ResolveAttribute(stmt.class_name, item.attr) ==
        nullptr) {
      return Status::NotFound("attribute " + stmt.class_name + "." +
                              item.attr);
    }
  }

  bool aggregate_mode = stmt.has_aggregates() || !stmt.group_by.empty();
  if (aggregate_mode) {
    if (!stmt.group_by.empty() &&
        db->types()->ResolveAttribute(stmt.class_name, stmt.group_by) ==
            nullptr) {
      return Status::NotFound("attribute " + stmt.class_name + "." +
                              stmt.group_by);
    }
    for (const SelectItem& item : stmt.items) {
      if (!item.is_aggregate() && item.attr != stmt.group_by) {
        return Status::InvalidArgument(
            "non-aggregate select item '" + item.attr +
            "' must be the group-by attribute");
      }
    }
  }

  QueryResult result;
  std::vector<Oid> candidates;
  std::string index_attr;
  ExprOp index_op = ExprOp::kEq;
  Value index_value;
  bool indexable = IndexableComparison(stmt.where, stmt.alias, &index_attr,
                                       &index_op, &index_value);
  if (indexable && index_op == ExprOp::kEq &&
      db->indexing()->HasIndex(stmt.class_name, index_attr)) {
    REACH_ASSIGN_OR_RETURN(
        candidates,
        db->indexing()->Lookup(stmt.class_name, index_attr, index_value));
    result.used_index = true;
  } else if (indexable &&
             db->indexing()->HasOrderedIndex(stmt.class_name, index_attr)) {
    const Value* lo = nullptr;
    const Value* hi = nullptr;
    bool lo_inc = true, hi_inc = true;
    switch (index_op) {
      case ExprOp::kEq: lo = hi = &index_value; break;
      case ExprOp::kLt: hi = &index_value; hi_inc = false; break;
      case ExprOp::kLe: hi = &index_value; break;
      case ExprOp::kGt: lo = &index_value; lo_inc = false; break;
      case ExprOp::kGe: lo = &index_value; break;
      default: break;
    }
    REACH_ASSIGN_OR_RETURN(
        candidates, db->indexing()->RangeLookup(stmt.class_name, index_attr,
                                                lo, lo_inc, hi, hi_inc));
    result.used_index = true;
  } else {
    REACH_ASSIGN_OR_RETURN(candidates, session.Extent(stmt.class_name));
  }

  struct Hit {
    Oid oid;
    std::shared_ptr<DbObject> obj;
    Value sort_key;
  };
  std::vector<Hit> hits;
  for (const Oid& oid : candidates) {
    REACH_ASSIGN_OR_RETURN(std::shared_ptr<DbObject> obj, session.Fetch(oid));
    ++result.scanned;
    ObjectEnv env(&session, stmt.alias, obj.get());
    if (stmt.where) {
      auto keep = EvaluateBool(stmt.where, &env);
      // Missing attributes on heterogeneous extents: treat as no-match.
      if (!keep.ok()) {
        if (keep.status().IsNotFound()) continue;
        return keep.status();
      }
      if (!keep.value()) continue;
    }
    Hit hit;
    hit.oid = oid;
    hit.obj = obj;
    if (!stmt.order_by.empty()) {
      auto key = env.Resolve(stmt.order_by);
      hit.sort_key = key.ok() ? key.value() : Value();
    }
    hits.push_back(std::move(hit));
  }

  if (aggregate_mode) {
    // Group (single group when no group-by) and fold the aggregates.
    struct Group {
      Value key;
      size_t count = 0;
      std::vector<double> sums;       // per item
      std::vector<size_t> counts;     // non-null inputs per item
      std::vector<Value> mins, maxs;
    };
    std::map<std::string, Group> groups;  // by encoded key (sorted output)
    size_t n_items = stmt.items.size();
    for (const Hit& hit : hits) {
      Value key =
          stmt.group_by.empty() ? Value() : hit.obj->Get(stmt.group_by);
      std::string enc;
      key.Encode(&enc);
      Group& g = groups[enc];
      if (g.count == 0) {
        g.key = key;
        g.sums.assign(n_items, 0);
        g.counts.assign(n_items, 0);
        g.mins.assign(n_items, Value());
        g.maxs.assign(n_items, Value());
      }
      g.count++;
      for (size_t i = 0; i < n_items; ++i) {
        const SelectItem& item = stmt.items[i];
        if (!item.is_aggregate() || item.attr.empty()) continue;
        Value v = hit.obj->Get(item.attr);
        if (v.is_null()) continue;
        g.counts[i]++;
        if (v.is_numeric()) g.sums[i] += v.AsNumber();
        if (g.mins[i].is_null() || v < g.mins[i]) g.mins[i] = v;
        if (g.maxs[i].is_null() || v > g.maxs[i]) g.maxs[i] = v;
      }
    }
    for (auto& [_, g] : groups) {
      QueryRow row;
      for (size_t i = 0; i < n_items; ++i) {
        const SelectItem& item = stmt.items[i];
        switch (item.kind) {
          case SelectItem::Kind::kAttr:
            row.values.push_back(g.key);
            break;
          case SelectItem::Kind::kCount:
            row.values.push_back(Value(static_cast<int64_t>(
                item.attr.empty() ? g.count : g.counts[i])));
            break;
          case SelectItem::Kind::kSum:
            row.values.push_back(Value(g.sums[i]));
            break;
          case SelectItem::Kind::kAvg:
            row.values.push_back(
                g.counts[i] == 0 ? Value()
                                 : Value(g.sums[i] /
                                         static_cast<double>(g.counts[i])));
            break;
          case SelectItem::Kind::kMin:
            row.values.push_back(g.mins[i]);
            break;
          case SelectItem::Kind::kMax:
            row.values.push_back(g.maxs[i]);
            break;
        }
      }
      result.rows.push_back(std::move(row));
      if (stmt.limit && result.rows.size() >= *stmt.limit) break;
    }
    return result;
  }

  if (!stmt.order_by.empty()) {
    bool desc = stmt.order_desc;
    std::stable_sort(hits.begin(), hits.end(),
                     [desc](const Hit& a, const Hit& b) {
                       auto c = a.sort_key <=> b.sort_key;
                       if (c == std::partial_ordering::unordered) return false;
                       return desc ? c == std::partial_ordering::greater
                                   : c == std::partial_ordering::less;
                     });
  }
  size_t limit = stmt.limit.value_or(hits.size());
  for (size_t i = 0; i < hits.size() && i < limit; ++i) {
    QueryRow row;
    row.oid = hits[i].oid;
    for (const SelectItem& item : stmt.items) {
      row.values.push_back(hits[i].obj->Get(item.attr));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace reach
