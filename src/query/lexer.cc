#include "query/lexer.h"

#include <cctype>

namespace reach {

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: // to end of line, /* ... */.
    if (c == '/' && i + 1 < n && input[i + 1] == '/') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      size_t end = input.find("*/", i + 2);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated comment at " +
                                       std::to_string(i));
      }
      i = end + 2;
      continue;
    }

    Token tok;
    tok.position = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.type = TokenType::kIdent;
      tok.text = input.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      std::string text = input.substr(start, i - start);
      if (is_double) {
        tok.type = TokenType::kDouble;
        tok.double_value = std::stod(text);
      } else {
        tok.type = TokenType::kInt;
        tok.int_value = std::stoll(text);
      }
      tok.text = std::move(text);
      out.push_back(std::move(tok));
      continue;
    }

    if (c == '"') {
      ++i;
      std::string content;
      while (i < n && input[i] != '"') {
        if (input[i] == '\\' && i + 1 < n) {
          ++i;
          switch (input[i]) {
            case 'n': content.push_back('\n'); break;
            case 't': content.push_back('\t'); break;
            default: content.push_back(input[i]); break;
          }
        } else {
          content.push_back(input[i]);
        }
        ++i;
      }
      if (i >= n) {
        return Status::InvalidArgument("unterminated string at " +
                                       std::to_string(tok.position));
      }
      ++i;  // closing quote
      tok.type = TokenType::kString;
      tok.text = std::move(content);
      out.push_back(std::move(tok));
      continue;
    }

    // Multi-character operators first.
    static const char* kTwoChar[] = {"<=", ">=", "==", "!=", "&&", "||",
                                     "->"};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (c == op[0] && i + 1 < n && input[i + 1] == op[1]) {
        tok.type = TokenType::kSymbol;
        tok.text = op;
        i += 2;
        out.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;

    static const std::string kSingles = "()[]{},;.<>=+-*/%!";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      out.push_back(std::move(tok));
      continue;
    }

    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at " +
                                   std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace reach
