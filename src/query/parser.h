// Parser for the OQL[C++] subset:
//
//   select <*| item [, item]*> from <Class> [as <alias>]
//     [where <expr>] [group by <attr>]
//     [order by <path> [asc|desc]] [limit <n>]
//
//   item := attr | count(*) | count(attr) | sum(attr) | avg(attr)
//         | min(attr) | max(attr)
//
// and for standalone predicate expressions (rule conditions). Expressions
// support C-style (&&, ||, !, ==) and keyword (and, or, not, =) operators
// so both the paper's rule syntax and OQL-style queries parse.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/expr.h"
#include "query/lexer.h"

namespace reach {

struct SelectItem {
  enum class Kind { kAttr, kCount, kSum, kAvg, kMin, kMax };
  Kind kind = Kind::kAttr;
  std::string attr;  // empty for count(*)

  bool is_aggregate() const { return kind != Kind::kAttr; }
};

struct SelectStatement {
  std::vector<SelectItem> items;  // empty = select *
  std::string class_name;
  std::string alias;  // defaults to the class name
  ExprPtr where;      // null = all
  std::string group_by;  // attribute name; empty = no grouping
  std::vector<std::string> order_by;  // path, empty = unordered
  bool order_desc = false;
  std::optional<size_t> limit;

  bool has_aggregates() const {
    for (const SelectItem& item : items) {
      if (item.is_aggregate()) return true;
    }
    return false;
  }
};

/// Token-stream expression parser usable as a sub-parser (rule language).
class ExprParser {
 public:
  ExprParser(const std::vector<Token>* tokens, size_t* pos)
      : tokens_(tokens), pos_(pos) {}

  Result<ExprPtr> Parse() { return ParseOr(); }

 private:
  const Token& Cur() const { return (*tokens_)[*pos_]; }
  void Advance() { ++*pos_; }

  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  const std::vector<Token>* tokens_;
  size_t* pos_;
};

/// Parse a full `select ...` statement.
Result<SelectStatement> ParseSelect(const std::string& query);

/// Parse a standalone predicate expression.
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace reach
