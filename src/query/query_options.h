// Per-query execution knobs, with process-wide defaults from the
// REACH_QUERY environment variable:
//
//   REACH_QUERY=parallel={on,off},morsel_pages=N,workers=N
//
// `parallel` gates the morsel-parallel extent scan (default on; index plans
// and 1-morsel extents always run serial). `morsel_pages` is the morsel
// size in distinct home pages (default 4). `workers` caps the degree of
// parallelism (default: hardware concurrency). Unknown entries are ignored
// so old binaries tolerate new knobs. See docs/QUERY.md.
#pragma once

#include <cstddef>

namespace reach {

struct QueryOptions {
  static constexpr size_t kDefaultMorselPages = 4;

  /// -1 = follow REACH_QUERY (default on); 0 = off; 1 = on.
  int parallel = -1;
  /// 0 = follow REACH_QUERY (default kDefaultMorselPages).
  size_t morsel_pages = 0;
  /// 0 = follow REACH_QUERY (default: hardware concurrency).
  size_t workers = 0;

  /// Process defaults (parsed once, cached).
  static QueryOptions FromEnv();
  /// Parse a REACH_QUERY spec string (exposed for tests; FromEnv caches).
  static QueryOptions Parse(const char* spec);

  /// Effective settings: this struct's explicit fields, else the
  /// environment's, else the built-in defaults.
  bool ResolvedParallel() const;
  size_t ResolvedMorselPages() const;
  size_t ResolvedWorkers() const;
};

}  // namespace reach
