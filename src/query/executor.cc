#include "query/executor.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <iterator>
#include <map>
#include <mutex>

#include "common/completion.h"
#include "common/thread_pool.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "storage/object_store.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

Result<Value> ObjectEnv::Resolve(const std::vector<std::string>& path) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  size_t attr_start = 0;
  if (path[0] == alias_) {
    if (path.size() == 1) return Value(obj_->oid());
    attr_start = 1;
  }
  // First attribute must exist on the candidate object.
  const std::string& attr = path[attr_start];
  if (!obj_->Has(attr)) {
    return Status::NotFound("attribute " + attr + " on " +
                            obj_->class_name());
  }
  Value v = obj_->Get(attr);
  // Follow reference attributes for multi-segment paths (o.ref.attr).
  for (size_t i = attr_start + 1; i < path.size(); ++i) {
    if (!v.is_ref()) {
      return Status::InvalidArgument("path segment '" + path[i] +
                                     "' applied to non-reference value");
    }
    REACH_ASSIGN_OR_RETURN(std::shared_ptr<DbObject> next,
                           session_->Fetch(v.as_ref()));
    if (!next->Has(path[i])) {
      return Status::NotFound("attribute " + path[i] + " on " +
                              next->class_name());
    }
    v = next->Get(path[i]);
  }
  return v;
}

namespace {

struct Hit {
  Oid oid;
  std::shared_ptr<DbObject> obj;
  Value sort_key;
};

/// Partial aggregate state of one group (single group when no group-by).
struct GroupState {
  Value key;
  size_t count = 0;
  std::vector<double> sums;    // per item
  std::vector<size_t> counts;  // non-null inputs per item
  std::vector<Value> mins, maxs;
};
using GroupMap = std::map<std::string, GroupState>;  // by encoded key

/// One worker's partial result: hits in canonical scan order (the worker
/// owns a contiguous morsel slice, so concatenating outputs in worker order
/// reproduces the serial sequence exactly).
struct WorkerOutput {
  std::vector<Hit> hits;  // row mode
  GroupMap groups;        // aggregate mode
  size_t scanned = 0;
};

/// Read-only state shared by all workers of one query.
struct ScanContext {
  Session* session;
  const SelectStatement* stmt;
  const QueryPlan* plan;
  BufferPool* pool;  // morsel readahead; null on the index path
};

/// Evaluate the plan's fast prefix directly against the attribute map.
/// Mirrors ObjectEnv::Resolve (missing attribute => NotFound, which the
/// caller treats as no-match) and CompareValues' null/error semantics, so
/// taking the fast path can never change a query's result.
Result<bool> FastPrefixPasses(const QueryPlan& plan, const DbObject& obj) {
  for (const QueryPlan::FastComparison& fc : plan.fast_prefix) {
    if (!obj.Has(fc.attr)) {
      return Status::NotFound("attribute " + fc.attr + " on " +
                              obj.class_name());
    }
    REACH_ASSIGN_OR_RETURN(
        Value keep, CompareValues(fc.op, obj.Get(fc.attr), *fc.literal));
    if (!keep.as_bool()) return false;
  }
  return true;
}

void FoldAggregate(const SelectStatement& stmt, const DbObject& obj,
                   GroupMap* groups) {
  Value key = stmt.group_by.empty() ? Value() : obj.Get(stmt.group_by);
  std::string enc;
  key.Encode(&enc);
  GroupState& g = (*groups)[enc];
  size_t n_items = stmt.items.size();
  if (g.count == 0) {
    g.key = key;
    g.sums.assign(n_items, 0);
    g.counts.assign(n_items, 0);
    g.mins.assign(n_items, Value());
    g.maxs.assign(n_items, Value());
  }
  g.count++;
  for (size_t i = 0; i < n_items; ++i) {
    const SelectItem& item = stmt.items[i];
    if (!item.is_aggregate() || item.attr.empty()) continue;
    Value v = obj.Get(item.attr);
    if (v.is_null()) continue;
    g.counts[i]++;
    if (v.is_numeric()) g.sums[i] += v.AsNumber();
    if (g.mins[i].is_null() || v < g.mins[i]) g.mins[i] = v;
    if (g.maxs[i].is_null() || v > g.maxs[i]) g.maxs[i] = v;
  }
}

/// Fold `src` into `dst`. Called in worker order, so partial sums combine
/// in the same left-to-right sequence every run.
void MergeGroups(GroupMap&& src, GroupMap* dst) {
  for (auto& [enc, gs] : src) {
    auto [it, inserted] = dst->emplace(enc, GroupState{});
    GroupState& g = it->second;
    if (g.count == 0) {
      g = std::move(gs);
      continue;
    }
    g.count += gs.count;
    for (size_t i = 0; i < g.sums.size(); ++i) {
      g.sums[i] += gs.sums[i];
      g.counts[i] += gs.counts[i];
      if (!gs.mins[i].is_null() &&
          (g.mins[i].is_null() || gs.mins[i] < g.mins[i])) {
        g.mins[i] = gs.mins[i];
      }
      if (!gs.maxs[i].is_null() &&
          (g.maxs[i].is_null() || gs.maxs[i] > g.maxs[i])) {
        g.maxs[i] = gs.maxs[i];
      }
    }
  }
}

/// Predicate + accumulate for one candidate. `use_fast` is false on the
/// index path (no fast prefix is compiled for it).
Status ProcessObject(const ScanContext& ctx, const Oid& oid,
                     const std::shared_ptr<DbObject>& obj, bool use_fast,
                     WorkerOutput* out) {
  ++out->scanned;
  const SelectStatement& stmt = *ctx.stmt;
  if (stmt.where) {
    bool residual = true;
    if (use_fast) {
      auto fast = FastPrefixPasses(*ctx.plan, *obj);
      // Missing attributes on heterogeneous extents: treat as no-match.
      if (!fast.ok()) {
        if (fast.status().IsNotFound()) return Status::OK();
        return fast.status();
      }
      if (!fast.value()) return Status::OK();
      residual = !ctx.plan->fast_exact;
    }
    if (residual) {
      ObjectEnv env(ctx.session, stmt.alias, obj.get());
      auto keep = EvaluateBool(stmt.where, &env);
      if (!keep.ok()) {
        if (keep.status().IsNotFound()) return Status::OK();
        return keep.status();
      }
      if (!keep.value()) return Status::OK();
    }
  }
  if (ctx.plan->aggregate_mode) {
    FoldAggregate(stmt, *obj, &out->groups);
    return Status::OK();
  }
  Hit hit;
  hit.oid = oid;
  hit.obj = obj;
  if (!stmt.order_by.empty()) {
    ObjectEnv env(ctx.session, stmt.alias, obj.get());
    auto key = env.Resolve(stmt.order_by);
    hit.sort_key = key.ok() ? key.value() : Value();
  }
  out->hits.push_back(std::move(hit));
  return Status::OK();
}

Status RunMorsel(const ScanContext& ctx, const Session::ExtentScan& scan,
                 const Session::ExtentMorsel& m, WorkerOutput* out) {
  {
    Status st = REACH_FAULT_HIT(faults::kQueryMorsel);
    if (!st.ok()) return st;
  }
  // Warm the morsel's home pages, windowed so one call never floods the
  // pool. Readahead failure only costs performance (FetchPage falls back to
  // a per-page read), so it is not propagated.
  for (size_t i = 0; i < m.pages.size();
       i += ObjectStore::kScanReadAheadPages) {
    size_t n =
        std::min(m.pages.size() - i, ObjectStore::kScanReadAheadPages);
    std::vector<PageId> window(m.pages.begin() + i, m.pages.begin() + i + n);
    (void)ctx.pool->ReadAhead(window);
  }
  std::vector<Oid> oids(scan.oids.begin() + m.begin,
                        scan.oids.begin() + m.end);
  std::vector<std::shared_ptr<DbObject>> objs;
  REACH_RETURN_IF_ERROR(ctx.session->FetchMany(oids, &objs));
  bool use_fast = !ctx.plan->fast_prefix.empty();
  for (size_t i = 0; i < oids.size(); ++i) {
    REACH_RETURN_IF_ERROR(
        ProcessObject(ctx, oids[i], objs[i], use_fast, out));
  }
  return Status::OK();
}

/// Shared scan pool, grown by replacement when a query asks for more
/// workers than the current pool has: in-flight queries keep the old pool
/// alive through their shared_ptr until their fan-out drains.
std::shared_ptr<ThreadPool> ScanPool(size_t workers) {
  static std::mutex mu;
  static auto* pool = new std::shared_ptr<ThreadPool>();  // no exit-order dtor
  std::lock_guard<std::mutex> lock(mu);
  if (!*pool || (*pool)->num_threads() < workers) {
    *pool = std::make_shared<ThreadPool>(workers);
  }
  return *pool;
}

Status RunParallel(const ScanContext& ctx, const Session::ExtentScan& scan,
                   size_t workers, std::vector<WorkerOutput>* outputs) {
  std::shared_ptr<ThreadPool> pool = ScanPool(workers);
  CompletionLatch latch(workers);
  std::atomic<bool> cancel{false};
  std::mutex crash_mu;
  std::exception_ptr crash;
  size_t n = scan.morsels.size();
  size_t base = n / workers, rem = n % workers;
  size_t lo = 0;
  for (size_t w = 0; w < workers; ++w) {
    size_t hi = lo + base + (w < rem ? 1 : 0);
    WorkerOutput* out = &(*outputs)[w];
    bool accepted = pool->Submit([&ctx, &scan, &latch, &cancel, &crash,
                                  &crash_mu, lo, hi, out] {
      Status st;
      try {
        for (size_t m = lo;
             m < hi && !cancel.load(std::memory_order_relaxed); ++m) {
          st = RunMorsel(ctx, scan, scan.morsels[m], out);
          if (!st.ok()) {
            cancel.store(true, std::memory_order_relaxed);
            break;
          }
        }
      } catch (...) {
        // Injected crash fault on a worker: park it and rethrow on the
        // querying thread after the join (the wal.flusher.batch
        // convention), never on a pool thread.
        std::lock_guard<std::mutex> lock(crash_mu);
        if (!crash) crash = std::current_exception();
        cancel.store(true, std::memory_order_relaxed);
      }
      latch.CountDown(st);
    });
    if (!accepted) {
      latch.CountDown(Status::Aborted("query worker pool shut down"));
    }
    lo = hi;
  }
  Status st = latch.Wait();
  if (crash) std::rethrow_exception(crash);
  return st;
}

void EmitAggregateRows(const SelectStatement& stmt, const GroupMap& groups,
                       QueryResult* result) {
  size_t n_items = stmt.items.size();
  for (const auto& [_, g] : groups) {
    QueryRow row;
    for (size_t i = 0; i < n_items; ++i) {
      const SelectItem& item = stmt.items[i];
      switch (item.kind) {
        case SelectItem::Kind::kAttr:
          row.values.push_back(g.key);
          break;
        case SelectItem::Kind::kCount:
          row.values.push_back(Value(static_cast<int64_t>(
              item.attr.empty() ? g.count : g.counts[i])));
          break;
        case SelectItem::Kind::kSum:
          row.values.push_back(Value(g.sums[i]));
          break;
        case SelectItem::Kind::kAvg:
          row.values.push_back(
              g.counts[i] == 0 ? Value()
                               : Value(g.sums[i] /
                                       static_cast<double>(g.counts[i])));
          break;
        case SelectItem::Kind::kMin:
          row.values.push_back(g.mins[i]);
          break;
        case SelectItem::Kind::kMax:
          row.values.push_back(g.maxs[i]);
          break;
      }
    }
    result->rows.push_back(std::move(row));
    if (stmt.limit && result->rows.size() >= *stmt.limit) break;
  }
}

void EmitRows(const SelectStatement& stmt, std::vector<Hit>* hits,
              QueryResult* result) {
  if (!stmt.order_by.empty()) {
    bool desc = stmt.order_desc;
    std::stable_sort(hits->begin(), hits->end(),
                     [desc](const Hit& a, const Hit& b) {
                       auto c = a.sort_key <=> b.sort_key;
                       if (c == std::partial_ordering::unordered) return false;
                       return desc ? c == std::partial_ordering::greater
                                   : c == std::partial_ordering::less;
                     });
  }
  size_t limit = stmt.limit.value_or(hits->size());
  for (size_t i = 0; i < hits->size() && i < limit; ++i) {
    QueryRow row;
    row.oid = (*hits)[i].oid;
    for (const SelectItem& item : stmt.items) {
      row.values.push_back((*hits)[i].obj->Get(item.attr));
    }
    result->rows.push_back(std::move(row));
  }
}

}  // namespace

Result<QueryResult> ExecutePlan(Session& session, const SelectStatement& stmt,
                                const QueryPlan& plan,
                                const QueryOptions& options) {
  uint64_t start = obs::NowNanos();
  QueryResult result;
  ScanContext ctx{&session, &stmt, &plan, nullptr};
  std::vector<WorkerOutput> outputs;

  if (plan.access != QueryPlan::Access::kExtentScan) {
    // Index plans stay serial: candidates are already narrowed, and index
    // order feeds the (unsorted, no-order-by) output directly.
    result.used_index = true;
    outputs.resize(1);
    for (const Oid& oid : plan.candidates) {
      REACH_ASSIGN_OR_RETURN(std::shared_ptr<DbObject> obj,
                             session.Fetch(oid));
      REACH_RETURN_IF_ERROR(
          ProcessObject(ctx, oid, obj, false, &outputs[0]));
    }
  } else {
    REACH_ASSIGN_OR_RETURN(
        Session::ExtentScan scan,
        session.ExtentMorsels(stmt.class_name,
                              options.ResolvedMorselPages()));
    result.morsels = scan.morsels.size();
    ctx.pool = session.db()->storage()->buffer_pool();
    size_t workers = 1;
    if (options.ResolvedParallel() && scan.morsels.size() > 1) {
      workers = std::min(options.ResolvedWorkers(), scan.morsels.size());
      if (workers == 0) workers = 1;
    }
    result.workers = workers;
    outputs.resize(workers);
    if (workers <= 1) {
      for (const Session::ExtentMorsel& m : scan.morsels) {
        REACH_RETURN_IF_ERROR(RunMorsel(ctx, scan, m, &outputs[0]));
      }
    } else {
      REACH_RETURN_IF_ERROR(RunParallel(ctx, scan, workers, &outputs));
    }
  }

  // Merge partials in worker order over contiguous morsel slices, then
  // emit — identical to the serial fold by construction.
  for (const WorkerOutput& out : outputs) result.scanned += out.scanned;
  if (plan.aggregate_mode) {
    GroupMap groups;
    for (WorkerOutput& out : outputs) {
      MergeGroups(std::move(out.groups), &groups);
    }
    EmitAggregateRows(stmt, groups, &result);
  } else {
    std::vector<Hit> hits;
    for (WorkerOutput& out : outputs) {
      hits.insert(hits.end(), std::make_move_iterator(out.hits.begin()),
                  std::make_move_iterator(out.hits.end()));
    }
    EmitRows(stmt, &hits, &result);
  }

  result.exec_ns = obs::NowNanos() - start;
  static obs::Histogram* exec_hist =
      obs::MetricsRegistry::Instance().histogram(obs::kQueryExecNs);
  static obs::Histogram* morsel_hist =
      obs::MetricsRegistry::Instance().histogram(obs::kQueryMorsels);
  static obs::Gauge* workers_gauge =
      obs::MetricsRegistry::Instance().gauge(obs::kQueryParallelWorkers);
  static obs::Counter* scanned_counter =
      obs::MetricsRegistry::Instance().counter(obs::kQueryRowsScanned);
  exec_hist->Record(result.exec_ns);
  morsel_hist->Record(result.morsels);
  workers_gauge->Set(static_cast<int64_t>(result.workers));
  scanned_counter->Inc(result.scanned);
  return result;
}

}  // namespace reach
