#include "query/query_options.h"

#include <cstdlib>
#include <string>
#include <thread>

namespace reach {

QueryOptions QueryOptions::Parse(const char* spec) {
  QueryOptions o;
  if (spec == nullptr) return o;
  std::string entry;
  auto apply = [&o](const std::string& e) {
    if (e.empty()) return;
    std::string key = e, value;
    if (size_t eq = e.find('='); eq != std::string::npos) {
      key = e.substr(0, eq);
      value = e.substr(eq + 1);
    }
    if (key == "parallel") {
      o.parallel =
          (value == "on" || value == "1" || value == "true") ? 1 : 0;
    } else if (key == "morsel_pages") {
      o.morsel_pages = std::strtoull(value.c_str(), nullptr, 0);
    } else if (key == "workers") {
      o.workers = std::strtoull(value.c_str(), nullptr, 0);
    }
    // Unknown entries are ignored so old binaries tolerate new knobs.
  };
  for (const char* p = spec;; ++p) {
    if (*p == '\0' || *p == ',' || *p == ';') {
      apply(entry);
      entry.clear();
      if (*p == '\0') break;
    } else {
      entry.push_back(*p);
    }
  }
  return o;
}

QueryOptions QueryOptions::FromEnv() {
  static const QueryOptions parsed = Parse(std::getenv("REACH_QUERY"));
  return parsed;
}

bool QueryOptions::ResolvedParallel() const {
  if (parallel >= 0) return parallel != 0;
  return FromEnv().parallel != 0;  // env default -1 means on
}

size_t QueryOptions::ResolvedMorselPages() const {
  size_t n = morsel_pages != 0 ? morsel_pages : FromEnv().morsel_pages;
  return n != 0 ? n : kDefaultMorselPages;
}

size_t QueryOptions::ResolvedWorkers() const {
  size_t n = workers != 0 ? workers : FromEnv().workers;
  if (n == 0) n = std::thread::hardware_concurrency();
  return n != 0 ? n : 1;
}

}  // namespace reach
