#include "query/expr.h"

namespace reach {

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprOp::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Path(std::vector<std::string> segments) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprOp::kPath));
  e->path_ = std::move(segments);
  return e;
}

ExprPtr Expr::Binary(ExprOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr(op));
  e->operands_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Unary(ExprOp op, ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr(op));
  e->operands_ = {std::move(operand)};
  return e;
}

namespace {
const char* OpSymbol(ExprOp op) {
  switch (op) {
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kMod: return "%";
    case ExprOp::kAnd: return "and";
    case ExprOp::kOr: return "or";
    default: return "?";
  }
}
}  // namespace

std::string Expr::ToString() const {
  switch (op_) {
    case ExprOp::kLiteral:
      return literal_.ToString();
    case ExprOp::kPath: {
      std::string out;
      for (size_t i = 0; i < path_.size(); ++i) {
        if (i > 0) out += ".";
        out += path_[i];
      }
      return out;
    }
    case ExprOp::kNot:
      return "(not " + operands_[0]->ToString() + ")";
    case ExprOp::kNeg:
      return "(-" + operands_[0]->ToString() + ")";
    default:
      return "(" + operands_[0]->ToString() + " " + OpSymbol(op_) + " " +
             operands_[1]->ToString() + ")";
  }
}

namespace {

Result<Value> Arith(ExprOp op, const Value& l, const Value& r) {
  if (op == ExprOp::kAdd && l.is_string() && r.is_string()) {
    return Value(l.as_string() + r.as_string());
  }
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric values");
  }
  if (l.is_int() && r.is_int()) {
    int64_t a = l.as_int(), b = r.as_int();
    switch (op) {
      case ExprOp::kAdd: return Value(a + b);
      case ExprOp::kSub: return Value(a - b);
      case ExprOp::kMul: return Value(a * b);
      case ExprOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value(a / b);
      case ExprOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value(a % b);
      default: break;
    }
  }
  double a = l.AsNumber(), b = r.AsNumber();
  switch (op) {
    case ExprOp::kAdd: return Value(a + b);
    case ExprOp::kSub: return Value(a - b);
    case ExprOp::kMul: return Value(a * b);
    case ExprOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value(a / b);
    default:
      return Status::InvalidArgument("modulo requires integers");
  }
}

Result<Value> Compare(ExprOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) {
    // SQL-ish: comparisons against null are false, except equality checks
    // of two nulls.
    if (op == ExprOp::kEq) return Value(l.is_null() && r.is_null());
    if (op == ExprOp::kNe) return Value(l.is_null() != r.is_null());
    return Value(false);
  }
  auto c = l <=> r;
  if (c == std::partial_ordering::unordered) {
    return Status::InvalidArgument("incomparable values");
  }
  switch (op) {
    case ExprOp::kEq: return Value(l == r);
    case ExprOp::kNe: return Value(!(l == r));
    case ExprOp::kLt: return Value(c == std::partial_ordering::less);
    case ExprOp::kLe: return Value(c != std::partial_ordering::greater);
    case ExprOp::kGt: return Value(c == std::partial_ordering::greater);
    case ExprOp::kGe: return Value(c != std::partial_ordering::less);
    default:
      return Status::Internal("bad comparison op");
  }
}

bool Truthy(const Value& v) {
  if (v.is_bool()) return v.as_bool();
  if (v.is_null()) return false;
  if (v.is_numeric()) return v.AsNumber() != 0;
  return true;
}

}  // namespace

Result<Value> CompareValues(ExprOp op, const Value& l, const Value& r) {
  return Compare(op, l, r);
}

Result<Value> Evaluate(const ExprPtr& expr, EvalEnv* env) {
  switch (expr->op()) {
    case ExprOp::kLiteral:
      return expr->literal();
    case ExprOp::kPath:
      return env->Resolve(expr->path());
    case ExprOp::kAnd: {
      REACH_ASSIGN_OR_RETURN(Value l, Evaluate(expr->operands()[0], env));
      if (!Truthy(l)) return Value(false);
      REACH_ASSIGN_OR_RETURN(Value r, Evaluate(expr->operands()[1], env));
      return Value(Truthy(r));
    }
    case ExprOp::kOr: {
      REACH_ASSIGN_OR_RETURN(Value l, Evaluate(expr->operands()[0], env));
      if (Truthy(l)) return Value(true);
      REACH_ASSIGN_OR_RETURN(Value r, Evaluate(expr->operands()[1], env));
      return Value(Truthy(r));
    }
    case ExprOp::kNot: {
      REACH_ASSIGN_OR_RETURN(Value v, Evaluate(expr->operands()[0], env));
      return Value(!Truthy(v));
    }
    case ExprOp::kNeg: {
      REACH_ASSIGN_OR_RETURN(Value v, Evaluate(expr->operands()[0], env));
      if (v.is_int()) return Value(-v.as_int());
      if (v.is_double()) return Value(-v.as_double());
      return Status::InvalidArgument("negation of non-numeric value");
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      REACH_ASSIGN_OR_RETURN(Value l, Evaluate(expr->operands()[0], env));
      REACH_ASSIGN_OR_RETURN(Value r, Evaluate(expr->operands()[1], env));
      return Compare(expr->op(), l, r);
    }
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv:
    case ExprOp::kMod: {
      REACH_ASSIGN_OR_RETURN(Value l, Evaluate(expr->operands()[0], env));
      REACH_ASSIGN_OR_RETURN(Value r, Evaluate(expr->operands()[1], env));
      return Arith(expr->op(), l, r);
    }
  }
  return Status::Internal("unknown expression op");
}

Result<bool> EvaluateBool(const ExprPtr& expr, EvalEnv* env) {
  REACH_ASSIGN_OR_RETURN(Value v, Evaluate(expr, env));
  return Truthy(v);
}

}  // namespace reach
