// Query policy manager: executes the OQL[C++] subset over class extents,
// using an equality index when the predicate allows it (simple access-path
// selection).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "oodb/session.h"
#include "query/parser.h"

namespace reach {

struct QueryRow {
  Oid oid;
  std::vector<Value> values;  // projected attributes ([] for select *)
};

struct QueryResult {
  std::vector<QueryRow> rows;
  bool used_index = false;
  size_t scanned = 0;  // objects examined
};

class QueryPm {
 public:
  QueryPm() = default;

  /// Execute `query` within the session's current transaction.
  Result<QueryResult> Execute(Session& session, const std::string& query);

  /// Execute a pre-parsed statement.
  Result<QueryResult> Execute(Session& session, const SelectStatement& stmt);
};

/// EvalEnv over one candidate object: `<alias>.attr` resolves to the
/// object's attribute; a bare `<alias>` resolves to its OID; single-segment
/// paths also try the object's attributes directly.
class ObjectEnv : public EvalEnv {
 public:
  ObjectEnv(Session* session, const std::string& alias, const DbObject* obj)
      : session_(session), alias_(alias), obj_(obj) {}

  Result<Value> Resolve(const std::vector<std::string>& path) override;

 private:
  Session* session_;
  std::string alias_;
  const DbObject* obj_;
};

}  // namespace reach
