// Query policy manager: the facade over the planner/executor split.
// Planning (validation + access-path selection) lives in query/planner.h;
// morsel-parallel execution in query/executor.h; the REACH_QUERY knob in
// query/query_options.h. See docs/QUERY.md.
#pragma once

#include <string>

#include "common/result.h"
#include "oodb/session.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/query_options.h"

namespace reach {

class QueryPm {
 public:
  QueryPm() = default;

  /// Execute `query` within the session's current transaction.
  Result<QueryResult> Execute(Session& session, const std::string& query,
                              const QueryOptions& options = {});

  /// Execute a pre-parsed statement.
  Result<QueryResult> Execute(Session& session, const SelectStatement& stmt,
                              const QueryOptions& options = {});
};

}  // namespace reach
