// Query planner: validates a parsed select statement against the type
// system and picks the access path — index-backed equality/range probe, or
// a (possibly parallel) extent scan. Also compiles the predicate's fast
// path: the leading `attr <cmp> literal` conjuncts of the AND-flattened
// where clause, which the executor evaluates directly against the object's
// attribute map before paying for full expression evaluation.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "oodb/session.h"
#include "query/parser.h"

namespace reach {

struct QueryPlan {
  enum class Access {
    kIndexEq,     // hash (or ordered) index equality probe
    kIndexRange,  // ordered index range scan
    kExtentScan,  // full extent scan, morsel-parallel when enabled
  };

  Access access = Access::kExtentScan;
  bool aggregate_mode = false;

  /// kIndexEq / kIndexRange only: candidate OIDs in index order.
  std::vector<Oid> candidates;

  /// One pre-compiled `attr <cmp> literal` conjunct. `literal` points into
  /// the statement's expression tree — the plan must not outlive it.
  struct FastComparison {
    std::string attr;
    ExprOp op;
    const Value* literal;
  };

  /// Leading AND-conjuncts evaluable without an EvalEnv, in evaluation
  /// order. Compilation stops at the first conjunct that is not a plain
  /// attribute/literal comparison so error-surfacing order matches full
  /// evaluation exactly.
  std::vector<FastComparison> fast_prefix;
  /// True when fast_prefix covers the entire where clause (no residual
  /// full evaluation needed for passing objects).
  bool fast_exact = false;
};

/// Validate `stmt` and choose its access path. Index probes run here (the
/// candidate list is part of the plan); extent enumeration is left to the
/// executor so it can morselize.
Result<QueryPlan> PlanQuery(Session& session, const SelectStatement& stmt);

}  // namespace reach
