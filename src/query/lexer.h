// Lexer shared by the OQL[C++] subset and the REACH rule language.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace reach {

enum class TokenType {
  kIdent,      // identifiers and keywords (keyword check happens in parsers)
  kInt,
  kDouble,
  kString,     // "..." (supports \" and \\ escapes)
  kSymbol,     // punctuation / operators, one entry per lexeme
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // raw text (unescaped content for strings)
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;  // byte offset in the input (for error messages)

  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-sensitive keyword/identifier match.
  bool IsIdent(const char* s) const {
    return type == TokenType::kIdent && text == s;
  }
};

/// Tokenize `input`. Recognized symbols include the multi-character
/// operators <= >= == != && || -> and single characters ()[]{},;.<>=+-*/%!.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace reach
