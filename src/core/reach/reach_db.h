// ReachDb: the integrated active OODBMS — Open-OODB-style core (storage,
// transactions, persistence, indexing, query) with the REACH active
// subsystem (event detection/composition, ECA rule management) plugged
// into the meta-architecture bus. This is the library's top-level entry
// point.
#pragma once

#include <memory>
#include <string>

#include "core/events/event_manager.h"
#include "core/rules/function_registry.h"
#include "core/rules/rule_engine.h"
#include "core/rules/rule_parser.h"
#include "oodb/database.h"
#include "oodb/session.h"
#include "query/query_pm.h"

namespace reach {

struct ReachOptions {
  DatabaseOptions database;
  EventManagerOptions events;
  RuleEngineOptions rules;
};

class ReachDb {
 public:
  ~ReachDb();

  /// Open (or create) the database at `base_path` (files `<base>.db` and
  /// `<base>.wal`), running crash recovery if needed.
  static Result<std::unique_ptr<ReachDb>> Open(const std::string& base_path,
                                               ReachOptions options = {});

  // Component access.
  Database* database() { return db_.get(); }
  TypeSystem* types() { return db_->types(); }
  EventManager* events() { return events_.get(); }
  RuleEngine* rules() { return rules_.get(); }
  FunctionRegistry* functions() { return &functions_; }
  QueryPm* query() { return &query_; }
  Clock* clock() { return db_->clock(); }

  /// New application session.
  std::unique_ptr<Session> CreateSession() {
    return std::make_unique<Session>(db_.get());
  }

  /// Register an application class. Accepts a builder chain directly:
  /// `db->RegisterClass(ClassBuilder("C").Attribute(...).Method(...))`.
  Status RegisterClass(ClassBuilder& builder) {
    return db_->types()->RegisterClass(builder.Build());
  }
  Status RegisterClass(std::unique_ptr<ClassDescriptor> desc) {
    return db_->types()->RegisterClass(std::move(desc));
  }

  /// Define rules from the REACH rule language.
  Result<std::vector<RuleId>> DefineRules(const std::string& source) {
    RuleParser parser(events_.get(), rules_.get(), &functions_, types());
    return parser.ParseAndDefine(source);
  }

  /// Run an OQL[C++] query in `session`'s transaction.
  Result<QueryResult> Query(Session& session, const std::string& q) {
    return query_.Execute(session, q);
  }

  /// Drain asynchronous work (composition, detached rules, history merge).
  void Drain();

  /// Flush all pages and truncate the log. Precondition: no transaction is
  /// active. Drains asynchronous rule work first.
  Status Checkpoint();

  /// Human-readable snapshot of system statistics (events, rules, buffer
  /// pool, transactions).
  std::string StatsReport();

 private:
  ReachDb() = default;

  std::unique_ptr<Database> db_;
  std::unique_ptr<EventManager> events_;
  std::unique_ptr<RuleEngine> rules_;
  FunctionRegistry functions_;
  QueryPm query_;
};

}  // namespace reach
