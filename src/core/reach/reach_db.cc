#include "core/reach/reach_db.h"

namespace reach {

ReachDb::~ReachDb() {
  // Drain in-flight rule work before tearing down components it may touch.
  if (rules_) rules_->WaitDetachedIdle();
  if (events_) events_->Quiesce();
  // Destruction order matters: rules detach from the transaction manager,
  // the event manager from the bus, before the database goes away.
  rules_.reset();
  events_.reset();
  db_.reset();
}

Result<std::unique_ptr<ReachDb>> ReachDb::Open(const std::string& base_path,
                                               ReachOptions options) {
  auto reach = std::unique_ptr<ReachDb>(new ReachDb());
  REACH_ASSIGN_OR_RETURN(reach->db_,
                         Database::Open(base_path, options.database));
  reach->events_ =
      std::make_unique<EventManager>(reach->db_.get(), options.events);
  reach->rules_ = std::make_unique<RuleEngine>(
      reach->db_.get(), reach->events_.get(), options.rules);
  return reach;
}

Status ReachDb::Checkpoint() {
  Drain();
  if (db_->txns()->active_count() > 0) {
    return Status::FailedPrecondition(
        "checkpoint requires no active transactions");
  }
  // Event-history checkpoint first: the storage checkpoint truncates the
  // log keeping only the latest event checkpoint + tail, so writing the
  // checkpoint now minimizes what the carryover re-appends.
  REACH_RETURN_IF_ERROR(events_->CheckpointEventState());
  return db_->storage()->Checkpoint();
}

std::string ReachDb::StatsReport() {
  std::string out;
  auto add = [&](const std::string& line) { out += line + "\n"; };
  add("events signaled:       " + std::to_string(events_->signaled_count()));
  add("composites raised:     " + std::to_string(events_->composite_count()));
  add("live partials:         " + std::to_string(events_->LivePartials()));
  add("global history:        " +
      std::to_string(events_->global_history()->size()));
  RuleEngineStats rs = rules_->stats();
  add("immediate rule runs:   " + std::to_string(rs.immediate_runs));
  add("deferred rule runs:    " + std::to_string(rs.deferred_runs));
  add("detached rule runs:    " + std::to_string(rs.detached_runs));
  add("dependency skips:      " + std::to_string(rs.dependency_skips));
  add("rule failures:         " + std::to_string(rs.failures));
  add("transactions begun:    " + std::to_string(db_->txns()->begun_count()));
  add("active transactions:   " +
      std::to_string(db_->txns()->active_count()));
  add("deadlocks detected:    " +
      std::to_string(db_->txns()->locks()->deadlocks_detected()));
  BufferPool* pool = db_->storage()->buffer_pool();
  add("buffer pool hits/misses: " + std::to_string(pool->hit_count()) + "/" +
      std::to_string(pool->miss_count()));
  add("cached objects:        " +
      std::to_string(db_->persistence()->cached_objects()));
  add("object faults:         " +
      std::to_string(db_->persistence()->faults()));
  add("index maintenance ops: " +
      std::to_string(db_->indexing()->maintenance_ops()));
  return out;
}

void ReachDb::Drain() {
  // Detached rules may raise events that trigger more composition and more
  // detached rules; iterate to a fixed point (bounded).
  for (int i = 0; i < 8; ++i) {
    rules_->WaitDetachedIdle();
    events_->Quiesce();
  }
}

}  // namespace reach
