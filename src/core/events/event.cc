#include "core/events/event.h"

#include <algorithm>

namespace reach {

const char* EventCategoryName(EventCategory category) {
  switch (category) {
    case EventCategory::kSingleMethod: return "single-method";
    case EventCategory::kPurelyTemporal: return "purely-temporal";
    case EventCategory::kCompositeSingleTx: return "composite-1tx";
    case EventCategory::kCompositeMultiTx: return "composite-ntx";
  }
  return "?";
}

std::vector<TxnId> EventOccurrence::InvolvedTxns() const {
  std::vector<TxnId> out;
  if (txn != kNoTxn) out.push_back(txn);
  for (const auto& c : constituents) {
    for (TxnId t : c->InvolvedTxns()) {
      if (std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      }
    }
  }
  return out;
}

void EventOccurrence::CollectLeaves(
    std::vector<const EventOccurrence*>* out) const {
  if (constituents.empty()) {
    out->push_back(this);
    return;
  }
  for (const auto& c : constituents) c->CollectLeaves(out);
}

std::string EventOccurrence::ToString() const {
  std::string out = "event(type=" + std::to_string(type) +
                    ", t=" + std::to_string(timestamp) +
                    ", seq=" + std::to_string(sequence);
  if (txn != kNoTxn) out += ", txn=" + std::to_string(txn);
  if (source.valid()) out += ", src=" + source.ToString();
  if (!constituents.empty()) {
    out += ", parts=" + std::to_string(constituents.size());
  }
  return out + ")";
}

}  // namespace reach
