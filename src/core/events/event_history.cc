#include "core/events/event_history.h"

#include <algorithm>

namespace reach {

void LocalHistory::Append(EventOccurrencePtr occ) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(occ));
  if (ring_.size() > capacity_) ring_.pop_front();
  ++total_;
}

std::vector<EventOccurrencePtr> LocalHistory::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<EventOccurrencePtr>(ring_.begin(), ring_.end());
}

uint64_t LocalHistory::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

size_t LocalHistory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void GlobalHistory::Merge(std::vector<EventOccurrencePtr> events) {
  auto by_seq = [](const EventOccurrencePtr& a, const EventOccurrencePtr& b) {
    return a->sequence < b->sequence;
  };
  std::lock_guard<std::mutex> lock(mu_);
  // Keep the global history in event order despite asynchronous merges —
  // but the common case (batches arriving in sequence order) must stay
  // O(batch): re-sorting the whole history per merge turns a stream of
  // small merges quadratic.
  const size_t old_size = events_.size();
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
  std::sort(events_.begin() + static_cast<long>(old_size), events_.end(),
            by_seq);
  if (old_size > 0 && events_.size() > old_size &&
      by_seq(events_[old_size], events_[old_size - 1])) {
    std::inplace_merge(events_.begin(),
                       events_.begin() + static_cast<long>(old_size),
                       events_.end(), by_seq);
  }
  ++merges_;
}

std::vector<EventOccurrencePtr> GlobalHistory::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<EventOccurrencePtr> GlobalHistory::OfType(EventTypeId type) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EventOccurrencePtr> out;
  for (const auto& e : events_) {
    if (e->type == type) out.push_back(e);
  }
  return out;
}

size_t GlobalHistory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t GlobalHistory::merge_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merges_;
}

}  // namespace reach
