#include "core/events/event_history.h"

#include <algorithm>

namespace reach {

void LocalHistory::Append(EventOccurrencePtr occ) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(occ));
  if (ring_.size() > capacity_) ring_.pop_front();
  ++total_;
}

std::vector<EventOccurrencePtr> LocalHistory::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<EventOccurrencePtr>(ring_.begin(), ring_.end());
}

uint64_t LocalHistory::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

size_t LocalHistory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void GlobalHistory::Merge(std::vector<EventOccurrencePtr> events) {
  std::lock_guard<std::mutex> lock(mu_);
  // Keep the global history in event order despite asynchronous merges.
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
  std::sort(events_.begin(), events_.end(),
            [](const EventOccurrencePtr& a, const EventOccurrencePtr& b) {
              return a->sequence < b->sequence;
            });
  ++merges_;
}

std::vector<EventOccurrencePtr> GlobalHistory::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<EventOccurrencePtr> GlobalHistory::OfType(EventTypeId type) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EventOccurrencePtr> out;
  for (const auto& e : events_) {
    if (e->type == type) out.push_back(e);
  }
  return out;
}

size_t GlobalHistory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t GlobalHistory::merge_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merges_;
}

}  // namespace reach
