#include "core/events/event_expr.h"

#include <algorithm>

namespace reach {

const char* EventOpName(EventOp op) {
  switch (op) {
    case EventOp::kPrimitive: return "prim";
    case EventOp::kSequence: return "seq";
    case EventOp::kConjunction: return "and";
    case EventOp::kDisjunction: return "or";
    case EventOp::kNegation: return "not";
    case EventOp::kClosure: return "closure";
    case EventOp::kHistory: return "history";
  }
  return "?";
}

EventExprPtr EventExpr::Prim(EventTypeId type) {
  return EventExprPtr(new EventExpr(EventOp::kPrimitive, type, {}, 0));
}

EventExprPtr EventExpr::Seq(EventExprPtr a, EventExprPtr b,
                            Correlation correlation) {
  return EventExprPtr(new EventExpr(EventOp::kSequence, kInvalidEventType,
                                    {std::move(a), std::move(b)}, 0,
                                    correlation));
}

EventExprPtr EventExpr::And(EventExprPtr a, EventExprPtr b,
                            Correlation correlation) {
  return EventExprPtr(new EventExpr(EventOp::kConjunction, kInvalidEventType,
                                    {std::move(a), std::move(b)}, 0,
                                    correlation));
}

EventExprPtr EventExpr::Or(EventExprPtr a, EventExprPtr b) {
  return EventExprPtr(new EventExpr(EventOp::kDisjunction, kInvalidEventType,
                                    {std::move(a), std::move(b)}, 0));
}

EventExprPtr EventExpr::Not(EventExprPtr start, EventExprPtr neg,
                            EventExprPtr end, Correlation correlation) {
  return EventExprPtr(
      new EventExpr(EventOp::kNegation, kInvalidEventType,
                    {std::move(start), std::move(neg), std::move(end)}, 0,
                    correlation));
}

EventExprPtr EventExpr::Closure(EventExprPtr body, EventExprPtr end) {
  return EventExprPtr(new EventExpr(EventOp::kClosure, kInvalidEventType,
                                    {std::move(body), std::move(end)}, 0));
}

EventExprPtr EventExpr::History(EventExprPtr body, uint32_t n,
                                Correlation correlation) {
  return EventExprPtr(new EventExpr(EventOp::kHistory, kInvalidEventType,
                                    {std::move(body)}, n, correlation));
}

void EventExpr::CollectLeaves(std::vector<EventTypeId>* out) const {
  if (op_ == EventOp::kPrimitive) {
    if (std::find(out->begin(), out->end(), primitive_type_) == out->end()) {
      out->push_back(primitive_type_);
    }
    return;
  }
  for (const auto& c : children_) c->CollectLeaves(out);
}

std::vector<EventTypeId> EventExpr::LeafTypes() const {
  std::vector<EventTypeId> out;
  CollectLeaves(&out);
  return out;
}

void EventExpr::CompileLeafFilter() {
  CollectLeaves(&sorted_leaves_);
  std::sort(sorted_leaves_.begin(), sorted_leaves_.end());
  for (EventTypeId t : sorted_leaves_) leaf_mask_ |= uint64_t{1} << (t & 63u);
}

size_t EventExpr::EvalBatch(const EventTypeId* types, size_t n,
                            std::vector<uint32_t>* matches) const {
  const size_t before = matches->size();
  const uint64_t mask = leaf_mask_;
  if (sorted_leaves_.size() == 1) {
    // The dominant shape (History/Closure over one leaf, most Seq/And legs
    // after dedup): one equality compare per element.
    const EventTypeId only = sorted_leaves_[0];
    for (size_t i = 0; i < n; ++i) {
      if (types[i] == only) matches->push_back(static_cast<uint32_t>(i));
    }
    return matches->size() - before;
  }
  for (size_t i = 0; i < n; ++i) {
    const EventTypeId t = types[i];
    if (((mask >> (t & 63u)) & 1u) == 0) continue;
    for (EventTypeId leaf : sorted_leaves_) {
      if (leaf == t) {
        matches->push_back(static_cast<uint32_t>(i));
        break;
      }
    }
  }
  return matches->size() - before;
}

Status EventExpr::Validate() const {
  switch (op_) {
    case EventOp::kPrimitive:
      if (primitive_type_ == kInvalidEventType) {
        return Status::InvalidArgument("primitive leaf with invalid type");
      }
      return Status::OK();
    case EventOp::kSequence:
    case EventOp::kConjunction:
    case EventOp::kDisjunction:
    case EventOp::kClosure:
      if (children_.size() != 2) {
        return Status::InvalidArgument(std::string(EventOpName(op_)) +
                                       " needs exactly 2 operands");
      }
      break;
    case EventOp::kNegation:
      if (children_.size() != 3) {
        return Status::InvalidArgument("not needs (start, neg, end)");
      }
      break;
    case EventOp::kHistory:
      if (children_.size() != 1) {
        return Status::InvalidArgument("history needs 1 operand");
      }
      if (history_count_ == 0) {
        return Status::InvalidArgument("history count must be >= 1");
      }
      break;
  }
  for (const auto& c : children_) {
    REACH_RETURN_IF_ERROR(c->Validate());
  }
  return Status::OK();
}

std::string EventExpr::ToString() const {
  if (op_ == EventOp::kPrimitive) {
    return "E" + std::to_string(primitive_type_);
  }
  std::string out = EventOpName(op_);
  out += "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += ", ";
    out += children_[i]->ToString();
  }
  if (op_ == EventOp::kHistory) {
    out += ", n=" + std::to_string(history_count_);
  }
  return out + ")";
}

}  // namespace reach
