#include "core/events/event_registry.h"

#include <algorithm>

namespace reach {

const char* ConsumptionPolicyName(ConsumptionPolicy policy) {
  switch (policy) {
    case ConsumptionPolicy::kRecent: return "recent";
    case ConsumptionPolicy::kChronicle: return "chronicle";
    case ConsumptionPolicy::kContinuous: return "continuous";
    case ConsumptionPolicy::kCumulative: return "cumulative";
  }
  return "?";
}

std::string EventRegistry::DbKey(SentryKind kind,
                                 const std::string& class_name,
                                 const std::string& member) {
  return std::to_string(static_cast<int>(kind)) + "/" + class_name + "/" +
         member;
}

Result<EventTypeId> EventRegistry::Insert(EventDescriptor desc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (by_name_.contains(desc.name)) {
    return Status::AlreadyExists("event type " + desc.name);
  }
  desc.id = next_id_++;
  EventTypeId id = desc.id;
  by_name_[desc.name] = id;
  if (desc.is_db_event) {
    std::string key = DbKey(desc.sentry_kind, desc.class_name, desc.member);
    if (db_events_.contains(key)) {
      by_name_.erase(desc.name);
      return Status::AlreadyExists("db event for " + key);
    }
    db_events_[key] = id;
  }
  by_id_[id] = std::make_unique<EventDescriptor>(std::move(desc));
  return id;
}

Result<EventTypeId> EventRegistry::RegisterMethodEvent(
    const std::string& name, const std::string& class_name,
    const std::string& method, bool after) {
  EventDescriptor desc;
  desc.name = name;
  desc.category = EventCategory::kSingleMethod;
  desc.is_db_event = true;
  desc.sentry_kind =
      after ? SentryKind::kMethodAfter : SentryKind::kMethodBefore;
  desc.class_name = class_name;
  desc.member = method;
  return Insert(std::move(desc));
}

Result<EventTypeId> EventRegistry::RegisterStateChangeEvent(
    const std::string& name, const std::string& class_name,
    const std::string& attr) {
  EventDescriptor desc;
  desc.name = name;
  desc.category = EventCategory::kSingleMethod;
  desc.is_db_event = true;
  desc.sentry_kind = SentryKind::kStateChange;
  desc.class_name = class_name;
  desc.member = attr;
  return Insert(std::move(desc));
}

Result<EventTypeId> EventRegistry::RegisterFlowEvent(
    const std::string& name, SentryKind kind, const std::string& class_name) {
  switch (kind) {
    case SentryKind::kPersist:
    case SentryKind::kFetch:
    case SentryKind::kDelete:
    case SentryKind::kTxnBegin:
    case SentryKind::kTxnCommit:
    case SentryKind::kTxnAbort:
      break;
    default:
      return Status::InvalidArgument(
          "flow event must be persist/fetch/delete/txn-*");
  }
  EventDescriptor desc;
  desc.name = name;
  desc.category = EventCategory::kSingleMethod;
  desc.is_db_event = true;
  desc.sentry_kind = kind;
  desc.class_name = class_name;
  return Insert(std::move(desc));
}

Result<EventTypeId> EventRegistry::RegisterAbsoluteEvent(
    const std::string& name, Timestamp fire_at) {
  EventDescriptor desc;
  desc.name = name;
  desc.category = EventCategory::kPurelyTemporal;
  desc.is_temporal = true;
  desc.temporal_kind = TemporalKind::kAbsolute;
  desc.fire_at = fire_at;
  return Insert(std::move(desc));
}

Result<EventTypeId> EventRegistry::RegisterPeriodicEvent(
    const std::string& name, Timestamp period_us) {
  if (period_us <= 0) {
    return Status::InvalidArgument("period must be positive");
  }
  EventDescriptor desc;
  desc.name = name;
  desc.category = EventCategory::kPurelyTemporal;
  desc.is_temporal = true;
  desc.temporal_kind = TemporalKind::kPeriodic;
  desc.period_us = period_us;
  return Insert(std::move(desc));
}

Result<EventTypeId> EventRegistry::RegisterRelativeEvent(
    const std::string& name, EventTypeId anchor, Timestamp delay_us) {
  if (Find(anchor) == nullptr) {
    return Status::NotFound("anchor event type " + std::to_string(anchor));
  }
  if (delay_us < 0) return Status::InvalidArgument("negative delay");
  EventDescriptor desc;
  desc.name = name;
  desc.category = EventCategory::kPurelyTemporal;
  desc.is_temporal = true;
  desc.temporal_kind = TemporalKind::kRelative;
  desc.anchor = anchor;
  desc.delay_us = delay_us;
  return Insert(std::move(desc));
}

Result<EventTypeId> EventRegistry::RegisterMilestone(const std::string& name,
                                                     EventTypeId marker,
                                                     Timestamp deadline_us) {
  const EventDescriptor* m = Find(marker);
  if (m == nullptr) {
    return Status::NotFound("marker event type " + std::to_string(marker));
  }
  if (deadline_us <= 0) {
    return Status::InvalidArgument("milestone deadline must be positive");
  }
  EventDescriptor desc;
  desc.name = name;
  // A missed milestone relates to exactly one transaction, so rules on it
  // may use the same coupling modes as single-method events relative to
  // that transaction; conservatively we classify it as temporal (it is
  // raised by the timer, possibly after the transaction ended).
  desc.category = EventCategory::kPurelyTemporal;
  desc.is_milestone = true;
  desc.marker = marker;
  desc.deadline_us = deadline_us;
  return Insert(std::move(desc));
}

Result<EventTypeId> EventRegistry::RegisterComposite(
    const std::string& name, EventExprPtr expr, CompositeScope scope,
    ConsumptionPolicy policy, Timestamp validity_us) {
  if (!expr) return Status::InvalidArgument("null event expression");
  REACH_RETURN_IF_ERROR(expr->Validate());

  Timestamp inherited_validity = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (EventTypeId leaf : expr->LeafTypes()) {
      auto it = by_id_.find(leaf);
      if (it == by_id_.end()) {
        return Status::NotFound("leaf event type " + std::to_string(leaf));
      }
      const EventDescriptor& ld = *it->second;
      if (scope == CompositeScope::kSingleTxn &&
          ld.category != EventCategory::kSingleMethod &&
          ld.category != EventCategory::kCompositeSingleTx) {
        return Status::InvalidArgument(
            "single-transaction composite may only contain "
            "same-transaction DB events (leaf " +
            ld.name + " is " + EventCategoryName(ld.category) + ")");
      }
      if (ld.is_composite() && ld.validity_us > 0) {
        if (inherited_validity == 0 || ld.validity_us < inherited_validity) {
          inherited_validity = ld.validity_us;
        }
      }
    }
  }
  if (scope == CompositeScope::kCrossTxn && validity_us <= 0) {
    // §3.3: the implicit interval is the smallest of the constituents'.
    if (inherited_validity > 0) {
      validity_us = inherited_validity;
    } else {
      return Status::InvalidArgument(
          "cross-transaction composite events require a validity "
          "interval, explicit or inherited (§3.3)");
    }
  }

  EventDescriptor desc;
  desc.name = name;
  desc.category = scope == CompositeScope::kSingleTxn
                      ? EventCategory::kCompositeSingleTx
                      : EventCategory::kCompositeMultiTx;
  desc.expr = std::move(expr);
  desc.policy = policy;
  desc.scope = scope;
  desc.validity_us = validity_us;
  return Insert(std::move(desc));
}

const EventDescriptor* EventRegistry::Find(EventTypeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second.get();
}

const EventDescriptor* EventRegistry::FindByName(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return by_id_.at(it->second).get();
}

EventTypeId EventRegistry::FindDbEvent(SentryKind kind,
                                       const std::string& class_name,
                                       const std::string& member) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = db_events_.find(DbKey(kind, class_name, member));
  return it == db_events_.end() ? kInvalidEventType : it->second;
}

std::vector<const EventDescriptor*> EventRegistry::AllEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const EventDescriptor*> out;
  out.reserve(by_id_.size());
  for (const auto& [_, desc] : by_id_) out.push_back(desc.get());
  std::sort(out.begin(), out.end(),
            [](const EventDescriptor* a, const EventDescriptor* b) {
              return a->id < b->id;
            });
  return out;
}

std::vector<const EventDescriptor*> EventRegistry::CompositesWithLeaf(
    EventTypeId leaf) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const EventDescriptor*> out;
  for (const auto& [_, desc] : by_id_) {
    if (!desc->is_composite()) continue;
    auto leaves = desc->expr->LeafTypes();
    if (std::find(leaves.begin(), leaves.end(), leaf) != leaves.end()) {
      out.push_back(desc.get());
    }
  }
  return out;
}

std::vector<const EventDescriptor*> EventRegistry::RelativeEventsAnchoredAt(
    EventTypeId anchor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const EventDescriptor*> out;
  for (const auto& [_, desc] : by_id_) {
    if (desc->is_temporal && desc->temporal_kind == TemporalKind::kRelative &&
        desc->anchor == anchor) {
      out.push_back(desc.get());
    }
  }
  return out;
}

std::vector<const EventDescriptor*> EventRegistry::Milestones() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const EventDescriptor*> out;
  for (const auto& [_, desc] : by_id_) {
    if (desc->is_milestone) out.push_back(desc.get());
  }
  return out;
}

}  // namespace reach
