#include "core/events/compositor.h"

#include <algorithm>
#include <cstring>

#include "core/events/event_durability.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace reach {

namespace {

/// Process-wide aggregates over all Compositor instances; the per-instance
/// counts in CompositorStats remain exact for tests and diagnostics.
struct CompositorMetrics {
  obs::Counter* fed;
  obs::Counter* completions;
  obs::Counter* expired_partials;
  obs::Counter* discarded_at_eot;
  obs::Histogram* lock_wait_ns;

  static const CompositorMetrics& Get() {
    static const CompositorMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return CompositorMetrics{reg.counter(obs::kCompositorFed),
                               reg.counter(obs::kCompositorCompletions),
                               reg.counter(obs::kCompositorExpired),
                               reg.counter(obs::kCompositorDiscardedEot),
                               reg.histogram(obs::kCompositorLockWaitNs)};
    }();
    return m;
  }
};

/// A (partially or fully) completed sub-composition travelling up the node
/// tree.
struct Partial {
  Timestamp first_ts = 0;  // start of composition (validity anchor)
  Timestamp last_ts = 0;
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;
  Oid source;  // receiver of the first constituent (correlation key)
  std::vector<EventOccurrencePtr> parts;  // leaf occurrences, arrival order

  static Partial FromOccurrence(const EventOccurrencePtr& occ) {
    Partial p;
    p.first_ts = p.last_ts = occ->timestamp;
    p.first_seq = p.last_seq = occ->sequence;
    p.source = occ->source;
    p.parts = {occ};
    return p;
  }

  static Partial Merge(const Partial& a, const Partial& b) {
    Partial p;
    p.first_ts = std::min(a.first_ts, b.first_ts);
    p.last_ts = std::max(a.last_ts, b.last_ts);
    p.first_seq = std::min(a.first_seq, b.first_seq);
    p.last_seq = std::max(a.last_seq, b.last_seq);
    p.source = a.source.valid() ? a.source : b.source;
    p.parts.reserve(a.parts.size() + b.parts.size());
    p.parts = a.parts;
    p.parts.insert(p.parts.end(), b.parts.begin(), b.parts.end());
    return p;
  }
};

/// Does the operator's correlation constraint allow `a` and `b` to
/// combine?
bool CorrelationOk(Correlation correlation, const Partial& a,
                   const Partial& b) {
  if (correlation == Correlation::kNone) return true;
  return a.source.valid() && a.source == b.source;
}

void ExpireBuffer(std::vector<Partial>* buf, Timestamp cutoff,
                  uint64_t* dropped) {
  size_t before = buf->size();
  buf->erase(std::remove_if(buf->begin(), buf->end(),
                            [cutoff](const Partial& p) {
                              return p.first_ts < cutoff;
                            }),
             buf->end());
  *dropped += before - buf->size();
}

// -- Partial-state serialization (SnapshotState / RestoreState) ------------

/// Per-node-class tags validate that a restored state matches the event
/// expression's tree shape.
enum : uint8_t {
  kTagPrimitive = 1,
  kTagSequence = 2,
  kTagConjunction = 3,
  kTagDisjunction = 4,
  kTagNegation = 5,
  kTagClosure = 6,
  kTagHistory = 7,
};

constexpr uint8_t kStateVersion = 1;

template <typename T>
void PutScalar(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetScalar(const std::string& data, size_t* pos, T* v) {
  if (*pos + sizeof(T) > data.size()) return false;
  std::memcpy(v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void EncodeBuffer(const std::vector<Partial>& buf, const EventRegistry* reg,
                  std::string* out) {
  PutScalar<uint32_t>(out, static_cast<uint32_t>(buf.size()));
  for (const Partial& p : buf) {
    PutScalar<int64_t>(out, p.first_ts);
    PutScalar<int64_t>(out, p.last_ts);
    PutScalar<uint64_t>(out, p.first_seq);
    PutScalar<uint64_t>(out, p.last_seq);
    PutScalar<uint32_t>(out, p.source.page);
    PutScalar<uint16_t>(out, p.source.slot);
    PutScalar<uint16_t>(out, p.source.generation);
    PutScalar<uint32_t>(out, static_cast<uint32_t>(p.parts.size()));
    for (const EventOccurrencePtr& occ : p.parts) {
      eventlog::EncodeOccurrence(*occ, reg, out);
    }
  }
}

bool DecodeBuffer(const std::string& data, size_t* pos,
                  const EventRegistry* reg, std::vector<Partial>* buf) {
  uint32_t n = 0;
  if (!GetScalar(data, pos, &n)) return false;
  for (uint32_t i = 0; i < n; ++i) {
    Partial p;
    if (!GetScalar(data, pos, &p.first_ts)) return false;
    if (!GetScalar(data, pos, &p.last_ts)) return false;
    if (!GetScalar(data, pos, &p.first_seq)) return false;
    if (!GetScalar(data, pos, &p.last_seq)) return false;
    if (!GetScalar(data, pos, &p.source.page)) return false;
    if (!GetScalar(data, pos, &p.source.slot)) return false;
    if (!GetScalar(data, pos, &p.source.generation)) return false;
    uint32_t nparts = 0;
    if (!GetScalar(data, pos, &nparts)) return false;
    for (uint32_t k = 0; k < nparts; ++k) {
      auto occ = eventlog::DecodeOccurrence(data, pos, reg);
      if (!occ.ok()) return false;
      p.parts.push_back(std::move(*occ));
    }
    buf->push_back(std::move(p));
  }
  return true;
}

bool ReadTag(const std::string& data, size_t* pos, uint8_t expected) {
  uint8_t tag = 0;
  return GetScalar(data, pos, &tag) && tag == expected;
}

}  // namespace

// ---------------------------------------------------------------------------
// Node hierarchy
// ---------------------------------------------------------------------------

class Compositor::Node {
 public:
  explicit Node(ConsumptionPolicy policy,
                Correlation correlation = Correlation::kNone)
      : policy_(policy), correlation_(correlation) {}
  virtual ~Node() = default;

  /// Feed a leaf occurrence; append this node's completions to `out`.
  virtual void Feed(const EventOccurrencePtr& occ,
                    std::vector<Partial>* out) = 0;

  /// Drop partials whose composition started before `cutoff`.
  virtual void Expire(Timestamp cutoff, uint64_t* dropped) = 0;

  virtual size_t PartialCount() const = 0;

  /// Serialize this node's buffered partials (pre-order over the tree).
  virtual void SnapshotNode(const EventRegistry* reg,
                            std::string* out) const = 0;

  /// Mirror of SnapshotNode; false on any shape or framing mismatch.
  virtual bool RestoreNode(const std::string& data, size_t* pos,
                           const EventRegistry* reg) = 0;

 protected:
  ConsumptionPolicy policy_;
  Correlation correlation_;
};

class Compositor::PrimitiveNode : public Node {
 public:
  PrimitiveNode(ConsumptionPolicy policy, EventTypeId type)
      : Node(policy), type_(type) {}

  void Feed(const EventOccurrencePtr& occ,
            std::vector<Partial>* out) override {
    if (occ->type == type_) out->push_back(Partial::FromOccurrence(occ));
  }
  void Expire(Timestamp, uint64_t*) override {}
  size_t PartialCount() const override { return 0; }

  void SnapshotNode(const EventRegistry*, std::string* out) const override {
    PutScalar<uint8_t>(out, kTagPrimitive);
  }
  bool RestoreNode(const std::string& data, size_t* pos,
                   const EventRegistry*) override {
    return ReadTag(data, pos, kTagPrimitive);
  }

 private:
  EventTypeId type_;
};

// Sequence(left, right): left completes strictly before right completes.
class Compositor::SequenceNode : public Node {
 public:
  SequenceNode(ConsumptionPolicy policy, Correlation correlation,
               std::unique_ptr<Node> left, std::unique_ptr<Node> right)
      : Node(policy, correlation),
        left_(std::move(left)),
        right_(std::move(right)) {}

  void Feed(const EventOccurrencePtr& occ,
            std::vector<Partial>* out) override {
    std::vector<Partial> lc, rc;
    left_->Feed(occ, &lc);
    right_->Feed(occ, &rc);
    for (Partial& r : rc) CombineRight(r, out);
    for (Partial& l : lc) StoreLeft(std::move(l));
  }

  void Expire(Timestamp cutoff, uint64_t* dropped) override {
    ExpireBuffer(&lefts_, cutoff, dropped);
    left_->Expire(cutoff, dropped);
    right_->Expire(cutoff, dropped);
  }

  size_t PartialCount() const override {
    return lefts_.size() + left_->PartialCount() + right_->PartialCount();
  }

  void SnapshotNode(const EventRegistry* reg, std::string* out) const override {
    PutScalar<uint8_t>(out, kTagSequence);
    EncodeBuffer(lefts_, reg, out);
    left_->SnapshotNode(reg, out);
    right_->SnapshotNode(reg, out);
  }
  bool RestoreNode(const std::string& data, size_t* pos,
                   const EventRegistry* reg) override {
    return ReadTag(data, pos, kTagSequence) &&
           DecodeBuffer(data, pos, reg, &lefts_) &&
           left_->RestoreNode(data, pos, reg) &&
           right_->RestoreNode(data, pos, reg);
  }

 private:
  void StoreLeft(Partial l) {
    if (policy_ == ConsumptionPolicy::kRecent) {
      // Only the most recent initiator is kept (§3.4, sensor monitoring) —
      // per correlation group when a constraint is set.
      lefts_.erase(std::remove_if(lefts_.begin(), lefts_.end(),
                                  [&](const Partial& p) {
                                    return CorrelationOk(correlation_, p, l);
                                  }),
                   lefts_.end());
    }
    lefts_.push_back(std::move(l));
  }

  void CombineRight(const Partial& r, std::vector<Partial>* out) {
    // Eligible initiators completed strictly before the terminator.
    std::vector<size_t> eligible;
    for (size_t i = 0; i < lefts_.size(); ++i) {
      if (lefts_[i].last_seq < r.last_seq &&
          CorrelationOk(correlation_, lefts_[i], r)) {
        eligible.push_back(i);
      }
    }
    if (eligible.empty()) return;
    switch (policy_) {
      case ConsumptionPolicy::kRecent: {
        // Newest initiator, retained for later terminators.
        size_t best = eligible[0];
        for (size_t i : eligible) {
          if (lefts_[i].last_seq > lefts_[best].last_seq) best = i;
        }
        out->push_back(Partial::Merge(lefts_[best], r));
        break;
      }
      case ConsumptionPolicy::kChronicle: {
        // Oldest initiator, consumed.
        size_t best = eligible[0];
        for (size_t i : eligible) {
          if (lefts_[i].last_seq < lefts_[best].last_seq) best = i;
        }
        out->push_back(Partial::Merge(lefts_[best], r));
        lefts_.erase(lefts_.begin() + static_cast<long>(best));
        break;
      }
      case ConsumptionPolicy::kContinuous: {
        // Every open initiator pairs with the terminator; all consumed.
        for (size_t i : eligible) {
          out->push_back(Partial::Merge(lefts_[i], r));
        }
        for (auto it = eligible.rbegin(); it != eligible.rend(); ++it) {
          lefts_.erase(lefts_.begin() + static_cast<long>(*it));
        }
        break;
      }
      case ConsumptionPolicy::kCumulative: {
        // All initiators merged into one composite; all consumed.
        Partial acc = lefts_[eligible[0]];
        for (size_t k = 1; k < eligible.size(); ++k) {
          acc = Partial::Merge(acc, lefts_[eligible[k]]);
        }
        out->push_back(Partial::Merge(acc, r));
        for (auto it = eligible.rbegin(); it != eligible.rend(); ++it) {
          lefts_.erase(lefts_.begin() + static_cast<long>(*it));
        }
        break;
      }
    }
  }

  std::unique_ptr<Node> left_, right_;
  std::vector<Partial> lefts_;
};

// Conjunction(a, b): both sides, any order.
class Compositor::ConjunctionNode : public Node {
 public:
  ConjunctionNode(ConsumptionPolicy policy, Correlation correlation,
                  std::unique_ptr<Node> a, std::unique_ptr<Node> b)
      : Node(policy, correlation), a_(std::move(a)), b_(std::move(b)) {}

  void Feed(const EventOccurrencePtr& occ,
            std::vector<Partial>* out) override {
    std::vector<Partial> ac, bc;
    a_->Feed(occ, &ac);
    b_->Feed(occ, &bc);
    // Completions from this very occurrence may pair with buffered partials
    // of the other side but not with each other's source occurrence twice;
    // handle arrivals one side at a time.
    for (Partial& x : ac) Arrive(std::move(x), &buf_a_, &buf_b_, out);
    for (Partial& x : bc) Arrive(std::move(x), &buf_b_, &buf_a_, out);
  }

  void Expire(Timestamp cutoff, uint64_t* dropped) override {
    ExpireBuffer(&buf_a_, cutoff, dropped);
    ExpireBuffer(&buf_b_, cutoff, dropped);
    a_->Expire(cutoff, dropped);
    b_->Expire(cutoff, dropped);
  }

  size_t PartialCount() const override {
    return buf_a_.size() + buf_b_.size() + a_->PartialCount() +
           b_->PartialCount();
  }

  void SnapshotNode(const EventRegistry* reg, std::string* out) const override {
    PutScalar<uint8_t>(out, kTagConjunction);
    EncodeBuffer(buf_a_, reg, out);
    EncodeBuffer(buf_b_, reg, out);
    a_->SnapshotNode(reg, out);
    b_->SnapshotNode(reg, out);
  }
  bool RestoreNode(const std::string& data, size_t* pos,
                   const EventRegistry* reg) override {
    return ReadTag(data, pos, kTagConjunction) &&
           DecodeBuffer(data, pos, reg, &buf_a_) &&
           DecodeBuffer(data, pos, reg, &buf_b_) &&
           a_->RestoreNode(data, pos, reg) && b_->RestoreNode(data, pos, reg);
  }

 private:
  void StoreMine(Partial x, std::vector<Partial>* mine) {
    if (policy_ == ConsumptionPolicy::kRecent) {
      mine->erase(std::remove_if(mine->begin(), mine->end(),
                                 [&](const Partial& p) {
                                   return CorrelationOk(correlation_, p, x);
                                 }),
                  mine->end());
    }
    mine->push_back(std::move(x));
  }

  void Arrive(Partial x, std::vector<Partial>* mine,
              std::vector<Partial>* other, std::vector<Partial>* out) {
    std::vector<size_t> eligible;
    for (size_t i = 0; i < other->size(); ++i) {
      if (CorrelationOk(correlation_, (*other)[i], x)) eligible.push_back(i);
    }
    if (eligible.empty()) {
      StoreMine(std::move(x), mine);
      return;
    }
    switch (policy_) {
      case ConsumptionPolicy::kRecent: {
        // Pair with the newest eligible of the other side; both retained.
        size_t best = eligible[0];
        for (size_t i : eligible) {
          if ((*other)[i].last_seq > (*other)[best].last_seq) best = i;
        }
        out->push_back(Partial::Merge((*other)[best], x));
        StoreMine(std::move(x), mine);
        break;
      }
      case ConsumptionPolicy::kChronicle: {
        size_t best = eligible[0];
        for (size_t i : eligible) {
          if ((*other)[i].last_seq < (*other)[best].last_seq) best = i;
        }
        out->push_back(Partial::Merge((*other)[best], x));
        other->erase(other->begin() + static_cast<long>(best));
        break;
      }
      case ConsumptionPolicy::kContinuous: {
        for (size_t i : eligible) {
          out->push_back(Partial::Merge((*other)[i], x));
        }
        for (auto it = eligible.rbegin(); it != eligible.rend(); ++it) {
          other->erase(other->begin() + static_cast<long>(*it));
        }
        break;
      }
      case ConsumptionPolicy::kCumulative: {
        Partial acc = (*other)[eligible[0]];
        for (size_t k = 1; k < eligible.size(); ++k) {
          acc = Partial::Merge(acc, (*other)[eligible[k]]);
        }
        out->push_back(Partial::Merge(acc, x));
        for (auto it = eligible.rbegin(); it != eligible.rend(); ++it) {
          other->erase(other->begin() + static_cast<long>(*it));
        }
        break;
      }
    }
  }

  std::unique_ptr<Node> a_, b_;
  std::vector<Partial> buf_a_, buf_b_;
};

class Compositor::DisjunctionNode : public Node {
 public:
  DisjunctionNode(ConsumptionPolicy policy, std::unique_ptr<Node> a,
                  std::unique_ptr<Node> b)
      : Node(policy), a_(std::move(a)), b_(std::move(b)) {}

  void Feed(const EventOccurrencePtr& occ,
            std::vector<Partial>* out) override {
    a_->Feed(occ, out);
    b_->Feed(occ, out);
  }
  void Expire(Timestamp cutoff, uint64_t* dropped) override {
    a_->Expire(cutoff, dropped);
    b_->Expire(cutoff, dropped);
  }
  size_t PartialCount() const override {
    return a_->PartialCount() + b_->PartialCount();
  }

  void SnapshotNode(const EventRegistry* reg, std::string* out) const override {
    PutScalar<uint8_t>(out, kTagDisjunction);
    a_->SnapshotNode(reg, out);
    b_->SnapshotNode(reg, out);
  }
  bool RestoreNode(const std::string& data, size_t* pos,
                   const EventRegistry* reg) override {
    return ReadTag(data, pos, kTagDisjunction) &&
           a_->RestoreNode(data, pos, reg) && b_->RestoreNode(data, pos, reg);
  }

 private:
  std::unique_ptr<Node> a_, b_;
};

// Negation(start, neg, end): start; then end with no neg in between (SAMOS).
class Compositor::NegationNode : public Node {
 public:
  NegationNode(ConsumptionPolicy policy, Correlation correlation,
               std::unique_ptr<Node> start, std::unique_ptr<Node> neg,
               std::unique_ptr<Node> end)
      : Node(policy, correlation),
        start_(std::move(start)),
        neg_(std::move(neg)),
        end_(std::move(end)) {}

  void Feed(const EventOccurrencePtr& occ,
            std::vector<Partial>* out) override {
    std::vector<Partial> sc, nc, ec;
    start_->Feed(occ, &sc);
    neg_->Feed(occ, &nc);
    end_->Feed(occ, &ec);
    // An occurrence of the negated event invalidates every open interval
    // (only correlated ones when a constraint is set).
    for (const Partial& n : nc) {
      starts_.erase(std::remove_if(starts_.begin(), starts_.end(),
                                   [&](const Partial& p) {
                                     return CorrelationOk(correlation_, p, n);
                                   }),
                    starts_.end());
    }
    for (Partial& e : ec) CombineEnd(e, out);
    for (Partial& s : sc) {
      if (policy_ == ConsumptionPolicy::kRecent) starts_.clear();
      starts_.push_back(std::move(s));
    }
  }

  void Expire(Timestamp cutoff, uint64_t* dropped) override {
    ExpireBuffer(&starts_, cutoff, dropped);
    start_->Expire(cutoff, dropped);
    neg_->Expire(cutoff, dropped);
    end_->Expire(cutoff, dropped);
  }

  size_t PartialCount() const override {
    return starts_.size() + start_->PartialCount() + neg_->PartialCount() +
           end_->PartialCount();
  }

  void SnapshotNode(const EventRegistry* reg, std::string* out) const override {
    PutScalar<uint8_t>(out, kTagNegation);
    EncodeBuffer(starts_, reg, out);
    start_->SnapshotNode(reg, out);
    neg_->SnapshotNode(reg, out);
    end_->SnapshotNode(reg, out);
  }
  bool RestoreNode(const std::string& data, size_t* pos,
                   const EventRegistry* reg) override {
    return ReadTag(data, pos, kTagNegation) &&
           DecodeBuffer(data, pos, reg, &starts_) &&
           start_->RestoreNode(data, pos, reg) &&
           neg_->RestoreNode(data, pos, reg) &&
           end_->RestoreNode(data, pos, reg);
  }

 private:
  void CombineEnd(const Partial& e, std::vector<Partial>* out) {
    std::vector<size_t> eligible;
    for (size_t i = 0; i < starts_.size(); ++i) {
      if (starts_[i].last_seq < e.last_seq &&
          CorrelationOk(correlation_, starts_[i], e)) {
        eligible.push_back(i);
      }
    }
    if (eligible.empty()) return;
    switch (policy_) {
      case ConsumptionPolicy::kRecent: {
        size_t best = eligible[0];
        for (size_t i : eligible) {
          if (starts_[i].last_seq > starts_[best].last_seq) best = i;
        }
        out->push_back(Partial::Merge(starts_[best], e));
        break;
      }
      case ConsumptionPolicy::kChronicle: {
        size_t best = eligible[0];
        for (size_t i : eligible) {
          if (starts_[i].last_seq < starts_[best].last_seq) best = i;
        }
        out->push_back(Partial::Merge(starts_[best], e));
        starts_.erase(starts_.begin() + static_cast<long>(best));
        break;
      }
      case ConsumptionPolicy::kContinuous: {
        for (size_t i : eligible) {
          out->push_back(Partial::Merge(starts_[i], e));
        }
        for (auto it = eligible.rbegin(); it != eligible.rend(); ++it) {
          starts_.erase(starts_.begin() + static_cast<long>(*it));
        }
        break;
      }
      case ConsumptionPolicy::kCumulative: {
        Partial acc = starts_[eligible[0]];
        for (size_t k = 1; k < eligible.size(); ++k) {
          acc = Partial::Merge(acc, starts_[eligible[k]]);
        }
        out->push_back(Partial::Merge(acc, e));
        for (auto it = eligible.rbegin(); it != eligible.rend(); ++it) {
          starts_.erase(starts_.begin() + static_cast<long>(*it));
        }
        break;
      }
    }
  }

  std::unique_ptr<Node> start_, neg_, end_;
  std::vector<Partial> starts_;
};

// Closure(body, end): every body occurrence up to the terminator, raised
// once at the terminator (HiPAC closure / SNOOP cumulative flavour).
class Compositor::ClosureNode : public Node {
 public:
  ClosureNode(ConsumptionPolicy policy, std::unique_ptr<Node> body,
              std::unique_ptr<Node> end)
      : Node(policy), body_(std::move(body)), end_(std::move(end)) {}

  void Feed(const EventOccurrencePtr& occ,
            std::vector<Partial>* out) override {
    std::vector<Partial> bc, ec;
    body_->Feed(occ, &bc);
    end_->Feed(occ, &ec);
    for (Partial& e : ec) {
      Partial acc = e;
      // Bodies completed before the terminator are absorbed (possibly none).
      std::vector<Partial> kept;
      for (Partial& b : bodies_) {
        if (b.last_seq < e.last_seq) {
          acc = Partial::Merge(b, acc);
        } else {
          kept.push_back(std::move(b));
        }
      }
      bodies_ = std::move(kept);
      out->push_back(std::move(acc));
    }
    for (Partial& b : bc) bodies_.push_back(std::move(b));
  }

  void Expire(Timestamp cutoff, uint64_t* dropped) override {
    ExpireBuffer(&bodies_, cutoff, dropped);
    body_->Expire(cutoff, dropped);
    end_->Expire(cutoff, dropped);
  }

  size_t PartialCount() const override {
    return bodies_.size() + body_->PartialCount() + end_->PartialCount();
  }

  void SnapshotNode(const EventRegistry* reg, std::string* out) const override {
    PutScalar<uint8_t>(out, kTagClosure);
    EncodeBuffer(bodies_, reg, out);
    body_->SnapshotNode(reg, out);
    end_->SnapshotNode(reg, out);
  }
  bool RestoreNode(const std::string& data, size_t* pos,
                   const EventRegistry* reg) override {
    return ReadTag(data, pos, kTagClosure) &&
           DecodeBuffer(data, pos, reg, &bodies_) &&
           body_->RestoreNode(data, pos, reg) &&
           end_->RestoreNode(data, pos, reg);
  }

 private:
  std::unique_ptr<Node> body_, end_;
  std::vector<Partial> bodies_;
};

// History(body, n): raised on the n-th body completion (SAMOS TIMES).
class Compositor::HistoryNode : public Node {
 public:
  HistoryNode(ConsumptionPolicy policy, Correlation correlation,
              std::unique_ptr<Node> body, uint32_t n)
      : Node(policy, correlation), body_(std::move(body)), n_(n) {}

  void Feed(const EventOccurrencePtr& occ,
            std::vector<Partial>* out) override {
    std::vector<Partial> bc;
    body_->Feed(occ, &bc);
    for (Partial& b : bc) {
      acc_.push_back(std::move(b));
      // Count within the arrival's correlation group (everything when no
      // constraint is set).
      std::vector<size_t> group;
      for (size_t i = 0; i < acc_.size(); ++i) {
        if (CorrelationOk(correlation_, acc_[i], acc_.back())) {
          group.push_back(i);
        }
      }
      if (group.size() >= n_) {
        Partial merged = acc_[group[0]];
        for (size_t k = 1; k < group.size(); ++k) {
          merged = Partial::Merge(merged, acc_[group[k]]);
        }
        for (auto it = group.rbegin(); it != group.rend(); ++it) {
          acc_.erase(acc_.begin() + static_cast<long>(*it));
        }
        out->push_back(std::move(merged));
      }
    }
  }

  void Expire(Timestamp cutoff, uint64_t* dropped) override {
    ExpireBuffer(&acc_, cutoff, dropped);
    body_->Expire(cutoff, dropped);
  }

  size_t PartialCount() const override {
    return acc_.size() + body_->PartialCount();
  }

  void SnapshotNode(const EventRegistry* reg, std::string* out) const override {
    PutScalar<uint8_t>(out, kTagHistory);
    EncodeBuffer(acc_, reg, out);
    body_->SnapshotNode(reg, out);
  }
  bool RestoreNode(const std::string& data, size_t* pos,
                   const EventRegistry* reg) override {
    return ReadTag(data, pos, kTagHistory) &&
           DecodeBuffer(data, pos, reg, &acc_) &&
           body_->RestoreNode(data, pos, reg);
  }

 private:
  std::unique_ptr<Node> body_;
  uint32_t n_;
  std::vector<Partial> acc_;
};

// ---------------------------------------------------------------------------
// Compositor
// ---------------------------------------------------------------------------

Compositor::Compositor(const EventDescriptor* desc) : desc_(desc) {}
Compositor::~Compositor() = default;

std::unique_ptr<Compositor::Node> Compositor::BuildTree(
    const EventExprPtr& expr) const {
  ConsumptionPolicy p = desc_->policy;
  switch (expr->op()) {
    case EventOp::kPrimitive:
      return std::make_unique<PrimitiveNode>(p, expr->primitive_type());
    case EventOp::kSequence:
      return std::make_unique<SequenceNode>(p, expr->correlation(),
                                            BuildTree(expr->children()[0]),
                                            BuildTree(expr->children()[1]));
    case EventOp::kConjunction:
      return std::make_unique<ConjunctionNode>(
          p, expr->correlation(), BuildTree(expr->children()[0]),
          BuildTree(expr->children()[1]));
    case EventOp::kDisjunction:
      return std::make_unique<DisjunctionNode>(
          p, BuildTree(expr->children()[0]), BuildTree(expr->children()[1]));
    case EventOp::kNegation:
      return std::make_unique<NegationNode>(p, expr->correlation(),
                                            BuildTree(expr->children()[0]),
                                            BuildTree(expr->children()[1]),
                                            BuildTree(expr->children()[2]));
    case EventOp::kClosure:
      return std::make_unique<ClosureNode>(p, BuildTree(expr->children()[0]),
                                           BuildTree(expr->children()[1]));
    case EventOp::kHistory:
      return std::make_unique<HistoryNode>(p, expr->correlation(),
                                           BuildTree(expr->children()[0]),
                                           expr->history_count());
  }
  return nullptr;
}

EventOccurrencePtr Compositor::MakeOccurrence(
    std::vector<EventOccurrencePtr> parts, Timestamp ts, uint64_t seq,
    TxnId txn) const {
  auto occ = std::make_shared<EventOccurrence>();
  occ->type = desc_->id;
  occ->timestamp = ts;
  occ->sequence = seq;
  occ->txn = txn;
  occ->constituents = std::move(parts);
  // Event parameters of a composite: forwarded from its last constituent
  // (the terminator), which is what rules usually react to.
  if (!occ->constituents.empty()) {
    occ->params = occ->constituents.back()->params;
    occ->source = occ->constituents.back()->source;
  }
  return occ;
}

std::unique_lock<std::mutex> Compositor::LockStripe(const Stripe& stripe) {
  std::unique_lock<std::mutex> lock(stripe.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    const uint64_t start = obs::NowNanosIfEnabled();
    lock.lock();
    if (start != 0) {
      CompositorMetrics::Get().lock_wait_ns->RecordAlways(obs::NowNanos() -
                                                          start);
    }
  }
  return lock;
}

Compositor::Node* Compositor::InstanceFor(Stripe& stripe, TxnId key) {
  auto it = stripe.instances.find(key);
  if (it == stripe.instances.end()) {
    it = stripe.instances.emplace(key, BuildTree(desc_->expr)).first;
  }
  return it->second.get();
}

void Compositor::FeedLocked(Node* root, TxnId key,
                            const EventOccurrencePtr& occ,
                            std::vector<EventOccurrencePtr>* out) {
  if (desc_->scope == CompositeScope::kCrossTxn && desc_->validity_us > 0) {
    // Lazy validity GC keyed to the incoming occurrence's timestamp.
    uint64_t dropped = 0;
    root->Expire(occ->timestamp - desc_->validity_us, &dropped);
    if (dropped != 0) {
      expired_partials_.fetch_add(dropped, std::memory_order_relaxed);
      CompositorMetrics::Get().expired_partials->Inc(dropped);
    }
  }
  if (desc_->scope == CompositeScope::kCrossTxn &&
      occ->sequence > last_fed_seq_.load(std::memory_order_relaxed)) {
    last_fed_seq_.store(occ->sequence, std::memory_order_relaxed);
  }
  std::vector<Partial> completions;
  root->Feed(occ, &completions);
  for (Partial& p : completions) {
    completions_.fetch_add(1, std::memory_order_relaxed);
    CompositorMetrics::Get().completions->Inc();
    out->push_back(MakeOccurrence(std::move(p.parts), p.last_ts, p.last_seq,
                                  desc_->scope == CompositeScope::kSingleTxn
                                      ? key
                                      : kNoTxn));
  }
}

void Compositor::Feed(const EventOccurrencePtr& occ,
                      std::vector<EventOccurrencePtr>* out) {
  fed_.fetch_add(1, std::memory_order_relaxed);
  CompositorMetrics::Get().fed->Inc();
  TxnId key = kNoTxn;
  if (desc_->scope == CompositeScope::kSingleTxn) {
    if (occ->txn == kNoTxn) return;  // temporal events never reach 1tx trees
    key = occ->txn;
  }
  Stripe& stripe = StripeFor(key);
  auto lock = LockStripe(stripe);
  FeedLocked(InstanceFor(stripe, key), key, occ, out);
}

void Compositor::FeedBatch(const EventBatch& batch, const uint32_t* indices,
                           size_t count,
                           std::vector<EventOccurrencePtr>* out) {
  if (count == 0) return;
  fed_.fetch_add(count, std::memory_order_relaxed);
  CompositorMetrics::Get().fed->Inc(count);
  const bool single_txn = desc_->scope == CompositeScope::kSingleTxn;
  size_t i = 0;
  while (i < count) {
    TxnId key = kNoTxn;
    if (single_txn) {
      key = batch.txns[indices[i]];
      if (key == kNoTxn) {  // temporal events never reach 1tx trees
        ++i;
        continue;
      }
    }
    // Extend the run while subsequent occurrences map to the same instance
    // key — one stripe acquisition and one instance lookup per run.
    size_t j = i + 1;
    if (single_txn) {
      while (j < count && batch.txns[indices[j]] == key) ++j;
    } else {
      j = count;  // cross-txn scope: one global instance, one run
    }
    Stripe& stripe = StripeFor(key);
    auto lock = LockStripe(stripe);
    Node* root = InstanceFor(stripe, key);
    for (size_t k = i; k < j; ++k) {
      FeedLocked(root, key, batch.occs[indices[k]], out);
    }
    i = j;
  }
}

void Compositor::OnTxnEnd(TxnId txn) {
  if (desc_->scope != CompositeScope::kSingleTxn) return;
  Stripe& stripe = StripeFor(txn);
  auto lock = LockStripe(stripe);
  auto it = stripe.instances.find(txn);
  if (it == stripe.instances.end()) return;
  uint64_t discarded = it->second->PartialCount();
  if (discarded != 0) {
    discarded_at_eot_.fetch_add(discarded, std::memory_order_relaxed);
    CompositorMetrics::Get().discarded_at_eot->Inc(discarded);
  }
  stripe.instances.erase(it);
}

void Compositor::ExpireOlderThan(Timestamp cutoff) {
  if (desc_->scope != CompositeScope::kCrossTxn) return;
  Stripe& stripe = StripeFor(kNoTxn);
  auto lock = LockStripe(stripe);
  auto it = stripe.instances.find(kNoTxn);
  if (it == stripe.instances.end()) return;
  uint64_t dropped = 0;
  it->second->Expire(cutoff, &dropped);
  if (dropped != 0) {
    expired_partials_.fetch_add(dropped, std::memory_order_relaxed);
    CompositorMetrics::Get().expired_partials->Inc(dropped);
    if (gc_listener_) gc_listener_(cutoff, dropped);
  }
}

std::string Compositor::SnapshotState(const EventRegistry* registry) const {
  if (desc_->scope != CompositeScope::kCrossTxn) return {};
  Stripe& stripe = const_cast<Compositor*>(this)->StripeFor(kNoTxn);
  auto lock = LockStripe(stripe);
  auto it = stripe.instances.find(kNoTxn);
  if (it == stripe.instances.end()) return {};
  std::string out;
  PutScalar<uint8_t>(&out, kStateVersion);
  PutScalar<uint64_t>(&out, last_fed_seq_.load(std::memory_order_relaxed));
  it->second->SnapshotNode(registry, &out);
  return out;
}

Status Compositor::RestoreState(const std::string& state,
                                const EventRegistry* registry) {
  if (desc_->scope != CompositeScope::kCrossTxn || state.empty()) {
    return Status::OK();
  }
  size_t pos = 0;
  uint8_t version = 0;
  uint64_t floor = 0;
  if (!GetScalar(state, &pos, &version) || version != kStateVersion ||
      !GetScalar(state, &pos, &floor)) {
    return Status::Corruption("event checkpoint state header");
  }
  auto root = BuildTree(desc_->expr);
  if (!root->RestoreNode(state, &pos, registry) || pos != state.size()) {
    return Status::Corruption("event checkpoint state does not match " +
                              desc_->name + "'s expression shape");
  }
  Stripe& stripe = StripeFor(kNoTxn);
  auto lock = LockStripe(stripe);
  stripe.instances[kNoTxn] = std::move(root);
  last_fed_seq_.store(floor, std::memory_order_relaxed);
  return Status::OK();
}

size_t Compositor::LivePartialCount() const {
  size_t n = 0;
  for (const Stripe& stripe : stripes_) {
    auto lock = LockStripe(stripe);
    for (const auto& [_, root] : stripe.instances) n += root->PartialCount();
  }
  return n;
}

CompositorStats Compositor::stats() const {
  CompositorStats s;
  s.fed = fed_.load(std::memory_order_relaxed);
  s.completions = completions_.load(std::memory_order_relaxed);
  s.expired_partials = expired_partials_.load(std::memory_order_relaxed);
  s.discarded_at_eot = discarded_at_eot_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace reach
