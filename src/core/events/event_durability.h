// Durable event history (docs/EVENTS.md "Durability & recovery").
//
// Cross-transaction composite state is a logical fact whose truth must not
// depend on process lifetime (the paper's §1.3 integration argument): an
// open composition interval survives a crash. Three WAL record types carry
// it (storage/wal.h): occurrence appends logged at Signal time through the
// group-commit path, compositor partial-state checkpoints, and tombstones
// (a consumption tombstone marks a completion that already fired, an expiry
// tombstone records an explicit validity cutoff). Recovery replays
// `checkpoint + tail` per compositor: restore the checkpointed node state,
// re-feed logged occurrences with sequence > the state's feed floor, and
// suppress completions whose key is tombstoned.
//
// This header holds the payload codec (eventlog namespace) and the
// EventHistoryLog appender the EventManager writes through.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "core/events/event.h"
#include "core/events/event_registry.h"
#include "storage/wal.h"

namespace reach {

namespace eventlog {

/// Serialize one occurrence (recursively, constituents included). Event
/// types are stored by id AND name so a restart that re-registers types in
/// a different order still resolves them (decode remaps via FindByName).
void EncodeOccurrence(const EventOccurrence& occ, const EventRegistry* registry,
                      std::string* out);

/// Decode one occurrence from data[*pos...]; advances *pos. With a registry,
/// the stored type name is re-resolved to the current type id.
Result<std::shared_ptr<EventOccurrence>> DecodeOccurrence(
    const std::string& data, size_t* pos, const EventRegistry* registry);

/// Identity of a completion that is stable across restart: FNV-1a over the
/// composite's name and the sequences of the completion's primitive leaves
/// (leaf sequences are restored past the logged maximum, so they never
/// collide across the crash).
uint64_t CompletionKey(const std::string& composite_name,
                       const EventOccurrence& completion);

/// Checkpoint payload: the assigned-sequence high-water mark plus one
/// serialized Compositor::SnapshotState per cross-txn composite (by name).
std::string EncodeCheckpoint(
    uint64_t max_sequence,
    const std::vector<std::pair<std::string, std::string>>& states);

/// Tombstone payloads.
std::string EncodeConsumption(uint64_t completion_key);
std::string EncodeExpiry(const std::string& composite_name, Timestamp cutoff);

/// Event-history state reconstructed from a WAL scan, ready for per-
/// compositor replay at DefineComposite time.
struct RecoveredEventState {
  /// Latest checkpoint's per-composite node state, by composite name.
  std::unordered_map<std::string, std::string> checkpoint_states;
  /// Highest occurrence sequence seen (checkpoint high-water mark or tail);
  /// the EventManager restores its sequence counter past this.
  uint64_t max_sequence = 0;
  /// Occurrence payloads logged after the latest checkpoint, in log order.
  std::vector<std::string> tail;
  /// Completion keys of composites that fired before the crash.
  std::unordered_set<uint64_t> consumed;
  /// Largest explicit expiry cutoff per composite name.
  std::unordered_map<std::string, Timestamp> expiry_cutoffs;
  /// Event records whose payload failed to decode (skipped, not fatal).
  size_t malformed = 0;

  bool empty() const {
    return checkpoint_states.empty() && tail.empty() && consumed.empty() &&
           expiry_cutoffs.empty();
  }
};

/// Split a recovered record stream into checkpoint + tail + tombstones.
/// Data records are ignored; undecodable event payloads are counted.
RecoveredEventState PartitionEventRecords(
    const std::vector<WalRecord>& records);

}  // namespace eventlog

/// Appender for the three event-history record types. Occurrence and
/// tombstone appends ride the group-commit path (durable with the next
/// commit fsync); checkpoints flush immediately so the replay floor is
/// never behind the tail that survives truncation.
class EventHistoryLog {
 public:
  EventHistoryLog(Wal* wal, const EventRegistry* registry)
      : wal_(wal), registry_(registry) {}

  Status LogOccurrence(const EventOccurrence& occ);
  Status LogConsumption(const std::string& composite_name,
                        const EventOccurrence& completion);
  Status LogExpiry(const std::string& composite_name, Timestamp cutoff);
  /// Append a checkpoint payload (eventlog::EncodeCheckpoint) and flush.
  Status LogCheckpoint(std::string payload);

  /// Force buffered event records to stable storage.
  Status Flush() { return wal_->Flush(); }

  /// Occurrences logged by this process (drives the auto-checkpoint
  /// interval).
  uint64_t logged() const { return logged_.load(std::memory_order_relaxed); }

 private:
  Status AppendRecord(WalRecordType type, std::string payload);

  Wal* wal_;
  const EventRegistry* registry_;
  std::atomic<uint64_t> logged_{0};
};

}  // namespace reach
