// EventBatch: a structure-of-arrays run of event occurrences travelling
// through the batched pipeline (docs/EVENTS.md "Batched pipeline").
//
// Admission appends one element to each parallel array; downstream
// consumers scan the scalar arrays (type ids for the EvalBatch leaf
// filter, txn ids for compositor stripe grouping) without touching the
// payload shared_ptrs, so the hot loops are monomorphic over contiguous
// integers and the refcounted payloads are only dereferenced for the
// occurrences that actually feed a compositor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/events/event.h"

namespace reach {

struct EventBatch {
  std::vector<EventTypeId> types;
  std::vector<TxnId> txns;
  std::vector<Timestamp> timestamps;
  std::vector<EventOccurrencePtr> occs;  // payload refs, same index space

  size_t size() const { return occs.size(); }
  bool empty() const { return occs.empty(); }

  void reserve(size_t n) {
    types.reserve(n);
    txns.reserve(n);
    timestamps.reserve(n);
    occs.reserve(n);
  }

  void clear() {
    types.clear();
    txns.clear();
    timestamps.clear();
    occs.clear();
  }

  void swap(EventBatch& other) {
    types.swap(other.types);
    txns.swap(other.txns);
    timestamps.swap(other.timestamps);
    occs.swap(other.occs);
  }

  void push_back(const EventOccurrencePtr& occ) {
    types.push_back(occ->type);
    txns.push_back(occ->txn);
    timestamps.push_back(occ->timestamp);
    occs.push_back(occ);
  }

  /// Invoke `fn(begin, end)` for each maximal run of consecutive equal
  /// type ids — the unit the flush path dispatches per table lookup.
  template <typename Fn>
  void ForEachTypeRun(Fn fn) const {
    const size_t n = types.size();
    size_t i = 0;
    while (i < n) {
      size_t j = i + 1;
      while (j < n && types[j] == types[i]) ++j;
      fn(i, j);
      i = j;
    }
  }
};

}  // namespace reach
