// Event histories (§6.3): each ECA-manager keeps a local history of the
// occurrences it created — avoiding a central logging bottleneck — and a
// background process merges committed transactions' events into the global
// history after EOT.
#pragma once

#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/events/event.h"

namespace reach {

/// Bounded per-event-type history (ring buffer).
class LocalHistory {
 public:
  explicit LocalHistory(size_t capacity = 4096) : capacity_(capacity) {}

  void Append(EventOccurrencePtr occ);

  std::vector<EventOccurrencePtr> Snapshot() const;

  /// Total occurrences ever appended (not bounded by capacity).
  uint64_t total() const;

  size_t size() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<EventOccurrencePtr> ring_;
  uint64_t total_ = 0;
};

/// Global history of events whose transactions committed (plus temporal
/// events, which commit by definition). Populated asynchronously.
class GlobalHistory {
 public:
  void Merge(std::vector<EventOccurrencePtr> events);

  std::vector<EventOccurrencePtr> Snapshot() const;
  std::vector<EventOccurrencePtr> OfType(EventTypeId type) const;

  size_t size() const;
  uint64_t merge_batches() const;

 private:
  mutable std::mutex mu_;
  std::vector<EventOccurrencePtr> events_;
  uint64_t merges_ = 0;
};

}  // namespace reach
