// Event type registry: the repository of event specifications (the paper
// keeps it distributed across ECA-managers; we centralize the descriptors
// and let the manager layer hold the per-type runtime state).
//
// Primitive event classes supported by the first REACH prototype (§3.1):
// method events, DB-internal events (persist, delete, commit, ...), time
// events, and composite events; plus the announced extensions: state-change
// events and milestones.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "core/events/event.h"
#include "core/events/event_expr.h"
#include "oodb/sentry_event.h"

namespace reach {

/// SNOOP consumption contexts (§3.4). REACH's minimum is recent +
/// chronicle; this implementation ships all four.
enum class ConsumptionPolicy { kRecent, kChronicle, kContinuous, kCumulative };

const char* ConsumptionPolicyName(ConsumptionPolicy policy);

/// Life-span scope of a composite event (§3.3).
enum class CompositeScope { kSingleTxn, kCrossTxn };

enum class TemporalKind { kAbsolute, kPeriodic, kRelative };

struct EventDescriptor {
  EventTypeId id = kInvalidEventType;
  std::string name;
  EventCategory category = EventCategory::kSingleMethod;

  // -- DB (method / state-change / flow-control) events -------------------
  bool is_db_event = false;
  SentryKind sentry_kind = SentryKind::kMethodAfter;
  std::string class_name;  // receiver class ("" for txn events)
  std::string member;      // method or attribute name

  // -- Temporal events -----------------------------------------------------
  bool is_temporal = false;
  TemporalKind temporal_kind = TemporalKind::kAbsolute;
  Timestamp fire_at = 0;        // absolute
  Timestamp period_us = 0;      // periodic
  EventTypeId anchor = kInvalidEventType;  // relative: after each anchor
  Timestamp delay_us = 0;       // relative delay

  // -- Milestones (§3.1): raised when `marker` has NOT occurred in a
  //    transaction within `deadline_us` of its BOT --------------------------
  bool is_milestone = false;
  EventTypeId marker = kInvalidEventType;
  Timestamp deadline_us = 0;

  // -- Composite events -----------------------------------------------------
  EventExprPtr expr;  // null for primitives
  ConsumptionPolicy policy = ConsumptionPolicy::kChronicle;
  CompositeScope scope = CompositeScope::kSingleTxn;
  Timestamp validity_us = 0;  // 0 = unset (illegal for cross-txn)

  bool is_composite() const { return expr != nullptr; }
};

class EventRegistry {
 public:
  /// Method event: before/after `class_name::method`.
  Result<EventTypeId> RegisterMethodEvent(const std::string& name,
                                          const std::string& class_name,
                                          const std::string& method,
                                          bool after = true);

  /// State-change event on `class_name.attr`.
  Result<EventTypeId> RegisterStateChangeEvent(const std::string& name,
                                               const std::string& class_name,
                                               const std::string& attr);

  /// DB-internal / flow-control event: persist/delete of a class instance,
  /// or transaction begin/commit/abort (class_name empty for txn events).
  Result<EventTypeId> RegisterFlowEvent(const std::string& name,
                                        SentryKind kind,
                                        const std::string& class_name = "");

  Result<EventTypeId> RegisterAbsoluteEvent(const std::string& name,
                                            Timestamp fire_at);
  Result<EventTypeId> RegisterPeriodicEvent(const std::string& name,
                                            Timestamp period_us);
  /// Fires `delay_us` after each occurrence of `anchor`.
  Result<EventTypeId> RegisterRelativeEvent(const std::string& name,
                                            EventTypeId anchor,
                                            Timestamp delay_us);

  /// Milestone (§3.1): fires if a transaction has not raised `marker`
  /// within `deadline_us` of its BOT.
  Result<EventTypeId> RegisterMilestone(const std::string& name,
                                        EventTypeId marker,
                                        Timestamp deadline_us);

  /// Composite event over the algebra. Single-txn scope requires every
  /// leaf to be a same-transaction DB event; cross-txn scope requires a
  /// validity interval, explicit or inherited (the smallest validity of
  /// composite constituents) — composites without one are illegal (§3.3).
  Result<EventTypeId> RegisterComposite(
      const std::string& name, EventExprPtr expr, CompositeScope scope,
      ConsumptionPolicy policy = ConsumptionPolicy::kChronicle,
      Timestamp validity_us = 0);

  const EventDescriptor* Find(EventTypeId id) const;
  const EventDescriptor* FindByName(const std::string& name) const;

  /// Resolve a bus announcement to a registered DB event type.
  EventTypeId FindDbEvent(SentryKind kind, const std::string& class_name,
                          const std::string& member) const;

  std::vector<const EventDescriptor*> AllEvents() const;
  std::vector<const EventDescriptor*> CompositesWithLeaf(
      EventTypeId leaf) const;
  std::vector<const EventDescriptor*> RelativeEventsAnchoredAt(
      EventTypeId anchor) const;
  std::vector<const EventDescriptor*> Milestones() const;

 private:
  Result<EventTypeId> Insert(EventDescriptor desc);
  static std::string DbKey(SentryKind kind, const std::string& class_name,
                           const std::string& member);

  mutable std::mutex mu_;
  std::unordered_map<EventTypeId, std::unique_ptr<EventDescriptor>> by_id_;
  std::unordered_map<std::string, EventTypeId> by_name_;
  std::unordered_map<std::string, EventTypeId> db_events_;
  EventTypeId next_id_ = 1;
};

}  // namespace reach
