// The REACH event algebra (§3.1). Inherits sequence, disjunction and
// closure from HiPAC and negation, conjunction and history (with validity
// intervals) from SAMOS.
//
//   Seq(a, b)            a then (strictly later) b
//   And(a, b)            both, in either order
//   Or(a, b)             either
//   Not(start, n, end)   start, then end with no n in between
//   Closure(body, end)   all body occurrences between start of composition
//                        and end, raised once at end
//   History(body, n)     raised on the n-th body occurrence
//   Prim(type)           leaf: occurrences of a registered event type
//
// Expressions are immutable trees shared via shared_ptr.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace reach {

enum class EventOp {
  kPrimitive,
  kSequence,
  kConjunction,
  kDisjunction,
  kNegation,
  kClosure,
  kHistory,
};

const char* EventOpName(EventOp op);

class EventExpr;
using EventExprPtr = std::shared_ptr<const EventExpr>;

/// Correlation constraint on a binary operator: which occurrences are
/// allowed to combine (an event-parameter predicate in the sense of the
/// SAMOS/SNOOP algebras).
enum class Correlation {
  kNone,        // any occurrences combine
  kSameSource,  // only occurrences on the same receiver object
};

class EventExpr {
 public:
  EventOp op() const { return op_; }
  EventTypeId primitive_type() const { return primitive_type_; }
  const std::vector<EventExprPtr>& children() const { return children_; }
  uint32_t history_count() const { return history_count_; }
  Correlation correlation() const { return correlation_; }

  /// Leaf event-type ids referenced anywhere in the tree (with duplicates
  /// removed) — these are the inputs the compositor subscribes to.
  std::vector<EventTypeId> LeafTypes() const;

  /// Does the expression reference `type` as a leaf? One precompiled mask
  /// test in the common case (the leaf set is frozen at construction).
  bool AcceptsType(EventTypeId type) const {
    if (((leaf_mask_ >> (type & 63u)) & 1u) == 0) return false;
    for (EventTypeId t : sorted_leaves_) {
      if (t == type) return true;
    }
    return false;
  }

  /// Batched predicate evaluation (docs/EVENTS.md "Batched pipeline"):
  /// append to `matches` the indices of `types[0..n)` whose type is a leaf
  /// of this expression. One monomorphic loop over contiguous type ids —
  /// no virtual dispatch, no per-occurrence tree walk — so a compositor
  /// filters a whole admission batch with one call. Returns the number of
  /// indices appended. `matches` is not cleared (callers reuse scratch).
  size_t EvalBatch(const EventTypeId* types, size_t n,
                   std::vector<uint32_t>* matches) const;

  /// Structural sanity: arity per operator, n >= 1 for History, no
  /// primitive id of kInvalidEventType.
  Status Validate() const;

  std::string ToString() const;

  // Builders. The optional correlation restricts combination to
  // occurrences with the same source object (kSameSource).
  static EventExprPtr Prim(EventTypeId type);
  static EventExprPtr Seq(EventExprPtr a, EventExprPtr b,
                          Correlation correlation = Correlation::kNone);
  static EventExprPtr And(EventExprPtr a, EventExprPtr b,
                          Correlation correlation = Correlation::kNone);
  static EventExprPtr Or(EventExprPtr a, EventExprPtr b);
  /// start; then end with no `neg` between them.
  static EventExprPtr Not(EventExprPtr start, EventExprPtr neg,
                          EventExprPtr end,
                          Correlation correlation = Correlation::kNone);
  static EventExprPtr Closure(EventExprPtr body, EventExprPtr end);
  static EventExprPtr History(EventExprPtr body, uint32_t n,
                              Correlation correlation = Correlation::kNone);

 private:
  EventExpr(EventOp op, EventTypeId primitive_type,
            std::vector<EventExprPtr> children, uint32_t history_count,
            Correlation correlation = Correlation::kNone)
      : op_(op),
        primitive_type_(primitive_type),
        children_(std::move(children)),
        history_count_(history_count),
        correlation_(correlation) {
    CompileLeafFilter();
  }

  EventOp op_;
  EventTypeId primitive_type_ = kInvalidEventType;
  std::vector<EventExprPtr> children_;
  uint32_t history_count_ = 0;
  Correlation correlation_ = Correlation::kNone;
  // Leaf-membership filter, frozen at construction (trees are immutable):
  // a 64-bit coarse mask over `type & 63` plus the deduplicated leaf list,
  // sorted so small sets scan in one or two cache lines.
  uint64_t leaf_mask_ = 0;
  std::vector<EventTypeId> sorted_leaves_;

  void CollectLeaves(std::vector<EventTypeId>* out) const;
  void CompileLeafFilter();
};

}  // namespace reach
