#include "core/events/temporal_scheduler.h"

namespace reach {

TemporalScheduler::TemporalScheduler(Clock* clock) : clock_(clock) {}

TemporalScheduler::~TemporalScheduler() { Stop(); }

void TemporalScheduler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  worker_ = std::thread([this] { Loop(); });
}

void TemporalScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  clock_->WakeAll();
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void TemporalScheduler::ScheduleAt(Timestamp at, TimerAction action) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push({at, next_id_++, 0, std::move(action)});
  }
  clock_->WakeAll();  // re-evaluate the head of the queue
}

void TemporalScheduler::SchedulePeriodic(Timestamp period_us,
                                         TimerAction action) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(
        {clock_->Now() + period_us, next_id_++, period_us, std::move(action)});
  }
  clock_->WakeAll();
}

size_t TemporalScheduler::pending_timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void TemporalScheduler::Loop() {
  for (;;) {
    Timer due;
    bool have_due = false;
    Timestamp wait_until = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      Timestamp now = clock_->Now();
      if (!queue_.empty() && queue_.top().at <= now) {
        due = queue_.top();
        queue_.pop();
        have_due = true;
        if (due.period > 0) {
          queue_.push({due.at + due.period, next_id_++, due.period,
                       due.action});
        }
      } else {
        wait_until = queue_.empty() ? now + 1000000 : queue_.top().at;
      }
    }
    if (have_due) {
      fired_.fetch_add(1, std::memory_order_relaxed);
      due.action(due.at);
      continue;
    }
    clock_->SleepUntil(wait_until);
  }
}

}  // namespace reach
