// Event occurrences: the "event objects" of the paper's Figure 2. An
// occurrence records which event type happened, when, in which transaction,
// with which parameters; composite occurrences additionally carry their
// constituent occurrences (the paper's parameter/history requirement).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "oodb/value.h"

namespace reach {

/// The four event categories of Table 1, as they matter for coupling-mode
/// legality.
enum class EventCategory {
  kSingleMethod,      // primitive method / state / flow-control event
  kPurelyTemporal,    // absolute / periodic / relative time event
  kCompositeSingleTx, // composite, all constituents from one transaction
  kCompositeMultiTx,  // composite spanning transactions
};

const char* EventCategoryName(EventCategory category);

struct EventOccurrence;
using EventOccurrencePtr = std::shared_ptr<const EventOccurrence>;

struct EventOccurrence {
  EventTypeId type = kInvalidEventType;
  /// Logical clock timestamp (µs) at detection.
  Timestamp timestamp = 0;
  /// Global arrival sequence number; total order for tie-breaking.
  uint64_t sequence = 0;
  /// Steady-clock ns at detection (0 = unmeasured). Carried from the sentry
  /// announcement, or stamped on Signal entry; downstream pipeline stages
  /// record `now - detect_ns` spans (obs/pipeline_span.h). Not part of the
  /// event algebra — `timestamp` is the logical event time.
  uint64_t detect_ns = 0;
  /// Raising transaction; kNoTxn for temporal events.
  TxnId txn = kNoTxn;
  /// Set by Signal when this occurrence was appended to the durable event
  /// history; the EventManager's in-flight accounting (checkpoint
  /// quiescence) keys off it. Not part of the event algebra.
  bool history_logged = false;
  /// Receiver object of a method/state event (invalid otherwise).
  Oid source;
  /// Event parameters (method args, {old,new} for state changes, ...).
  std::vector<Value> params;
  /// Constituents of a composite occurrence, in detection order.
  std::vector<EventOccurrencePtr> constituents;

  /// Every transaction involved (self plus constituents', de-duplicated).
  std::vector<TxnId> InvolvedTxns() const;

  /// Leaf (primitive) occurrences in detection order; self if primitive.
  void CollectLeaves(std::vector<const EventOccurrence*>* out) const;

  std::string ToString() const;
};

}  // namespace reach
