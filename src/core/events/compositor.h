// Compositor: one small detection automaton per composite event type
// (§6.3 — many small compositors instead of a monolithic event graph).
//
// The runtime is a tree of operator nodes mirroring the event expression.
// Leaf occurrences are fed in arrival order; each node buffers partial
// compositions and combines them according to the event type's consumption
// policy (§3.4). Life-span handling (§3.3):
//   * single-transaction scope — one automaton instance per transaction;
//     the whole instance is discarded at EOT (trivial garbage collection);
//   * cross-transaction scope — one global instance whose buffered
//     partials expire after the validity interval.
//
// Single-txn instances are independent by construction (§3.3), so the
// instance map is striped: `txn % kStripes` picks a cache-line-padded
// stripe with its own mutex, letting distinct transactions feed the same
// composite type in parallel. Cross-txn scope keeps its one global
// instance behind a single stripe's lock — its buffered state is shared
// and genuinely serial.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/events/event.h"
#include "core/events/event_batch.h"
#include "core/events/event_registry.h"

namespace reach {

struct CompositorStats {
  uint64_t fed = 0;             // leaf occurrences consumed
  uint64_t completions = 0;     // composite occurrences raised
  uint64_t expired_partials = 0;
  uint64_t discarded_at_eot = 0;
};

class Compositor {
 public:
  explicit Compositor(const EventDescriptor* desc);
  ~Compositor();

  const EventDescriptor* descriptor() const { return desc_; }

  /// Feed a leaf occurrence. Completed composite occurrences (type =
  /// descriptor id) are appended to `out`. Thread-safe.
  void Feed(const EventOccurrencePtr& occ,
            std::vector<EventOccurrencePtr>* out);

  /// Batched feed (docs/EVENTS.md "Batched pipeline"): feed the batch
  /// elements selected by `indices[0..count)` in index order. Equivalent to
  /// calling Feed per element, but the instance-map stripe is locked once
  /// per run of same-stripe occurrences instead of once per occurrence.
  /// Thread-safe.
  void FeedBatch(const EventBatch& batch, const uint32_t* indices,
                 size_t count, std::vector<EventOccurrencePtr>* out);

  /// Single-txn scope: drop the automaton instance of `txn` (EOT GC).
  void OnTxnEnd(TxnId txn);

  /// Cross-txn scope: drop partials whose composition started before
  /// `cutoff` (validity-interval GC). No-op for single-txn scope.
  void ExpireOlderThan(Timestamp cutoff);

  /// Partially composed events currently buffered.
  size_t LivePartialCount() const;

  CompositorStats stats() const;

  // -- Durable event history (docs/EVENTS.md "Durability & recovery") ------

  /// Serialize the cross-txn instance's buffered partial state (feed floor
  /// + node-tree buffers). Empty for single-txn scope or before the first
  /// feed. The registry supplies type names so occurrences survive id
  /// reassignment across restarts.
  std::string SnapshotState(const EventRegistry* registry) const;

  /// Rebuild the cross-txn instance from SnapshotState output. The state
  /// must have been produced by a compositor with the same event
  /// expression; a shape mismatch is a Corruption error.
  Status RestoreState(const std::string& state, const EventRegistry* registry);

  /// Highest occurrence sequence ever fed to the cross-txn instance — the
  /// replay floor: logged occurrences at or below it are already reflected
  /// in SnapshotState.
  uint64_t last_fed_seq() const {
    return last_fed_seq_.load(std::memory_order_relaxed);
  }

  /// Observer invoked (under the instance stripe lock) after an explicit
  /// ExpireOlderThan drops partials; the EventManager logs expiry
  /// tombstones through it. Lazy feed-time GC is excluded: it re-derives
  /// deterministically from replayed timestamps. Set before the compositor
  /// is published to concurrent feeders.
  void set_gc_listener(std::function<void(Timestamp, uint64_t)> listener) {
    gc_listener_ = std::move(listener);
  }

  /// Instance-map stripes for single-txn scope (kCrossTxn uses exactly one).
  static constexpr size_t kStripes = 8;

 private:
  class Node;
  class PrimitiveNode;
  class SequenceNode;
  class ConjunctionNode;
  class DisjunctionNode;
  class NegationNode;
  class ClosureNode;
  class HistoryNode;

  // kSingleTxn: per-transaction instance trees, keyed txn % kStripes.
  // kCrossTxn: the single global instance lives in StripeFor(kNoTxn).
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<TxnId, std::unique_ptr<Node>> instances;
  };

  Stripe& StripeFor(TxnId key) const {
    return stripes_[static_cast<size_t>(key) % kStripes];
  }

  /// try_lock-then-block acquisition recording contended waits into the
  /// events.compositor.lock_wait_ns histogram (the buffer-pool shard idiom).
  static std::unique_lock<std::mutex> LockStripe(const Stripe& stripe);

  std::unique_ptr<Node> BuildTree(const EventExprPtr& expr) const;

  /// Find-or-create the instance for `key` (stripe lock held by caller).
  Node* InstanceFor(Stripe& stripe, TxnId key);

  /// The per-occurrence feed body: lazy validity GC, feed-floor update,
  /// node-tree feed, completion materialization. Stripe lock held.
  void FeedLocked(Node* root, TxnId key, const EventOccurrencePtr& occ,
                  std::vector<EventOccurrencePtr>* out);

  /// Root completions become composite event occurrences.
  EventOccurrencePtr MakeOccurrence(std::vector<EventOccurrencePtr> parts,
                                    Timestamp ts, uint64_t seq,
                                    TxnId txn) const;

  const EventDescriptor* desc_;
  mutable Stripe stripes_[kStripes];
  // Per-instance stats, lock-free so stats() never contends with Feed();
  // process-wide aggregates are mirrored into the obs::MetricsRegistry.
  std::atomic<uint64_t> fed_{0};
  std::atomic<uint64_t> completions_{0};
  std::atomic<uint64_t> expired_partials_{0};
  std::atomic<uint64_t> discarded_at_eot_{0};
  /// Written under the cross-txn stripe lock; read lock-free by
  /// last_fed_seq().
  std::atomic<uint64_t> last_fed_seq_{0};
  std::function<void(Timestamp, uint64_t)> gc_listener_;
};

}  // namespace reach
