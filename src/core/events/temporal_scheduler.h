// Temporal event scheduler: fires absolute, periodic, relative and
// milestone timers off the database clock. With a VirtualClock the whole
// temporal subsystem is deterministic (tests advance time explicitly).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/types.h"

namespace reach {

class TemporalScheduler {
 public:
  /// `action(fire_time)` runs on the scheduler thread.
  using TimerAction = std::function<void(Timestamp)>;

  explicit TemporalScheduler(Clock* clock);
  ~TemporalScheduler();

  void Start();
  void Stop();

  /// One-shot timer at absolute time `at` (fires immediately if already
  /// past).
  void ScheduleAt(Timestamp at, TimerAction action);

  /// Repeating timer every `period_us`, first fire at now + period.
  void SchedulePeriodic(Timestamp period_us, TimerAction action);

  size_t pending_timers() const;
  uint64_t fired_count() const { return fired_; }

 private:
  struct Timer {
    Timestamp at;
    uint64_t id;  // tie-break for deterministic ordering
    Timestamp period;  // 0 = one-shot
    TimerAction action;
    bool operator>(const Timer& other) const {
      return at != other.at ? at > other.at : id > other.id;
    }
  };

  void Loop();

  Clock* clock_;
  mutable std::mutex mu_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> queue_;
  std::thread worker_;
  bool running_ = false;
  bool stop_ = false;
  uint64_t next_id_ = 0;
  std::atomic<uint64_t> fired_{0};
};

}  // namespace reach
