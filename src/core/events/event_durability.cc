#include "core/events/event_durability.h"

#include <algorithm>
#include <cstring>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace eventlog {

namespace {

constexpr uint8_t kOccurrenceVersion = 1;
constexpr uint8_t kCheckpointVersion = 1;
constexpr uint8_t kTombstoneVersion = 1;
constexpr uint8_t kKindConsumption = 1;
constexpr uint8_t kKindExpiry = 2;

template <typename T>
void PutScalar(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetScalar(const std::string& data, size_t* pos, T* v) {
  if (*pos + sizeof(T) > data.size()) return false;
  std::memcpy(v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void PutString(std::string* out, const std::string& s) {
  PutScalar<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetString(const std::string& data, size_t* pos, std::string* s) {
  uint32_t n = 0;
  if (!GetScalar(data, pos, &n)) return false;
  if (*pos + n > data.size()) return false;
  s->assign(data, *pos, n);
  *pos += n;
  return true;
}

uint64_t Fnv1a64(uint64_t h, const void* bytes, size_t len) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void EncodeOccurrence(const EventOccurrence& occ, const EventRegistry* registry,
                      std::string* out) {
  PutScalar<uint8_t>(out, kOccurrenceVersion);
  PutScalar<uint32_t>(out, occ.type);
  const EventDescriptor* desc =
      registry != nullptr ? registry->Find(occ.type) : nullptr;
  PutString(out, desc != nullptr ? desc->name : std::string());
  PutScalar<int64_t>(out, occ.timestamp);
  PutScalar<uint64_t>(out, occ.sequence);
  PutScalar<uint64_t>(out, occ.txn);
  PutScalar<uint32_t>(out, occ.source.page);
  PutScalar<uint16_t>(out, occ.source.slot);
  PutScalar<uint16_t>(out, occ.source.generation);
  PutScalar<uint32_t>(out, static_cast<uint32_t>(occ.params.size()));
  for (const Value& v : occ.params) v.Encode(out);
  PutScalar<uint32_t>(out, static_cast<uint32_t>(occ.constituents.size()));
  for (const EventOccurrencePtr& c : occ.constituents) {
    EncodeOccurrence(*c, registry, out);
  }
}

Result<std::shared_ptr<EventOccurrence>> DecodeOccurrence(
    const std::string& data, size_t* pos, const EventRegistry* registry) {
  auto corrupt = [] {
    return Status::Corruption("truncated event occurrence payload");
  };
  uint8_t version = 0;
  if (!GetScalar(data, pos, &version)) return corrupt();
  if (version != kOccurrenceVersion) {
    return Status::Corruption("unknown event occurrence version " +
                              std::to_string(version));
  }
  auto occ = std::make_shared<EventOccurrence>();
  std::string name;
  if (!GetScalar(data, pos, &occ->type)) return corrupt();
  if (!GetString(data, pos, &name)) return corrupt();
  if (!GetScalar(data, pos, &occ->timestamp)) return corrupt();
  if (!GetScalar(data, pos, &occ->sequence)) return corrupt();
  if (!GetScalar(data, pos, &occ->txn)) return corrupt();
  if (!GetScalar(data, pos, &occ->source.page)) return corrupt();
  if (!GetScalar(data, pos, &occ->source.slot)) return corrupt();
  if (!GetScalar(data, pos, &occ->source.generation)) return corrupt();
  // Type ids are not stable across restarts; the name is authoritative when
  // it resolves in the current registry.
  if (registry != nullptr && !name.empty()) {
    const EventDescriptor* desc = registry->FindByName(name);
    if (desc != nullptr) occ->type = desc->id;
  }
  uint32_t nparams = 0;
  if (!GetScalar(data, pos, &nparams)) return corrupt();
  for (uint32_t i = 0; i < nparams; ++i) {
    auto v = Value::Decode(data, pos);
    if (!v.ok()) return v.status();
    occ->params.push_back(std::move(*v));
  }
  uint32_t nkids = 0;
  if (!GetScalar(data, pos, &nkids)) return corrupt();
  for (uint32_t i = 0; i < nkids; ++i) {
    auto kid = DecodeOccurrence(data, pos, registry);
    if (!kid.ok()) return kid.status();
    occ->constituents.push_back(std::move(*kid));
  }
  return occ;
}

uint64_t CompletionKey(const std::string& composite_name,
                       const EventOccurrence& completion) {
  uint64_t h = 14695981039346656037ull;
  h = Fnv1a64(h, composite_name.data(), composite_name.size());
  std::vector<const EventOccurrence*> leaves;
  completion.CollectLeaves(&leaves);
  for (const EventOccurrence* leaf : leaves) {
    uint64_t seq = leaf->sequence;
    h = Fnv1a64(h, &seq, sizeof(seq));
  }
  return h;
}

std::string EncodeCheckpoint(
    uint64_t max_sequence,
    const std::vector<std::pair<std::string, std::string>>& states) {
  std::string out;
  PutScalar<uint8_t>(&out, kCheckpointVersion);
  PutScalar<uint64_t>(&out, max_sequence);
  PutScalar<uint32_t>(&out, static_cast<uint32_t>(states.size()));
  for (const auto& [name, state] : states) {
    PutString(&out, name);
    PutString(&out, state);
  }
  return out;
}

std::string EncodeConsumption(uint64_t completion_key) {
  std::string out;
  PutScalar<uint8_t>(&out, kTombstoneVersion);
  PutScalar<uint8_t>(&out, kKindConsumption);
  PutScalar<uint64_t>(&out, completion_key);
  return out;
}

std::string EncodeExpiry(const std::string& composite_name, Timestamp cutoff) {
  std::string out;
  PutScalar<uint8_t>(&out, kTombstoneVersion);
  PutScalar<uint8_t>(&out, kKindExpiry);
  PutString(&out, composite_name);
  PutScalar<int64_t>(&out, cutoff);
  return out;
}

RecoveredEventState PartitionEventRecords(
    const std::vector<WalRecord>& records) {
  RecoveredEventState state;
  for (const WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kEventOccurrence: {
        // Track the sequence high-water mark even for occurrences that no
        // current compositor will consume.
        size_t pos = 0;
        auto occ = DecodeOccurrence(rec.payload, &pos, nullptr);
        if (!occ.ok()) {
          ++state.malformed;
          break;
        }
        state.max_sequence = std::max(state.max_sequence, (*occ)->sequence);
        state.tail.push_back(rec.payload);
        break;
      }
      case WalRecordType::kEventCheckpoint: {
        size_t pos = 0;
        uint8_t version = 0;
        uint64_t max_seq = 0;
        uint32_t n = 0;
        if (!GetScalar(rec.payload, &pos, &version) ||
            version != kCheckpointVersion ||
            !GetScalar(rec.payload, &pos, &max_seq) ||
            !GetScalar(rec.payload, &pos, &n)) {
          ++state.malformed;
          break;
        }
        std::unordered_map<std::string, std::string> states;
        bool ok = true;
        for (uint32_t i = 0; i < n && ok; ++i) {
          std::string name, node_state;
          ok = GetString(rec.payload, &pos, &name) &&
               GetString(rec.payload, &pos, &node_state);
          if (ok) states[name] = std::move(node_state);
        }
        if (!ok) {
          ++state.malformed;
          break;
        }
        // A checkpoint subsumes everything logged before it (it is only
        // written while composition is quiescent — see
        // EventManager::CheckpointEventState).
        state.checkpoint_states = std::move(states);
        state.tail.clear();
        state.consumed.clear();
        state.expiry_cutoffs.clear();
        state.max_sequence = std::max(state.max_sequence, max_seq);
        break;
      }
      case WalRecordType::kEventTombstone: {
        size_t pos = 0;
        uint8_t version = 0, kind = 0;
        if (!GetScalar(rec.payload, &pos, &version) ||
            version != kTombstoneVersion ||
            !GetScalar(rec.payload, &pos, &kind)) {
          ++state.malformed;
          break;
        }
        if (kind == kKindConsumption) {
          uint64_t key = 0;
          if (!GetScalar(rec.payload, &pos, &key)) {
            ++state.malformed;
            break;
          }
          state.consumed.insert(key);
        } else if (kind == kKindExpiry) {
          std::string name;
          int64_t cutoff = 0;
          if (!GetString(rec.payload, &pos, &name) ||
              !GetScalar(rec.payload, &pos, &cutoff)) {
            ++state.malformed;
            break;
          }
          Timestamp& cur = state.expiry_cutoffs[name];
          cur = std::max(cur, cutoff);
        } else {
          ++state.malformed;
        }
        break;
      }
      default:
        break;  // data recovery records
    }
  }
  return state;
}

}  // namespace eventlog

namespace {

struct HistoryMetrics {
  obs::Counter* logged;
  obs::Counter* checkpoint_bytes;
  obs::Counter* failures;

  static const HistoryMetrics& Get() {
    static const HistoryMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return HistoryMetrics{reg.counter(obs::kEventHistoryLogged),
                            reg.counter(obs::kEventHistoryCheckpointBytes),
                            reg.counter(obs::kEventHistoryLogFailures)};
    }();
    return m;
  }
};

}  // namespace

Status EventHistoryLog::AppendRecord(WalRecordType type, std::string payload) {
  REACH_FAULT_POINT(faults::kEventHistoryAppend);
  WalRecord rec;
  rec.type = type;
  // Envelope txn stays kNoTxn: the occurrence's transaction lives in the
  // payload, so data recovery's loser analysis never sees event records.
  rec.payload = std::move(payload);
  auto lsn = wal_->Append(std::move(rec));
  return lsn.ok() ? Status::OK() : lsn.status();
}

Status EventHistoryLog::LogOccurrence(const EventOccurrence& occ) {
  std::string payload;
  eventlog::EncodeOccurrence(occ, registry_, &payload);
  Status st = AppendRecord(WalRecordType::kEventOccurrence,
                           std::move(payload));
  if (st.ok()) {
    logged_.fetch_add(1, std::memory_order_relaxed);
    HistoryMetrics::Get().logged->Inc();
  } else {
    HistoryMetrics::Get().failures->Inc();
  }
  return st;
}

Status EventHistoryLog::LogConsumption(const std::string& composite_name,
                                       const EventOccurrence& completion) {
  Status st = AppendRecord(
      WalRecordType::kEventTombstone,
      eventlog::EncodeConsumption(
          eventlog::CompletionKey(composite_name, completion)));
  if (!st.ok()) HistoryMetrics::Get().failures->Inc();
  return st;
}

Status EventHistoryLog::LogExpiry(const std::string& composite_name,
                                  Timestamp cutoff) {
  Status st = AppendRecord(WalRecordType::kEventTombstone,
                           eventlog::EncodeExpiry(composite_name, cutoff));
  if (!st.ok()) HistoryMetrics::Get().failures->Inc();
  return st;
}

Status EventHistoryLog::LogCheckpoint(std::string payload) {
  REACH_FAULT_POINT(faults::kEventHistoryCheckpoint);
  const size_t bytes = payload.size();
  WalRecord rec;
  rec.type = WalRecordType::kEventCheckpoint;
  rec.payload = std::move(payload);
  auto lsn = wal_->Append(std::move(rec));
  if (!lsn.ok()) {
    HistoryMetrics::Get().failures->Inc();
    return lsn.status();
  }
  // The checkpoint is the replay floor after the next truncation; it must
  // not sit in the append buffer when that happens.
  Status st = wal_->Flush();
  if (st.ok()) {
    HistoryMetrics::Get().checkpoint_bytes->Inc(bytes);
  } else {
    HistoryMetrics::Get().failures->Inc();
  }
  return st;
}

}  // namespace reach
