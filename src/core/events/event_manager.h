// EventManager: the collection of REACH ECA-managers (Figure 2).
//
// It is itself a policy manager on the Open OODB meta bus: sentry
// announcements that match a registered event type become primitive event
// occurrences. Each registered type has a per-type manager holding its
// listeners (rule firing, owned by the rule engine), the downstream
// compositors its occurrences feed, and its local history.
//
// Primitive processing is synchronous — the detecting thread fires the
// listeners (so immediate rules finish before the application gets the
// go-ahead) — while composition runs asynchronously on a small pool
// (§6.4's key design decision), unless configured inline for measurement.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "core/events/compositor.h"
#include "core/events/event.h"
#include "core/events/event_history.h"
#include "core/events/event_registry.h"
#include "core/events/temporal_scheduler.h"
#include "oodb/database.h"

namespace reach {

struct EventManagerOptions {
  /// Compose composite events asynchronously (the REACH architecture);
  /// false runs compositors inline in the detecting thread (bench E2's
  /// blocking baseline).
  bool async_composition = true;
  size_t composition_threads = 2;
  size_t history_capacity = 4096;
  /// Background merge of committed events into the global history.
  bool maintain_global_history = true;
};

class EventManager : public PolicyManager {
 public:
  using EventCallback = std::function<void(const EventOccurrencePtr&)>;

  EventManager(Database* db, EventManagerOptions options = {});
  ~EventManager() override;

  std::string name() const override { return "REACH ECA managers"; }

  EventRegistry* registry() { return &registry_; }
  Database* db() { return db_; }

  // -- Event type definition (registry + wiring + bus subscription) -------

  Result<EventTypeId> DefineMethodEvent(const std::string& name,
                                        const std::string& class_name,
                                        const std::string& method,
                                        bool after = true);
  Result<EventTypeId> DefineStateChangeEvent(const std::string& name,
                                             const std::string& class_name,
                                             const std::string& attr);
  Result<EventTypeId> DefineFlowEvent(const std::string& name,
                                      SentryKind kind,
                                      const std::string& class_name = "");
  Result<EventTypeId> DefineAbsoluteEvent(const std::string& name,
                                          Timestamp fire_at);
  Result<EventTypeId> DefinePeriodicEvent(const std::string& name,
                                          Timestamp period_us);
  Result<EventTypeId> DefineRelativeEvent(const std::string& name,
                                          EventTypeId anchor,
                                          Timestamp delay_us);
  Result<EventTypeId> DefineMilestone(const std::string& name,
                                      EventTypeId marker,
                                      Timestamp deadline_us);
  Result<EventTypeId> DefineComposite(
      const std::string& name, EventExprPtr expr, CompositeScope scope,
      ConsumptionPolicy policy = ConsumptionPolicy::kChronicle,
      Timestamp validity_us = 0);

  // -- Detection-side interface -------------------------------------------

  /// Rule engine attachment: called synchronously for every occurrence of
  /// `type` (detection thread for primitives, composition thread for
  /// composites).
  void AddEventListener(EventTypeId type, EventCallback callback);

  /// Inject an occurrence (used internally, by tests, and by workload
  /// generators). Stamps sequence (and timestamp if zero).
  void Signal(std::shared_ptr<EventOccurrence> occ);

  /// Raise a registered event type explicitly (the paper's "explicit user
  /// signals can be modelled as method events").
  Status Raise(EventTypeId type, TxnId txn, std::vector<Value> params = {});

  /// Bus entry point: sentry announcements + transaction lifecycle.
  void OnEvent(const SentryEvent& event) override;

  /// Drain the asynchronous composition queue (pre-commit barrier so
  /// deferred rules see a complete picture).
  void Quiesce();

  // -- Introspection --------------------------------------------------------

  GlobalHistory* global_history() { return &global_history_; }
  const LocalHistory* HistoryOf(EventTypeId type) const;
  const Compositor* CompositorOf(EventTypeId composite) const;
  TemporalScheduler* scheduler() { return &scheduler_; }

  /// Total partially composed events across all compositors.
  size_t LivePartials() const;

  uint64_t signaled_count() const { return signaled_.load(); }
  uint64_t composite_count() const { return composed_.load(); }

 private:
  struct EcaManager {
    const EventDescriptor* desc = nullptr;
    std::vector<EventCallback> listeners;
    std::vector<Compositor*> downstream;  // compositors fed by this type
    std::unique_ptr<LocalHistory> history;
  };

  /// Create the per-type manager (must not exist yet).
  EcaManager* CreateManager(EventTypeId id);

  /// Deliver to one compositor and recursively signal completions.
  void Compose(Compositor* compositor, const EventOccurrencePtr& occ);

  void HandleTxnEnd(TxnId txn, bool committed);

  /// Milestone support.
  void OnTxnBegin(TxnId txn);
  void MarkerReached(EventTypeId marker, TxnId txn);

  Database* db_;
  EventManagerOptions options_;
  EventRegistry registry_;
  TemporalScheduler scheduler_;
  std::unique_ptr<ThreadPool> composition_pool_;
  std::unique_ptr<ThreadPool> history_pool_;

  mutable std::shared_mutex mgr_mu_;
  std::unordered_map<EventTypeId, EcaManager> managers_;
  std::unordered_map<EventTypeId, std::unique_ptr<Compositor>> compositors_;

  std::mutex txn_mu_;
  std::unordered_map<TxnId, std::vector<EventOccurrencePtr>> pending_;
  // markers_reached_[txn] = marker event types raised in txn (milestones).
  std::unordered_map<TxnId, std::unordered_set<EventTypeId>> markers_reached_;
  std::unordered_set<TxnId> active_txns_;

  GlobalHistory global_history_;
  std::atomic<uint64_t> signaled_{0};
  std::atomic<uint64_t> composed_{0};
  std::atomic<uint64_t> next_sequence_{1};
};

}  // namespace reach
