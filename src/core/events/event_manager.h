// EventManager: the collection of REACH ECA-managers (Figure 2).
//
// It is itself a policy manager on the Open OODB meta bus: sentry
// announcements that match a registered event type become primitive event
// occurrences. Each registered type has a per-type manager holding its
// listeners (rule firing, owned by the rule engine), the downstream
// compositors its occurrences feed, and its local history.
//
// Primitive processing is synchronous — the detecting thread fires the
// listeners (so immediate rules finish before the application gets the
// go-ahead) — while composition runs asynchronously on a small pool
// (§6.4's key design decision), unless configured inline for measurement.
//
// Hot-path concurrency (docs/EVENTS.md): the per-type state is published
// as an immutable snapshot (RCU-style) loaded with one atomic operation in
// Signal — no lock, no vector copies. Definition-time writers (Define*,
// AddEventListener) copy-on-write and republish. Per-transaction
// bookkeeping (pending history, milestone markers, active set) is striped
// over txn % kTxnShards so concurrent transactions never serialize on one
// mutex, and composition fans out through a work-stealing pool, one
// enqueue per occurrence carrying its downstream compositor list.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "common/work_stealing_pool.h"
#include "core/events/compositor.h"
#include "core/events/event.h"
#include "core/events/event_batch.h"
#include "core/events/event_durability.h"
#include "core/events/event_history.h"
#include "core/events/event_registry.h"
#include "core/events/temporal_scheduler.h"
#include "oodb/database.h"

namespace reach {

/// How composite events are fed from the detecting thread (§6.4).
enum class CompositionMode {
  kInline,       // detecting thread runs the compositors (bench E2 baseline)
  kCentralPool,  // shared mutex+deque ThreadPool (the pre-work-stealing path)
  kWorkStealing, // per-worker queues + stealing (the default)
};

struct EventManagerOptions {
  /// Compose composite events asynchronously (the REACH architecture);
  /// false runs compositors inline in the detecting thread (bench E2's
  /// blocking baseline), overriding `composition_mode`.
  bool async_composition = true;
  /// Backend for asynchronous composition.
  CompositionMode composition_mode = CompositionMode::kWorkStealing;
  size_t composition_threads = 2;
  size_t history_capacity = 4096;
  /// Background merge of committed events into the global history.
  bool maintain_global_history = true;
  /// Log cross-transaction composite state to the WAL (docs/EVENTS.md
  /// "Durability & recovery"): occurrences feeding cross-txn compositors
  /// are appended at Signal time through the group-commit path, partial
  /// state is checkpointed, and DefineComposite replays checkpoint + tail
  /// after a restart.
  bool durable_history = true;
  /// Auto-checkpoint compositor state after this many logged occurrences
  /// (0 disables; explicit CheckpointEventState still works).
  uint64_t history_checkpoint_interval = 256;
  /// Batched pipeline (docs/EVENTS.md "Batched pipeline"): Signal admits
  /// composition-bound occurrences into per-thread SoA batches flushed on
  /// size / coupling-boundary / end-of-transaction triggers, and the
  /// work-stealing pool moves them as whole batches. Occurrences that need
  /// synchronous semantics — listener-bearing types (immediate coupling),
  /// durable cross-txn participants, temporal events, composite
  /// completions — always take the single-occurrence path. `false` is the
  /// latency mode: every occurrence dispatches individually, exactly the
  /// pre-batching pipeline. Only the kWorkStealing backend batches.
  bool batch_mode = true;
  /// Admission-buffer capacity; a full buffer flushes (the size trigger).
  size_t batch_max_events = 64;
};

class EventManager : public PolicyManager {
 public:
  using EventCallback = std::function<void(const EventOccurrencePtr&)>;

  EventManager(Database* db, EventManagerOptions options = {});
  ~EventManager() override;

  std::string name() const override { return "REACH ECA managers"; }

  EventRegistry* registry() { return &registry_; }
  Database* db() { return db_; }

  // -- Event type definition (registry + wiring + bus subscription) -------

  Result<EventTypeId> DefineMethodEvent(const std::string& name,
                                        const std::string& class_name,
                                        const std::string& method,
                                        bool after = true);
  Result<EventTypeId> DefineStateChangeEvent(const std::string& name,
                                             const std::string& class_name,
                                             const std::string& attr);
  Result<EventTypeId> DefineFlowEvent(const std::string& name,
                                      SentryKind kind,
                                      const std::string& class_name = "");
  Result<EventTypeId> DefineAbsoluteEvent(const std::string& name,
                                          Timestamp fire_at);
  Result<EventTypeId> DefinePeriodicEvent(const std::string& name,
                                          Timestamp period_us);
  Result<EventTypeId> DefineRelativeEvent(const std::string& name,
                                          EventTypeId anchor,
                                          Timestamp delay_us);
  Result<EventTypeId> DefineMilestone(const std::string& name,
                                      EventTypeId marker,
                                      Timestamp deadline_us);
  Result<EventTypeId> DefineComposite(
      const std::string& name, EventExprPtr expr, CompositeScope scope,
      ConsumptionPolicy policy = ConsumptionPolicy::kChronicle,
      Timestamp validity_us = 0);

  // -- Detection-side interface -------------------------------------------

  /// Rule engine attachment: called synchronously for every occurrence of
  /// `type` (detection thread for primitives, composition thread for
  /// composites).
  void AddEventListener(EventTypeId type, EventCallback callback);

  /// Inject an occurrence (used internally, by tests, and by workload
  /// generators). Stamps sequence (and timestamp if zero).
  void Signal(std::shared_ptr<EventOccurrence> occ);

  /// Raise a registered event type explicitly (the paper's "explicit user
  /// signals can be modelled as method events").
  Status Raise(EventTypeId type, TxnId txn, std::vector<Value> params = {});

  /// Bus entry point: sentry announcements + transaction lifecycle.
  void OnEvent(const SentryEvent& event) override;

  /// Drain the asynchronous composition queue (pre-commit barrier so
  /// deferred rules see a complete picture). Drained = all composition
  /// queues empty and all workers idle, then the history merge likewise.
  void Quiesce();

  // -- Durable event history ----------------------------------------------

  /// Write an event-history checkpoint: the sequence high-water mark plus
  /// every cross-txn compositor's partial state, flushed to the WAL. Busy
  /// when logged occurrences are still being composed (the checkpoint would
  /// silently drop them from the replay tail) or recovered completions have
  /// not been re-signalled yet — retry after Quiesce.
  Status CheckpointEventState();

  /// Signal composite completions reconstructed by replay whose firing the
  /// crash pre-empted. Runs once per recovery batch; invoked from Quiesce
  /// and lazily from the first Signal so listeners attached after
  /// DefineComposite still observe them.
  void CompleteRecovery();

  /// Force buffered event-history records to stable storage.
  Status FlushEventLog();

  /// Last event-history append/checkpoint failure (OK when healthy). The
  /// history degrades gracefully: detection continues, durability is lost.
  Status history_status() const;

  uint64_t history_logged() const {
    return history_log_ ? history_log_->logged() : 0;
  }
  uint64_t history_replayed() const {
    return replayed_.load(std::memory_order_relaxed);
  }

  // -- Introspection --------------------------------------------------------

  GlobalHistory* global_history() { return &global_history_; }
  const LocalHistory* HistoryOf(EventTypeId type) const;
  const Compositor* CompositorOf(EventTypeId composite) const;
  TemporalScheduler* scheduler() { return &scheduler_; }

  /// Total partially composed events across all compositors.
  size_t LivePartials() const;

  uint64_t signaled_count() const { return signaled_.load(); }
  uint64_t composite_count() const { return composed_.load(); }

  /// Effective composition backend after resolving `async_composition`.
  CompositionMode composition_mode() const { return mode_; }

  /// Snapshot republish count (dispatch-table copy-on-write writes).
  uint64_t dispatch_republish_count() const { return republished_.load(); }

  /// Tasks stolen across composition worker queues (0 unless the
  /// work-stealing backend is active).
  uint64_t composition_steal_count() const {
    return steal_pool_ ? steal_pool_->steal_count() : 0;
  }

  /// Composition tasks currently queued (across all worker queues for the
  /// work-stealing backend, the central queue otherwise; 0 inline).
  /// Producers can poll this for backpressure.
  size_t composition_queue_depth() const {
    if (steal_pool_) return steal_pool_->QueueDepth();
    if (composition_pool_) return composition_pool_->QueueDepth();
    return 0;
  }

  /// Occurrences admitted to per-thread batch buffers but not yet flushed
  /// to the composition pool (0 in latency mode). Tests use this to pin
  /// down the flush triggers; it is not a hot-path API (walks all buffers).
  size_t batched_pending() const;

  /// Flush every thread's admission buffer to the composition pool (the
  /// EOT trigger runs this; Quiesce loops it until the cascade dies out).
  /// Returns the number of occurrences dispatched.
  size_t FlushBatches();

 private:
  /// Immutable per-type dispatch state. Never mutated after publication —
  /// writers clone, edit the clone, and republish the enclosing snapshot.
  struct DispatchTable {
    const EventDescriptor* desc = nullptr;
    std::vector<EventCallback> listeners;
    std::vector<Compositor*> downstream;  // compositors fed by this type
    // Relative temporal events anchored at this type, precomputed so the
    // steady-state Signal path never queries the registry.
    std::vector<const EventDescriptor*> relative_anchored;
    std::shared_ptr<LocalHistory> history;  // shared across republishes
    /// This type feeds a cross-txn compositor: Signal appends each
    /// occurrence to the durable event history before dispatching it.
    bool log_occurrences = false;
  };
  using DispatchTablePtr = std::shared_ptr<const DispatchTable>;

  /// One atomic load in Signal yields the whole dispatch state: the
  /// per-type tables and the flat compositor list EOT sweeps iterate.
  struct DispatchSnapshot {
    std::unordered_map<EventTypeId, DispatchTablePtr> tables;
    std::vector<Compositor*> compositors;
  };
  using SnapshotPtr = std::shared_ptr<const DispatchSnapshot>;

  /// Scalar path: one enqueue per occurrence; the table pins the downstream
  /// compositor list across republishes. Batched path: one enqueue per
  /// (admission batch, downstream compositor) — the batch is shared across
  /// the flush's tasks, and per-compositor tasks keep independent
  /// compositors stealable. Compositors outlive the manager's pools, so the
  /// raw pointer is safe in-flight.
  struct ComposeTask {
    EventOccurrencePtr occ;
    DispatchTablePtr table;
    std::shared_ptr<const EventBatch> batch;  // non-null = batched task
    Compositor* compositor = nullptr;         // batched task's target
  };

  // -- Copy-on-write publication (all require publish_mu_) ----------------

  SnapshotPtr LoadSnapshot() const {
    return dispatch_.load(std::memory_order_acquire);
  }
  /// Clone the current snapshot for mutation.
  std::shared_ptr<DispatchSnapshot> CloneSnapshot() const;
  /// Find-or-create a mutable clone of `id`'s table inside `snap`.
  DispatchTable* MutableTable(DispatchSnapshot* snap, EventTypeId id);
  void PublishSnapshot(std::shared_ptr<DispatchSnapshot> snap);

  /// Create and publish the per-type table (must not exist yet).
  void CreateManager(EventTypeId id);

  /// Deliver to one compositor and recursively signal completions.
  void Compose(Compositor* compositor, const EventOccurrencePtr& occ);

  // -- Batched pipeline (docs/EVENTS.md "Batched pipeline") ---------------

  /// Per-thread admission buffer. `mu` guards the batch itself (owner
  /// appends vs. an EOT/Quiesce flusher swapping it out); `flush_mu` is
  /// held across dispatch so two flushes of one buffer cannot reorder its
  /// batches (per-thread admission order is the order compositors see).
  struct BatchBuffer {
    std::mutex mu;
    std::mutex flush_mu;
    EventBatch batch;
  };

  /// This thread's buffer for this manager (created and registered on
  /// first use; cached in a thread-local keyed by manager identity).
  BatchBuffer* LocalBuffer();

  /// Append to the calling thread's buffer; flushes on the size trigger.
  void BatchAdmit(const EventOccurrencePtr& occ);

  /// Swap out and dispatch one buffer. Returns occurrences dispatched.
  size_t FlushBuffer(BatchBuffer* buf);

  /// Dispatch a swapped-out batch: one snapshot load, one table lookup per
  /// type run, then one pool enqueue per distinct downstream compositor
  /// (SubmitBatch — one queue lock for all of them).
  void DispatchBatch(EventBatch batch);

  /// Worker side: feed `compositor` the batch elements its event
  /// expression selects (EvalBatch), then signal completions.
  void ComposeBatch(Compositor* compositor, const EventBatch& batch);

  /// Restore a freshly created cross-txn compositor from the recovered
  /// checkpoint state and re-feed the logged tail (publish_mu_ held; the
  /// compositor is not yet published, so feeds are uncontended).
  Status RestoreAndReplay(Compositor* compositor, const EventDescriptor* desc);

  /// Downstream composition of `occ` finished: release the in-flight count
  /// that holds checkpoints off, and opportunistically auto-checkpoint.
  void FinishFeed(const EventOccurrencePtr& occ);

  void RecordHistoryFailure(const Status& status);

  void HandleTxnEnd(TxnId txn, bool committed);

  /// Milestone support.
  void OnTxnBegin(TxnId txn);

  Database* db_;
  EventManagerOptions options_;
  CompositionMode mode_ = CompositionMode::kInline;
  /// batch_mode resolved against the backend (only kWorkStealing batches).
  bool batch_enabled_ = false;
  /// All threads' admission buffers, for the EOT/Quiesce flush sweep.
  /// Owned here; thread-locals hold weak_ptrs so a dead manager's buffers
  /// never dangle.
  std::vector<std::shared_ptr<BatchBuffer>> batch_buffers_;
  mutable std::mutex batch_buffers_mu_;
  EventRegistry registry_;
  TemporalScheduler scheduler_;
  std::unique_ptr<ThreadPool> composition_pool_;  // kCentralPool backend
  std::unique_ptr<WorkStealingPool<ComposeTask>> steal_pool_;
  std::unique_ptr<ThreadPool> history_pool_;

  std::atomic<SnapshotPtr> dispatch_;
  mutable std::mutex publish_mu_;  // serializes writers; readers never take it
  // Compositor ownership (under publish_mu_); raw pointers are published in
  // snapshots. Compositors are never destroyed before the manager.
  std::unordered_map<EventTypeId, std::unique_ptr<Compositor>> compositors_;

  // Per-transaction bookkeeping, striped by txn % kTxnShards so concurrent
  // transactions stop serializing on a single mutex (the PR 4 buffer-pool
  // shard pattern).
  static constexpr size_t kTxnShards = 16;
  struct alignas(64) TxnShard {
    std::mutex mu;
    std::unordered_map<TxnId, std::vector<EventOccurrencePtr>> pending;
    // markers_reached[txn] = marker types raised in txn (milestones).
    std::unordered_map<TxnId, std::unordered_set<EventTypeId>> markers_reached;
    std::unordered_set<TxnId> active_txns;
  };
  TxnShard& ShardOf(TxnId txn) {
    return txn_shards_[static_cast<size_t>(txn) % kTxnShards];
  }
  std::array<TxnShard, kTxnShards> txn_shards_;

  // Marker bookkeeping is skipped entirely (no shard lock, no hash insert)
  // until the first milestone is defined.
  std::atomic<size_t> milestone_count_{0};

  GlobalHistory global_history_;
  std::atomic<uint64_t> signaled_{0};
  std::atomic<uint64_t> composed_{0};
  std::atomic<uint64_t> republished_{0};
  std::atomic<uint64_t> next_sequence_{1};

  // -- Durable event history ----------------------------------------------
  std::unique_ptr<EventHistoryLog> history_log_;  // null when disabled
  /// Checkpoint + tail + tombstones scanned from the WAL at construction;
  /// consumed incrementally as composites are (re)defined. Mutated only
  /// under publish_mu_.
  eventlog::RecoveredEventState recovered_;
  /// Orders occurrence appends against checkpoints: Signal logs under a
  /// shared lock, CheckpointEventState verifies quiescence under the
  /// exclusive lock, so an occurrence is never WAL-ordered before a
  /// checkpoint that missed its feed.
  mutable std::shared_mutex history_mu_;
  /// Occurrences appended to the history but not yet fully composed.
  std::atomic<uint64_t> logged_unfed_{0};
  std::atomic<uint64_t> since_checkpoint_{0};
  std::atomic<uint64_t> replayed_{0};
  /// Replayed completions (composite name, occurrence) awaiting Signal.
  std::vector<std::pair<std::string, std::shared_ptr<EventOccurrence>>>
      pending_recovered_;
  std::mutex pending_mu_;
  std::atomic<bool> recovery_pending_{false};
  mutable std::mutex status_mu_;
  Status history_status_;
};

}  // namespace reach
