#include "core/events/event_manager.h"

#include <algorithm>

#include "obs/metric_names.h"
#include "obs/pipeline_span.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace {

struct EventMetrics {
  obs::Counter* signaled;
  obs::Counter* composed;
  obs::Counter* republish;
  obs::Counter* steals;
  obs::Counter* replayed;
  obs::Gauge* queue_depth;
  obs::Histogram* batch_size;
  obs::Counter* batch_flushes;
  obs::Counter* batch_fallbacks;

  static const EventMetrics& Get() {
    static const EventMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return EventMetrics{reg.counter(obs::kEventsSignaled),
                          reg.counter(obs::kEventsComposed),
                          reg.counter(obs::kDispatchRepublish),
                          reg.counter(obs::kCompositionSteals),
                          reg.counter(obs::kEventHistoryReplayed),
                          reg.gauge(obs::kCompositionQueueDepth),
                          reg.histogram(obs::kEventsBatchSize),
                          reg.counter(obs::kEventsBatchFlushes),
                          reg.counter(obs::kEventsBatchFallbacks)};
    }();
    return m;
  }
};

}  // namespace

EventManager::EventManager(Database* db, EventManagerOptions options)
    : db_(db), options_(options), scheduler_(db->clock()) {
  mode_ = options_.async_composition ? options_.composition_mode
                                     : CompositionMode::kInline;
  dispatch_.store(std::make_shared<const DispatchSnapshot>(),
                  std::memory_order_release);
  switch (mode_) {
    case CompositionMode::kInline:
      break;
    case CompositionMode::kCentralPool:
      composition_pool_ =
          std::make_unique<ThreadPool>(options_.composition_threads);
      break;
    case CompositionMode::kWorkStealing:
      steal_pool_ = std::make_unique<WorkStealingPool<ComposeTask>>(
          options_.composition_threads, [this](ComposeTask& task) {
            if (task.batch) {
              ComposeBatch(task.compositor, *task.batch);
              return;
            }
            for (Compositor* compositor : task.table->downstream) {
              Compose(compositor, task.occ);
            }
            FinishFeed(task.occ);
          });
      steal_pool_->set_steal_callback(
          [] { EventMetrics::Get().steals->Inc(); });
      break;
  }
  batch_enabled_ =
      options_.batch_mode && mode_ == CompositionMode::kWorkStealing;
  if (options_.maintain_global_history) {
    history_pool_ = std::make_unique<ThreadPool>(1);
  }
  if (options_.durable_history && db_->storage() != nullptr) {
    Wal* wal = db_->storage()->wal();
    history_log_ = std::make_unique<EventHistoryLog>(wal, &registry_);
    // StorageManager::Open carried the surviving event records into the
    // fresh log epoch; partition them once, consume per DefineComposite.
    std::vector<WalRecord> records;
    Status st = wal->ReadAll(&records);
    if (st.ok()) {
      recovered_ = eventlog::PartitionEventRecords(records);
      if (recovered_.max_sequence > 0) {
        // Fresh sequences start past everything logged before the crash so
        // completion keys (leaf sequence tuples) never collide across it.
        next_sequence_.store(recovered_.max_sequence + 1,
                             std::memory_order_relaxed);
      }
    } else {
      RecordHistoryFailure(st);
    }
  }
  // Transaction lifecycle is always needed (compositor GC, milestones,
  // pending history flush).
  db_->bus()->Subscribe(this, SentryKind::kTxnBegin);
  db_->bus()->Subscribe(this, SentryKind::kTxnCommit);
  db_->bus()->Subscribe(this, SentryKind::kTxnAbort);
  scheduler_.Start();
}

EventManager::~EventManager() {
  scheduler_.Stop();
  // Hand buffered occurrences to the pool before shutdown — Shutdown
  // drains its queues, so nothing admitted before destruction is dropped.
  if (batch_enabled_) FlushBatches();
  if (steal_pool_) steal_pool_->Shutdown();
  if (composition_pool_) composition_pool_->Shutdown();
  if (history_pool_) history_pool_->Shutdown();
  db_->bus()->Unsubscribe(this);
}

// ---------------------------------------------------------------------------
// Snapshot publication (copy-on-write; writers hold publish_mu_)
// ---------------------------------------------------------------------------

std::shared_ptr<EventManager::DispatchSnapshot> EventManager::CloneSnapshot()
    const {
  // Shallow copy: the per-type tables are shared until a writer needs to
  // touch one (MutableTable clones that entry only).
  return std::make_shared<DispatchSnapshot>(*LoadSnapshot());
}

EventManager::DispatchTable* EventManager::MutableTable(DispatchSnapshot* snap,
                                                        EventTypeId id) {
  auto it = snap->tables.find(id);
  auto table = it == snap->tables.end()
                   ? std::make_shared<DispatchTable>()
                   : std::make_shared<DispatchTable>(*it->second);
  if (table->desc == nullptr) table->desc = registry_.Find(id);
  if (table->history == nullptr) {
    table->history = std::make_shared<LocalHistory>(options_.history_capacity);
  }
  DispatchTable* raw = table.get();
  snap->tables[id] = std::move(table);
  return raw;
}

void EventManager::PublishSnapshot(std::shared_ptr<DispatchSnapshot> snap) {
  dispatch_.store(std::move(snap), std::memory_order_release);
  republished_.fetch_add(1, std::memory_order_relaxed);
  EventMetrics::Get().republish->Inc();
}

void EventManager::CreateManager(EventTypeId id) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto snap = CloneSnapshot();
  MutableTable(snap.get(), id);
  PublishSnapshot(std::move(snap));
}

// ---------------------------------------------------------------------------
// Event type definition
// ---------------------------------------------------------------------------

Result<EventTypeId> EventManager::DefineMethodEvent(
    const std::string& name, const std::string& class_name,
    const std::string& method, bool after) {
  REACH_ASSIGN_OR_RETURN(
      EventTypeId id,
      registry_.RegisterMethodEvent(name, class_name, method, after));
  CreateManager(id);
  db_->bus()->Subscribe(
      this, after ? SentryKind::kMethodAfter : SentryKind::kMethodBefore,
      class_name, method);
  return id;
}

Result<EventTypeId> EventManager::DefineStateChangeEvent(
    const std::string& name, const std::string& class_name,
    const std::string& attr) {
  REACH_ASSIGN_OR_RETURN(
      EventTypeId id,
      registry_.RegisterStateChangeEvent(name, class_name, attr));
  CreateManager(id);
  db_->bus()->Subscribe(this, SentryKind::kStateChange, class_name, attr);
  return id;
}

Result<EventTypeId> EventManager::DefineFlowEvent(
    const std::string& name, SentryKind kind, const std::string& class_name) {
  REACH_ASSIGN_OR_RETURN(EventTypeId id,
                         registry_.RegisterFlowEvent(name, kind, class_name));
  CreateManager(id);
  switch (kind) {
    case SentryKind::kTxnBegin:
    case SentryKind::kTxnCommit:
    case SentryKind::kTxnAbort:
      break;  // already subscribed at construction
    default:
      db_->bus()->Subscribe(this, kind, class_name, "");
      break;
  }
  return id;
}

Result<EventTypeId> EventManager::DefineAbsoluteEvent(const std::string& name,
                                                      Timestamp fire_at) {
  REACH_ASSIGN_OR_RETURN(EventTypeId id,
                         registry_.RegisterAbsoluteEvent(name, fire_at));
  CreateManager(id);
  scheduler_.ScheduleAt(fire_at, [this, id](Timestamp t) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = id;
    occ->timestamp = t;
    Signal(std::move(occ));
  });
  return id;
}

Result<EventTypeId> EventManager::DefinePeriodicEvent(const std::string& name,
                                                      Timestamp period_us) {
  REACH_ASSIGN_OR_RETURN(EventTypeId id,
                         registry_.RegisterPeriodicEvent(name, period_us));
  CreateManager(id);
  scheduler_.SchedulePeriodic(period_us, [this, id](Timestamp t) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = id;
    occ->timestamp = t;
    Signal(std::move(occ));
  });
  return id;
}

Result<EventTypeId> EventManager::DefineRelativeEvent(const std::string& name,
                                                      EventTypeId anchor,
                                                      Timestamp delay_us) {
  REACH_ASSIGN_OR_RETURN(
      EventTypeId id, registry_.RegisterRelativeEvent(name, anchor, delay_us));
  // Publish the new type's table and refresh the anchor's precomputed
  // relative-event list in the same snapshot; wiring happens in Signal via
  // the table's relative_anchored entries.
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto snap = CloneSnapshot();
  MutableTable(snap.get(), id);
  MutableTable(snap.get(), anchor)->relative_anchored =
      registry_.RelativeEventsAnchoredAt(anchor);
  PublishSnapshot(std::move(snap));
  return id;
}

Result<EventTypeId> EventManager::DefineMilestone(const std::string& name,
                                                  EventTypeId marker,
                                                  Timestamp deadline_us) {
  REACH_ASSIGN_OR_RETURN(EventTypeId id,
                         registry_.RegisterMilestone(name, marker,
                                                     deadline_us));
  CreateManager(id);
  // Opens the marker-bookkeeping gate in Signal: until the first milestone
  // exists, occurrences skip the per-txn marker insert (and its shard lock)
  // entirely.
  milestone_count_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Result<EventTypeId> EventManager::DefineComposite(const std::string& name,
                                                  EventExprPtr expr,
                                                  CompositeScope scope,
                                                  ConsumptionPolicy policy,
                                                  Timestamp validity_us) {
  REACH_ASSIGN_OR_RETURN(
      EventTypeId id,
      registry_.RegisterComposite(name, expr, scope, policy, validity_us));
  const EventDescriptor* desc = registry_.Find(id);
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto compositor = std::make_unique<Compositor>(desc);
  Compositor* raw = compositor.get();
  compositors_[id] = std::move(compositor);
  const bool durable =
      history_log_ != nullptr && scope == CompositeScope::kCrossTxn;
  if (durable) {
    // Rebuild pre-crash partial state before the compositor sees live
    // occurrences, and only then arm the expiry-tombstone listener (replay
    // must not re-log what it replays).
    REACH_RETURN_IF_ERROR(RestoreAndReplay(raw, desc));
    std::string cname = desc->name;
    raw->set_gc_listener([this, cname](Timestamp cutoff, uint64_t) {
      Status st = history_log_->LogExpiry(cname, cutoff);
      if (!st.ok()) RecordHistoryFailure(st);
    });
  }
  auto snap = CloneSnapshot();
  MutableTable(snap.get(), id);
  for (EventTypeId leaf : desc->expr->LeafTypes()) {
    DispatchTable* leaf_table = MutableTable(snap.get(), leaf);
    leaf_table->downstream.push_back(raw);
    if (durable) leaf_table->log_occurrences = true;
  }
  snap->compositors.push_back(raw);
  PublishSnapshot(std::move(snap));
  return id;
}

void EventManager::AddEventListener(EventTypeId type, EventCallback callback) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto snap = CloneSnapshot();
  MutableTable(snap.get(), type)->listeners.push_back(std::move(callback));
  PublishSnapshot(std::move(snap));
}

// ---------------------------------------------------------------------------
// Detection / composition hot path
// ---------------------------------------------------------------------------

void EventManager::Compose(Compositor* compositor,
                           const EventOccurrencePtr& occ) {
  std::vector<EventOccurrencePtr> completions;
  compositor->Feed(occ, &completions);
  const EventDescriptor* desc = compositor->descriptor();
  for (auto& c : completions) {
    composed_.fetch_add(1, std::memory_order_relaxed);
    EventMetrics::Get().composed->Inc();
    if (history_log_ && desc->scope == CompositeScope::kCrossTxn) {
      // Tombstone first: a replay after a crash here re-detects the
      // completion instead of double-firing it.
      Status st = history_log_->LogConsumption(desc->name, *c);
      if (!st.ok()) RecordHistoryFailure(st);
    }
    // Composition latency: from detection of the leaf that completed the
    // composite (this occ) to the completion being raised — includes the
    // async composition queue wait.
    obs::RecordSpanSince(obs::PipelineSpans::Get().signal_to_compose,
                         occ->detect_ns);
    Signal(std::const_pointer_cast<EventOccurrence>(c));
  }
}

// ---------------------------------------------------------------------------
// Batched pipeline (docs/EVENTS.md "Batched pipeline")
// ---------------------------------------------------------------------------

EventManager::BatchBuffer* EventManager::LocalBuffer() {
  // One buffer per (thread, manager). The manager owns the buffer; the
  // thread-local holds a weak_ptr, so a manager dying (and freeing its
  // buffers) leaves only an expired entry here — including when a new
  // manager reuses the address (the expired check defeats ABA).
  thread_local std::unordered_map<const EventManager*,
                                  std::weak_ptr<BatchBuffer>>
      cache;
  auto& slot = cache[this];
  if (auto live = slot.lock()) return live.get();
  auto buf = std::make_shared<BatchBuffer>();
  {
    std::lock_guard<std::mutex> lock(batch_buffers_mu_);
    batch_buffers_.push_back(buf);
  }
  if (cache.size() > 64) {
    for (auto it = cache.begin(); it != cache.end();) {
      it = (it->first != this && it->second.expired()) ? cache.erase(it)
                                                       : std::next(it);
    }
  }
  slot = buf;
  return buf.get();
}

void EventManager::BatchAdmit(const EventOccurrencePtr& occ) {
  BatchBuffer* buf = LocalBuffer();
  size_t size;
  {
    std::lock_guard<std::mutex> lock(buf->mu);
    if (buf->batch.occs.capacity() == 0) {
      buf->batch.reserve(options_.batch_max_events);
    }
    buf->batch.push_back(occ);
    size = buf->batch.size();
  }
  if (size >= options_.batch_max_events) FlushBuffer(buf);  // size trigger
}

size_t EventManager::FlushBuffer(BatchBuffer* buf) {
  // flush_mu is held across dispatch: two concurrent flushes of one buffer
  // (owner's size trigger vs. another thread's EOT sweep) dispatch their
  // swapped-out batches strictly in swap order, preserving this thread's
  // admission order end to end.
  std::lock_guard<std::mutex> flush_lock(buf->flush_mu);
  EventBatch local;
  {
    std::lock_guard<std::mutex> lock(buf->mu);
    if (buf->batch.empty()) return 0;
    local.swap(buf->batch);
  }
  const size_t n = local.size();
  DispatchBatch(std::move(local));
  return n;
}

size_t EventManager::FlushBatches() {
  std::vector<std::shared_ptr<BatchBuffer>> bufs;
  {
    std::lock_guard<std::mutex> lock(batch_buffers_mu_);
    bufs = batch_buffers_;
  }
  size_t n = 0;
  for (const auto& buf : bufs) n += FlushBuffer(buf.get());
  return n;
}

size_t EventManager::batched_pending() const {
  std::vector<std::shared_ptr<BatchBuffer>> bufs;
  {
    std::lock_guard<std::mutex> lock(batch_buffers_mu_);
    bufs = batch_buffers_;
  }
  size_t n = 0;
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    n += buf->batch.size();
  }
  return n;
}

void EventManager::DispatchBatch(EventBatch batch) {
  const EventMetrics& metrics = EventMetrics::Get();
  metrics.batch_flushes->Inc();
  metrics.batch_size->Record(batch.size());
  SnapshotPtr snap = LoadSnapshot();
  auto shared = std::make_shared<const EventBatch>(std::move(batch));
  // Distinct downstream compositors in first-appearance order — one table
  // lookup per type run, linear dedup (a batch spans a handful of
  // compositors; hashing would cost more than it saves).
  std::vector<Compositor*> targets;
  shared->ForEachTypeRun([&](size_t i, size_t) {
    auto it = snap->tables.find(shared->types[i]);
    if (it == snap->tables.end()) return;
    for (Compositor* c : it->second->downstream) {
      if (std::find(targets.begin(), targets.end(), c) == targets.end()) {
        targets.push_back(c);
      }
    }
  });
  // One task per compositor, all enqueued under one queue lock: independent
  // compositors stay stealable while the whole flush costs one enqueue.
  std::vector<ComposeTask> tasks;
  tasks.reserve(targets.size());
  for (Compositor* c : targets) {
    ComposeTask task;
    task.batch = shared;
    task.compositor = c;
    tasks.push_back(std::move(task));
  }
  steal_pool_->SubmitBatch(std::move(tasks));
  metrics.queue_depth->Set(static_cast<int64_t>(steal_pool_->QueueDepth()));
}

void EventManager::ComposeBatch(Compositor* compositor,
                                const EventBatch& batch) {
  // Select this compositor's leaf occurrences with one monomorphic scan of
  // the type-id array, then feed them as runs (one stripe lock per run).
  thread_local std::vector<uint32_t> scratch;
  scratch.clear();
  const EventDescriptor* desc = compositor->descriptor();
  desc->expr->EvalBatch(batch.types.data(), batch.size(), &scratch);
  if (scratch.empty()) return;
  std::vector<EventOccurrencePtr> completions;
  compositor->FeedBatch(batch, scratch.data(), scratch.size(), &completions);
  for (auto& c : completions) {
    composed_.fetch_add(1, std::memory_order_relaxed);
    EventMetrics::Get().composed->Inc();
    if (history_log_ && desc->scope == CompositeScope::kCrossTxn) {
      Status st = history_log_->LogConsumption(desc->name, *c);
      if (!st.ok()) RecordHistoryFailure(st);
    }
    // Composition latency from the terminating leaf's detection stamp (the
    // last constituent is the occurrence that completed the composite).
    obs::RecordSpanSince(
        obs::PipelineSpans::Get().signal_to_compose,
        c->constituents.empty() ? 0 : c->constituents.back()->detect_ns);
    Signal(std::const_pointer_cast<EventOccurrence>(c));
  }
}

void EventManager::Signal(std::shared_ptr<EventOccurrence> occ) {
  if (recovery_pending_.load(std::memory_order_acquire)) CompleteRecovery();
  occ->sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  if (occ->timestamp == 0) occ->timestamp = db_->clock()->Now();
  // Pipeline span bookkeeping: an occurrence arriving with a detection
  // stamp (sentry path) closes the sentry->signal stage; one without
  // (temporal, composite, explicit Raise) starts its span here.
  uint64_t signal_ns = 0;
  if (obs::MetricsEnabled()) {
    signal_ns = obs::NowNanos();
    if (occ->detect_ns != 0) {
      obs::PipelineSpans::Get().sentry_to_signal->RecordAlways(
          signal_ns > occ->detect_ns ? signal_ns - occ->detect_ns : 0);
    } else {
      occ->detect_ns = signal_ns;
    }
  }
  EventOccurrencePtr shared = occ;
  signaled_.fetch_add(1, std::memory_order_relaxed);
  EventMetrics::Get().signaled->Inc();

  // Steady state: one atomic snapshot load, zero allocations, no lock. The
  // snapshot pins every table (and its listener/downstream vectors) for the
  // duration of this call; writers republish without disturbing us.
  SnapshotPtr snap = LoadSnapshot();
  auto it = snap->tables.find(shared->type);
  if (it == snap->tables.end()) return;  // unregistered type
  const DispatchTablePtr& table = it->second;
  table->history->Append(shared);

  // Durable history: append before any listener or compositor sees the
  // occurrence, so a crash after this point replays it. The shared lock
  // orders the append against checkpoints (history_mu_ doc); the in-flight
  // count holds checkpoints off until downstream composition finishes.
  if (history_log_ && table->log_occurrences) {
    std::shared_lock<std::shared_mutex> history_lock(history_mu_);
    logged_unfed_.fetch_add(1, std::memory_order_acq_rel);
    Status st = history_log_->LogOccurrence(*shared);
    if (st.ok()) {
      occ->history_logged = true;
      since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
    } else {
      logged_unfed_.fetch_sub(1, std::memory_order_acq_rel);
      RecordHistoryFailure(st);
    }
  }

  // Track per-transaction events for the post-commit global history merge
  // and (when any milestone is defined) marker bookkeeping — striped by
  // txn, and skipped entirely when neither consumer exists.
  if (shared->txn != kNoTxn) {
    const bool track_markers =
        milestone_count_.load(std::memory_order_relaxed) > 0;
    if (options_.maintain_global_history || track_markers) {
      TxnShard& shard = ShardOf(shared->txn);
      std::lock_guard<std::mutex> lock(shard.mu);
      if (options_.maintain_global_history) {
        shard.pending[shared->txn].push_back(shared);
      }
      if (track_markers) {
        shard.markers_reached[shared->txn].insert(shared->type);
      }
    }
  } else if (options_.maintain_global_history && history_pool_) {
    // Temporal / cross-txn composite events enter the history directly.
    history_pool_->Submit([this, shared] { global_history_.Merge({shared}); });
  }

  // Batched pipeline (docs/EVENTS.md "Batched pipeline"): an occurrence
  // whose only downstream work is asynchronous composition joins this
  // thread's admission batch instead of enqueuing individually. Everything
  // needing synchronous or individually-ordered treatment — listener-
  // bearing types (immediate coupling), durable cross-txn participants
  // (the history log is written per occurrence), temporal events, and
  // composite completions — stays on the scalar path below, after flushing
  // our buffer so the scalar dispatch cannot overtake occurrences this
  // thread already admitted.
  if (batch_enabled_ && !table->downstream.empty()) {
    const bool batchable =
        table->listeners.empty() && table->relative_anchored.empty() &&
        !table->log_occurrences && shared->txn != kNoTxn &&
        shared->constituents.empty();
    if (batchable) {
      BatchAdmit(shared);
      return;
    }
    EventMetrics::Get().batch_fallbacks->Inc();
    FlushBuffer(LocalBuffer());
  }

  // 1. Fire the rules registered with this ECA-manager (synchronous: the
  //    go-ahead for the application waits on immediate rules only).
  for (const EventCallback& cb : table->listeners) cb(shared);
  if (signal_ns != 0 && !table->listeners.empty()) {
    // Go-ahead latency: what the detecting thread waited for synchronous
    // listener (immediate rule) processing.
    obs::RecordSpanSince(obs::PipelineSpans::Get().signal_to_dispatch,
                         signal_ns);
  }

  // 2. Propagate to the compositors of composite events containing this
  //    type — asynchronously unless configured inline. One enqueue per
  //    occurrence; the task carries the downstream list via its table.
  if (!table->downstream.empty()) {
    switch (mode_) {
      case CompositionMode::kInline:
        for (Compositor* compositor : table->downstream) {
          Compose(compositor, shared);
        }
        FinishFeed(shared);
        break;
      case CompositionMode::kCentralPool:
        composition_pool_->Submit([this, shared, table = table] {
          for (Compositor* compositor : table->downstream) {
            Compose(compositor, shared);
          }
          FinishFeed(shared);
        });
        break;
      case CompositionMode::kWorkStealing:
        steal_pool_->Submit(ComposeTask{shared, table});
        EventMetrics::Get().queue_depth->Set(
            static_cast<int64_t>(steal_pool_->QueueDepth()));
        break;
    }
  } else {
    FinishFeed(shared);
  }

  // 3. Relative temporal events anchored at this type (precomputed in the
  //    table — the registry is not consulted on the hot path).
  for (const EventDescriptor* rel : table->relative_anchored) {
    EventTypeId rel_id = rel->id;
    scheduler_.ScheduleAt(shared->timestamp + rel->delay_us,
                          [this, rel_id](Timestamp t) {
                            auto rocc = std::make_shared<EventOccurrence>();
                            rocc->type = rel_id;
                            rocc->timestamp = t;
                            Signal(std::move(rocc));
                          });
  }
}

Status EventManager::Raise(EventTypeId type, TxnId txn,
                           std::vector<Value> params) {
  if (registry_.Find(type) == nullptr) {
    return Status::NotFound("event type " + std::to_string(type));
  }
  auto occ = std::make_shared<EventOccurrence>();
  occ->type = type;
  occ->txn = txn == kNoTxn ? kNoTxn : db_->txns()->RootOf(txn);
  occ->params = std::move(params);
  Signal(std::move(occ));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Transaction lifecycle
// ---------------------------------------------------------------------------

void EventManager::OnTxnBegin(TxnId txn) {
  // Without milestones nothing consumes the active set or markers; skip
  // the bookkeeping (HandleTxnEnd's erases tolerate absence).
  if (milestone_count_.load(std::memory_order_relaxed) == 0) return;
  {
    TxnShard& shard = ShardOf(txn);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.active_txns.insert(txn);
  }
  // Arm milestone timers for this transaction.
  for (const EventDescriptor* m : registry_.Milestones()) {
    EventTypeId milestone_id = m->id;
    EventTypeId marker = m->marker;
    scheduler_.ScheduleAt(
        db_->clock()->Now() + m->deadline_us,
        [this, milestone_id, marker, txn](Timestamp t) {
          bool missed = false;
          {
            TxnShard& shard = ShardOf(txn);
            std::lock_guard<std::mutex> lock(shard.mu);
            if (shard.active_txns.contains(txn)) {
              auto it = shard.markers_reached.find(txn);
              missed = (it == shard.markers_reached.end()) ||
                       !it->second.contains(marker);
            }
          }
          if (missed) {
            auto occ = std::make_shared<EventOccurrence>();
            occ->type = milestone_id;
            occ->timestamp = t;
            occ->params = {Value(static_cast<int64_t>(txn))};
            Signal(std::move(occ));
          }
        });
  }
}

void EventManager::HandleTxnEnd(TxnId txn, bool committed) {
  std::vector<EventOccurrencePtr> events;
  {
    TxnShard& shard = ShardOf(txn);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.active_txns.erase(txn);
    shard.markers_reached.erase(txn);
    auto it = shard.pending.find(txn);
    if (it != shard.pending.end()) {
      events = std::move(it->second);
      shard.pending.erase(it);
    }
  }
  // Single-transaction composition state dies with the transaction (§3.3).
  SnapshotPtr snap = LoadSnapshot();
  for (Compositor* compositor : snap->compositors) compositor->OnTxnEnd(txn);
  // Background merge into the global history (committed events only).
  if (committed && !events.empty() && history_pool_) {
    history_pool_->Submit([this, evts = std::move(events)]() mutable {
      global_history_.Merge(std::move(evts));
    });
  }
}

void EventManager::OnEvent(const SentryEvent& event) {
  switch (event.kind) {
    case SentryKind::kTxnBegin:
      // Milestones and life-span tracking apply to top-level transactions
      // only (a begin event with a parent parameter is a subtransaction).
      if (event.args.empty()) OnTxnBegin(event.txn);
      break;
    case SentryKind::kTxnCommit:
      // EOT trigger: hand every buffered occurrence to the composition
      // pool before the end-of-transaction sweep discards single-txn
      // automaton instances — exactly when the scalar path would already
      // have enqueued them.
      if (batch_enabled_) FlushBatches();
      HandleTxnEnd(event.txn, /*committed=*/true);
      break;
    case SentryKind::kTxnAbort:
      if (batch_enabled_) FlushBatches();
      HandleTxnEnd(event.txn, /*committed=*/false);
      break;
    default:
      break;
  }
  // Any registered DB event type matching this announcement fires. For txn
  // events the class/member keys are empty.
  EventTypeId type =
      registry_.FindDbEvent(event.kind, event.class_name, event.member);
  if (type == kInvalidEventType && !event.class_name.empty()) {
    // Allow class-wildcard flow events (e.g. "any persist").
    type = registry_.FindDbEvent(event.kind, "", "");
  }
  if (type == kInvalidEventType) return;
  auto occ = std::make_shared<EventOccurrence>();
  occ->type = type;
  occ->timestamp = event.timestamp;
  occ->detect_ns = event.detect_ns;
  // Occurrences carry the ROOT transaction: rule subtransactions raise
  // events on behalf of the top-level transaction they belong to, and all
  // coupling/life-span semantics are defined against that root.
  occ->txn = event.txn == kNoTxn ? kNoTxn : db_->txns()->RootOf(event.txn);
  occ->source = event.oid;
  occ->params = event.args;
  if (event.kind == SentryKind::kMethodAfter && !event.result.is_null()) {
    occ->params.push_back(event.result);
  }
  Signal(std::move(occ));
}

void EventManager::Quiesce() {
  // Recovered completions first — they may enqueue composition work.
  CompleteRecovery();
  // Composition next (its completions may enqueue history merges). Batched
  // admission makes this a loop: workers running listener callbacks can
  // admit fresh occurrences into their own buffers (a rule raising a
  // primitive event), so flush-then-drain repeats until no buffer refills.
  for (;;) {
    const size_t flushed = batch_enabled_ ? FlushBatches() : 0;
    if (steal_pool_) steal_pool_->WaitIdle();
    if (composition_pool_) composition_pool_->WaitIdle();
    if (flushed == 0 && (!batch_enabled_ || batched_pending() == 0)) break;
  }
  if (history_pool_) history_pool_->WaitIdle();
}

// ---------------------------------------------------------------------------
// Durable event history
// ---------------------------------------------------------------------------

Status EventManager::RestoreAndReplay(Compositor* compositor,
                                      const EventDescriptor* desc) {
  REACH_FAULT_POINT(faults::kEventHistoryReplay);
  auto state_it = recovered_.checkpoint_states.find(desc->name);
  if (state_it != recovered_.checkpoint_states.end()) {
    REACH_RETURN_IF_ERROR(
        compositor->RestoreState(state_it->second, &registry_));
  }
  if (!recovered_.tail.empty()) {
    std::unordered_set<EventTypeId> leaves;
    for (EventTypeId t : desc->expr->LeafTypes()) leaves.insert(t);
    for (const std::string& payload : recovered_.tail) {
      size_t pos = 0;
      auto occ = eventlog::DecodeOccurrence(payload, &pos, &registry_);
      if (!occ.ok()) continue;  // counted malformed at partition time
      if (leaves.find((*occ)->type) == leaves.end()) continue;
      // At or below the restored feed floor = already reflected in the
      // checkpointed node state.
      if ((*occ)->sequence <= compositor->last_fed_seq()) continue;
      std::vector<EventOccurrencePtr> completions;
      EventOccurrencePtr fed = *occ;
      compositor->Feed(fed, &completions);
      replayed_.fetch_add(1, std::memory_order_relaxed);
      EventMetrics::Get().replayed->Inc();
      for (auto& c : completions) {
        if (recovered_.consumed.count(
                eventlog::CompletionKey(desc->name, *c)) != 0) {
          continue;  // fired before the crash; tombstoned
        }
        std::lock_guard<std::mutex> plock(pending_mu_);
        pending_recovered_.emplace_back(
            desc->name, std::const_pointer_cast<EventOccurrence>(c));
        recovery_pending_.store(true, std::memory_order_release);
      }
    }
  }
  // Validity cutoffs: first the largest explicit cutoff logged before the
  // crash, then the downtime itself — partials whose interval lapsed while
  // the process was down must not survive the restart (§3.3).
  auto cutoff_it = recovered_.expiry_cutoffs.find(desc->name);
  if (cutoff_it != recovered_.expiry_cutoffs.end()) {
    compositor->ExpireOlderThan(cutoff_it->second);
  }
  if (desc->validity_us > 0) {
    compositor->ExpireOlderThan(db_->clock()->Now() - desc->validity_us);
  }
  return Status::OK();
}

void EventManager::CompleteRecovery() {
  if (!recovery_pending_.exchange(false, std::memory_order_acq_rel)) return;
  std::vector<std::pair<std::string, std::shared_ptr<EventOccurrence>>>
      pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending.swap(pending_recovered_);
  }
  for (auto& [name, completion] : pending) {
    if (history_log_) {
      Status st = history_log_->LogConsumption(name, *completion);
      if (!st.ok()) RecordHistoryFailure(st);
    }
    Signal(std::move(completion));
  }
}

Status EventManager::CheckpointEventState() {
  if (!history_log_) return Status::OK();
  std::unique_lock<std::shared_mutex> history_lock(history_mu_);
  if (logged_unfed_.load(std::memory_order_acquire) != 0) {
    return Status::Busy(
        "logged occurrences still composing; event checkpoint deferred");
  }
  if (recovery_pending_.load(std::memory_order_acquire)) {
    return Status::Busy(
        "recovered completions not yet signalled; event checkpoint deferred");
  }
  std::vector<std::pair<std::string, std::string>> states;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    for (const auto& [id, compositor] : compositors_) {
      const EventDescriptor* desc = compositor->descriptor();
      if (desc->scope != CompositeScope::kCrossTxn) continue;
      states.emplace_back(desc->name,
                          compositor->SnapshotState(&registry_));
    }
  }
  if (states.empty() && history_log_->logged() == 0) {
    // No cross-txn compositors and nothing logged this incarnation: an
    // empty checkpoint would restore nothing but still survive log
    // truncation, making every reopen scan a record for no reason (and a
    // pre-existing tail, if any, is better preserved than superseded).
    return Status::OK();
  }
  Status st = history_log_->LogCheckpoint(eventlog::EncodeCheckpoint(
      next_sequence_.load(std::memory_order_relaxed) - 1, states));
  if (st.ok()) {
    since_checkpoint_.store(0, std::memory_order_relaxed);
  } else {
    RecordHistoryFailure(st);
  }
  return st;
}

Status EventManager::FlushEventLog() {
  return history_log_ ? history_log_->Flush() : Status::OK();
}

void EventManager::FinishFeed(const EventOccurrencePtr& occ) {
  if (!occ->history_logged) return;
  logged_unfed_.fetch_sub(1, std::memory_order_acq_rel);
  if (options_.history_checkpoint_interval > 0 &&
      since_checkpoint_.load(std::memory_order_relaxed) >=
          options_.history_checkpoint_interval) {
    // Best-effort: Busy (another feed raced in) or an IO error just defers
    // to the next quiescent moment; nothing is lost, the tail grows.
    (void)CheckpointEventState();
  }
}

void EventManager::RecordHistoryFailure(const Status& status) {
  std::lock_guard<std::mutex> lock(status_mu_);
  history_status_ = status;
}

Status EventManager::history_status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return history_status_;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

const LocalHistory* EventManager::HistoryOf(EventTypeId type) const {
  SnapshotPtr snap = LoadSnapshot();
  auto it = snap->tables.find(type);
  return it == snap->tables.end() ? nullptr : it->second->history.get();
}

const Compositor* EventManager::CompositorOf(EventTypeId composite) const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto it = compositors_.find(composite);
  return it == compositors_.end() ? nullptr : it->second.get();
}

size_t EventManager::LivePartials() const {
  SnapshotPtr snap = LoadSnapshot();
  size_t n = 0;
  for (const Compositor* c : snap->compositors) n += c->LivePartialCount();
  return n;
}

}  // namespace reach
