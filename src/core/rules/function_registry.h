// FunctionRegistry: the rule language maps each rule onto one rule object
// plus two C functions for condition evaluation and action execution,
// archived in a shared library and extracted by the naming convention
// "<Rule>Cond" / "<Rule>Action" (§6.1). This registry is the in-process
// equivalent of that shared library.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rules/rule.h"

namespace reach {

class FunctionRegistry {
 public:
  Status RegisterCondition(const std::string& name, ConditionFn fn);
  Status RegisterAction(const std::string& name, ActionFn fn);

  /// Exact-name lookup. Null-valued functions mean "not registered".
  ConditionFn FindCondition(const std::string& name) const;
  ActionFn FindAction(const std::string& name) const;

  /// Naming-convention lookup for rule `rule_name`: "<rule_name>Cond" /
  /// "<rule_name>Action".
  ConditionFn ConditionForRule(const std::string& rule_name) const;
  ActionFn ActionForRule(const std::string& rule_name) const;

  std::vector<std::string> ConditionNames() const;
  std::vector<std::string> ActionNames() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, ConditionFn> conditions_;
  std::unordered_map<std::string, ActionFn> actions_;
};

}  // namespace reach
