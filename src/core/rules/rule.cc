#include "core/rules/rule.h"

namespace reach {

const char* CouplingModeName(CouplingMode mode) {
  switch (mode) {
    case CouplingMode::kImmediate: return "immediate";
    case CouplingMode::kDeferred: return "deferred";
    case CouplingMode::kDetached: return "detached";
    case CouplingMode::kParallelCausallyDependent: return "par.caus.dep";
    case CouplingMode::kSequentialCausallyDependent: return "seq.caus.dep";
    case CouplingMode::kExclusiveCausallyDependent: return "exc.caus.dep";
  }
  return "?";
}

Status CheckCoupling(EventCategory category, CouplingMode mode) {
  switch (category) {
    case EventCategory::kSingleMethod:
      // Single-method events relate to their raising transaction, so every
      // coupling mode is allowed.
      return Status::OK();

    case EventCategory::kPurelyTemporal:
      // Temporal events occur independently of any transaction: only plain
      // detached execution is well-defined.
      if (mode == CouplingMode::kDetached) return Status::OK();
      return Status::NotSupported(
          "rules on purely temporal events may only run detached "
          "(no triggering transaction exists; Table 1)");

    case EventCategory::kCompositeSingleTx:
      if (mode == CouplingMode::kImmediate) {
        return Status::NotSupported(
            "immediate coupling with composite events would stall every "
            "method event waiting for negative acknowledgements from the "
            "event composers (Table 1 / §6.4 design decision)");
      }
      return Status::OK();

    case EventCategory::kCompositeMultiTx:
      if (mode == CouplingMode::kImmediate || mode == CouplingMode::kDeferred) {
        return Status::NotSupported(
            "immediate/deferred coupling is ambiguous for composite events "
            "spanning transactions (Table 1)");
      }
      return Status::OK();
  }
  return Status::Internal("unknown event category");
}

}  // namespace reach
