// Rule execution tracing: a bounded in-memory log of every rule firing
// with its trigger, coupling mode, condition outcome, and duration. The
// debugging aid the paper's related work points at (DEAR [DJ93]); enable
// it while developing rule sets, watch for unexpected cascades.
#pragma once

#include <atomic>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/rules/rule.h"

namespace reach {

struct RuleTraceEntry {
  std::string rule_name;
  RuleId rule = kInvalidRuleId;
  EventTypeId event = kInvalidEventType;
  uint64_t occurrence_seq = 0;
  CouplingMode mode = CouplingMode::kImmediate;
  bool action_only = false;     // C-A-split action execution
  bool condition_true = false;
  bool action_ran = false;
  bool succeeded = false;
  std::string error;            // empty when succeeded
  TxnId trigger_txn = kNoTxn;
  TxnId rule_txn = kNoTxn;
  int64_t duration_us = 0;

  std::string ToString() const;
};

class RuleTrace {
 public:
  explicit RuleTrace(size_t capacity = 1024) : capacity_(capacity) {}

  /// The gate is atomic so the hot path (every rule execution checks it)
  /// never touches the ring mutex when tracing is off.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Append(RuleTraceEntry entry);

  std::vector<RuleTraceEntry> Snapshot() const;

  /// Entries for one rule, oldest first.
  std::vector<RuleTraceEntry> ForRule(const std::string& rule_name) const;

  void Clear();
  size_t size() const;
  uint64_t total_recorded() const;

 private:
  size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards ring_ and total_ only
  std::deque<RuleTraceEntry> ring_;
  uint64_t total_ = 0;
};

}  // namespace reach
