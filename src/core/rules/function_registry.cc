#include "core/rules/function_registry.h"

namespace reach {

Status FunctionRegistry::RegisterCondition(const std::string& name,
                                           ConditionFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (conditions_.contains(name)) {
    return Status::AlreadyExists("condition function " + name);
  }
  conditions_[name] = std::move(fn);
  return Status::OK();
}

Status FunctionRegistry::RegisterAction(const std::string& name, ActionFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (actions_.contains(name)) {
    return Status::AlreadyExists("action function " + name);
  }
  actions_[name] = std::move(fn);
  return Status::OK();
}

ConditionFn FunctionRegistry::FindCondition(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conditions_.find(name);
  return it == conditions_.end() ? nullptr : it->second;
}

ActionFn FunctionRegistry::FindAction(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = actions_.find(name);
  return it == actions_.end() ? nullptr : it->second;
}

ConditionFn FunctionRegistry::ConditionForRule(
    const std::string& rule_name) const {
  return FindCondition(rule_name + "Cond");
}

ActionFn FunctionRegistry::ActionForRule(const std::string& rule_name) const {
  return FindAction(rule_name + "Action");
}

std::vector<std::string> FunctionRegistry::ConditionNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : conditions_) out.push_back(name);
  return out;
}

std::vector<std::string> FunctionRegistry::ActionNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : actions_) out.push_back(name);
  return out;
}

}  // namespace reach
