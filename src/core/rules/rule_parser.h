// Parser for the REACH rule-definition language (§6.1):
//
//   rule WaterLevel {
//     prio 5;
//     decl River *river, int x, Reactor *reactor named "BlockA";
//     event after river->updateWaterLevel(x);
//     cond imm x < 37 and river.waterTemp > 24.5
//              and reactor.heatOutput > 1000000;
//     action imm reactor->reducePlannedPower(0.05);
//   };
//
// Differences from the paper's C++-embedded syntax, by design:
//  * conditions are predicate expressions over declared variables
//    (attribute access `var.attr` instead of getter calls) or a reference
//    to a registered "<Rule>Cond" function (empty cond body);
//  * actions are `invoke var->method(args)`, `set var.attr = expr`,
//    `call <Fn>`, `abort`, or (empty) the registered "<Rule>Action".
//
// Grammar:
//   rule    := "rule" IDENT "{" clause* "}" [";"]
//   clause  := "prio" INT ";"
//            | "decl" decl ("," decl)* ";"
//            | "event" eventspec ";"
//            | "cond" mode [expr] ";"
//            | "action" mode [stmt] ";"
//   decl    := IDENT ["*"] IDENT ["named" STRING]      // Class *var
//            | ("int"|"double"|"string"|"bool") IDENT  // event parameter
//   mode    := "imm"|"immediate"|"deferred"|"detached"
//            | "parallel"|"sequential"|"exclusive"
//   eventspec := ("after"|"before") IDENT "->" IDENT "(" [IDENT,*] ")"
//            | "set" IDENT "." IDENT
//            | ("persist"|"delete") IDENT
//            | ("commit"|"abort"|"begin")
//            | "every" INT ("us"|"ms"|"s"|"min")
//            | IDENT                                    // registered event
//            | compexpr ["within" INT unit] ["using" policy] ["same" "object"]
//   compexpr := "seq" "(" evref "," evref ")"
//            | "both" "(" evref "," evref ")"           // conjunction
//            | "any" "(" evref "," evref ")"            // disjunction
//            | "without" "(" evref "," evref "," evref ")"  // negation
//            | "closure" "(" evref "," evref ")"
//            | "times" "(" INT "," evref ")"            // history
//   evref   := IDENT | compexpr
//   policy  := "recent" | "chronicle" | "continuous" | "cumulative"
//
// A composite without "within" is single-transaction scoped; "within"
// makes it cross-transaction with that validity interval. "same object"
// restricts the top-level operator to occurrences on one receiver.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "core/events/event_manager.h"
#include "core/rules/function_registry.h"
#include "core/rules/rule_engine.h"

namespace reach {

class RuleParser {
 public:
  RuleParser(EventManager* events, RuleEngine* engine,
             FunctionRegistry* functions, TypeSystem* types)
      : events_(events),
        engine_(engine),
        functions_(functions),
        types_(types) {}

  /// Parse every `rule ...` block in `source`, define the events it needs,
  /// and register the rules. Returns the new rule ids.
  Result<std::vector<RuleId>> ParseAndDefine(const std::string& source);

 private:
  EventManager* events_;
  RuleEngine* engine_;
  FunctionRegistry* functions_;
  TypeSystem* types_;
};

}  // namespace reach
