// ECA rules and coupling modes (§3.2). A rule separates its triggering
// event from condition and action; the coupling mode positions condition
// evaluation (E-C) relative to the triggering transaction, and an optional
// distinct action coupling (C-A) positions the action relative to the
// condition (HiPAC's split, retained by the REACH rule language's separate
// `cond <mode>` / `action <mode>` clauses).
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "core/events/event.h"
#include "oodb/session.h"

namespace reach {

/// The six REACH coupling modes (§3.2).
enum class CouplingMode {
  kImmediate,      // subtransaction at the detection point
  kDeferred,       // subtransaction after the work, before commit
  kDetached,       // independent top-level transaction
  kParallelCausallyDependent,    // parallel; commits only if trigger commits
  kSequentialCausallyDependent,  // starts only after trigger committed
  kExclusiveCausallyDependent,   // commits only if trigger aborts
};

inline constexpr int kNumCouplingModes = 6;

const char* CouplingModeName(CouplingMode mode);

/// Table 1: which {event category} x {coupling mode} combinations REACH
/// supports. Returns NotSupported with the paper's rationale otherwise.
Status CheckCoupling(EventCategory category, CouplingMode mode);

/// Condition: evaluated inside a transaction (per the coupling mode) with
/// the triggering occurrence's parameters. nullptr condition == true.
using ConditionFn =
    std::function<Result<bool>(Session&, const EventOccurrence&)>;

/// Action: runs in the same unit as the condition or its own, per the
/// action coupling.
using ActionFn = std::function<Status(Session&, const EventOccurrence&)>;

struct RuleSpec {
  std::string name;
  /// Larger value = more urgent; fires earlier (§6.4 orders parallel sets).
  int priority = 0;
  EventTypeId event = kInvalidEventType;
  /// E-C coupling.
  CouplingMode coupling = CouplingMode::kImmediate;
  /// C-A coupling; kSameAsCondition (the default) runs the action in the
  /// condition's unit.
  enum class ActionCoupling { kSameAsCondition, kDeferred, kDetached };
  ActionCoupling action_coupling = ActionCoupling::kSameAsCondition;
  ConditionFn condition;  // nullptr = always true
  ActionFn action;        // required
  /// If the action fails, abort the triggering (root) transaction too.
  bool abort_triggering_on_failure = false;
};

struct RuleStats {
  uint64_t triggered = 0;        // occurrences delivered
  uint64_t conditions_true = 0;
  uint64_t actions_run = 0;
  uint64_t failures = 0;
  uint64_t skipped_dependency = 0;  // causal dependency not satisfied
};

struct Rule {
  RuleId id = kInvalidRuleId;
  RuleSpec spec;
  bool enabled = true;
  uint64_t registration_seq = 0;  // for oldest/newest tie-breaking
  RuleStats stats;
  /// Process-unique instance id for the per-rule histogram slot table
  /// (rule ids are only unique per engine; slots outlive engines).
  uint64_t uid = 0;
  /// Cached slot in the bounded per-rule histogram table
  /// ("rules.exec_ns.rule.<name>") — opaque here to keep obs out of the
  /// rule vocabulary. Revalidated against the slot's owner uid on every
  /// record, because a cold rule's slot can be evicted and handed to a
  /// newly hot rule (see rule_engine.cc).
  std::atomic<void*> hist_slot{nullptr};
};

}  // namespace reach
