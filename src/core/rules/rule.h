// ECA rules and coupling modes (§3.2). A rule separates its triggering
// event from condition and action; the coupling mode positions condition
// evaluation (E-C) relative to the triggering transaction, and an optional
// distinct action coupling (C-A) positions the action relative to the
// condition (HiPAC's split, retained by the REACH rule language's separate
// `cond <mode>` / `action <mode>` clauses).
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "core/events/event.h"
#include "oodb/session.h"

namespace reach::obs {
class Histogram;
}  // namespace reach::obs

namespace reach {

/// The six REACH coupling modes (§3.2).
enum class CouplingMode {
  kImmediate,      // subtransaction at the detection point
  kDeferred,       // subtransaction after the work, before commit
  kDetached,       // independent top-level transaction
  kParallelCausallyDependent,    // parallel; commits only if trigger commits
  kSequentialCausallyDependent,  // starts only after trigger committed
  kExclusiveCausallyDependent,   // commits only if trigger aborts
};

inline constexpr int kNumCouplingModes = 6;

const char* CouplingModeName(CouplingMode mode);

/// Table 1: which {event category} x {coupling mode} combinations REACH
/// supports. Returns NotSupported with the paper's rationale otherwise.
Status CheckCoupling(EventCategory category, CouplingMode mode);

/// Condition: evaluated inside a transaction (per the coupling mode) with
/// the triggering occurrence's parameters. nullptr condition == true.
using ConditionFn =
    std::function<Result<bool>(Session&, const EventOccurrence&)>;

/// Action: runs in the same unit as the condition or its own, per the
/// action coupling.
using ActionFn = std::function<Status(Session&, const EventOccurrence&)>;

struct RuleSpec {
  std::string name;
  /// Larger value = more urgent; fires earlier (§6.4 orders parallel sets).
  int priority = 0;
  EventTypeId event = kInvalidEventType;
  /// E-C coupling.
  CouplingMode coupling = CouplingMode::kImmediate;
  /// C-A coupling; kSameAsCondition (the default) runs the action in the
  /// condition's unit.
  enum class ActionCoupling { kSameAsCondition, kDeferred, kDetached };
  ActionCoupling action_coupling = ActionCoupling::kSameAsCondition;
  ConditionFn condition;  // nullptr = always true
  ActionFn action;        // required
  /// If the action fails, abort the triggering (root) transaction too.
  bool abort_triggering_on_failure = false;
};

struct RuleStats {
  uint64_t triggered = 0;        // occurrences delivered
  uint64_t conditions_true = 0;
  uint64_t actions_run = 0;
  uint64_t failures = 0;
  uint64_t skipped_dependency = 0;  // causal dependency not satisfied
};

struct Rule {
  RuleId id = kInvalidRuleId;
  RuleSpec spec;
  bool enabled = true;
  uint64_t registration_seq = 0;  // for oldest/newest tie-breaking
  RuleStats stats;
  /// Per-rule exec-time histogram ("rules.exec_ns.rule.<name>"), admitted
  /// lazily on first execution up to a global cardinality cap — nullptr
  /// until then (see rule_engine.cc).
  std::atomic<obs::Histogram*> exec_hist{nullptr};
};

}  // namespace reach
