#include "core/rules/rule_trace.h"

namespace reach {

std::string RuleTraceEntry::ToString() const {
  std::string out = rule_name;
  out += " [";
  out += CouplingModeName(mode);
  out += "] event seq=" + std::to_string(occurrence_seq);
  out += " trigger_txn=" + std::to_string(trigger_txn);
  out += " rule_txn=" + std::to_string(rule_txn);
  if (action_only) out += " (action phase)";
  out += condition_true ? " cond=true" : " cond=false";
  if (action_ran) out += " action=ran";
  out += succeeded ? " ok" : (" FAILED: " + error);
  out += " " + std::to_string(duration_us) + "us";
  return out;
}

void RuleTrace::Append(RuleTraceEntry entry) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(entry));
  if (ring_.size() > capacity_) ring_.pop_front();
  ++total_;
}

std::vector<RuleTraceEntry> RuleTrace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RuleTraceEntry>(ring_.begin(), ring_.end());
}

std::vector<RuleTraceEntry> RuleTrace::ForRule(
    const std::string& rule_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RuleTraceEntry> out;
  for (const RuleTraceEntry& entry : ring_) {
    if (entry.rule_name == rule_name) out.push_back(entry);
  }
  return out;
}

void RuleTrace::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

size_t RuleTrace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t RuleTrace::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace reach
