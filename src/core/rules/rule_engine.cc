#include "core/rules/rule_engine.h"

#include <algorithm>
#include <future>
#include <string>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace {

/// Process-wide rule counters plus per-coupling-mode latency histograms.
/// The mode-tagged names (rules.exec_ns.<mode>, rules.fire_lag_ns.<mode>)
/// are resolved once here — obs cannot depend on core, so the CouplingMode
/// vocabulary stays on this side of the boundary.
struct RuleMetrics {
  obs::Counter* immediate_runs;
  obs::Counter* deferred_runs;
  obs::Counter* detached_runs;
  obs::Counter* failures;
  obs::Counter* dependency_skips;
  obs::Counter* deferred_rounds;
  // Rule condition+action execution time, by coupling mode.
  obs::Histogram* exec_ns[kNumCouplingModes];
  // Detection-to-execution-start lag (pipeline span), by coupling mode.
  obs::Histogram* fire_lag_ns[kNumCouplingModes];

  static const RuleMetrics& Get() {
    static const RuleMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      RuleMetrics r{};
      r.immediate_runs = reg.counter(obs::kRulesImmediateRuns);
      r.deferred_runs = reg.counter(obs::kRulesDeferredRuns);
      r.detached_runs = reg.counter(obs::kRulesDetachedRuns);
      r.failures = reg.counter(obs::kRulesFailures);
      r.dependency_skips = reg.counter(obs::kRulesDependencySkips);
      r.deferred_rounds = reg.counter(obs::kRulesDeferredRounds);
      for (int i = 0; i < kNumCouplingModes; ++i) {
        const char* mode = CouplingModeName(static_cast<CouplingMode>(i));
        r.exec_ns[i] =
            reg.histogram(std::string(obs::kRulesExecNsPrefix) + mode);
        r.fire_lag_ns[i] =
            reg.histogram(std::string(obs::kRulesFireLagNsPrefix) + mode);
      }
      return r;
    }();
    return m;
  }
};

/// Single timing measurement feeding both the RuleTrace entry and the
/// per-mode metrics; the clock is read only when at least one consumer is
/// on (start == 0 means "unmeasured").
uint64_t RuleTimingStart(const RuleTrace& trace) {
  return (trace.enabled() || obs::MetricsEnabled()) ? obs::NowNanos() : 0;
}

/// Cardinality bound on the per-rule breakdown: at most
/// kPerRuleHistogramCap rules hold a "rules.exec_ns.rule.<name>" histogram
/// at a time. Admission is evict-and-replace: when every slot is taken, a
/// newly executing rule evicts the least-recently-executed holder —
/// provided that holder has been idle for at least kEvictIdleTicks recorded
/// executions, so two hot rules never ping-pong a slot. The histogram
/// objects themselves live forever in the registry (registry entries are
/// never deleted), so a name-churning workload still grows the registry by
/// its count of distinct admitted names; rules.histogram.evicted makes that
/// churn visible.
constexpr size_t kPerRuleHistogramCap = 32;
constexpr uint64_t kEvictIdleTicks = 64;

struct PerRuleSlots {
  struct Slot {
    /// Owning rule's process-unique uid; 0 = free. Cleared before the slot
    /// is rebound so a stale owner's cached-pointer check fails.
    std::atomic<uint64_t> owner{0};
    /// Tick of the owner's most recent recorded execution (LRU key).
    std::atomic<uint64_t> last_used{0};
    std::atomic<obs::Histogram*> hist{nullptr};
  };

  std::mutex mu;  // guards rebinding; the record fast path is lock-free
  Slot slots[kPerRuleHistogramCap];
  /// Advances once per recorded rule execution (the "time" for LRU/idle).
  std::atomic<uint64_t> clock{0};
  obs::Counter* evicted = obs::MetricsRegistry::Instance().counter(
      obs::kRulesHistogramEvicted);

  static PerRuleSlots& Get() {
    static PerRuleSlots t;
    return t;
  }
};

obs::Histogram* PerRuleHistogram(Rule* rule) {
  PerRuleSlots& t = PerRuleSlots::Get();
  const uint64_t now = t.clock.fetch_add(1, std::memory_order_relaxed) + 1;
  auto* slot =
      static_cast<PerRuleSlots::Slot*>(rule->hist_slot.load(std::memory_order_acquire));
  if (slot != nullptr && slot->owner.load(std::memory_order_acquire) == rule->uid) {
    slot->last_used.store(now, std::memory_order_relaxed);
    // A racing eviction between the owner check and this load can land one
    // sample in the successor's histogram — acceptable for observability.
    return slot->hist.load(std::memory_order_acquire);
  }
  // First execution, or this rule's slot was evicted: claim a free slot or
  // replace the least-recently-executed holder if it has gone idle.
  std::lock_guard<std::mutex> lock(t.mu);
  slot = static_cast<PerRuleSlots::Slot*>(
      rule->hist_slot.load(std::memory_order_acquire));
  if (slot != nullptr && slot->owner.load(std::memory_order_acquire) == rule->uid) {
    slot->last_used.store(now, std::memory_order_relaxed);
    return slot->hist.load(std::memory_order_acquire);
  }
  PerRuleSlots::Slot* victim = nullptr;
  for (auto& s : t.slots) {
    if (s.owner.load(std::memory_order_relaxed) == 0) {
      victim = &s;
      break;
    }
    if (victim == nullptr ||
        s.last_used.load(std::memory_order_relaxed) <
            victim->last_used.load(std::memory_order_relaxed)) {
      victim = &s;
    }
  }
  if (victim->owner.load(std::memory_order_relaxed) != 0) {
    const uint64_t idle =
        now - victim->last_used.load(std::memory_order_relaxed);
    if (idle <= kEvictIdleTicks) return nullptr;  // every holder is hot
    t.evicted->Inc();
  }
  victim->owner.store(0, std::memory_order_release);
  victim->hist.store(obs::MetricsRegistry::Instance().histogram(
                         std::string(obs::kRulesExecNsRulePrefix) +
                         rule->spec.name),
                     std::memory_order_release);
  victim->last_used.store(now, std::memory_order_relaxed);
  victim->owner.store(rule->uid, std::memory_order_release);
  rule->hist_slot.store(victim, std::memory_order_release);
  return victim->hist.load(std::memory_order_acquire);
}

/// Frees a dying rule's histogram slot (DropRule / engine teardown) so the
/// next admission takes it without waiting out the idle-eviction window.
/// Safe even if the slot was already evicted and rebound: the owner-uid
/// check makes the release a no-op then.
void ReleasePerRuleSlot(Rule* rule) {
  auto* slot = static_cast<PerRuleSlots::Slot*>(
      rule->hist_slot.load(std::memory_order_acquire));
  if (slot == nullptr) return;
  PerRuleSlots& t = PerRuleSlots::Get();
  std::lock_guard<std::mutex> lock(t.mu);
  if (slot->owner.load(std::memory_order_relaxed) == rule->uid) {
    slot->owner.store(0, std::memory_order_release);
  }
}

void RecordRuleTiming(Rule* rule, CouplingMode mode, uint64_t start_ns,
                      uint64_t detect_ns, uint64_t* elapsed_ns) {
  *elapsed_ns = start_ns != 0 ? obs::NowNanos() - start_ns : 0;
  if (!obs::MetricsEnabled() || start_ns == 0) return;
  int i = static_cast<int>(mode);
  const RuleMetrics& m = RuleMetrics::Get();
  m.exec_ns[i]->RecordAlways(*elapsed_ns);
  if (detect_ns != 0 && start_ns > detect_ns) {
    m.fire_lag_ns[i]->RecordAlways(start_ns - detect_ns);
  }
  if (obs::Histogram* h = PerRuleHistogram(rule)) {
    h->RecordAlways(*elapsed_ns);
  }
}

}  // namespace

RuleEngine::RuleEngine(Database* db, EventManager* events,
                       RuleEngineOptions options)
    : db_(db), events_(events), options_(options) {
  detached_pool_ = std::make_unique<ThreadPool>(options_.detached_threads);
  if (options_.multi_rule_execution ==
      RuleEngineOptions::Execution::kParallelSubtransactions) {
    rule_pool_ = std::make_unique<ThreadPool>(options_.parallel_rule_threads);
  }
  db_->txns()->AddListener(this);
}

RuleEngine::~RuleEngine() {
  db_->txns()->RemoveListener(this);
  detached_pool_->Shutdown();
  if (rule_pool_) rule_pool_->Shutdown();
  for (auto& [id, rule] : rules_) ReleasePerRuleSlot(rule.get());
}

Result<RuleId> RuleEngine::DefineRule(RuleSpec spec) {
  if (spec.name.empty()) return Status::InvalidArgument("rule needs a name");
  if (!spec.action) return Status::InvalidArgument("rule needs an action");
  const EventDescriptor* desc = events_->registry()->Find(spec.event);
  if (desc == nullptr) {
    return Status::NotFound("event type " + std::to_string(spec.event));
  }
  // Table 1 admission check.
  REACH_RETURN_IF_ERROR(CheckCoupling(desc->category, spec.coupling));
  // A split C-A coupling only makes sense when the condition runs inside
  // the triggering transaction (immediate/deferred); detached-family rules
  // already execute in their own transaction.
  if (spec.action_coupling != RuleSpec::ActionCoupling::kSameAsCondition &&
      spec.coupling != CouplingMode::kImmediate &&
      spec.coupling != CouplingMode::kDeferred) {
    return Status::InvalidArgument(
        "separate action coupling requires an immediate or deferred "
        "condition coupling");
  }
  if (spec.action_coupling == RuleSpec::ActionCoupling::kDeferred &&
      spec.coupling == CouplingMode::kDeferred) {
    // Redundant but harmless; normalize.
    spec.action_coupling = RuleSpec::ActionCoupling::kSameAsCondition;
  }

  std::unique_lock lock(mu_);
  if (by_name_.contains(spec.name)) {
    return Status::AlreadyExists("rule " + spec.name);
  }
  auto rule = std::make_unique<Rule>();
  rule->id = next_id_++;
  static std::atomic<uint64_t> next_rule_uid{0};
  rule->uid = next_rule_uid.fetch_add(1, std::memory_order_relaxed) + 1;
  rule->registration_seq = next_registration_seq_++;
  rule->spec = std::move(spec);
  RuleId id = rule->id;
  EventTypeId event = rule->spec.event;
  if (rule->spec.coupling == CouplingMode::kDeferred ||
      rule->spec.action_coupling == RuleSpec::ActionCoupling::kDeferred) {
    deferred_rule_count_.fetch_add(1);
  }
  by_name_[rule->spec.name] = id;
  by_event_[event].push_back(id);
  rules_[id] = std::move(rule);

  if (!listening_.contains(event)) {
    listening_.insert(event);
    lock.unlock();
    events_->AddEventListener(
        event, [this, event](const EventOccurrencePtr& occ) {
          OnOccurrence(event, occ);
        });
  }
  return id;
}

Status RuleEngine::SetRuleEnabled(const std::string& name, bool enabled) {
  std::unique_lock lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("rule " + name);
  rules_[it->second]->enabled = enabled;
  return Status::OK();
}

Status RuleEngine::DropRule(const std::string& name) {
  std::unique_lock lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("rule " + name);
  RuleId id = it->second;
  EventTypeId event = rules_[id]->spec.event;
  if (rules_[id]->spec.coupling == CouplingMode::kDeferred ||
      rules_[id]->spec.action_coupling ==
          RuleSpec::ActionCoupling::kDeferred) {
    deferred_rule_count_.fetch_sub(1);
  }
  auto& vec = by_event_[event];
  vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
  ReleasePerRuleSlot(rules_[id].get());
  rules_.erase(id);
  by_name_.erase(it);
  return Status::OK();
}

const Rule* RuleEngine::FindRule(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return rules_.at(it->second).get();
}

std::vector<std::string> RuleEngine::RuleNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, _] : by_name_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

Result<RuleStats> RuleEngine::StatsOf(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("rule " + name);
  return rules_.at(it->second)->stats;
}

std::vector<Rule*> RuleEngine::RulesForEvent(EventTypeId type) {
  std::shared_lock lock(mu_);
  std::vector<Rule*> out;
  auto it = by_event_.find(type);
  if (it == by_event_.end()) return out;
  for (RuleId id : it->second) {
    Rule* rule = rules_.at(id).get();
    if (rule->enabled) out.push_back(rule);
  }
  bool oldest_first =
      options_.tie_break == RuleEngineOptions::TieBreak::kOldestFirst;
  std::sort(out.begin(), out.end(), [oldest_first](Rule* a, Rule* b) {
    if (a->spec.priority != b->spec.priority) {
      return a->spec.priority > b->spec.priority;  // urgent first
    }
    return oldest_first ? a->registration_seq < b->registration_seq
                        : a->registration_seq > b->registration_seq;
  });
  return out;
}

void RuleEngine::MarkEngineTxn(TxnId txn) {
  std::lock_guard<std::mutex> lock(engine_txn_mu_);
  engine_txns_.insert(txn);
}

void RuleEngine::UnmarkEngineTxn(TxnId txn) {
  std::lock_guard<std::mutex> lock(engine_txn_mu_);
  engine_txns_.erase(txn);
}

bool RuleEngine::IsEngineTxn(TxnId txn) const {
  std::lock_guard<std::mutex> lock(engine_txn_mu_);
  return engine_txns_.contains(txn);
}

void RuleEngine::OnOccurrence(EventTypeId type,
                              const EventOccurrencePtr& occ) {
  std::vector<Rule*> rules = RulesForEvent(type);
  if (rules.empty()) return;
  // Flow-control events raised by the engine's own transactions must not
  // fire rules (a rule on `commit` would otherwise retrigger itself).
  const EventDescriptor* desc = events_->registry()->Find(type);
  if (desc != nullptr && desc->is_db_event &&
      (desc->sentry_kind == SentryKind::kTxnBegin ||
       desc->sentry_kind == SentryKind::kTxnCommit ||
       desc->sentry_kind == SentryKind::kTxnAbort) &&
      IsEngineTxn(occ->txn)) {
    return;
  }

  std::vector<Firing> immediate;
  for (Rule* rule : rules) {
    {
      std::unique_lock lock(mu_);
      rule->stats.triggered++;
    }
    switch (rule->spec.coupling) {
      case CouplingMode::kImmediate:
        if (occ->txn == kNoTxn) {
          // Explicitly raised outside any transaction: fall back to an
          // independent transaction (documented deviation; Table 1 has no
          // row for transactionless method events).
          DispatchDetached(rule, occ, CouplingMode::kDetached, false);
        } else {
          immediate.push_back({rule->id, occ, false});
        }
        break;
      case CouplingMode::kDeferred:
        if (occ->txn == kNoTxn) {
          DispatchDetached(rule, occ, CouplingMode::kDetached, false);
        } else {
          EnqueueDeferred({rule->id, occ, false}, occ->txn);
        }
        break;
      default:
        DispatchDetached(rule, occ, rule->spec.coupling, false);
        break;
    }
  }
  if (!immediate.empty()) {
    engine_stats_.immediate_runs.fetch_add(immediate.size(),
                                           std::memory_order_relaxed);
    RuleMetrics::Get().immediate_runs->Inc(immediate.size());
    // The go-ahead for the application is this call returning.
    Status st = ExecuteSet(immediate, occ->txn);
    (void)st;  // failures are recorded per rule / may abort the trigger
  }
}

void RuleEngine::EnqueueDeferred(Firing firing, TxnId root) {
  std::lock_guard<std::mutex> lock(deferred_mu_);
  deferred_[root].push_back(std::move(firing));
}

Status RuleEngine::ExecuteInSubtxn(Rule* rule, const EventOccurrencePtr& occ,
                                   TxnId parent, bool action_only) {
  uint64_t start_ns = RuleTimingStart(trace_);
  auto sub = db_->txns()->Begin(parent);
  if (!sub.ok()) return sub.status();
  MarkEngineTxn(sub.value());
  Session session(db_);
  session.AdoptTxn(sub.value());

  // Keyed by (rule, occurrence) so the same firings fail under the serial
  // ring-sequence and the parallel-subtransaction strategies — the
  // differential torture suite depends on this.
  Status result = REACH_FAULT_HIT_KEYED(
      faults::kRuleSubtxnExec,
      (static_cast<uint64_t>(rule->id) << 32) ^ occ->sequence);
  bool condition_true = true;
  if (result.ok() && !action_only && rule->spec.condition) {
    auto cond = rule->spec.condition(session, *occ);
    if (!cond.ok()) {
      result = cond.status();
      condition_true = false;
    } else {
      condition_true = cond.value();
    }
  }

  bool ran_action = false;
  if (result.ok() && condition_true) {
    {
      std::unique_lock lock(mu_);
      rule->stats.conditions_true++;
    }
    switch (rule->spec.action_coupling) {
      case RuleSpec::ActionCoupling::kSameAsCondition:
        result = rule->spec.action(session, *occ);
        ran_action = true;
        break;
      case RuleSpec::ActionCoupling::kDeferred:
        EnqueueDeferred({rule->id, occ, true},
                        db_->txns()->RootOf(parent));
        break;
      case RuleSpec::ActionCoupling::kDetached:
        DispatchDetached(rule, occ, CouplingMode::kDetached, true);
        break;
    }
  }

  if (result.ok()) {
    result = session.Commit();
  } else {
    Status abort_st = session.Abort();
    (void)abort_st;
  }
  UnmarkEngineTxn(sub.value());

  uint64_t elapsed_ns = 0;
  RecordRuleTiming(rule, rule->spec.coupling, start_ns, occ->detect_ns,
                   &elapsed_ns);

  if (trace_.enabled()) {
    RuleTraceEntry entry;
    entry.rule_name = rule->spec.name;
    entry.rule = rule->id;
    entry.event = occ->type;
    entry.occurrence_seq = occ->sequence;
    entry.mode = rule->spec.coupling;
    entry.action_only = action_only;
    entry.condition_true = condition_true;
    entry.action_ran = ran_action;
    entry.succeeded = result.ok();
    if (!result.ok()) entry.error = result.ToString();
    entry.trigger_txn = occ->txn;
    entry.rule_txn = sub.value();
    entry.duration_us = static_cast<int64_t>(elapsed_ns / 1000);
    trace_.Append(std::move(entry));
  }

  {
    std::unique_lock lock(mu_);
    if (ran_action && result.ok()) rule->stats.actions_run++;
    if (!result.ok()) rule->stats.failures++;
  }
  if (!result.ok()) {
    engine_stats_.failures.fetch_add(1, std::memory_order_relaxed);
    RuleMetrics::Get().failures->Inc();
  }
  if (!result.ok() && rule->spec.abort_triggering_on_failure) {
    TxnId root = db_->txns()->RootOf(parent);
    if (db_->txns()->IsActive(root)) {
      Status abort_st = db_->txns()->Abort(root);
      (void)abort_st;
    }
  }
  return result;
}

Status RuleEngine::ExecuteSet(const std::vector<Firing>& firings,
                              TxnId parent) {
  Status first_error = Status::OK();
  if (rule_pool_ == nullptr || firings.size() == 1) {
    // Serial ring-sequence (§6.4 first-prototype strategy): the set is
    // already ordered by priority + tie-break.
    for (const Firing& f : firings) {
      Rule* rule;
      {
        std::shared_lock lock(mu_);
        auto it = rules_.find(f.rule);
        if (it == rules_.end()) continue;
        rule = it->second.get();
      }
      Status st = ExecuteInSubtxn(rule, f.occ, parent, f.action_only);
      if (first_error.ok() && !st.ok()) first_error = st;
      if (!db_->txns()->IsActive(parent)) {
        // A rule aborted the triggering transaction; stop the sequence.
        return Status::Aborted("triggering transaction aborted by rule");
      }
    }
    return first_error;
  }

  // Parallel sibling subtransactions. Priorities still order lower-level
  // thread creation (§6.4), hence submission order.
  std::vector<std::future<Status>> futures;
  futures.reserve(firings.size());
  for (const Firing& f : firings) {
    futures.push_back(rule_pool_->SubmitWithResult([this, f, parent] {
      Rule* rule;
      {
        std::shared_lock lock(mu_);
        auto it = rules_.find(f.rule);
        if (it == rules_.end()) return Status::OK();
        rule = it->second.get();
      }
      return ExecuteInSubtxn(rule, f.occ, parent, f.action_only);
    }));
  }
  for (auto& fut : futures) {
    Status st = fut.get();
    if (first_error.ok() && !st.ok()) first_error = st;
  }
  return first_error;
}

Status RuleEngine::OnPreCommit(TxnId txn) {
  // An injected error here surfaces through the transaction manager's
  // pre-commit failure path, which aborts the triggering transaction.
  REACH_FAULT_POINT(faults::kRuleDeferredFlush);
  if (deferred_rule_count_.load(std::memory_order_relaxed) == 0) {
    std::lock_guard<std::mutex> lock(deferred_mu_);
    if (deferred_.empty()) return Status::OK();
  }
  Status first_error = Status::OK();
  for (size_t round = 0; round < options_.max_deferred_rounds; ++round) {
    // Let asynchronous composition finish so single-transaction composite
    // events of this transaction have been delivered.
    events_->Quiesce();

    std::vector<Firing> batch;
    {
      std::lock_guard<std::mutex> lock(deferred_mu_);
      auto it = deferred_.find(txn);
      if (it != deferred_.end()) {
        batch = std::move(it->second);
        deferred_.erase(it);
      }
    }
    if (batch.empty()) break;
    engine_stats_.deferred_rounds.fetch_add(1, std::memory_order_relaxed);
    engine_stats_.deferred_runs.fetch_add(batch.size(),
                                          std::memory_order_relaxed);
    RuleMetrics::Get().deferred_rounds->Inc();
    RuleMetrics::Get().deferred_runs->Inc(batch.size());

    // Ordering: priority, then simple-before-composite, then tie-break.
    bool simple_first = options_.simple_events_first;
    bool oldest_first =
        options_.tie_break == RuleEngineOptions::TieBreak::kOldestFirst;
    std::shared_lock lock(mu_);
    std::stable_sort(
        batch.begin(), batch.end(),
        [&](const Firing& a, const Firing& b) {
          const Rule* ra = rules_.contains(a.rule)
                               ? rules_.at(a.rule).get() : nullptr;
          const Rule* rb = rules_.contains(b.rule)
                               ? rules_.at(b.rule).get() : nullptr;
          if (ra == nullptr || rb == nullptr) return false;
          if (ra->spec.priority != rb->spec.priority) {
            return ra->spec.priority > rb->spec.priority;
          }
          bool a_simple = a.occ->constituents.empty();
          bool b_simple = b.occ->constituents.empty();
          if (simple_first && a_simple != b_simple) return a_simple;
          return oldest_first
                     ? ra->registration_seq < rb->registration_seq
                     : ra->registration_seq > rb->registration_seq;
        });
    lock.unlock();

    Status st = ExecuteSet(batch, txn);
    if (first_error.ok() && !st.ok()) {
      // Only failures of abort-demanding rules poison the commit; those
      // rules already aborted the transaction themselves.
      if (!db_->txns()->IsActive(txn)) first_error = st;
    }
    if (!db_->txns()->IsActive(txn)) break;
  }
  return first_error;
}

void RuleEngine::OnAbort(TxnId txn) {
  std::lock_guard<std::mutex> lock(deferred_mu_);
  deferred_.erase(txn);
}

void RuleEngine::DispatchDetached(Rule* rule, const EventOccurrencePtr& occ,
                                  CouplingMode mode, bool action_only) {
  RuleId id = rule->id;
  detached_pool_->Submit([this, id, occ, mode, action_only] {
    RunDetachedTask(id, occ, mode, action_only);
  });
}

void RuleEngine::RunDetachedTask(RuleId rule_id, EventOccurrencePtr occ,
                                 CouplingMode mode, bool action_only) {
  uint64_t start_ns = RuleTimingStart(trace_);
  Rule* rule;
  {
    std::shared_lock lock(mu_);
    auto it = rules_.find(rule_id);
    if (it == rules_.end()) return;
    rule = it->second.get();
  }
  std::vector<TxnId> involved = occ->InvolvedTxns();

  if (mode == CouplingMode::kSequentialCausallyDependent) {
    // May initiate only after every involved transaction committed.
    for (TxnId t : involved) {
      auto outcome = db_->txns()->WaitForOutcome(t);
      if (!outcome.ok() || !outcome.value()) {
        std::unique_lock lock(mu_);
        rule->stats.skipped_dependency++;
        engine_stats_.dependency_skips.fetch_add(1,
                                                 std::memory_order_relaxed);
        RuleMetrics::Get().dependency_skips->Inc();
        return;
      }
    }
  }

  auto txn = db_->txns()->Begin();
  if (!txn.ok()) return;
  MarkEngineTxn(txn.value());
  if (mode == CouplingMode::kParallelCausallyDependent) {
    for (TxnId t : involved) {
      (void)db_->txns()->AddCommitDependency(txn.value(), t);
    }
  } else if (mode == CouplingMode::kExclusiveCausallyDependent) {
    for (TxnId t : involved) {
      (void)db_->txns()->AddAbortDependency(txn.value(), t);
    }
  }

  Session session(db_);
  session.AdoptTxn(txn.value());
  Status result = REACH_FAULT_HIT_KEYED(
      faults::kRuleDetachedExec,
      (static_cast<uint64_t>(rule->id) << 32) ^ occ->sequence);
  bool condition_true = true;
  if (result.ok() && !action_only && rule->spec.condition) {
    auto cond = rule->spec.condition(session, *occ);
    if (!cond.ok()) {
      result = cond.status();
      condition_true = false;
    } else {
      condition_true = cond.value();
    }
  }
  bool ran_action = false;
  if (result.ok() && condition_true) {
    {
      std::unique_lock lock(mu_);
      rule->stats.conditions_true++;
    }
    result = rule->spec.action(session, *occ);
    ran_action = true;
  }
  if (result.ok() && (condition_true || !involved.empty())) {
    // Commit even on false conditions when causal dependencies must be
    // checked symmetrically; an empty transaction commit is cheap.
    result = session.Commit();
  } else if (result.ok()) {
    result = session.Abort();
  } else {
    Status abort_st = session.Abort();
    (void)abort_st;
  }
  UnmarkEngineTxn(txn.value());

  uint64_t elapsed_ns = 0;
  RecordRuleTiming(rule, mode, start_ns, occ->detect_ns, &elapsed_ns);

  if (trace_.enabled()) {
    RuleTraceEntry entry;
    entry.rule_name = rule->spec.name;
    entry.rule = rule->id;
    entry.event = occ->type;
    entry.occurrence_seq = occ->sequence;
    entry.mode = mode;
    entry.action_only = action_only;
    entry.condition_true = condition_true;
    entry.action_ran = ran_action;
    entry.succeeded = result.ok();
    if (!result.ok()) entry.error = result.ToString();
    entry.trigger_txn = occ->txn;
    entry.rule_txn = txn.value();
    entry.duration_us = static_cast<int64_t>(elapsed_ns / 1000);
    trace_.Append(std::move(entry));
  }

  {
    std::unique_lock lock(mu_);
    if (ran_action && result.ok()) rule->stats.actions_run++;
    if (!result.ok()) {
      if (result.IsAborted() &&
          (mode == CouplingMode::kParallelCausallyDependent ||
           mode == CouplingMode::kExclusiveCausallyDependent)) {
        rule->stats.skipped_dependency++;
      } else {
        rule->stats.failures++;
      }
    }
  }
  engine_stats_.detached_runs.fetch_add(1, std::memory_order_relaxed);
  RuleMetrics::Get().detached_runs->Inc();
  if (!result.ok()) {
    if (result.IsAborted() &&
        (mode == CouplingMode::kParallelCausallyDependent ||
         mode == CouplingMode::kExclusiveCausallyDependent)) {
      engine_stats_.dependency_skips.fetch_add(1, std::memory_order_relaxed);
      RuleMetrics::Get().dependency_skips->Inc();
    } else {
      engine_stats_.failures.fetch_add(1, std::memory_order_relaxed);
      RuleMetrics::Get().failures->Inc();
    }
  }
}

void RuleEngine::WaitDetachedIdle() { detached_pool_->WaitIdle(); }

RuleEngineStats RuleEngine::stats() const {
  RuleEngineStats s;
  s.immediate_runs = engine_stats_.immediate_runs.load(std::memory_order_relaxed);
  s.deferred_runs = engine_stats_.deferred_runs.load(std::memory_order_relaxed);
  s.detached_runs = engine_stats_.detached_runs.load(std::memory_order_relaxed);
  s.failures = engine_stats_.failures.load(std::memory_order_relaxed);
  s.dependency_skips =
      engine_stats_.dependency_skips.load(std::memory_order_relaxed);
  s.deferred_rounds =
      engine_stats_.deferred_rounds.load(std::memory_order_relaxed);
  return s;
}

}  // namespace reach
