#include "core/rules/rule_parser.h"

#include <unordered_map>

#include "query/expr.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "query/query_pm.h"

namespace reach {

namespace {

Status ParseError(const Token& tok, const std::string& what) {
  return Status::InvalidArgument("rule parse: expected " + what + " near '" +
                                 tok.text + "' at " +
                                 std::to_string(tok.position));
}

struct Decl {
  std::string var;
  std::string class_name;  // empty for scalar event parameters
  std::string named;       // dictionary name, if any
};

enum class ActionKind { kRegistry, kCall, kInvoke, kSet, kAbort, kNone };

struct ParsedAction {
  ActionKind kind = ActionKind::kNone;
  std::string fn_name;               // kCall
  std::string var;                   // kInvoke / kSet receiver
  std::string member;                // method or attribute
  std::vector<ExprPtr> args;         // kInvoke arguments
  ExprPtr value;                     // kSet value
};

/// Per-firing variable bindings for condition/action expressions.
struct Bindings {
  std::string receiver_var;               // bound to occ.source
  std::vector<std::string> param_vars;    // positional, from the event spec
  std::unordered_map<std::string, std::string> named;  // var -> db name
};

class RuleEnv : public EvalEnv {
 public:
  RuleEnv(Session* session, const Bindings* bindings,
          const EventOccurrence* occ)
      : session_(session), bindings_(bindings), occ_(occ) {}

  Result<Value> Resolve(const std::vector<std::string>& path) override {
    if (path.empty()) return Status::InvalidArgument("empty path");
    REACH_ASSIGN_OR_RETURN(Value base, ResolveVar(path[0]));
    Value v = std::move(base);
    for (size_t i = 1; i < path.size(); ++i) {
      if (!v.is_ref()) {
        return Status::InvalidArgument("'" + path[i - 1] +
                                       "' is not an object reference");
      }
      REACH_ASSIGN_OR_RETURN(std::shared_ptr<DbObject> obj,
                             session_->Fetch(v.as_ref()));
      if (!obj->Has(path[i])) {
        return Status::NotFound("attribute " + path[i] + " on " +
                                obj->class_name());
      }
      v = obj->Get(path[i]);
    }
    return v;
  }

 private:
  Result<Value> ResolveVar(const std::string& var) {
    if (var == bindings_->receiver_var && !var.empty()) {
      return Value(occ_->source);
    }
    for (size_t i = 0; i < bindings_->param_vars.size(); ++i) {
      if (bindings_->param_vars[i] == var) {
        if (i >= occ_->params.size()) {
          return Status::OutOfRange("event has no parameter " + var);
        }
        return occ_->params[i];
      }
    }
    auto it = bindings_->named.find(var);
    if (it != bindings_->named.end()) {
      REACH_ASSIGN_OR_RETURN(Oid oid, session_->Lookup(it->second));
      return Value(oid);
    }
    return Status::NotFound("unbound variable " + var);
  }

  Session* session_;
  const Bindings* bindings_;
  const EventOccurrence* occ_;
};

bool IsCompositeKeyword(const Token& tok) {
  return tok.IsIdent("seq") || tok.IsIdent("both") || tok.IsIdent("any") ||
         tok.IsIdent("without") || tok.IsIdent("closure") ||
         tok.IsIdent("times");
}

/// Recursive-descent parser for inline composite event expressions.
/// `correlation` applies to every operator in the expression.
Result<EventExprPtr> ParseEventExpr(const std::vector<Token>& tokens,
                                    size_t* pos, EventRegistry* registry,
                                    Correlation correlation) {
  auto cur = [&]() -> const Token& { return tokens[*pos]; };
  auto expect = [&](const char* sym) -> Status {
    if (!cur().IsSymbol(sym)) {
      return ParseError(cur(), std::string("'") + sym + "'");
    }
    ++*pos;
    return Status::OK();
  };
  auto sub = [&]() -> Result<EventExprPtr> {
    return ParseEventExpr(tokens, pos, registry, correlation);
  };

  if (!IsCompositeKeyword(cur())) {
    // Leaf: a registered event name.
    if (cur().type != TokenType::kIdent) {
      return ParseError(cur(), "event name or composite operator");
    }
    const EventDescriptor* desc = registry->FindByName(cur().text);
    if (desc == nullptr) {
      return Status::NotFound("event type " + cur().text);
    }
    ++*pos;
    return EventExpr::Prim(desc->id);
  }

  std::string op = cur().text;
  ++*pos;
  REACH_RETURN_IF_ERROR(expect("("));
  if (op == "times") {
    if (cur().type != TokenType::kInt || cur().int_value < 1) {
      return ParseError(cur(), "occurrence count");
    }
    uint32_t n = static_cast<uint32_t>(cur().int_value);
    ++*pos;
    REACH_RETURN_IF_ERROR(expect(","));
    REACH_ASSIGN_OR_RETURN(EventExprPtr body, sub());
    REACH_RETURN_IF_ERROR(expect(")"));
    return EventExpr::History(std::move(body), n, correlation);
  }
  REACH_ASSIGN_OR_RETURN(EventExprPtr a, sub());
  REACH_RETURN_IF_ERROR(expect(","));
  REACH_ASSIGN_OR_RETURN(EventExprPtr b, sub());
  if (op == "without") {
    REACH_RETURN_IF_ERROR(expect(","));
    REACH_ASSIGN_OR_RETURN(EventExprPtr c, sub());
    REACH_RETURN_IF_ERROR(expect(")"));
    return EventExpr::Not(std::move(a), std::move(b), std::move(c),
                          correlation);
  }
  REACH_RETURN_IF_ERROR(expect(")"));
  if (op == "seq") return EventExpr::Seq(std::move(a), std::move(b),
                                         correlation);
  if (op == "both") return EventExpr::And(std::move(a), std::move(b),
                                          correlation);
  if (op == "any") return EventExpr::Or(std::move(a), std::move(b));
  if (op == "closure") return EventExpr::Closure(std::move(a), std::move(b));
  return Status::Internal("unknown composite operator " + op);
}

Result<CouplingMode> ParseMode(const Token& tok) {
  if (tok.IsIdent("imm") || tok.IsIdent("immediate")) {
    return CouplingMode::kImmediate;
  }
  if (tok.IsIdent("deferred")) return CouplingMode::kDeferred;
  if (tok.IsIdent("detached")) return CouplingMode::kDetached;
  if (tok.IsIdent("parallel")) {
    return CouplingMode::kParallelCausallyDependent;
  }
  if (tok.IsIdent("sequential")) {
    return CouplingMode::kSequentialCausallyDependent;
  }
  if (tok.IsIdent("exclusive")) {
    return CouplingMode::kExclusiveCausallyDependent;
  }
  return ParseError(tok, "coupling mode");
}

bool IsScalarType(const Token& tok) {
  return tok.IsIdent("int") || tok.IsIdent("double") ||
         tok.IsIdent("string") || tok.IsIdent("bool");
}

}  // namespace

Result<std::vector<RuleId>> RuleParser::ParseAndDefine(
    const std::string& source) {
  REACH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  size_t pos = 0;
  auto cur = [&]() -> const Token& { return tokens[pos]; };
  auto expect_symbol = [&](const char* s) -> Status {
    if (!cur().IsSymbol(s)) {
      return ParseError(cur(), std::string("'") + s + "'");
    }
    ++pos;
    return Status::OK();
  };

  std::vector<RuleId> defined;
  while (cur().type != TokenType::kEnd) {
    if (!cur().IsIdent("rule")) return ParseError(cur(), "'rule'");
    ++pos;
    if (cur().type != TokenType::kIdent) return ParseError(cur(), "rule name");
    std::string rule_name = cur().text;
    ++pos;
    REACH_RETURN_IF_ERROR(expect_symbol("{"));

    int priority = 0;
    std::vector<Decl> decls;
    bool have_event = false;
    std::string ev_kind;      // "after"/"before"/"set"/"persist"/...
    std::string ev_var;       // receiver variable
    std::string ev_member;    // method / attribute / class
    std::vector<std::string> ev_args;
    int64_t ev_period_us = 0;
    std::string ev_named_event;  // pre-registered event name
    EventExprPtr ev_expr;        // inline composite expression
    CompositeScope ev_scope = CompositeScope::kSingleTxn;
    ConsumptionPolicy ev_policy = ConsumptionPolicy::kChronicle;
    Timestamp ev_validity_us = 0;
    bool have_cond = false, have_action = false;
    CouplingMode cond_mode = CouplingMode::kImmediate;
    CouplingMode action_mode = CouplingMode::kImmediate;
    ExprPtr cond_expr;
    std::string cond_query;  // exists(select ...) condition
    ParsedAction action;

    while (!cur().IsSymbol("}")) {
      if (cur().IsIdent("prio")) {
        ++pos;
        if (cur().type != TokenType::kInt) {
          return ParseError(cur(), "priority value");
        }
        priority = static_cast<int>(cur().int_value);
        ++pos;
        REACH_RETURN_IF_ERROR(expect_symbol(";"));
      } else if (cur().IsIdent("decl")) {
        ++pos;
        for (;;) {
          Decl d;
          if (IsScalarType(cur())) {
            ++pos;  // scalar event parameter: type is documentation only
            if (cur().type != TokenType::kIdent) {
              return ParseError(cur(), "variable name");
            }
            d.var = cur().text;
            ++pos;
          } else {
            if (cur().type != TokenType::kIdent) {
              return ParseError(cur(), "class name");
            }
            d.class_name = cur().text;
            ++pos;
            if (cur().IsSymbol("*")) ++pos;
            if (cur().type != TokenType::kIdent) {
              return ParseError(cur(), "variable name");
            }
            d.var = cur().text;
            ++pos;
            if (cur().IsIdent("named")) {
              ++pos;
              if (cur().type != TokenType::kString) {
                return ParseError(cur(), "object name string");
              }
              d.named = cur().text;
              ++pos;
            }
          }
          decls.push_back(std::move(d));
          if (cur().IsSymbol(",")) {
            ++pos;
            continue;
          }
          break;
        }
        REACH_RETURN_IF_ERROR(expect_symbol(";"));
      } else if (cur().IsIdent("event")) {
        ++pos;
        have_event = true;
        if (cur().IsIdent("after") || cur().IsIdent("before")) {
          ev_kind = cur().text;
          ++pos;
          if (cur().type != TokenType::kIdent) {
            return ParseError(cur(), "receiver variable");
          }
          ev_var = cur().text;
          ++pos;
          if (!cur().IsSymbol("->")) return ParseError(cur(), "'->'");
          ++pos;
          if (cur().type != TokenType::kIdent) {
            return ParseError(cur(), "method name");
          }
          ev_member = cur().text;
          ++pos;
          REACH_RETURN_IF_ERROR(expect_symbol("("));
          while (!cur().IsSymbol(")")) {
            if (cur().type != TokenType::kIdent) {
              return ParseError(cur(), "argument variable");
            }
            ev_args.push_back(cur().text);
            ++pos;
            if (cur().IsSymbol(",")) ++pos;
          }
          ++pos;  // ')'
        } else if (cur().IsIdent("set")) {
          ev_kind = "set";
          ++pos;
          if (cur().type != TokenType::kIdent) {
            return ParseError(cur(), "receiver variable");
          }
          ev_var = cur().text;
          ++pos;
          if (!cur().IsSymbol(".")) return ParseError(cur(), "'.'");
          ++pos;
          if (cur().type != TokenType::kIdent) {
            return ParseError(cur(), "attribute name");
          }
          ev_member = cur().text;
          ++pos;
        } else if (cur().IsIdent("persist") || cur().IsIdent("delete")) {
          ev_kind = cur().text;
          ++pos;
          if (cur().type != TokenType::kIdent) {
            return ParseError(cur(), "class name");
          }
          ev_member = cur().text;
          ++pos;
        } else if (cur().IsIdent("commit") || cur().IsIdent("abort") ||
                   cur().IsIdent("begin")) {
          ev_kind = cur().text;
          ++pos;
        } else if (cur().IsIdent("every")) {
          ev_kind = "every";
          ++pos;
          if (cur().type != TokenType::kInt) {
            return ParseError(cur(), "period value");
          }
          int64_t n = cur().int_value;
          ++pos;
          if (cur().IsIdent("us")) {
            ev_period_us = n;
          } else if (cur().IsIdent("ms")) {
            ev_period_us = n * 1000;
          } else if (cur().IsIdent("s")) {
            ev_period_us = n * 1000000;
          } else if (cur().IsIdent("min")) {
            ev_period_us = n * 60000000;
          } else {
            return ParseError(cur(), "time unit (us/ms/s/min)");
          }
          ++pos;
        } else if (IsCompositeKeyword(cur())) {
          // Inline composite expression with optional modifiers.
          ev_kind = "composite";
          size_t expr_start = pos;
          REACH_ASSIGN_OR_RETURN(
              ev_expr, ParseEventExpr(tokens, &pos, events_->registry(),
                                      Correlation::kNone));
          ev_scope = CompositeScope::kSingleTxn;
          ev_validity_us = 0;
          ev_policy = ConsumptionPolicy::kChronicle;
          bool same_source = false;
          for (;;) {
            if (cur().IsIdent("within")) {
              ++pos;
              if (cur().type != TokenType::kInt) {
                return ParseError(cur(), "validity value");
              }
              int64_t n = cur().int_value;
              ++pos;
              if (cur().IsIdent("us")) {
                ev_validity_us = n;
              } else if (cur().IsIdent("ms")) {
                ev_validity_us = n * 1000;
              } else if (cur().IsIdent("s")) {
                ev_validity_us = n * 1000000;
              } else if (cur().IsIdent("min")) {
                ev_validity_us = n * 60000000;
              } else {
                return ParseError(cur(), "time unit (us/ms/s/min)");
              }
              ++pos;
              ev_scope = CompositeScope::kCrossTxn;
            } else if (cur().IsIdent("using")) {
              ++pos;
              if (cur().IsIdent("recent")) {
                ev_policy = ConsumptionPolicy::kRecent;
              } else if (cur().IsIdent("chronicle")) {
                ev_policy = ConsumptionPolicy::kChronicle;
              } else if (cur().IsIdent("continuous")) {
                ev_policy = ConsumptionPolicy::kContinuous;
              } else if (cur().IsIdent("cumulative")) {
                ev_policy = ConsumptionPolicy::kCumulative;
              } else {
                return ParseError(cur(), "consumption policy");
              }
              ++pos;
            } else if (cur().IsIdent("same")) {
              ++pos;
              if (!cur().IsIdent("object")) {
                return ParseError(cur(), "'object'");
              }
              ++pos;
              same_source = true;
            } else {
              break;
            }
          }
          if (same_source) {
            // Re-parse the expression with the correlation applied to
            // every operator.
            size_t reparse = expr_start;
            REACH_ASSIGN_OR_RETURN(
                ev_expr, ParseEventExpr(tokens, &reparse, events_->registry(),
                                        Correlation::kSameSource));
          }
        } else if (cur().type == TokenType::kIdent) {
          ev_kind = "named";
          ev_named_event = cur().text;
          ++pos;
        } else {
          return ParseError(cur(), "event specification");
        }
        REACH_RETURN_IF_ERROR(expect_symbol(";"));
      } else if (cur().IsIdent("cond")) {
        ++pos;
        have_cond = true;
        REACH_ASSIGN_OR_RETURN(cond_mode, ParseMode(cur()));
        ++pos;
        if (cur().IsIdent("exists")) {
          // §7 extension: ECA + OQL[C++] — the condition is an existence
          // test over a query: `cond imm exists (select ...);`
          ++pos;
          if (!cur().IsSymbol("(")) return ParseError(cur(), "'('");
          ++pos;
          size_t start = cur().position;
          int depth = 1;
          size_t end = start;
          while (true) {
            if (cur().type == TokenType::kEnd) {
              return ParseError(cur(), "')' closing exists(...)");
            }
            if (cur().IsSymbol("(")) ++depth;
            if (cur().IsSymbol(")")) {
              --depth;
              if (depth == 0) {
                end = cur().position;
                break;
              }
            }
            ++pos;
          }
          cond_query = source.substr(start, end - start);
          ++pos;  // ')'
        } else if (!cur().IsSymbol(";")) {
          ExprParser ep(&tokens, &pos);
          REACH_ASSIGN_OR_RETURN(cond_expr, ep.Parse());
        }
        REACH_RETURN_IF_ERROR(expect_symbol(";"));
      } else if (cur().IsIdent("action")) {
        ++pos;
        have_action = true;
        REACH_ASSIGN_OR_RETURN(action_mode, ParseMode(cur()));
        ++pos;
        if (cur().IsSymbol(";")) {
          action.kind = ActionKind::kRegistry;
        } else if (cur().IsIdent("call")) {
          ++pos;
          if (cur().type != TokenType::kIdent) {
            return ParseError(cur(), "function name");
          }
          action.kind = ActionKind::kCall;
          action.fn_name = cur().text;
          ++pos;
        } else if (cur().IsIdent("abort")) {
          action.kind = ActionKind::kAbort;
          ++pos;
        } else if (cur().IsIdent("set")) {
          ++pos;
          action.kind = ActionKind::kSet;
          if (cur().type != TokenType::kIdent) {
            return ParseError(cur(), "variable");
          }
          action.var = cur().text;
          ++pos;
          if (!cur().IsSymbol(".")) return ParseError(cur(), "'.'");
          ++pos;
          if (cur().type != TokenType::kIdent) {
            return ParseError(cur(), "attribute");
          }
          action.member = cur().text;
          ++pos;
          if (!cur().IsSymbol("=")) return ParseError(cur(), "'='");
          ++pos;
          ExprParser ep(&tokens, &pos);
          REACH_ASSIGN_OR_RETURN(action.value, ep.Parse());
        } else if (cur().type == TokenType::kIdent) {
          // invoke form: var->method(args)
          action.kind = ActionKind::kInvoke;
          action.var = cur().text;
          ++pos;
          if (!cur().IsSymbol("->")) return ParseError(cur(), "'->'");
          ++pos;
          if (cur().type != TokenType::kIdent) {
            return ParseError(cur(), "method name");
          }
          action.member = cur().text;
          ++pos;
          REACH_RETURN_IF_ERROR(expect_symbol("("));
          while (!cur().IsSymbol(")")) {
            ExprParser ep(&tokens, &pos);
            REACH_ASSIGN_OR_RETURN(ExprPtr arg, ep.Parse());
            action.args.push_back(arg);
            if (cur().IsSymbol(",")) ++pos;
          }
          ++pos;  // ')'
        } else {
          return ParseError(cur(), "action statement");
        }
        REACH_RETURN_IF_ERROR(expect_symbol(";"));
      } else {
        return ParseError(cur(), "clause (prio/decl/event/cond/action)");
      }
    }
    ++pos;  // '}'
    if (cur().IsSymbol(";")) ++pos;

    if (!have_event) {
      return Status::InvalidArgument("rule " + rule_name + " has no event");
    }
    if (!have_action) {
      return Status::InvalidArgument("rule " + rule_name + " has no action");
    }

    // --- Resolve declarations -------------------------------------------
    auto bindings = std::make_shared<Bindings>();
    std::unordered_map<std::string, const Decl*> decl_by_var;
    for (const Decl& d : decls) {
      decl_by_var[d.var] = &d;
      if (!d.named.empty()) bindings->named[d.var] = d.named;
      if (!d.class_name.empty() && !types_->IsRegistered(d.class_name)) {
        return Status::NotFound("class " + d.class_name + " in rule " +
                                rule_name);
      }
    }

    // --- Resolve / define the event type --------------------------------
    EventTypeId event_id = kInvalidEventType;
    if (ev_kind == "after" || ev_kind == "before") {
      auto it = decl_by_var.find(ev_var);
      if (it == decl_by_var.end() || it->second->class_name.empty()) {
        return Status::InvalidArgument("event receiver '" + ev_var +
                                       "' must be a declared object");
      }
      const std::string& cls = it->second->class_name;
      bool after = (ev_kind == "after");
      SentryKind kind =
          after ? SentryKind::kMethodAfter : SentryKind::kMethodBefore;
      event_id = events_->registry()->FindDbEvent(kind, cls, ev_member);
      if (event_id == kInvalidEventType) {
        REACH_ASSIGN_OR_RETURN(
            event_id,
            events_->DefineMethodEvent(
                "ev_" + cls + "_" + ev_member + (after ? "_after" : "_before"),
                cls, ev_member, after));
      }
      bindings->receiver_var = ev_var;
      bindings->param_vars = ev_args;
    } else if (ev_kind == "set") {
      auto it = decl_by_var.find(ev_var);
      if (it == decl_by_var.end() || it->second->class_name.empty()) {
        return Status::InvalidArgument("event receiver '" + ev_var +
                                       "' must be a declared object");
      }
      const std::string& cls = it->second->class_name;
      event_id = events_->registry()->FindDbEvent(SentryKind::kStateChange,
                                                  cls, ev_member);
      if (event_id == kInvalidEventType) {
        REACH_ASSIGN_OR_RETURN(
            event_id, events_->DefineStateChangeEvent(
                          "ev_" + cls + "_set_" + ev_member, cls, ev_member));
      }
      bindings->receiver_var = ev_var;
    } else if (ev_kind == "persist" || ev_kind == "delete") {
      SentryKind kind = ev_kind == "persist" ? SentryKind::kPersist
                                             : SentryKind::kDelete;
      event_id = events_->registry()->FindDbEvent(kind, ev_member, "");
      if (event_id == kInvalidEventType) {
        REACH_ASSIGN_OR_RETURN(
            event_id, events_->DefineFlowEvent(
                          "ev_" + ev_kind + "_" + ev_member, kind, ev_member));
      }
    } else if (ev_kind == "commit" || ev_kind == "abort" ||
               ev_kind == "begin") {
      SentryKind kind = ev_kind == "commit" ? SentryKind::kTxnCommit
                        : ev_kind == "abort" ? SentryKind::kTxnAbort
                                             : SentryKind::kTxnBegin;
      event_id = events_->registry()->FindDbEvent(kind, "", "");
      if (event_id == kInvalidEventType) {
        REACH_ASSIGN_OR_RETURN(
            event_id, events_->DefineFlowEvent("ev_txn_" + ev_kind, kind));
      }
    } else if (ev_kind == "every") {
      REACH_ASSIGN_OR_RETURN(
          event_id, events_->DefinePeriodicEvent("ev_" + rule_name + "_timer",
                                                 ev_period_us));
    } else if (ev_kind == "composite") {
      REACH_ASSIGN_OR_RETURN(
          event_id,
          events_->DefineComposite("ev_" + rule_name + "_composite", ev_expr,
                                   ev_scope, ev_policy, ev_validity_us));
    } else {  // named
      const EventDescriptor* desc =
          events_->registry()->FindByName(ev_named_event);
      if (desc == nullptr) {
        return Status::NotFound("event type " + ev_named_event + " in rule " +
                                rule_name);
      }
      event_id = desc->id;
    }

    // --- Build the rule spec ---------------------------------------------
    RuleSpec spec;
    spec.name = rule_name;
    spec.priority = priority;
    spec.event = event_id;
    spec.coupling = have_cond ? cond_mode : action_mode;
    if (have_cond && action_mode != cond_mode) {
      if (action_mode == CouplingMode::kDeferred &&
          cond_mode == CouplingMode::kImmediate) {
        spec.action_coupling = RuleSpec::ActionCoupling::kDeferred;
      } else if (action_mode == CouplingMode::kDetached) {
        spec.action_coupling = RuleSpec::ActionCoupling::kDetached;
      } else {
        return Status::InvalidArgument(
            "rule " + rule_name +
            ": action coupling may not precede the condition coupling");
      }
    }

    if (have_cond) {
      if (!cond_query.empty()) {
        REACH_ASSIGN_OR_RETURN(SelectStatement stmt,
                               ParseSelect(cond_query));
        auto shared_stmt = std::make_shared<SelectStatement>(std::move(stmt));
        spec.condition = [shared_stmt](
                             Session& s,
                             const EventOccurrence&) -> Result<bool> {
          QueryPm qpm;
          REACH_ASSIGN_OR_RETURN(QueryResult result,
                                 qpm.Execute(s, *shared_stmt));
          return !result.rows.empty();
        };
      } else if (cond_expr) {
        spec.condition = [cond_expr, bindings](
                             Session& s,
                             const EventOccurrence& occ) -> Result<bool> {
          RuleEnv env(&s, bindings.get(), &occ);
          return EvaluateBool(cond_expr, &env);
        };
      } else {
        spec.condition = functions_->ConditionForRule(rule_name);
        if (!spec.condition) {
          return Status::NotFound("condition function " + rule_name +
                                  "Cond not registered");
        }
      }
    }

    switch (action.kind) {
      case ActionKind::kRegistry: {
        spec.action = functions_->ActionForRule(rule_name);
        if (!spec.action) {
          return Status::NotFound("action function " + rule_name +
                                  "Action not registered");
        }
        break;
      }
      case ActionKind::kCall: {
        spec.action = functions_->FindAction(action.fn_name);
        if (!spec.action) {
          return Status::NotFound("action function " + action.fn_name +
                                  " not registered");
        }
        break;
      }
      case ActionKind::kAbort: {
        spec.abort_triggering_on_failure = true;
        std::string msg = "rule " + rule_name + " abort action";
        spec.action = [msg](Session&, const EventOccurrence&) -> Status {
          return Status::Aborted(msg);
        };
        break;
      }
      case ActionKind::kSet: {
        auto act = std::make_shared<ParsedAction>(action);
        spec.action = [act, bindings](Session& s,
                                      const EventOccurrence& occ) -> Status {
          RuleEnv env(&s, bindings.get(), &occ);
          auto target = env.Resolve({act->var});
          if (!target.ok()) return target.status();
          if (!target.value().is_ref()) {
            return Status::InvalidArgument("'" + act->var +
                                           "' is not an object");
          }
          auto value = Evaluate(act->value, &env);
          if (!value.ok()) return value.status();
          return s.SetAttr(target.value().as_ref(), act->member,
                           value.value());
        };
        break;
      }
      case ActionKind::kInvoke: {
        auto act = std::make_shared<ParsedAction>(action);
        spec.action = [act, bindings](Session& s,
                                      const EventOccurrence& occ) -> Status {
          RuleEnv env(&s, bindings.get(), &occ);
          auto target = env.Resolve({act->var});
          if (!target.ok()) return target.status();
          if (!target.value().is_ref()) {
            return Status::InvalidArgument("'" + act->var +
                                           "' is not an object");
          }
          std::vector<Value> args;
          for (const ExprPtr& a : act->args) {
            auto v = Evaluate(a, &env);
            if (!v.ok()) return v.status();
            args.push_back(std::move(v).value());
          }
          auto r = s.Invoke(target.value().as_ref(), act->member,
                            std::move(args));
          return r.ok() ? Status::OK() : r.status();
        };
        break;
      }
      case ActionKind::kNone:
        return Status::Internal("action without kind");
    }

    REACH_ASSIGN_OR_RETURN(RuleId id, engine_->DefineRule(std::move(spec)));
    defined.push_back(id);
  }
  return defined;
}

}  // namespace reach
