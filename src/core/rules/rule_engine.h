// RuleEngine: rule registration (with Table 1 admission checking) and the
// firing machinery of §6.4 — immediate rules inline at the detection point,
// deferred rules at pre-commit, detached rules on a worker pool with the
// causal commit/abort dependencies enforced by the transaction manager.
//
// Multiple rules fired by one event execute either as an ordered serial
// ring-sequence (the first-prototype strategy) or as parallel sibling
// subtransactions (the nested-transaction strategy) — both are implemented
// so the E1 bench can compare them, exactly the measurement the paper says
// this design decision enables.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "core/events/event_manager.h"
#include "core/rules/rule.h"
#include "core/rules/rule_trace.h"
#include "oodb/database.h"

namespace reach {

struct RuleEngineOptions {
  enum class Execution {
    kSerialRingSequence,        // ordered, one at a time
    kParallelSubtransactions,   // sibling subtransactions on a pool
  };
  Execution multi_rule_execution = Execution::kSerialRingSequence;

  enum class TieBreak { kOldestFirst, kNewestFirst };
  /// Equal-priority ordering (§6.4): oldest rule first (default) or newest
  /// rule first.
  TieBreak tie_break = TieBreak::kOldestFirst;

  /// Third deferred-phase policy (§6.4): rules triggered by simple events
  /// fire ahead of rules triggered by composite events.
  bool simple_events_first = true;

  size_t detached_threads = 4;
  size_t parallel_rule_threads = 4;
  /// Deferred rules may raise events that trigger more deferred rules;
  /// bound the cascade (termination is undecidable in general [AWH92]).
  size_t max_deferred_rounds = 32;
};

struct RuleEngineStats {
  uint64_t immediate_runs = 0;
  uint64_t deferred_runs = 0;
  uint64_t detached_runs = 0;
  uint64_t failures = 0;
  uint64_t dependency_skips = 0;
  uint64_t deferred_rounds = 0;
};

class RuleEngine : public TxnListener {
 public:
  RuleEngine(Database* db, EventManager* events, RuleEngineOptions = {});
  ~RuleEngine() override;

  /// Register a rule. Rejects illegal event-category/coupling combinations
  /// per Table 1 and unknown event types.
  Result<RuleId> DefineRule(RuleSpec spec);

  Status SetRuleEnabled(const std::string& name, bool enabled);
  Status DropRule(const std::string& name);

  /// Snapshot of a rule (nullptr if unknown).
  const Rule* FindRule(const std::string& name) const;
  std::vector<std::string> RuleNames() const;
  Result<RuleStats> StatsOf(const std::string& name) const;

  /// TxnListener: the deferred execution phase (§6.4, transaction policy
  /// manager control at commit time).
  Status OnPreCommit(TxnId txn) override;
  void OnAbort(TxnId txn) override;

  /// Drain the detached executor (tests, benches, shutdown).
  void WaitDetachedIdle();

  RuleEngineStats stats() const;
  const RuleEngineOptions& options() const { return options_; }

  /// Firing trace (disabled by default): `trace()->set_enabled(true)`.
  RuleTrace* trace() { return &trace_; }

 private:
  struct Firing {
    RuleId rule = kInvalidRuleId;
    EventOccurrencePtr occ;
    bool action_only = false;  // condition already evaluated true
  };

  void OnOccurrence(EventTypeId type, const EventOccurrencePtr& occ);

  /// Sorted, enabled rules attached to `type` (priority desc, tie-break).
  std::vector<Rule*> RulesForEvent(EventTypeId type);

  /// Condition+action (or action only) in a subtransaction of `parent`.
  Status ExecuteInSubtxn(Rule* rule, const EventOccurrencePtr& occ,
                         TxnId parent, bool action_only);

  /// A set of rules against one parent transaction, serial or parallel.
  Status ExecuteSet(const std::vector<Firing>& firings, TxnId parent);

  void DispatchDetached(Rule* rule, const EventOccurrencePtr& occ,
                        CouplingMode mode, bool action_only);
  void RunDetachedTask(RuleId rule_id, EventOccurrencePtr occ,
                       CouplingMode mode, bool action_only);

  void EnqueueDeferred(Firing firing, TxnId root);

  Database* db_;
  EventManager* events_;
  RuleEngineOptions options_;

  mutable std::shared_mutex mu_;
  std::unordered_map<RuleId, std::unique_ptr<Rule>> rules_;
  std::unordered_map<std::string, RuleId> by_name_;
  std::unordered_map<EventTypeId, std::vector<RuleId>> by_event_;
  std::unordered_set<EventTypeId> listening_;
  RuleId next_id_ = 1;
  uint64_t next_registration_seq_ = 1;
  // Rules whose condition or action can land in a deferred queue; when
  // zero, pre-commit skips the composition barrier entirely.
  std::atomic<size_t> deferred_rule_count_{0};

  std::mutex deferred_mu_;
  std::unordered_map<TxnId, std::vector<Firing>> deferred_;

  // Transactions the engine itself runs (rule subtransactions, detached
  // rule transactions). Flow-control events they raise do not fire rules —
  // otherwise a rule on `commit` would retrigger itself forever.
  mutable std::mutex engine_txn_mu_;
  std::unordered_set<TxnId> engine_txns_;
  void MarkEngineTxn(TxnId txn);
  void UnmarkEngineTxn(TxnId txn);
  bool IsEngineTxn(TxnId txn) const;

  std::unique_ptr<ThreadPool> detached_pool_;
  std::unique_ptr<ThreadPool> rule_pool_;

  // Lock-free engine stats: hot-path increments are relaxed fetch_adds,
  // stats() assembles a RuleEngineStats snapshot. Process-wide totals are
  // mirrored into the obs::MetricsRegistry (rules.* counters).
  struct AtomicEngineStats {
    std::atomic<uint64_t> immediate_runs{0};
    std::atomic<uint64_t> deferred_runs{0};
    std::atomic<uint64_t> detached_runs{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> dependency_skips{0};
    std::atomic<uint64_t> deferred_rounds{0};
  };
  AtomicEngineStats engine_stats_;
  RuleTrace trace_;
};

}  // namespace reach
