#include "baseline/layered_adbms.h"

namespace reach {

Result<std::unique_ptr<ClosedDb>> ClosedDb::Open(
    const std::string& base_path) {
  auto closed = std::unique_ptr<ClosedDb>(new ClosedDb());
  REACH_ASSIGN_OR_RETURN(closed->db_, Database::Open(base_path));
  closed->session_ = std::make_unique<Session>(closed->db_.get());
  // System class backing the layered event journal (see LayeredAdbms).
  ClassBuilder journal("__LayeredJournal");
  journal.Attribute("events", ValueType::kList, Value(std::vector<Value>{}));
  REACH_RETURN_IF_ERROR(closed->db_->types()->RegisterClass(journal.Build()));
  return closed;
}

Status ClosedDb::RegisterClass(ClassBuilder& builder) {
  return db_->types()->RegisterClass(builder.Build());
}

Status ClosedDb::Begin() {
  if (session_->txn_depth() > 0) {
    // Flat transactions only: the closed system rejects nesting.
    return Status::NotSupported("closed OODBMS provides flat transactions");
  }
  return session_->Begin();
}

Status ClosedDb::Commit() { return session_->Commit(); }
Status ClosedDb::Abort() { return session_->Abort(); }

Result<Oid> ClosedDb::PersistNew(
    const std::string& class_name,
    std::vector<std::pair<std::string, Value>> attrs) {
  return session_->PersistNew(class_name, std::move(attrs));
}

Status ClosedDb::Bind(const std::string& name, const Oid& oid) {
  return session_->Bind(name, oid);
}

Result<Oid> ClosedDb::Lookup(const std::string& name) {
  return session_->Lookup(name);
}

Result<Value> ClosedDb::GetAttr(const Oid& oid, const std::string& attr) {
  return session_->GetAttr(oid, attr);
}

Status ClosedDb::SetAttr(const Oid& oid, const std::string& attr,
                         Value value) {
  return session_->SetAttr(oid, attr, std::move(value));
}

Result<Value> ClosedDb::Invoke(const Oid& oid, const std::string& method,
                               std::vector<Value> args) {
  return session_->Invoke(oid, method, std::move(args));
}

// ---------------------------------------------------------------------------

Status LayeredAdbms::DefineRule(const std::string& name,
                                const std::string& class_name,
                                const std::string& method, Coupling coupling,
                                LayeredCondition condition,
                                LayeredAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const LayeredRule& r : rules_) {
    if (r.name == name) return Status::AlreadyExists("rule " + name);
  }
  rules_.push_back({name, class_name, method, coupling, std::move(condition),
                    std::move(action)});
  return Status::OK();
}

Status LayeredAdbms::DefineDetachedRule(const std::string& name) {
  return Status::NotSupported(
      "detached coupling needs transaction-manager access (ids, commit "
      "and abort signals) the closed OODBMS does not expose — rule '" +
      name + "' cannot be layered (§4)");
}

Status LayeredAdbms::Begin() { return db_->Begin(); }

Status LayeredAdbms::Commit() {
  // Deferred rules run inside the same flat transaction, serially — the
  // only option without nested transactions (§4).
  std::vector<std::pair<std::string, std::vector<Value>>> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(deferred_);
  }
  for (auto& [key, args] : batch) {
    size_t sep = key.find("::");
    Status st = FireMatching(key.substr(0, sep), key.substr(sep + 2), args,
                             Coupling::kDeferred);
    if (!st.ok()) {
      Status abort_st = db_->Abort();
      (void)abort_st;
      return st;
    }
  }
  return db_->Commit();
}

Status LayeredAdbms::Abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    deferred_.clear();
  }
  return db_->Abort();
}

Status LayeredAdbms::JournalEvent(const std::string& class_name,
                                  const std::string& method,
                                  const std::vector<Value>& args) {
  // The only persistent shared state a layered monitor can use is the
  // database itself: append the announcement to an event-table object.
  if (!journal_oid_.valid()) {
    auto existing = db_->Lookup("__layered_event_journal");
    if (existing.ok()) {
      journal_oid_ = existing.value();
    } else {
      REACH_ASSIGN_OR_RETURN(
          journal_oid_,
          db_->PersistNew("__LayeredJournal",
                          {{"events", Value(std::vector<Value>{})}}));
      REACH_RETURN_IF_ERROR(db_->Bind("__layered_event_journal",
                                      journal_oid_));
    }
  }
  REACH_ASSIGN_OR_RETURN(Value events, db_->GetAttr(journal_oid_, "events"));
  std::vector<Value> list =
      events.is_list() ? events.as_list() : std::vector<Value>{};
  std::vector<Value> record{Value(class_name + "::" + method)};
  record.insert(record.end(), args.begin(), args.end());
  list.push_back(Value(std::move(record)));
  // Keep the journal bounded so the demo does not grow without limit; a
  // real layered system would need its own vacuuming rules for this too.
  if (list.size() > 512) list.erase(list.begin());
  ++journal_writes_;
  return db_->SetAttr(journal_oid_, "events", Value(std::move(list)));
}

Status LayeredAdbms::FireMatching(const std::string& class_name,
                                  const std::string& method,
                                  const std::vector<Value>& args,
                                  Coupling phase) {
  std::vector<LayeredRule> matching;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const LayeredRule& r : rules_) {
      if (r.coupling == phase && r.class_name == class_name &&
          r.method == method) {
        matching.push_back(r);
      }
    }
  }
  for (const LayeredRule& r : matching) {
    if (r.condition && !r.condition(*db_, args)) continue;
    ++rules_fired_;
    REACH_RETURN_IF_ERROR(r.action(*db_, args));
  }
  return Status::OK();
}

Result<Value> LayeredAdbms::WrappedInvoke(const Oid& oid,
                                          const std::string& class_name,
                                          const std::string& method,
                                          std::vector<Value> args) {
  ++announced_;
  REACH_RETURN_IF_ERROR(JournalEvent(class_name, method, args));
  REACH_ASSIGN_OR_RETURN(Value result, db_->Invoke(oid, method, args));
  REACH_RETURN_IF_ERROR(
      FireMatching(class_name, method, args, Coupling::kImmediate));
  {
    std::lock_guard<std::mutex> lock(mu_);
    deferred_.push_back({class_name + "::" + method, args});
  }
  return result;
}

Status LayeredAdbms::WrappedSetAttr(const Oid& oid,
                                    const std::string& class_name,
                                    const std::string& attr, Value value) {
  ++announced_;
  std::vector<Value> args{value};
  REACH_RETURN_IF_ERROR(JournalEvent(class_name, "set_" + attr, args));
  REACH_RETURN_IF_ERROR(db_->SetAttr(oid, attr, std::move(value)));
  return FireMatching(class_name, "set_" + attr, args, Coupling::kImmediate);
}

}  // namespace reach
