// The §4 baseline: active capabilities layered on top of a *closed*
// OODBMS, reproducing the architecture the REACH group abandoned.
//
// ClosedDb models the commercial system: flat transactions only, no access
// to the transaction manager, no method-event trapping, no meta bus. The
// application talks to it through an opaque API.
//
// LayeredAdbms is the rule layer bolted on top. Because the closed system
// cannot trap method invocations, applications must *announce* events
// explicitly through wrapper calls (the parallel-class-hierarchy problem:
// every sentried class needs a wrapped twin). Announced events are
// journaled into a persistent event table inside the database — the only
// shared state available to a layered monitor — and rules are matched by a
// linear scan of the rule list (no per-event-type ECA managers). Only
// immediate and deferred coupling exist: without nested transactions rules
// run serially inside the triggering flat transaction, and without
// transaction-manager access the detached causally-dependent modes cannot
// be implemented at all (the paper's experience report, reproduced as
// NotSupported errors).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "oodb/database.h"
#include "oodb/session.h"

namespace reach {

/// Opaque facade over the OODB: what a closed commercial system exposes.
class ClosedDb {
 public:
  static Result<std::unique_ptr<ClosedDb>> Open(const std::string& base_path);

  Status RegisterClass(ClassBuilder& builder);

  // Flat transactions only.
  Status Begin();
  Status Commit();
  Status Abort();

  Result<Oid> PersistNew(const std::string& class_name,
                         std::vector<std::pair<std::string, Value>> attrs);
  Status Bind(const std::string& name, const Oid& oid);
  Result<Oid> Lookup(const std::string& name);
  Result<Value> GetAttr(const Oid& oid, const std::string& attr);
  Status SetAttr(const Oid& oid, const std::string& attr, Value value);
  Result<Value> Invoke(const Oid& oid, const std::string& method,
                       std::vector<Value> args);

  Session* session() { return session_.get(); }

 private:
  ClosedDb() = default;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

/// Rule layer on top of the closed system.
class LayeredAdbms {
 public:
  enum class Coupling { kImmediate, kDeferred };

  using LayeredCondition =
      std::function<bool(ClosedDb&, const std::vector<Value>& args)>;
  using LayeredAction =
      std::function<Status(ClosedDb&, const std::vector<Value>& args)>;

  explicit LayeredAdbms(ClosedDb* db) : db_(db) {}

  /// Register a rule on announced event `(class_name, method)`.
  Status DefineRule(const std::string& name, const std::string& class_name,
                    const std::string& method, Coupling coupling,
                    LayeredCondition condition, LayeredAction action);

  /// The paper's finding: detached modes need transaction-manager access a
  /// closed system does not grant.
  Status DefineDetachedRule(const std::string& name);

  // -- The wrapped ("active twin") operation path --------------------------

  Status Begin();
  Status Commit();  // runs deferred rules first (inside the flat txn)
  Status Abort();

  /// Wrapped method invocation: announce + journal + fire, then invoke.
  Result<Value> WrappedInvoke(const Oid& oid, const std::string& class_name,
                              const std::string& method,
                              std::vector<Value> args);

  /// Wrapped attribute write (state changes are announced manually too —
  /// the closed system's low-level write path cannot be modified, §4).
  Status WrappedSetAttr(const Oid& oid, const std::string& class_name,
                        const std::string& attr, Value value);

  uint64_t announced() const { return announced_; }
  uint64_t journal_writes() const { return journal_writes_; }
  uint64_t rules_fired() const { return rules_fired_; }

 private:
  struct LayeredRule {
    std::string name;
    std::string class_name;
    std::string method;
    Coupling coupling;
    LayeredCondition condition;
    LayeredAction action;
  };

  /// Journal the announcement into the in-database event table.
  Status JournalEvent(const std::string& class_name,
                      const std::string& method,
                      const std::vector<Value>& args);

  /// Linear-scan rule matching (no per-type managers in a layered system).
  Status FireMatching(const std::string& class_name,
                      const std::string& method,
                      const std::vector<Value>& args, Coupling phase);

  ClosedDb* db_;
  std::mutex mu_;
  std::vector<LayeredRule> rules_;
  std::vector<std::pair<std::string, std::vector<Value>>> deferred_;
  Oid journal_oid_;  // persistent event table
  uint64_t announced_ = 0;
  uint64_t journal_writes_ = 0;
  uint64_t rules_fired_ = 0;
};

}  // namespace reach
