#include "txn/lock_manager.h"

#include <chrono>

namespace reach {

void LockManager::RegisterTxn(TxnId txn, TxnId parent) {
  std::lock_guard<std::mutex> lock(mu_);
  parent_[txn] = parent;
}

void LockManager::UnregisterTxn(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  parent_.erase(txn);
}

bool LockManager::IsSelfOrAncestor(TxnId maybe_ancestor, TxnId txn) const {
  TxnId cur = txn;
  while (cur != kNoTxn) {
    if (cur == maybe_ancestor) return true;
    auto it = parent_.find(cur);
    cur = (it == parent_.end()) ? kNoTxn : it->second;
  }
  return false;
}

bool LockManager::CanGrant(const Resource& res, TxnId txn,
                           LockMode mode) const {
  for (const Grant& g : res.grants) {
    if (g.txn == txn) continue;  // own grant: upgrade handled by caller
    bool conflict =
        (mode == LockMode::kExclusive || g.mode == LockMode::kExclusive);
    if (!conflict) continue;
    // Moss rule: conflicting holders that are ancestors do not block.
    if (!IsSelfOrAncestor(g.txn, txn)) return false;
  }
  return true;
}

void LockManager::DoGrant(Resource* res, TxnId txn, LockMode mode) {
  for (Grant& g : res->grants) {
    if (g.txn == txn) {
      if (mode == LockMode::kExclusive) g.mode = LockMode::kExclusive;
      return;
    }
  }
  res->grants.push_back({txn, mode});
}

bool LockManager::WaitReaches(TxnId waiter, TxnId target,
                              std::unordered_set<TxnId>* visited) const {
  if (waiter == target) return true;
  if (!visited->insert(waiter).second) return false;
  auto wit = waiting_on_.find(waiter);
  if (wit == waiting_on_.end()) return false;
  auto rit = table_.find(wit->second);
  if (rit == table_.end()) return false;
  for (const Grant& g : rit->second.grants) {
    if (g.txn == waiter) continue;
    if (WaitReaches(g.txn, target, visited)) return true;
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, const Oid& resource, LockMode mode,
                            int64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  Resource& res = table_[resource];

  // Fast path: already held in a covering mode.
  for (const Grant& g : res.grants) {
    if (g.txn == txn &&
        (g.mode == LockMode::kExclusive || mode == LockMode::kShared)) {
      return Status::OK();
    }
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_us);
  res.waiters.insert(txn);
  waiting_on_[txn] = resource;
  Status result = Status::OK();
  while (!CanGrant(res, txn, mode)) {
    // Deadlock check: would blocking here close a cycle? A cycle exists if
    // some conflicting holder (transitively) waits on us.
    bool deadlock = false;
    for (const Grant& g : res.grants) {
      if (g.txn == txn) continue;
      bool conflict =
          (mode == LockMode::kExclusive || g.mode == LockMode::kExclusive);
      if (!conflict || IsSelfOrAncestor(g.txn, txn)) continue;
      std::unordered_set<TxnId> visited;
      if (WaitReaches(g.txn, txn, &visited)) {
        deadlock = true;
        break;
      }
    }
    if (deadlock) {
      ++deadlocks_;
      result = Status::Aborted("deadlock on " + resource.ToString());
      break;
    }
    if (timeout_us >= 0) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          !CanGrant(res, txn, mode)) {
        result = Status::TimedOut("lock wait on " + resource.ToString());
        break;
      }
    } else {
      cv_.wait(lock);
    }
  }
  res.waiters.erase(txn);
  waiting_on_.erase(txn);
  if (result.ok()) DoGrant(&res, txn, mode);
  return result;
}

Status LockManager::AcquireSharedBatch(TxnId txn,
                                       const std::vector<Oid>& resources,
                                       int64_t timeout_us) {
  std::vector<Oid> contended;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Oid& oid : resources) {
      Resource& res = table_[oid];
      bool held = false;
      for (const Grant& g : res.grants) {
        if (g.txn == txn) {  // any own grant covers a shared request
          held = true;
          break;
        }
      }
      if (held) continue;
      if (CanGrant(res, txn, LockMode::kShared)) {
        DoGrant(&res, txn, LockMode::kShared);
      } else {
        contended.push_back(oid);
      }
    }
  }
  for (const Oid& oid : contended) {
    Status st = Acquire(txn, oid, LockMode::kShared, timeout_us);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = table_.begin(); it != table_.end();) {
      auto& grants = it->second.grants;
      for (size_t i = 0; i < grants.size();) {
        if (grants[i].txn == txn) {
          grants.erase(grants.begin() + i);
        } else {
          ++i;
        }
      }
      if (grants.empty() && it->second.waiters.empty()) {
        it = table_.erase(it);
      } else {
        ++it;
      }
    }
  }
  cv_.notify_all();
}

void LockManager::TransferLocks(TxnId child, TxnId parent) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [oid, res] : table_) {
      int child_idx = -1, parent_idx = -1;
      for (size_t i = 0; i < res.grants.size(); ++i) {
        if (res.grants[i].txn == child) child_idx = static_cast<int>(i);
        if (res.grants[i].txn == parent) parent_idx = static_cast<int>(i);
      }
      if (child_idx < 0) continue;
      if (parent_idx >= 0) {
        if (res.grants[child_idx].mode == LockMode::kExclusive) {
          res.grants[parent_idx].mode = LockMode::kExclusive;
        }
        res.grants.erase(res.grants.begin() + child_idx);
      } else {
        res.grants[child_idx].txn = parent;
      }
    }
  }
  cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, const Oid& resource, LockMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(resource);
  if (it == table_.end()) return false;
  for (const Grant& g : it->second.grants) {
    if (!IsSelfOrAncestor(g.txn, txn)) continue;
    if (g.mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return true;
    }
  }
  return false;
}

}  // namespace reach
