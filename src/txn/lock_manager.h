// Strict two-phase locking with shared/exclusive modes, Moss-style nested
// transaction rules (a child may acquire locks its ancestors hold), lock
// transfer on subtransaction commit, and wait-for-graph deadlock detection.
#pragma once

#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace reach {

enum class LockMode { kShared, kExclusive };

class LockManager {
 public:
  /// Make `txn` known, with its parent (kNoTxn for top-level). Required
  /// before the first Acquire.
  void RegisterTxn(TxnId txn, TxnId parent);

  /// Forget a finished transaction (after ReleaseAll/TransferLocks).
  void UnregisterTxn(TxnId txn);

  /// Acquire (or upgrade to) `mode` on `resource`. Blocks while conflicting
  /// locks are held by non-ancestors. Returns Aborted if waiting would
  /// create a deadlock — the caller must then abort `txn`.
  /// `timeout_us` < 0 means wait forever.
  Status Acquire(TxnId txn, const Oid& resource, LockMode mode,
                 int64_t timeout_us = -1);

  /// Acquire shared locks on a batch of resources with one mutex hold for
  /// every uncontended grant; contended resources fall back to the blocking
  /// per-resource Acquire (keeping deadlock detection). Used by batch object
  /// fetches (query morsels), where per-OID locking would serialize on mu_.
  Status AcquireSharedBatch(TxnId txn, const std::vector<Oid>& resources,
                            int64_t timeout_us = -1);

  /// Release every lock `txn` holds and wake waiters.
  void ReleaseAll(TxnId txn);

  /// Move all of `child`'s locks to `parent` (subtransaction commit).
  void TransferLocks(TxnId child, TxnId parent);

  /// True if `txn` holds `resource` in a mode covering `mode` (itself or
  /// via an ancestor, per Moss rules for reads).
  bool Holds(TxnId txn, const Oid& resource, LockMode mode);

  /// Statistics.
  uint64_t deadlocks_detected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return deadlocks_;
  }

 private:
  struct Grant {
    TxnId txn;
    LockMode mode;
  };
  struct Resource {
    std::vector<Grant> grants;
    std::unordered_set<TxnId> waiters;
  };

  /// True if `maybe_ancestor` is `txn` or an ancestor of `txn`.
  bool IsSelfOrAncestor(TxnId maybe_ancestor, TxnId txn) const;

  /// True if `txn` could be granted `mode` on `res` right now.
  bool CanGrant(const Resource& res, TxnId txn, LockMode mode) const;

  /// Record the grant (merging with an existing grant on upgrade).
  void DoGrant(Resource* res, TxnId txn, LockMode mode);

  /// DFS over the wait-for graph: does a wait by `waiter` reach `target`?
  bool WaitReaches(TxnId waiter, TxnId target,
                   std::unordered_set<TxnId>* visited) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<Oid, Resource> table_;
  std::unordered_map<TxnId, TxnId> parent_;
  // While blocked, a txn records the resource it waits for (wait-for graph).
  std::unordered_map<TxnId, Oid> waiting_on_;
  uint64_t deadlocks_ = 0;
};

}  // namespace reach
