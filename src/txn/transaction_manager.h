// Transaction manager: flat and closed-nested transactions, rollback via
// per-transaction undo chains, and the commit/abort dependency tracking
// required by REACH's causally dependent detached coupling modes.
//
// WAL discipline for nested transactions: every operation is logged under
// the id of the (sub)transaction that performed it. Subtransaction commit
// writes nothing — at top-level commit a commit record is emitted for the
// root and every subtransaction that committed into it, then the log is
// forced once. Rollback logs compensating physical records, then an abort
// record for the rolled-back transaction and every subtransaction merged
// into it, so recovery never treats their operations as loser work.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/storage_manager.h"
#include "txn/lock_manager.h"

namespace reach {

enum class TxnState { kActive, kCommitted, kAborted };

/// Observer of transaction lifecycle; the REACH event layer subscribes to
/// turn BOT/EOT/commit/abort into flow-control events, and the rule engine
/// uses OnPreCommit to run deferred rules.
class TxnListener {
 public:
  virtual ~TxnListener() = default;
  virtual void OnBegin(TxnId txn, TxnId parent) {
    (void)txn;
    (void)parent;
  }
  /// Top-level transactions only, after the application finished its work
  /// but before the commit record. A non-OK status aborts the transaction.
  virtual Status OnPreCommit(TxnId txn) {
    (void)txn;
    return Status::OK();
  }
  virtual void OnCommit(TxnId txn) { (void)txn; }
  virtual void OnAbort(TxnId txn) { (void)txn; }
  /// Nested commit: `child` merged into `parent` — the child's effects now
  /// share the parent's fate, so any per-transaction bookkeeping (cache
  /// invalidation sets, index undo logs, change sets) must be merged into
  /// the parent, not discarded. Defaults to OnCommit(child) for listeners
  /// that do not track per-transaction state.
  virtual void OnCommitChild(TxnId child, TxnId parent) {
    (void)parent;
    OnCommit(child);
  }
};

class TransactionManager {
 public:
  /// Wires rollback support into `storage`'s object store (mutation
  /// listener). `storage` must outlive this object.
  explicit TransactionManager(StorageManager* storage);

  /// Start a transaction. `parent` != kNoTxn starts a closed-nested
  /// subtransaction of an active transaction.
  Result<TxnId> Begin(TxnId parent = kNoTxn);

  /// Commit. Top-level: runs pre-commit listeners, enforces causal
  /// dependencies, forces the log, releases locks. Nested: merges undo
  /// chain and locks into the parent.
  Status Commit(TxnId txn);

  /// Roll back `txn` (and any active subtransactions).
  Status Abort(TxnId txn);

  /// `dependent` may only commit after `on` commits; if `on` aborts,
  /// `dependent` aborts (parallel / sequential causally dependent rules).
  Status AddCommitDependency(TxnId dependent, TxnId on);

  /// `dependent` may only commit if `on` aborts (exclusive causally
  /// dependent rules); if `on` commits, `dependent` aborts.
  Status AddAbortDependency(TxnId dependent, TxnId on);

  /// Block until `txn` finishes; true = committed. Transactions unknown to
  /// this manager produce NotFound.
  Result<bool> WaitForOutcome(TxnId txn);

  bool IsActive(TxnId txn) const;
  TxnId RootOf(TxnId txn) const;

  void AddListener(TxnListener* listener);
  void RemoveListener(TxnListener* listener);

  LockManager* locks() { return &locks_; }

  /// Number of transactions currently active (roots + subtransactions).
  size_t active_count() const;

  uint64_t begun_count() const { return begun_.load(); }

 private:
  struct UndoEntry {
    PageId page;
    SlotId slot;
    WalCellImage before;
  };
  struct Txn {
    TxnId id = kNoTxn;
    TxnId parent = kNoTxn;
    TxnState state = TxnState::kActive;
    size_t active_children = 0;
    std::vector<UndoEntry> undo;            // newest last
    std::vector<TxnId> merged;              // committed descendants
    std::vector<TxnId> commit_deps;         // must commit
    std::vector<TxnId> abort_deps;          // must abort
  };

  /// Record a before-image (ObjectStore mutation listener).
  void RecordUndo(TxnId txn, PageId page, SlotId slot,
                  const WalCellImage& before);

  /// Shared rollback: applies undo, logs compensations + abort records,
  /// releases locks, notifies listeners. Expects mu_ NOT held.
  Status DoAbort(TxnId txn);

  void FinishOutcome(TxnId txn, bool committed);

  StorageManager* storage_;
  LockManager locks_;

  mutable std::mutex mu_;
  std::condition_variable outcome_cv_;
  std::unordered_map<TxnId, Txn> txns_;
  std::unordered_map<TxnId, bool> outcomes_;  // finished txns
  TxnId next_id_ = 1;
  std::atomic<uint64_t> begun_{0};

  std::mutex listener_mu_;
  std::vector<TxnListener*> listeners_;
};

}  // namespace reach
