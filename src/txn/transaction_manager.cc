#include "txn/transaction_manager.h"

#include <algorithm>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {

namespace {

struct TxnMetrics {
  obs::Counter* begun;
  obs::Counter* committed;
  obs::Counter* aborted;
  obs::Histogram* commit_ns;

  static const TxnMetrics& Get() {
    static const TxnMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      return TxnMetrics{reg.counter(obs::kTxnBegun),
                        reg.counter(obs::kTxnCommitted),
                        reg.counter(obs::kTxnAborted),
                        reg.histogram(obs::kTxnCommitNs)};
    }();
    return m;
  }
};

}  // namespace

TransactionManager::TransactionManager(StorageManager* storage)
    : storage_(storage) {
  storage_->objects()->set_mutation_listener(
      [this](TxnId txn, PageId page, SlotId slot, const WalCellImage& before) {
        RecordUndo(txn, page, slot, before);
      });
}

void TransactionManager::RecordUndo(TxnId txn, PageId page, SlotId slot,
                                    const WalCellImage& before) {
  if (txn == kNoTxn) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  // Unknown id: a compensation logged during rollback (the txn entry was
  // already detached) or a non-transactional write — nothing to record.
  if (it == txns_.end() || it->second.state != TxnState::kActive) return;
  it->second.undo.push_back({page, slot, before});
}

Result<TxnId> TransactionManager::Begin(TxnId parent) {
  REACH_FAULT_POINT(faults::kTxnBegin);
  TxnId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (parent != kNoTxn) {
      auto pit = txns_.find(parent);
      if (pit == txns_.end() || pit->second.state != TxnState::kActive) {
        return Status::FailedPrecondition("parent transaction not active");
      }
      pit->second.active_children++;
    }
    id = next_id_++;
    Txn& txn = txns_[id];
    txn.id = id;
    txn.parent = parent;
  }
  begun_.fetch_add(1);
  TxnMetrics::Get().begun->Inc();
  locks_.RegisterTxn(id, parent);
  REACH_RETURN_IF_ERROR(storage_->LogBegin(id));
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    for (TxnListener* l : listeners_) l->OnBegin(id, parent);
  }
  return id;
}

Status TransactionManager::Commit(TxnId txn_id) {
  // Before any state change: an injected error leaves the transaction
  // active so the caller can still abort it cleanly.
  REACH_FAULT_POINT(faults::kTxnCommitEntry);
  TxnId parent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txns_.find(txn_id);
    if (it == txns_.end() || it->second.state != TxnState::kActive) {
      return Status::FailedPrecondition("transaction not active");
    }
    if (it->second.active_children > 0) {
      return Status::FailedPrecondition(
          "subtransactions still active; commit or abort them first");
    }
    parent = it->second.parent;
  }

  if (parent == kNoTxn) {
    // Top-level commit latency: pre-commit hooks (deferred rules), causal
    // dependency waits, and the log force are all part of the number the
    // application experiences.
    uint64_t commit_start_ns = obs::NowNanosIfEnabled();
    // Pre-commit phase (deferred rule execution). Listeners may start
    // subtransactions of txn_id, so no lock is held here.
    std::vector<TxnListener*> listeners;
    {
      std::lock_guard<std::mutex> lock(listener_mu_);
      listeners = listeners_;
    }
    for (TxnListener* l : listeners) {
      Status st = l->OnPreCommit(txn_id);
      if (!st.ok()) {
        Status abort_st = DoAbort(txn_id);
        (void)abort_st;
        return Status::Aborted("pre-commit hook failed: " + st.ToString());
      }
    }

    // Causal dependency checks (parallel/sequential/exclusive detached).
    std::vector<TxnId> commit_deps, abort_deps;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = txns_.find(txn_id);
      if (it == txns_.end() || it->second.state != TxnState::kActive) {
        return Status::FailedPrecondition("transaction no longer active");
      }
      commit_deps = it->second.commit_deps;
      abort_deps = it->second.abort_deps;
    }
    for (TxnId dep : commit_deps) {
      auto outcome = WaitForOutcome(dep);
      if (!outcome.ok() || !outcome.value()) {
        REACH_RETURN_IF_ERROR(DoAbort(txn_id));
        return Status::Aborted("causal dependency " + std::to_string(dep) +
                               " did not commit");
      }
    }
    for (TxnId dep : abort_deps) {
      auto outcome = WaitForOutcome(dep);
      if (!outcome.ok() || outcome.value()) {
        REACH_RETURN_IF_ERROR(DoAbort(txn_id));
        return Status::Aborted("exclusive dependency " + std::to_string(dep) +
                               " committed");
      }
    }

    // Durability point: commit records for the whole tree, then force. If
    // the log cannot be written or forced, the commit never happened — the
    // tree must roll back. Returning with the transaction parked in
    // kCommitted would leak its locks and wedge every later transaction, so
    // revert to active and abort (the compensations redo over any buffered
    // commit records, keeping recovery correct either way).
    std::vector<TxnId> merged;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = txns_.find(txn_id);
      merged = it->second.merged;
      it->second.state = TxnState::kCommitted;
    }
    Status force = Status::OK();
    for (TxnId m : merged) {
      WalRecord rec;
      rec.type = WalRecordType::kCommit;
      rec.txn = m;
      auto lsn = storage_->wal()->Append(std::move(rec));
      if (!lsn.ok()) {
        force = lsn.status();
        break;
      }
    }
    if (force.ok()) {
      // Crash here: commit records are buffered but never forced — recovery
      // must roll the whole tree back.
      force = REACH_FAULT_HIT(faults::kTxnCommitForce);
      if (force.ok()) {
        // Durability point: append the root commit record, then block until
        // the durable-LSN watermark passes it. No TransactionManager lock is
        // held here, so concurrent committers pile into the same flusher
        // batch and share one fsync (group commit).
        auto commit_lsn = storage_->LogCommit(txn_id);
        force = commit_lsn.ok()
                    ? storage_->wal()->WaitDurable(*commit_lsn)
                    : commit_lsn.status();
      }
    }
    if (!force.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = txns_.find(txn_id);
        if (it != txns_.end()) it->second.state = TxnState::kActive;
      }
      Status abort_st = DoAbort(txn_id);
      (void)abort_st;
      return force;
    }

    locks_.ReleaseAll(txn_id);
    locks_.UnregisterTxn(txn_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      txns_.erase(txn_id);
    }
    FinishOutcome(txn_id, /*committed=*/true);
    if (commit_start_ns != 0) {
      TxnMetrics::Get().commit_ns->RecordAlways(obs::NowNanos() -
                                                commit_start_ns);
    }
    TxnMetrics::Get().committed->Inc();
    std::lock_guard<std::mutex> lock(listener_mu_);
    for (TxnListener* l : listeners_) l->OnCommit(txn_id);
    return Status::OK();
  }

  // Nested commit: merge into the parent; nothing becomes durable yet.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txns_.find(txn_id);
    auto pit = txns_.find(parent);
    if (pit == txns_.end()) {
      return Status::Internal("parent transaction record missing");
    }
    Txn& child = it->second;
    Txn& par = pit->second;
    par.undo.insert(par.undo.end(),
                    std::make_move_iterator(child.undo.begin()),
                    std::make_move_iterator(child.undo.end()));
    par.merged.push_back(txn_id);
    par.merged.insert(par.merged.end(), child.merged.begin(),
                      child.merged.end());
    par.commit_deps.insert(par.commit_deps.end(), child.commit_deps.begin(),
                           child.commit_deps.end());
    par.abort_deps.insert(par.abort_deps.end(), child.abort_deps.begin(),
                          child.abort_deps.end());
    par.active_children--;
    txns_.erase(it);
  }
  locks_.TransferLocks(txn_id, parent);
  locks_.UnregisterTxn(txn_id);
  FinishOutcome(txn_id, /*committed=*/true);
  std::lock_guard<std::mutex> lock(listener_mu_);
  for (TxnListener* l : listeners_) l->OnCommitChild(txn_id, parent);
  return Status::OK();
}

Status TransactionManager::DoAbort(TxnId txn_id) {
  REACH_FAULT_POINT(faults::kTxnAbortEntry);
  // Abort active children first (deepest-first through recursion). A child
  // whose abort reports an error has still been cleaned up (see below), so
  // keep going: the parent must not stay active holding locks.
  Status result = Status::OK();
  for (;;) {
    TxnId child = kNoTxn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [id, txn] : txns_) {
        if (txn.parent == txn_id && txn.state == TxnState::kActive) {
          child = id;
          break;
        }
      }
    }
    if (child == kNoTxn) break;
    Status st = DoAbort(child);
    if (!st.ok() && result.ok()) result = st;
  }

  std::vector<UndoEntry> undo;
  std::vector<TxnId> merged;
  TxnId parent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txns_.find(txn_id);
    if (it == txns_.end() || it->second.state != TxnState::kActive) {
      return Status::FailedPrecondition("transaction not active");
    }
    it->second.state = TxnState::kAborted;  // stop undo recording
    undo = std::move(it->second.undo);
    merged = it->second.merged;
    parent = it->second.parent;
  }

  // Compensate newest-first; each compensation is itself WAL-logged. If any
  // compensation cannot be applied, write no abort record: recovery then
  // treats the transaction as a loser and undoes it from the original
  // before-images, which is idempotent with whatever compensations did land.
  // Either way the in-memory cleanup below must run — an abort that leaves
  // its locks behind would block every later transaction forever.
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    Status st = storage_->objects()->ApplyImageLogged(txn_id, it->page,
                                                      it->slot, it->before);
    if (!st.ok() && result.ok()) result = st;
  }
  if (result.ok()) {
    // Abort records for this txn and every descendant merged into it.
    for (TxnId m : merged) {
      WalRecord rec;
      rec.type = WalRecordType::kAbort;
      rec.txn = m;
      auto lsn = storage_->wal()->Append(std::move(rec));
      if (!lsn.ok()) {
        result = lsn.status();
        break;
      }
    }
    if (result.ok()) {
      Status st = storage_->LogAbort(txn_id);
      if (!st.ok()) result = st;
    }
  }

  locks_.ReleaseAll(txn_id);
  locks_.UnregisterTxn(txn_id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (parent != kNoTxn) {
      auto pit = txns_.find(parent);
      if (pit != txns_.end()) pit->second.active_children--;
    }
    txns_.erase(txn_id);
  }
  FinishOutcome(txn_id, /*committed=*/false);
  TxnMetrics::Get().aborted->Inc();
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    for (TxnListener* l : listeners_) l->OnAbort(txn_id);
  }
  return result;
}

Status TransactionManager::Abort(TxnId txn_id) { return DoAbort(txn_id); }

Status TransactionManager::AddCommitDependency(TxnId dependent, TxnId on) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(dependent);
  if (it == txns_.end() || it->second.state != TxnState::kActive) {
    return Status::FailedPrecondition("dependent transaction not active");
  }
  it->second.commit_deps.push_back(on);
  return Status::OK();
}

Status TransactionManager::AddAbortDependency(TxnId dependent, TxnId on) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(dependent);
  if (it == txns_.end() || it->second.state != TxnState::kActive) {
    return Status::FailedPrecondition("dependent transaction not active");
  }
  it->second.abort_deps.push_back(on);
  return Status::OK();
}

Result<bool> TransactionManager::WaitForOutcome(TxnId txn_id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto oit = outcomes_.find(txn_id);
    if (oit != outcomes_.end()) return oit->second;
    if (!txns_.contains(txn_id)) {
      return Status::NotFound("unknown transaction " +
                              std::to_string(txn_id));
    }
    outcome_cv_.wait(lock);
  }
}

void TransactionManager::FinishOutcome(TxnId txn_id, bool committed) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    outcomes_[txn_id] = committed;
  }
  outcome_cv_.notify_all();
}

bool TransactionManager::IsActive(TxnId txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn_id);
  return it != txns_.end() && it->second.state == TxnState::kActive;
}

TxnId TransactionManager::RootOf(TxnId txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  TxnId cur = txn_id;
  for (;;) {
    auto it = txns_.find(cur);
    if (it == txns_.end() || it->second.parent == kNoTxn) return cur;
    cur = it->second.parent;
  }
}

void TransactionManager::AddListener(TxnListener* listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  listeners_.push_back(listener);
}

void TransactionManager::RemoveListener(TxnListener* listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

size_t TransactionManager::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, txn] : txns_) {
    if (txn.state == TxnState::kActive) ++n;
  }
  return n;
}

}  // namespace reach
