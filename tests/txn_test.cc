#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "storage/storage_manager.h"
#include "test_util.h"
#include "txn/lock_manager.h"
#include "txn/transaction_manager.h"

namespace reach {
namespace {

using reach::testing::TempDir;

// ---------------------------------------------------------------------------
// LockManager
// ---------------------------------------------------------------------------

class LockManagerTest : public ::testing::Test {
 protected:
  LockManager lm_;
  Oid res_a_{1, 0, 1};
  Oid res_b_{2, 0, 1};
};

TEST_F(LockManagerTest, SharedLocksCompatible) {
  lm_.RegisterTxn(1, kNoTxn);
  lm_.RegisterTxn(2, kNoTxn);
  EXPECT_TRUE(lm_.Acquire(1, res_a_, LockMode::kShared).ok());
  EXPECT_TRUE(lm_.Acquire(2, res_a_, LockMode::kShared).ok());
  EXPECT_TRUE(lm_.Holds(1, res_a_, LockMode::kShared));
  EXPECT_TRUE(lm_.Holds(2, res_a_, LockMode::kShared));
}

TEST_F(LockManagerTest, ExclusiveBlocksOther) {
  lm_.RegisterTxn(1, kNoTxn);
  lm_.RegisterTxn(2, kNoTxn);
  ASSERT_TRUE(lm_.Acquire(1, res_a_, LockMode::kExclusive).ok());
  Status st = lm_.Acquire(2, res_a_, LockMode::kShared, /*timeout_us=*/20000);
  EXPECT_TRUE(st.IsTimedOut());
  lm_.ReleaseAll(1);
  EXPECT_TRUE(lm_.Acquire(2, res_a_, LockMode::kShared).ok());
}

TEST_F(LockManagerTest, ReacquireAndUpgrade) {
  lm_.RegisterTxn(1, kNoTxn);
  ASSERT_TRUE(lm_.Acquire(1, res_a_, LockMode::kShared).ok());
  ASSERT_TRUE(lm_.Acquire(1, res_a_, LockMode::kShared).ok());
  ASSERT_TRUE(lm_.Acquire(1, res_a_, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm_.Holds(1, res_a_, LockMode::kExclusive));
}

TEST_F(LockManagerTest, UpgradeBlockedByOtherReader) {
  lm_.RegisterTxn(1, kNoTxn);
  lm_.RegisterTxn(2, kNoTxn);
  ASSERT_TRUE(lm_.Acquire(1, res_a_, LockMode::kShared).ok());
  ASSERT_TRUE(lm_.Acquire(2, res_a_, LockMode::kShared).ok());
  EXPECT_TRUE(
      lm_.Acquire(1, res_a_, LockMode::kExclusive, 20000).IsTimedOut());
  lm_.ReleaseAll(2);
  EXPECT_TRUE(lm_.Acquire(1, res_a_, LockMode::kExclusive).ok());
}

TEST_F(LockManagerTest, ChildMayUseAncestorLocks) {
  lm_.RegisterTxn(1, kNoTxn);
  lm_.RegisterTxn(2, 1);  // child of 1
  lm_.RegisterTxn(3, 2);  // grandchild
  ASSERT_TRUE(lm_.Acquire(1, res_a_, LockMode::kExclusive).ok());
  // Moss rule: conflicting holders that are ancestors do not block.
  EXPECT_TRUE(lm_.Acquire(2, res_a_, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm_.Acquire(3, res_a_, LockMode::kShared).ok());
}

TEST_F(LockManagerTest, ParentBlockedByActiveChildLock) {
  lm_.RegisterTxn(1, kNoTxn);
  lm_.RegisterTxn(2, 1);
  ASSERT_TRUE(lm_.Acquire(2, res_a_, LockMode::kExclusive).ok());
  // The parent is NOT an ancestor of itself w.r.t. the child's lock.
  EXPECT_TRUE(
      lm_.Acquire(1, res_a_, LockMode::kExclusive, 20000).IsTimedOut());
  // After lock transfer (subcommit), the parent holds it.
  lm_.TransferLocks(2, 1);
  EXPECT_TRUE(lm_.Acquire(1, res_a_, LockMode::kExclusive).ok());
}

TEST_F(LockManagerTest, TransferMergesModes) {
  lm_.RegisterTxn(1, kNoTxn);
  lm_.RegisterTxn(2, 1);
  ASSERT_TRUE(lm_.Acquire(1, res_a_, LockMode::kShared).ok());
  ASSERT_TRUE(lm_.Acquire(2, res_a_, LockMode::kExclusive).ok());
  lm_.TransferLocks(2, 1);
  EXPECT_TRUE(lm_.Holds(1, res_a_, LockMode::kExclusive));
}

TEST_F(LockManagerTest, DeadlockDetected) {
  lm_.RegisterTxn(1, kNoTxn);
  lm_.RegisterTxn(2, kNoTxn);
  ASSERT_TRUE(lm_.Acquire(1, res_a_, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm_.Acquire(2, res_b_, LockMode::kExclusive).ok());

  std::atomic<bool> t2_blocked{false};
  std::thread t2([&] {
    t2_blocked = true;
    // Blocks: txn 2 wants a (held by 1).
    Status st = lm_.Acquire(2, res_a_, LockMode::kExclusive);
    // Woken when txn 1 releases after its own deadlock abort.
    (void)st;
  });
  while (!t2_blocked) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // txn 1 wants b (held by 2, which waits for 1) -> cycle -> abort.
  Status st = lm_.Acquire(1, res_b_, LockMode::kExclusive);
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_GE(lm_.deadlocks_detected(), 1u);
  lm_.ReleaseAll(1);
  t2.join();
  lm_.ReleaseAll(2);
}

TEST_F(LockManagerTest, ContendedHandoff) {
  lm_.RegisterTxn(1, kNoTxn);
  ASSERT_TRUE(lm_.Acquire(1, res_a_, LockMode::kExclusive).ok());
  std::atomic<int> acquired{0};
  std::vector<std::thread> waiters;
  for (TxnId t = 2; t <= 5; ++t) {
    lm_.RegisterTxn(t, kNoTxn);
    waiters.emplace_back([&, t] {
      ASSERT_TRUE(lm_.Acquire(t, res_a_, LockMode::kShared).ok());
      acquired.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(acquired.load(), 0);
  lm_.ReleaseAll(1);
  for (auto& w : waiters) w.join();
  EXPECT_EQ(acquired.load(), 4);
}

// Parameterized lock-compatibility matrix: {held mode} x {requested mode}
// x {same txn / sibling / child}.
struct LockCase {
  LockMode held;
  LockMode requested;
  int relationship;  // 0 = same txn, 1 = sibling, 2 = child of holder
  bool granted;      // without waiting
};

class LockMatrixTest : public ::testing::TestWithParam<LockCase> {};

TEST_P(LockMatrixTest, CompatibilityMatrix) {
  const LockCase& c = GetParam();
  LockManager lm;
  Oid res{1, 0, 1};
  lm.RegisterTxn(1, kNoTxn);
  ASSERT_TRUE(lm.Acquire(1, res, c.held).ok());
  TxnId requester = 1;
  if (c.relationship == 1) {
    lm.RegisterTxn(2, kNoTxn);
    requester = 2;
  } else if (c.relationship == 2) {
    lm.RegisterTxn(2, 1);
    requester = 2;
  }
  Status st = lm.Acquire(requester, res, c.requested, /*timeout_us=*/10000);
  EXPECT_EQ(st.ok(), c.granted)
      << "held=" << (c.held == LockMode::kShared ? "S" : "X")
      << " req=" << (c.requested == LockMode::kShared ? "S" : "X")
      << " rel=" << c.relationship << ": " << st.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, LockMatrixTest,
    ::testing::Values(
        // Same transaction: everything re-grants/upgrades.
        LockCase{LockMode::kShared, LockMode::kShared, 0, true},
        LockCase{LockMode::kShared, LockMode::kExclusive, 0, true},
        LockCase{LockMode::kExclusive, LockMode::kShared, 0, true},
        LockCase{LockMode::kExclusive, LockMode::kExclusive, 0, true},
        // Sibling transactions: only S-S is compatible.
        LockCase{LockMode::kShared, LockMode::kShared, 1, true},
        LockCase{LockMode::kShared, LockMode::kExclusive, 1, false},
        LockCase{LockMode::kExclusive, LockMode::kShared, 1, false},
        LockCase{LockMode::kExclusive, LockMode::kExclusive, 1, false},
        // Child of the holder (Moss): ancestors never block descendants.
        LockCase{LockMode::kShared, LockMode::kShared, 2, true},
        LockCase{LockMode::kShared, LockMode::kExclusive, 2, true},
        LockCase{LockMode::kExclusive, LockMode::kShared, 2, true},
        LockCase{LockMode::kExclusive, LockMode::kExclusive, 2, true}));

// ---------------------------------------------------------------------------
// TransactionManager
// ---------------------------------------------------------------------------

class TxnManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sm = StorageManager::Open(dir_.DbPath());
    ASSERT_TRUE(sm.ok());
    sm_ = std::move(*sm);
    tm_ = std::make_unique<TransactionManager>(sm_.get());
  }
  TempDir dir_;
  std::unique_ptr<StorageManager> sm_;
  std::unique_ptr<TransactionManager> tm_;
};

TEST_F(TxnManagerTest, CommitMakesChangesVisible) {
  auto txn = tm_->Begin();
  ASSERT_TRUE(txn.ok());
  auto oid = sm_->objects()->Insert(*txn, "data");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(tm_->Commit(*txn).ok());
  EXPECT_EQ(*sm_->objects()->Read(*oid), "data");
  EXPECT_FALSE(tm_->IsActive(*txn));
  EXPECT_TRUE(*tm_->WaitForOutcome(*txn));
}

TEST_F(TxnManagerTest, AbortUndoesChanges) {
  auto setup = tm_->Begin();
  auto oid = sm_->objects()->Insert(*setup, "original");
  ASSERT_TRUE(tm_->Commit(*setup).ok());

  auto txn = tm_->Begin();
  ASSERT_TRUE(sm_->objects()->Update(*txn, *oid, "changed").ok());
  auto extra = sm_->objects()->Insert(*txn, "extra");
  ASSERT_TRUE(sm_->objects()->Delete(*txn, *oid).ok());
  ASSERT_TRUE(tm_->Abort(*txn).ok());

  EXPECT_EQ(*sm_->objects()->Read(*oid), "original");
  EXPECT_TRUE(sm_->objects()->Read(*extra).status().IsNotFound());
  EXPECT_FALSE(*tm_->WaitForOutcome(*txn));
}

TEST_F(TxnManagerTest, NestedCommitMergesIntoParent) {
  auto parent = tm_->Begin();
  auto child = tm_->Begin(*parent);
  ASSERT_TRUE(child.ok());
  auto oid = sm_->objects()->Insert(*child, "from child");
  ASSERT_TRUE(tm_->Commit(*child).ok());
  // Parent abort must also undo the committed child's work.
  ASSERT_TRUE(tm_->Abort(*parent).ok());
  EXPECT_TRUE(sm_->objects()->Read(*oid).status().IsNotFound());
}

TEST_F(TxnManagerTest, NestedAbortSparesParent) {
  auto parent = tm_->Begin();
  auto p_oid = sm_->objects()->Insert(*parent, "parent data");
  auto child = tm_->Begin(*parent);
  auto c_oid = sm_->objects()->Insert(*child, "child data");
  ASSERT_TRUE(tm_->Abort(*child).ok());
  EXPECT_TRUE(sm_->objects()->Read(*c_oid).status().IsNotFound());
  EXPECT_TRUE(sm_->objects()->Read(*p_oid).ok());
  ASSERT_TRUE(tm_->Commit(*parent).ok());
  EXPECT_EQ(*sm_->objects()->Read(*p_oid), "parent data");
}

TEST_F(TxnManagerTest, CommitWithActiveChildRejected) {
  auto parent = tm_->Begin();
  auto child = tm_->Begin(*parent);
  EXPECT_TRUE(tm_->Commit(*parent).IsFailedPrecondition());
  ASSERT_TRUE(tm_->Commit(*child).ok());
  EXPECT_TRUE(tm_->Commit(*parent).ok());
}

TEST_F(TxnManagerTest, AbortCascadesToActiveChildren) {
  auto parent = tm_->Begin();
  auto child = tm_->Begin(*parent);
  auto grandchild = tm_->Begin(*child);
  auto oid = sm_->objects()->Insert(*grandchild, "deep");
  ASSERT_TRUE(tm_->Abort(*parent).ok());
  EXPECT_FALSE(tm_->IsActive(*child));
  EXPECT_FALSE(tm_->IsActive(*grandchild));
  EXPECT_TRUE(sm_->objects()->Read(*oid).status().IsNotFound());
}

TEST_F(TxnManagerTest, RootOfResolvesChain) {
  auto a = tm_->Begin();
  auto b = tm_->Begin(*a);
  auto c = tm_->Begin(*b);
  EXPECT_EQ(tm_->RootOf(*c), *a);
  EXPECT_EQ(tm_->RootOf(*a), *a);
}

TEST_F(TxnManagerTest, CommitDependencySatisfied) {
  auto trigger = tm_->Begin();
  auto dependent = tm_->Begin();
  ASSERT_TRUE(tm_->AddCommitDependency(*dependent, *trigger).ok());

  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(tm_->Commit(*trigger).ok());
  });
  // Blocks until the trigger commits, then succeeds.
  EXPECT_TRUE(tm_->Commit(*dependent).ok());
  committer.join();
}

TEST_F(TxnManagerTest, CommitDependencyViolatedAborts) {
  auto trigger = tm_->Begin();
  auto dependent = tm_->Begin();
  auto oid = sm_->objects()->Insert(*dependent, "speculative");
  ASSERT_TRUE(tm_->AddCommitDependency(*dependent, *trigger).ok());
  ASSERT_TRUE(tm_->Abort(*trigger).ok());
  Status st = tm_->Commit(*dependent);
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_TRUE(sm_->objects()->Read(*oid).status().IsNotFound());
}

TEST_F(TxnManagerTest, AbortDependencyExclusiveMode) {
  // Exclusive causally dependent: commits only if the trigger aborts.
  auto trigger1 = tm_->Begin();
  auto contingency1 = tm_->Begin();
  ASSERT_TRUE(tm_->AddAbortDependency(*contingency1, *trigger1).ok());
  ASSERT_TRUE(tm_->Abort(*trigger1).ok());
  EXPECT_TRUE(tm_->Commit(*contingency1).ok());

  auto trigger2 = tm_->Begin();
  auto contingency2 = tm_->Begin();
  ASSERT_TRUE(tm_->AddAbortDependency(*contingency2, *trigger2).ok());
  ASSERT_TRUE(tm_->Commit(*trigger2).ok());
  EXPECT_TRUE(tm_->Commit(*contingency2).IsAborted());
}

TEST_F(TxnManagerTest, PreCommitListenerFailureAborts) {
  class FailingListener : public TxnListener {
   public:
    Status OnPreCommit(TxnId) override {
      return Status::Internal("constraint violated");
    }
  };
  FailingListener listener;
  tm_->AddListener(&listener);
  auto txn = tm_->Begin();
  auto oid = sm_->objects()->Insert(*txn, "poisoned");
  EXPECT_TRUE(tm_->Commit(*txn).IsAborted());
  EXPECT_TRUE(sm_->objects()->Read(*oid).status().IsNotFound());
  tm_->RemoveListener(&listener);
}

TEST_F(TxnManagerTest, ListenerLifecycleCallbacks) {
  class Recorder : public TxnListener {
   public:
    void OnBegin(TxnId, TxnId) override { begins++; }
    void OnCommit(TxnId) override { commits++; }
    void OnAbort(TxnId) override { aborts++; }
    int begins = 0, commits = 0, aborts = 0;
  };
  Recorder rec;
  tm_->AddListener(&rec);
  auto a = tm_->Begin();
  ASSERT_TRUE(tm_->Commit(*a).ok());
  auto b = tm_->Begin();
  ASSERT_TRUE(tm_->Abort(*b).ok());
  EXPECT_EQ(rec.begins, 2);
  EXPECT_EQ(rec.commits, 1);
  EXPECT_EQ(rec.aborts, 1);
  tm_->RemoveListener(&rec);
}

TEST_F(TxnManagerTest, NestedWorkDurableAfterCrash) {
  Oid oid;
  {
    auto parent = tm_->Begin();
    auto child = tm_->Begin(*parent);
    auto r = sm_->objects()->Insert(*child, "nested durable");
    oid = *r;
    ASSERT_TRUE(tm_->Commit(*child).ok());
    ASSERT_TRUE(tm_->Commit(*parent).ok());
    // Crash without checkpoint.
    tm_.reset();
    sm_.reset();
  }
  auto sm = StorageManager::Open(dir_.DbPath());
  ASSERT_TRUE(sm.ok());
  EXPECT_EQ(*(*sm)->objects()->Read(oid), "nested durable");
}

TEST_F(TxnManagerTest, NestedLoserUndoneAfterCrash) {
  Oid oid;
  {
    auto parent = tm_->Begin();
    auto child = tm_->Begin(*parent);
    auto r = sm_->objects()->Insert(*child, "lost");
    oid = *r;
    ASSERT_TRUE(tm_->Commit(*child).ok());
    // Parent never commits; crash with pages flushed.
    ASSERT_TRUE(sm_->buffer_pool()->FlushAll().ok());
    tm_.reset();
    sm_.reset();
  }
  auto sm = StorageManager::Open(dir_.DbPath());
  ASSERT_TRUE(sm.ok());
  EXPECT_TRUE((*sm)->objects()->Read(oid).status().IsNotFound());
}

TEST_F(TxnManagerTest, WaitForOutcomeUnknownTxn) {
  EXPECT_TRUE(tm_->WaitForOutcome(9999).status().IsNotFound());
}

}  // namespace
}  // namespace reach
