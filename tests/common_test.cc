#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "common/clock.h"
#include "common/mpmc_queue.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace reach {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesDistinct) {
  std::set<std::string> names = {
      Status::OK().ToString(),
      Status::NotFound("").ToString(),
      Status::AlreadyExists("").ToString(),
      Status::InvalidArgument("").ToString(),
      Status::NotSupported("").ToString(),
      Status::Aborted("").ToString(),
      Status::Busy("").ToString(),
      Status::Corruption("").ToString(),
      Status::IoError("").ToString(),
      Status::OutOfRange("").ToString(),
      Status::FailedPrecondition("").ToString(),
      Status::TimedOut("").ToString(),
      Status::Internal("").ToString(),
  };
  EXPECT_EQ(names.size(), 13u);
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    REACH_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(wrapper().IsIoError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::Busy("later");
  };
  auto consume = [&](bool ok) -> Result<int> {
    REACH_ASSIGN_OR_RETURN(int v, produce(ok));
    return v * 2;
  };
  EXPECT_EQ(*consume(true), 10);
  EXPECT_TRUE(consume(false).status().IsBusy());
}

TEST(OidTest, ValidityAndEquality) {
  EXPECT_FALSE(kInvalidOid.valid());
  Oid a{1, 2, 3};
  Oid b{1, 2, 3};
  Oid c{1, 2, 4};
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.ToString(), "oid(1.2.3)");
  EXPECT_EQ(std::hash<Oid>{}(a), std::hash<Oid>{}(b));
}

TEST(VirtualClockTest, AdvanceMovesTime) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.Set(1000);
  EXPECT_EQ(clock.Now(), 1000);
  clock.Set(500);  // never goes backwards
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(VirtualClockTest, SleepUntilWakesOnAdvance) {
  VirtualClock clock(0);
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepUntil(100);
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  clock.Advance(100);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(RealClockTest, Monotonic) {
  RealClock clock;
  Timestamp a = clock.Now();
  Timestamp b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(ThreadPoolTest, ExecutesTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&] { count.fetch_add(1); }));
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitWithResult) {
  ThreadPool pool(2);
  auto fut = pool.SubmitWithResult([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, WaitIdleWaitsForRunningTask) {
  ThreadPool pool(1);
  std::atomic<bool> done{false};
  pool.Submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done = true;
  });
  pool.WaitIdle();
  EXPECT_TRUE(done.load());
}

TEST(MpmcQueueTest, FifoOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(MpmcQueueTest, CloseDrainsAndStops) {
  MpmcQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueueTest, ConcurrentProducersConsumers) {
  MpmcQueue<int> q;
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) sum.fetch_add(*v);
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= 1000; ++i) q.Push(i);
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sum.load(), 4 * 1000 * 1001 / 2);
}

TEST(MpmcQueueTest, CloseWakesAllBlockedConsumers) {
  // Consumers parked in Pop() on an empty queue must all wake with nullopt
  // when the queue closes — a missed notify_all here would hang the event
  // pipeline's shutdown.
  MpmcQueue<int> q;
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      auto v = q.Pop();
      EXPECT_FALSE(v.has_value());
      woke.fetch_add(1);
    });
  }
  // Give the consumers a moment to actually block in Pop().
  while (q.Size() != 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(MpmcQueueTest, PushAfterCloseIsRejectedAndInvisible) {
  MpmcQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(2));
  EXPECT_FALSE(q.Push(3));
  // The rejected pushes must not be enqueued.
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueueTest, DrainAfterClosePreservesFifoThenSignalsEnd) {
  MpmcQueue<int> q;
  for (int i = 1; i <= 5; ++i) q.Push(i);
  q.Close();
  // Pop (blocking form) keeps yielding queued items in order after Close...
  for (int i = 1; i <= 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  // ...and only then reports end-of-stream, from every API.
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.TryPop().has_value());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Random a2(7), c2(8);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RandomTest, RangesRespected) {
  Random r(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t v = r.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

}  // namespace
}  // namespace reach
