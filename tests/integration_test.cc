// End-to-end scenarios across the whole stack: active rules + persistence +
// transactions + recovery + queries.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/reach/reach_db.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

void RegisterAccountClass(ReachDb* db) {
  ASSERT_TRUE(
      db->RegisterClass(
            ClassBuilder("Account")
                .Attribute("owner", ValueType::kString, Value(""))
                .Attribute("balance", ValueType::kInt, Value(0))
                .Method("deposit",
                        [](Session& s, DbObject& self,
                           const std::vector<Value>& args) -> Result<Value> {
                          int64_t now = self.Get("balance").as_int() +
                                        args[0].as_int();
                          REACH_RETURN_IF_ERROR(
                              s.SetAttr(self.oid(), "balance", Value(now)));
                          return Value(now);
                        })
                .Method("withdraw",
                        [](Session& s, DbObject& self,
                           const std::vector<Value>& args) -> Result<Value> {
                          int64_t now = self.Get("balance").as_int() -
                                        args[0].as_int();
                          REACH_RETURN_IF_ERROR(
                              s.SetAttr(self.oid(), "balance", Value(now)));
                          return Value(now);
                        }))
          .ok());
}

TEST(IntegrationTest, ConstraintRuleAndRecovery) {
  TempDir dir;
  Oid account;
  {
    ReachOptions options;
    options.events.async_composition = false;
    auto db = ReachDb::Open(dir.DbPath(), options);
    ASSERT_TRUE(db.ok());
    RegisterAccountClass(db->get());

    // Integrity rule: balances may not go negative; offending transactions
    // abort (consistency enforcement as an active-database application).
    auto ev = (*db)->events()->DefineStateChangeEvent("bal", "Account",
                                                      "balance");
    RuleSpec spec;
    spec.name = "NoOverdraft";
    spec.event = *ev;
    spec.coupling = CouplingMode::kImmediate;
    spec.condition = [](Session&, const EventOccurrence& occ) -> Result<bool> {
      return occ.params[1].as_int() < 0;  // new balance negative
    };
    spec.action = [](Session&, const EventOccurrence&) -> Status {
      return Status::Aborted("overdraft");
    };
    spec.abort_triggering_on_failure = true;
    ASSERT_TRUE((*db)->rules()->DefineRule(std::move(spec)).ok());

    Session s(db->get()->database());
    ASSERT_TRUE(s.Begin().ok());
    account = *s.PersistNew("Account", {{"owner", Value("alice")}});
    ASSERT_TRUE(s.Bind("alice", account).ok());
    ASSERT_TRUE(s.Invoke(account, "deposit", {Value(100)}).ok());
    ASSERT_TRUE(s.Commit().ok());

    // Overdraft attempt: the whole transaction dies.
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Invoke(account, "deposit", {Value(50)}).ok());
    (void)s.Invoke(account, "withdraw", {Value(500)});
    EXPECT_FALSE(s.Commit().ok());

    // Crash without checkpoint.
  }
  ReachOptions options;
  auto db = ReachDb::Open(dir.DbPath(), options);
  ASSERT_TRUE(db.ok());
  RegisterAccountClass(db->get());
  Session s(db->get()->database());
  ASSERT_TRUE(s.Begin().ok());
  auto fetched = s.FetchByName("alice");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->Get("balance"), Value(100));
  ASSERT_TRUE(s.Commit().ok());
}

TEST(IntegrationTest, AuditTrailViaDetachedRules) {
  TempDir dir;
  ReachOptions options;
  options.events.async_composition = false;
  auto db = ReachDb::Open(dir.DbPath(), options);
  ASSERT_TRUE(db.ok());
  RegisterAccountClass(db->get());
  ASSERT_TRUE((*db)->RegisterClass(
                    ClassBuilder("AuditEntry")
                        .Attribute("account", ValueType::kRef, Value())
                        .Attribute("amount", ValueType::kInt, Value(0)))
                  .ok());

  auto ev =
      (*db)->events()->DefineMethodEvent("dep", "Account", "deposit");
  RuleSpec spec;
  spec.name = "Audit";
  spec.event = *ev;
  spec.coupling = CouplingMode::kSequentialCausallyDependent;
  spec.action = [](Session& s, const EventOccurrence& occ) -> Status {
    auto r = s.PersistNew("AuditEntry", {{"account", Value(occ.source)},
                                         {"amount", occ.params[0]}});
    return r.ok() ? Status::OK() : r.status();
  };
  ASSERT_TRUE((*db)->rules()->DefineRule(std::move(spec)).ok());

  Session s(db->get()->database());
  Oid account;
  ASSERT_TRUE(s.Begin().ok());
  account = *s.PersistNew("Account", {});
  ASSERT_TRUE(s.Invoke(account, "deposit", {Value(10)}).ok());
  ASSERT_TRUE(s.Invoke(account, "deposit", {Value(20)}).ok());
  ASSERT_TRUE(s.Commit().ok());
  // An aborted transaction leaves no audit entries.
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(account, "deposit", {Value(99)}).ok());
  ASSERT_TRUE(s.Abort().ok());
  (*db)->rules()->WaitDetachedIdle();

  ASSERT_TRUE(s.Begin().ok());
  auto q = (*db)->Query(s, "select amount from AuditEntry order by amount");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->rows.size(), 2u);
  EXPECT_EQ(q->rows[0].values[0], Value(10));
  EXPECT_EQ(q->rows[1].values[0], Value(20));
  ASSERT_TRUE(s.Commit().ok());
}

TEST(IntegrationTest, MaterializedAggregateViaDeferredRule) {
  TempDir dir;
  ReachOptions options;
  options.events.async_composition = false;
  auto db = ReachDb::Open(dir.DbPath(), options);
  ASSERT_TRUE(db.ok());
  RegisterAccountClass(db->get());
  ASSERT_TRUE((*db)->RegisterClass(
                    ClassBuilder("Summary")
                        .Attribute("total", ValueType::kInt, Value(0)))
                  .ok());

  auto ev = (*db)->events()->DefineStateChangeEvent("bal", "Account",
                                                    "balance");
  RuleSpec spec;
  spec.name = "MaintainTotal";
  spec.event = *ev;
  spec.coupling = CouplingMode::kDeferred;
  spec.action = [](Session& s, const EventOccurrence& occ) -> Status {
    REACH_ASSIGN_OR_RETURN(Oid summary, s.Lookup("summary"));
    REACH_ASSIGN_OR_RETURN(Value total, s.GetAttr(summary, "total"));
    int64_t delta = occ.params[1].as_int() - occ.params[0].as_int();
    return s.SetAttr(summary, "total", Value(total.as_int() + delta));
  };
  ASSERT_TRUE((*db)->rules()->DefineRule(std::move(spec)).ok());

  Session s(db->get()->database());
  ASSERT_TRUE(s.Begin().ok());
  Oid summary = *s.PersistNew("Summary", {});
  ASSERT_TRUE(s.Bind("summary", summary).ok());
  Oid a = *s.PersistNew("Account", {});
  Oid b = *s.PersistNew("Account", {});
  ASSERT_TRUE(s.Commit().ok());

  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(a, "deposit", {Value(100)}).ok());
  ASSERT_TRUE(s.Invoke(b, "deposit", {Value(50)}).ok());
  ASSERT_TRUE(s.Invoke(a, "withdraw", {Value(30)}).ok());
  ASSERT_TRUE(s.Commit().ok());

  ASSERT_TRUE(s.Begin().ok());
  EXPECT_EQ(s.GetAttr(summary, "total")->as_int(), 120);
  ASSERT_TRUE(s.Commit().ok());
}

TEST(IntegrationTest, ConcurrentSessionsWithRules) {
  TempDir dir;
  ReachOptions options;
  options.events.async_composition = true;
  auto db = ReachDb::Open(dir.DbPath(), options);
  ASSERT_TRUE(db.ok());
  RegisterAccountClass(db->get());

  std::atomic<int> rule_runs{0};
  auto ev = (*db)->events()->DefineMethodEvent("dep", "Account", "deposit");
  RuleSpec spec;
  spec.name = "Count";
  spec.event = *ev;
  spec.coupling = CouplingMode::kImmediate;
  spec.action = [&](Session&, const EventOccurrence&) -> Status {
    rule_runs++;
    return Status::OK();
  };
  ASSERT_TRUE((*db)->rules()->DefineRule(std::move(spec)).ok());

  Session setup(db->get()->database());
  ASSERT_TRUE(setup.Begin().ok());
  std::vector<Oid> accounts;
  for (int i = 0; i < 4; ++i) {
    accounts.push_back(*setup.PersistNew("Account", {}));
  }
  ASSERT_TRUE(setup.Commit().ok());

  constexpr int kThreads = 4;
  constexpr int kDeposits = 25;
  std::vector<std::thread> workers;
  std::atomic<int> commits{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Session s(db->get()->database());
      for (int i = 0; i < kDeposits; ++i) {
        if (!s.Begin().ok()) continue;
        auto r = s.Invoke(accounts[t], "deposit", {Value(1)});
        if (r.ok() && s.Commit().ok()) {
          commits++;
        } else {
          (void)s.AbortAll();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  (*db)->Drain();
  EXPECT_EQ(commits.load(), kThreads * kDeposits);
  EXPECT_EQ(rule_runs.load(), kThreads * kDeposits);

  Session check(db->get()->database());
  ASSERT_TRUE(check.Begin().ok());
  int64_t total = 0;
  for (const Oid& a : accounts) {
    total += check.GetAttr(a, "balance")->as_int();
  }
  EXPECT_EQ(total, kThreads * kDeposits);
  ASSERT_TRUE(check.Commit().ok());
}

TEST(IntegrationTest, CrossTransactionCorrelationScenario) {
  // Telecom-style fault correlation: three alarms from different
  // transactions within a validity window escalate once.
  TempDir dir;
  VirtualClock clock;
  ReachOptions options;
  options.database.clock = &clock;
  options.events.async_composition = false;
  auto db = ReachDb::Open(dir.DbPath(), options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->RegisterClass(
                    ClassBuilder("Element")
                        .Attribute("alarms", ValueType::kInt, Value(0))
                        .Method("raiseAlarm",
                                [](Session& s, DbObject& self,
                                   const std::vector<Value>&) -> Result<Value> {
                                  REACH_RETURN_IF_ERROR(s.SetAttr(
                                      self.oid(), "alarms",
                                      Value(self.Get("alarms").as_int() + 1)));
                                  return Value();
                                }))
                  .ok());

  auto alarm =
      (*db)->events()->DefineMethodEvent("alarm", "Element", "raiseAlarm");
  auto storm = (*db)->events()->DefineComposite(
      "alarm_storm", EventExpr::History(EventExpr::Prim(*alarm), 3),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
      /*validity=*/10 * 1000000);
  ASSERT_TRUE(storm.ok());
  std::atomic<int> escalations{0};
  RuleSpec spec;
  spec.name = "Escalate";
  spec.event = *storm;
  spec.coupling = CouplingMode::kDetached;
  spec.action = [&](Session&, const EventOccurrence& occ) -> Status {
    EXPECT_EQ(occ.constituents.size(), 3u);
    escalations++;
    return Status::OK();
  };
  ASSERT_TRUE((*db)->rules()->DefineRule(std::move(spec)).ok());

  Session s(db->get()->database());
  ASSERT_TRUE(s.Begin().ok());
  Oid element = *s.PersistNew("Element", {});
  ASSERT_TRUE(s.Commit().ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Invoke(element, "raiseAlarm").ok());
    ASSERT_TRUE(s.Commit().ok());
    clock.Advance(1000000);  // one second apart: inside the window
  }
  (*db)->Drain();
  EXPECT_EQ(escalations.load(), 1);

  // Alarms spread farther apart than the validity window never escalate.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Invoke(element, "raiseAlarm").ok());
    ASSERT_TRUE(s.Commit().ok());
    clock.Advance(20 * 1000000);  // 20s apart
  }
  (*db)->Drain();
  EXPECT_EQ(escalations.load(), 1);
}

TEST(IntegrationTest, CheckpointAndStatsReport) {
  TempDir dir;
  ReachOptions options;
  options.events.async_composition = false;
  auto db = ReachDb::Open(dir.DbPath(), options);
  ASSERT_TRUE(db.ok());
  RegisterAccountClass(db->get());
  auto ev = (*db)->events()->DefineMethodEvent("dep", "Account", "deposit");
  RuleSpec spec;
  spec.name = "noop";
  spec.event = *ev;
  spec.coupling = CouplingMode::kImmediate;
  spec.action = [](Session&, const EventOccurrence&) { return Status::OK(); };
  ASSERT_TRUE((*db)->rules()->DefineRule(std::move(spec)).ok());

  Session s(db->get()->database());
  ASSERT_TRUE(s.Begin().ok());
  auto a = s.PersistNew("Account", {});
  ASSERT_TRUE(s.Invoke(*a, "deposit", {Value(10)}).ok());
  // Checkpoint with an active transaction is refused.
  EXPECT_TRUE((*db)->Checkpoint().IsFailedPrecondition());
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_TRUE((*db)->Checkpoint().ok());

  std::string report = (*db)->StatsReport();
  EXPECT_NE(report.find("events signaled"), std::string::npos);
  EXPECT_NE(report.find("immediate rule runs:   1"), std::string::npos);

  // The checkpoint truncated the WAL; reopening replays nothing but the
  // data is all there.
  db->get()->Drain();
  db = Result<std::unique_ptr<ReachDb>>(Status::NotFound("closing"));
  auto reopened = ReachDb::Open(dir.DbPath());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(
      (*reopened)->database()->storage()->recovery_stats().records_scanned,
      0u);
}

TEST(IntegrationTest, QueryOverRuleMaintainedIndex) {
  TempDir dir;
  ReachOptions options;
  options.events.async_composition = false;
  auto db = ReachDb::Open(dir.DbPath(), options);
  ASSERT_TRUE(db.ok());
  RegisterAccountClass(db->get());

  Session s(db->get()->database());
  ASSERT_TRUE(s.Begin().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(s.PersistNew("Account", {{"owner", Value("owner" +
                                                         std::to_string(i % 4))},
                                         {"balance", Value(i * 10)}})
                    .ok());
  }
  ASSERT_TRUE((*db)->database()
                  ->indexing()
                  ->CreateIndex(s.current_txn(), "Account", "owner")
                  .ok());
  auto q = (*db)->Query(
      s, "select balance from Account as a where a.owner == \"owner2\" "
         "order by balance desc");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->used_index);
  ASSERT_EQ(q->rows.size(), 5u);
  EXPECT_EQ(q->rows[0].values[0], Value(180));
  ASSERT_TRUE(s.Commit().ok());
}

}  // namespace
}  // namespace reach
