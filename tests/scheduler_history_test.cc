// TemporalScheduler, event histories, and the function registry.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "core/events/event_history.h"
#include "core/events/temporal_scheduler.h"
#include "core/rules/function_registry.h"

namespace reach {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scheduler_ = std::make_unique<TemporalScheduler>(&clock_);
    scheduler_->Start();
  }
  void TearDown() override { scheduler_->Stop(); }

  void WaitForFires(uint64_t n) {
    for (int i = 0; i < 500 && scheduler_->fired_count() < n; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  VirtualClock clock_;
  std::unique_ptr<TemporalScheduler> scheduler_;
};

TEST_F(SchedulerTest, OneShotFiresAtDeadline) {
  std::atomic<Timestamp> fired_at{-1};
  scheduler_->ScheduleAt(1000, [&](Timestamp t) { fired_at = t; });
  clock_.Advance(999);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(fired_at.load(), -1);
  clock_.Advance(1);
  WaitForFires(1);
  EXPECT_EQ(fired_at.load(), 1000);
}

TEST_F(SchedulerTest, PastDeadlineFiresImmediately) {
  clock_.Advance(5000);
  std::atomic<int> fired{0};
  scheduler_->ScheduleAt(1000, [&](Timestamp) { fired++; });
  WaitForFires(1);
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(SchedulerTest, TimersFireInDeadlineOrder) {
  std::vector<int> order;
  std::mutex mu;
  scheduler_->ScheduleAt(300, [&](Timestamp) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(3);
  });
  scheduler_->ScheduleAt(100, [&](Timestamp) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
  });
  scheduler_->ScheduleAt(200, [&](Timestamp) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
  });
  clock_.Advance(400);
  WaitForFires(3);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(SchedulerTest, PeriodicRepeatsAtFixedIntervals) {
  std::vector<Timestamp> fires;
  std::mutex mu;
  scheduler_->SchedulePeriodic(100, [&](Timestamp t) {
    std::lock_guard<std::mutex> lock(mu);
    fires.push_back(t);
  });
  clock_.Advance(350);
  WaitForFires(3);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(fires.size(), 3u);
  EXPECT_EQ(fires[0], 100);
  EXPECT_EQ(fires[1], 200);
  EXPECT_EQ(fires[2], 300);
}

TEST_F(SchedulerTest, StopIsIdempotentAndJoins) {
  scheduler_->ScheduleAt(1LL << 50, [](Timestamp) {});
  scheduler_->Stop();
  scheduler_->Stop();
  EXPECT_EQ(scheduler_->pending_timers(), 1u);  // never fired
}

TEST(LocalHistoryTest, RingBufferBoundsSize) {
  LocalHistory history(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->sequence = i;
    history.Append(occ);
  }
  EXPECT_EQ(history.total(), 10u);
  EXPECT_EQ(history.size(), 4u);
  auto snap = history.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front()->sequence, 7u);  // oldest kept
  EXPECT_EQ(snap.back()->sequence, 10u);
}

TEST(GlobalHistoryTest, MergesStaySorted) {
  GlobalHistory history;
  auto make = [](uint64_t seq, EventTypeId type) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->sequence = seq;
    occ->type = type;
    return occ;
  };
  history.Merge({make(5, 1), make(6, 2)});
  history.Merge({make(1, 1), make(3, 1)});
  history.Merge({make(2, 2), make(4, 2)});
  auto snap = history.Snapshot();
  ASSERT_EQ(snap.size(), 6u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1]->sequence, snap[i]->sequence);
  }
  EXPECT_EQ(history.OfType(1).size(), 3u);
  EXPECT_EQ(history.OfType(2).size(), 3u);
  EXPECT_EQ(history.merge_batches(), 3u);
}

TEST(FunctionRegistryTest, NamingConventionResolution) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry
                  .RegisterCondition("WaterLevelCond",
                                     [](Session&, const EventOccurrence&)
                                         -> Result<bool> { return true; })
                  .ok());
  ASSERT_TRUE(registry
                  .RegisterAction("WaterLevelAction",
                                  [](Session&, const EventOccurrence&) {
                                    return Status::OK();
                                  })
                  .ok());
  EXPECT_NE(registry.ConditionForRule("WaterLevel"), nullptr);
  EXPECT_NE(registry.ActionForRule("WaterLevel"), nullptr);
  EXPECT_EQ(registry.ConditionForRule("Other"), nullptr);
  EXPECT_EQ(registry.ActionForRule("Other"), nullptr);
  EXPECT_TRUE(registry
                  .RegisterCondition("WaterLevelCond",
                                     [](Session&, const EventOccurrence&)
                                         -> Result<bool> { return false; })
                  .IsAlreadyExists());
  EXPECT_EQ(registry.ConditionNames().size(), 1u);
  EXPECT_EQ(registry.ActionNames().size(), 1u);
}

}  // namespace
}  // namespace reach
