#include <gtest/gtest.h>

#include "oodb/database.h"
#include "oodb/sentry.h"
#include "oodb/session.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(Oid{1, 2, 3}).is_ref());
  EXPECT_TRUE(Value(std::vector<Value>{Value(1)}).is_list());
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(ValueTest, NumericComparisonAcrossTypes) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_TRUE(Value(1) < Value(1.5));
  EXPECT_TRUE(Value(2.5) > Value(2));
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  std::vector<Value> cases = {
      Value(), Value(true), Value(false), Value(int64_t{-123456789}),
      Value(2.718281828), Value(std::string("hello \"world\"\n")),
      Value(Oid{7, 8, 9}),
      Value(std::vector<Value>{Value(1), Value("two"),
                               Value(std::vector<Value>{Value(3.0)})}),
  };
  for (const Value& v : cases) {
    std::string buf;
    v.Encode(&buf);
    size_t pos = 0;
    auto decoded = Value::Decode(buf, &pos);
    ASSERT_TRUE(decoded.ok()) << v.ToString();
    EXPECT_EQ(*decoded, v) << v.ToString();
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(ValueTest, DecodeTruncatedFails) {
  Value v(std::string("payload"));
  std::string buf;
  v.Encode(&buf);
  buf.resize(buf.size() - 2);
  size_t pos = 0;
  EXPECT_TRUE(Value::Decode(buf, &pos).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// TypeSystem + DbObject
// ---------------------------------------------------------------------------

TEST(TypeSystemTest, RegistrationAndInheritance) {
  TypeSystem ts;
  ASSERT_TRUE(ts.RegisterClass(
                    ClassBuilder("Sensor")
                        .Attribute("id", ValueType::kInt, Value(0))
                        .Attribute("reading", ValueType::kDouble, Value(0.0))
                        .Build())
                  .ok());
  ASSERT_TRUE(ts.RegisterClass(ClassBuilder("TempSensor", "Sensor")
                                   .Attribute("unit", ValueType::kString,
                                              Value("C"))
                                   .Build())
                  .ok());
  EXPECT_TRUE(ts.IsSubclassOf("TempSensor", "Sensor"));
  EXPECT_TRUE(ts.IsSubclassOf("Sensor", "Sensor"));
  EXPECT_FALSE(ts.IsSubclassOf("Sensor", "TempSensor"));
  EXPECT_NE(ts.ResolveAttribute("TempSensor", "reading"), nullptr);
  EXPECT_NE(ts.ResolveAttribute("TempSensor", "unit"), nullptr);
  EXPECT_EQ(ts.ResolveAttribute("Sensor", "unit"), nullptr);
  auto all = ts.AllAttributes("TempSensor");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name, "id");  // base attributes first
  auto subs = ts.SelfAndSubclasses("Sensor");
  EXPECT_EQ(subs.size(), 2u);
}

TEST(TypeSystemTest, DuplicateAndMissingParentRejected) {
  TypeSystem ts;
  ASSERT_TRUE(ts.RegisterClass(ClassBuilder("A").Build()).ok());
  EXPECT_TRUE(ts.RegisterClass(ClassBuilder("A").Build()).IsAlreadyExists());
  EXPECT_TRUE(
      ts.RegisterClass(ClassBuilder("B", "Nope").Build()).IsNotFound());
}

TEST(TypeSystemTest, VirtualMethodDispatch) {
  TypeSystem ts;
  ASSERT_TRUE(
      ts.RegisterClass(
            ClassBuilder("Base")
                .Method("speak",
                        [](Session&, DbObject&,
                           const std::vector<Value>&) -> Result<Value> {
                          return Value("base");
                        })
                .Build())
          .ok());
  ASSERT_TRUE(
      ts.RegisterClass(
            ClassBuilder("Derived", "Base")
                .Method("speak",
                        [](Session&, DbObject&,
                           const std::vector<Value>&) -> Result<Value> {
                          return Value("derived");
                        })
                .Build())
          .ok());
  EXPECT_NE(ts.ResolveMethod("Derived", "speak"), nullptr);
  // Most-derived implementation wins.
  Session dummy(nullptr);
  DbObject obj("Derived");
  auto r = ts.ResolveMethod("Derived", "speak")->impl(dummy, obj, {});
  EXPECT_EQ(r->as_string(), "derived");
  auto r2 = ts.ResolveMethod("Base", "speak")->impl(dummy, obj, {});
  EXPECT_EQ(r2->as_string(), "base");
}

TEST(DbObjectTest, SerializeRoundTrip) {
  DbObject obj("Reactor");
  obj.Set("name", Value("Block A"));
  obj.Set("output", Value(1000000));
  obj.Set("online", Value(true));
  obj.Set("neighbors", Value(std::vector<Value>{Value(Oid{1, 1, 1})}));
  std::string bytes = obj.Serialize();
  auto back = DbObject::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->class_name(), "Reactor");
  EXPECT_EQ(back->Get("name"), Value("Block A"));
  EXPECT_EQ(back->Get("output"), Value(1000000));
  EXPECT_EQ(back->Get("online"), Value(true));
  EXPECT_TRUE(back->Get("neighbors").is_list());
}

// ---------------------------------------------------------------------------
// MetaBus + Sentried
// ---------------------------------------------------------------------------

class RecordingPm : public PolicyManager {
 public:
  std::string name() const override { return "Recorder"; }
  void OnEvent(const SentryEvent& event) override {
    events.push_back(event);
  }
  std::vector<SentryEvent> events;
};

TEST(MetaBusTest, ExactAndWildcardInterest) {
  MetaBus bus;
  RecordingPm exact, wildcard;
  bus.Subscribe(&exact, SentryKind::kMethodAfter, "River",
                "updateWaterLevel");
  bus.Subscribe(&wildcard, SentryKind::kMethodAfter);

  EXPECT_TRUE(bus.Monitored(SentryKind::kMethodAfter, "River",
                            "updateWaterLevel"));
  EXPECT_TRUE(bus.Monitored(SentryKind::kMethodAfter, "Other", "m"));
  EXPECT_FALSE(bus.Monitored(SentryKind::kStateChange, "River", "x"));

  SentryEvent ev;
  ev.kind = SentryKind::kMethodAfter;
  ev.class_name = "River";
  ev.member = "updateWaterLevel";
  EXPECT_EQ(bus.Announce(ev), 2u);
  ev.class_name = "Other";
  ev.member = "m";
  EXPECT_EQ(bus.Announce(ev), 1u);
  EXPECT_EQ(exact.events.size(), 1u);
  EXPECT_EQ(wildcard.events.size(), 2u);
}

TEST(MetaBusTest, UnsubscribeRebuildsInterest) {
  MetaBus bus;
  RecordingPm pm;
  bus.Subscribe(&pm, SentryKind::kPersist, "River", "");
  EXPECT_TRUE(bus.Monitored(SentryKind::kPersist, "River", ""));
  bus.Unsubscribe(&pm);
  EXPECT_FALSE(bus.Monitored(SentryKind::kPersist, "River", ""));
  SentryEvent ev;
  ev.kind = SentryKind::kPersist;
  ev.class_name = "River";
  EXPECT_EQ(bus.Announce(ev), 0u);
  EXPECT_EQ(bus.useless_announcements(), 1u);
}

struct NativeRiver {
  int level = 0;
  void updateWaterLevel(int x) { level = x; }
  double getWaterTemp() const { return 25.5; }
};

TEST(SentryTest, MonitoredCallsAnnounced) {
  MetaBus bus;
  RecordingPm pm;
  bus.Subscribe(&pm, SentryKind::kMethodAfter, "River", "updateWaterLevel");

  Sentried<NativeRiver> river(&bus, "River", NativeRiver{});
  river.Call("updateWaterLevel", &NativeRiver::updateWaterLevel, 35);
  EXPECT_EQ(river.get().level, 35);
  ASSERT_EQ(pm.events.size(), 1u);
  EXPECT_EQ(pm.events[0].class_name, "River");
  EXPECT_EQ(pm.events[0].member, "updateWaterLevel");
  ASSERT_EQ(pm.events[0].args.size(), 1u);
  EXPECT_EQ(pm.events[0].args[0], Value(35));

  // Unmonitored method: no announcement (useless overhead avoided).
  double t = river.Call("getWaterTemp", &NativeRiver::getWaterTemp);
  EXPECT_DOUBLE_EQ(t, 25.5);
  EXPECT_EQ(pm.events.size(), 1u);
}

TEST(SentryTest, BeforeAndAfterEvents) {
  MetaBus bus;
  RecordingPm pm;
  bus.Subscribe(&pm, SentryKind::kMethodBefore, "River", "updateWaterLevel");
  bus.Subscribe(&pm, SentryKind::kMethodAfter, "River", "updateWaterLevel");
  Sentried<NativeRiver> river(&bus, "River", NativeRiver{});
  river.Call("updateWaterLevel", &NativeRiver::updateWaterLevel, 10);
  ASSERT_EQ(pm.events.size(), 2u);
  EXPECT_EQ(pm.events[0].kind, SentryKind::kMethodBefore);
  EXPECT_EQ(pm.events[1].kind, SentryKind::kMethodAfter);
}

// ---------------------------------------------------------------------------
// Database + Session
// ---------------------------------------------------------------------------

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(dir_.DbPath());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    ASSERT_TRUE(
        db_->types()
            ->RegisterClass(
                ClassBuilder("Reactor")
                    .Attribute("name", ValueType::kString, Value(""))
                    .Attribute("output", ValueType::kInt, Value(0))
                    .Method("boost",
                            [](Session& s, DbObject& self,
                               const std::vector<Value>& args)
                                -> Result<Value> {
                              int64_t delta =
                                  args.empty() ? 1 : args[0].as_int();
                              int64_t now =
                                  self.Get("output").as_int() + delta;
                              REACH_RETURN_IF_ERROR(s.SetAttr(
                                  self.oid(), "output", Value(now)));
                              return Value(now);
                            })
                    .Build())
            .ok());
  }
  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(SessionTest, PersistFetchByNameAcrossSessions) {
  Oid oid;
  {
    Session s(db_.get());
    ASSERT_TRUE(s.Begin().ok());
    auto r = s.PersistNew("Reactor",
                          {{"name", Value("Block A")}, {"output", Value(5)}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    oid = *r;
    ASSERT_TRUE(s.Bind("Block A", oid).ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto obj = s.FetchByName("Block A");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->Get("name"), Value("Block A"));
  EXPECT_EQ((*obj)->Get("output"), Value(5));
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(SessionTest, SetAttrWriteThroughAndAbortRollback) {
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("Reactor", {{"output", Value(100)}});
  ASSERT_TRUE(s.Commit().ok());

  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.SetAttr(*oid, "output", Value(200)).ok());
  EXPECT_EQ(*s.GetAttr(*oid, "output"), Value(200));
  ASSERT_TRUE(s.Abort().ok());

  ASSERT_TRUE(s.Begin().ok());
  EXPECT_EQ(*s.GetAttr(*oid, "output"), Value(100));  // rolled back
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(SessionTest, InvokeRunsMethodInTransaction) {
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("Reactor", {{"output", Value(10)}});
  auto r = s.Invoke(*oid, "boost", {Value(5)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, Value(15));
  EXPECT_EQ(*s.GetAttr(*oid, "output"), Value(15));
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(SessionTest, UnknownMethodAndAttrRejected) {
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("Reactor", {});
  EXPECT_TRUE(s.Invoke(*oid, "nope").status().IsNotFound());
  EXPECT_TRUE(s.SetAttr(*oid, "nope", Value(1)).IsNotFound());
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(SessionTest, ExtentTracksPersistAndDelete) {
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  std::vector<Oid> oids;
  for (int i = 0; i < 5; ++i) {
    oids.push_back(*s.PersistNew("Reactor", {{"output", Value(i)}}));
  }
  auto extent = s.Extent("Reactor");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->size(), 5u);
  ASSERT_TRUE(s.Delete(oids[2]).ok());
  extent = s.Extent("Reactor");
  EXPECT_EQ(extent->size(), 4u);
  EXPECT_EQ(std::find(extent->begin(), extent->end(), oids[2]),
            extent->end());
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(SessionTest, ExtentIncludesSubclasses) {
  ASSERT_TRUE(db_->types()
                  ->RegisterClass(ClassBuilder("FastReactor", "Reactor")
                                      .Build())
                  .ok());
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.PersistNew("Reactor", {}).ok());
  ASSERT_TRUE(s.PersistNew("FastReactor", {}).ok());
  EXPECT_EQ(s.Extent("Reactor")->size(), 2u);
  EXPECT_EQ(s.Extent("Reactor", /*include_subclasses=*/false)->size(), 1u);
  EXPECT_EQ(s.Extent("FastReactor")->size(), 1u);
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(SessionTest, NestedSessionTransactions) {
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("Reactor", {{"output", Value(1)}});
  ASSERT_TRUE(s.Begin().ok());  // nested
  EXPECT_EQ(s.txn_depth(), 2u);
  ASSERT_TRUE(s.SetAttr(*oid, "output", Value(2)).ok());
  ASSERT_TRUE(s.Abort().ok());  // nested abort
  EXPECT_EQ(*s.GetAttr(*oid, "output"), Value(1));
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(SessionTest, InTxnHelperCommitsAndAborts) {
  Session s(db_.get());
  Oid oid;
  ASSERT_TRUE(s.InTxn([&](Session& in) -> Status {
                  auto r = in.PersistNew("Reactor", {{"output", Value(7)}});
                  if (!r.ok()) return r.status();
                  oid = *r;
                  return Status::OK();
                }).ok());
  Status failed = s.InTxn([&](Session& in) -> Status {
    REACH_RETURN_IF_ERROR(in.SetAttr(oid, "output", Value(8)));
    return Status::Internal("boom");
  });
  EXPECT_TRUE(failed.IsInternal());
  ASSERT_TRUE(s.Begin().ok());
  EXPECT_EQ(*s.GetAttr(oid, "output"), Value(7));
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(SessionTest, ChangePmTracksTxnChanges) {
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("Reactor", {});
  EXPECT_EQ(db_->change()->ChangedObjects(s.current_txn()).size(), 1u);
  ASSERT_TRUE(s.SetAttr(*oid, "output", Value(3)).ok());
  EXPECT_EQ(db_->change()->ChangedObjects(s.current_txn()).size(), 1u);
  TxnId txn = s.current_txn();
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_TRUE(db_->change()->ChangedObjects(txn).empty());
}

TEST_F(SessionTest, IndexMaintainedThroughEvents) {
  ASSERT_TRUE(db_->types()
                  ->RegisterClass(ClassBuilder("Breaker", "Reactor").Build())
                  .ok());
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto a = s.PersistNew("Reactor", {{"output", Value(10)}});
  auto b = s.PersistNew("Breaker", {{"output", Value(10)}});
  auto c = s.PersistNew("Reactor", {{"output", Value(20)}});
  ASSERT_TRUE(
      db_->indexing()->CreateIndex(s.current_txn(), "Reactor", "output")
          .ok());
  // Subclasses covered at build time.
  auto hits = db_->indexing()->Lookup("Reactor", "output", Value(10));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);

  // Maintenance through persist / state-change / delete events.
  auto d = s.PersistNew("Reactor", {{"output", Value(10)}});
  EXPECT_EQ(db_->indexing()->Lookup("Reactor", "output", Value(10))->size(),
            3u);
  ASSERT_TRUE(s.SetAttr(*a, "output", Value(99)).ok());
  EXPECT_EQ(db_->indexing()->Lookup("Reactor", "output", Value(10))->size(),
            2u);
  EXPECT_EQ(db_->indexing()->Lookup("Reactor", "output", Value(99))->size(),
            1u);
  ASSERT_TRUE(s.Delete(*d).ok());
  EXPECT_EQ(db_->indexing()->Lookup("Reactor", "output", Value(10))->size(),
            1u);
  ASSERT_TRUE(s.Commit().ok());
  (void)b;
  (void)c;
}

TEST_F(SessionTest, IndexRolledBackOnAbort) {
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto a = s.PersistNew("Reactor", {{"output", Value(1)}});
  ASSERT_TRUE(
      db_->indexing()->CreateIndex(s.current_txn(), "Reactor", "output")
          .ok());
  ASSERT_TRUE(s.Commit().ok());

  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.SetAttr(*a, "output", Value(2)).ok());
  EXPECT_EQ(db_->indexing()->Lookup("Reactor", "output", Value(2))->size(),
            1u);
  ASSERT_TRUE(s.Abort().ok());
  EXPECT_EQ(db_->indexing()->Lookup("Reactor", "output", Value(2))->size(),
            0u);
  EXPECT_EQ(db_->indexing()->Lookup("Reactor", "output", Value(1))->size(),
            1u);
}

TEST_F(SessionTest, DictionaryBindUnbind) {
  Session s(db_.get());
  ASSERT_TRUE(s.Begin().ok());
  auto oid = s.PersistNew("Reactor", {});
  ASSERT_TRUE(s.Bind("main", *oid).ok());
  EXPECT_TRUE(s.Bind("main", *oid).IsAlreadyExists());
  EXPECT_EQ(*s.Lookup("main"), *oid);
  ASSERT_TRUE(s.Unbind("main").ok());
  EXPECT_TRUE(s.Lookup("main").status().IsNotFound());
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(SessionTest, PersistenceSurvivesReopen) {
  Oid oid;
  {
    Session s(db_.get());
    ASSERT_TRUE(s.Begin().ok());
    oid = *s.PersistNew("Reactor",
                        {{"name", Value("B")}, {"output", Value(77)}});
    ASSERT_TRUE(s.Bind("B", oid).ok());
    ASSERT_TRUE(s.Commit().ok());
    db_.reset();  // close (no explicit checkpoint: recovery path)
  }
  auto db = Database::Open(dir_.DbPath());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->types()
                  ->RegisterClass(ClassBuilder("Reactor")
                                      .Attribute("name", ValueType::kString,
                                                 Value(""))
                                      .Attribute("output", ValueType::kInt,
                                                 Value(0))
                                      .Build())
                  .ok());
  Session s(db->get());
  ASSERT_TRUE(s.Begin().ok());
  auto obj = s.FetchByName("B");
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  EXPECT_EQ((*obj)->Get("output"), Value(77));
  ASSERT_TRUE(s.Commit().ok());
}

}  // namespace
}  // namespace reach
