// Batched event pipeline (docs/EVENTS.md "Batched pipeline"): the batch
// path must be detection-equivalent to single-event dispatch. Property
// test: identical pseudo-random workloads run with batch_mode on and off
// (and with a small batch size forcing mid-run flush boundaries) must
// produce exactly the same composite detections under all four SNOOP
// consumption policies; rule executions across every coupling mode must
// not change; and a multi-threaded stress run (the TSan CI target) must
// produce exact per-transaction completion counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/events/event_manager.h"
#include "core/reach/reach_db.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

// Deterministic 64-bit LCG so both pipeline configurations replay the
// exact same workload (no std::random_device).
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;
  }
};

class EventBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(dir_.DbPath(), {});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  static void SignalOne(EventManager* em, EventTypeId type, TxnId txn,
                        Timestamp ts) {
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = type;
    occ->txn = txn;
    occ->timestamp = ts;
    em->Signal(std::move(occ));
  }

  static void EndTxn(EventManager* em, TxnId txn, bool commit) {
    SentryEvent ev;
    ev.kind = commit ? SentryKind::kTxnCommit : SentryKind::kTxnAbort;
    ev.txn = txn;
    em->OnEvent(ev);
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

// One canonical line per detection: composite name, transaction, and the
// (type, timestamp) of every constituent in detection order.
std::string DetectionKey(const std::string& name,
                         const EventOccurrence& occ) {
  std::string key = name + "|txn=" + std::to_string(occ.txn) + "|";
  for (const auto& c : occ.constituents) {
    key += "(" + std::to_string(c->type) + "," +
           std::to_string(c->timestamp) + ")";
  }
  return key;
}

TEST_F(EventBatchTest, RandomWorkloadEquivalenceAcrossPolicies) {
  struct Config {
    bool batch;
    size_t max_events;
  };
  // Default batch size, batching off, and a tiny batch size that forces
  // flush boundaries to land mid-expression.
  const Config configs[] = {{false, 64}, {true, 64}, {true, 5}};
  const ConsumptionPolicy policies[] = {
      ConsumptionPolicy::kRecent, ConsumptionPolicy::kChronicle,
      ConsumptionPolicy::kContinuous, ConsumptionPolicy::kCumulative};
  for (uint64_t seed : {11ULL, 347ULL, 90001ULL}) {
    std::vector<std::vector<std::string>> per_config;
    for (const Config& cfg : configs) {
      EventManagerOptions opts;
      opts.async_composition = true;
      opts.composition_mode = CompositionMode::kWorkStealing;
      opts.composition_threads = 1;  // FIFO: Seq is feed-order sensitive
      opts.batch_mode = cfg.batch;
      opts.batch_max_events = cfg.max_events;
      auto em = std::make_unique<EventManager>(db_.get(), opts);
      auto a = em->DefineMethodEvent("ea", "C", "a");
      auto b = em->DefineMethodEvent("eb", "C", "b");
      auto c = em->DefineMethodEvent("ec", "C", "c");
      ASSERT_TRUE(a.ok() && b.ok() && c.ok());

      std::mutex mu;
      std::vector<std::string> detections;
      for (ConsumptionPolicy policy : policies) {
        const std::string suffix = ConsumptionPolicyName(policy);
        struct Shape {
          std::string name;
          EventExprPtr expr;
        };
        const Shape shapes[] = {
            {"seq_ab_" + suffix,
             EventExpr::Seq(EventExpr::Prim(*a), EventExpr::Prim(*b))},
            {"and_bc_" + suffix,
             EventExpr::And(EventExpr::Prim(*b), EventExpr::Prim(*c))},
            {"or_ac_" + suffix,
             EventExpr::Or(EventExpr::Prim(*a), EventExpr::Prim(*c))},
            {"hist_c3_" + suffix,
             EventExpr::History(EventExpr::Prim(*c), 3)},
        };
        for (const Shape& shape : shapes) {
          auto comp = em->DefineComposite(shape.name, shape.expr,
                                          CompositeScope::kSingleTxn, policy);
          ASSERT_TRUE(comp.ok());
          std::string name = shape.name;
          em->AddEventListener(
              *comp, [&mu, &detections, name](const EventOccurrencePtr& occ) {
                std::lock_guard<std::mutex> lock(mu);
                detections.push_back(DetectionKey(name, *occ));
              });
        }
      }

      // Single producer, unique increasing timestamps: per-thread admission
      // order is preserved by the batch path, so one producer plus one
      // composition worker makes the feed deterministic.
      Lcg rng(seed);
      const EventTypeId types[] = {*a, *b, *c};
      for (int i = 0; i < 2000; ++i) {
        const EventTypeId type = types[rng.Next() % 3];
        const TxnId txn = static_cast<TxnId>(rng.Next() % 8) + 1;
        SignalOne(em.get(), type, txn, i + 1);
      }
      em->Quiesce();
      for (TxnId txn = 1; txn <= 8; ++txn) {
        EndTxn(em.get(), txn, /*commit=*/txn % 2 == 0);
      }
      em->Quiesce();
      EXPECT_EQ(em->LivePartials(), 0u);
      std::sort(detections.begin(), detections.end());
      per_config.push_back(std::move(detections));
    }
    EXPECT_FALSE(per_config[0].empty()) << "seed " << seed;
    EXPECT_EQ(per_config[0], per_config[1])
        << "batch on/off diverged, seed " << seed;
    EXPECT_EQ(per_config[0], per_config[2])
        << "small batch size diverged, seed " << seed;
  }
}

// Rules across every coupling mode observe the same triggers and run the
// same actions whether or not the primitives feeding their composite were
// batched. Immediate coupling is only legal on the primitive itself —
// which carries a rule listener and therefore takes the scalar fallback;
// that mixed batched/unbatched workload is exactly what production looks
// like.
TEST(EventBatchRulesTest, CouplingModeEquivalence) {
  std::vector<std::map<std::string, uint64_t>> per_mode;
  for (bool batch : {false, true}) {
    TempDir dir;
    VirtualClock clock;
    ReachOptions options;
    options.database.clock = &clock;
    options.events.async_composition = true;
    options.events.composition_mode = CompositionMode::kWorkStealing;
    options.events.composition_threads = 1;
    options.events.batch_mode = batch;
    auto db = ReachDb::Open(dir.DbPath(), options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)
                    ->RegisterClass(
                        ClassBuilder("Counter")
                            .Attribute("n", ValueType::kInt, Value(0))
                            .Method("bump",
                                    [](Session& s, DbObject& self,
                                       const std::vector<Value>&)
                                        -> Result<Value> {
                                      int64_t now =
                                          self.Get("n").as_int() + 1;
                                      REACH_RETURN_IF_ERROR(s.SetAttr(
                                          self.oid(), "n", Value(now)));
                                      return Value(now);
                                    }))
                    .ok());
    auto ev = (*db)->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
    ASSERT_TRUE(ev.ok());
    auto triple = (*db)->events()->DefineComposite(
        "triple", EventExpr::History(EventExpr::Prim(*ev), 3),
        CompositeScope::kSingleTxn);
    ASSERT_TRUE(triple.ok());

    auto define = [&](const std::string& name, EventTypeId event,
                      CouplingMode mode) {
      RuleSpec spec;
      spec.name = name;
      spec.event = event;
      spec.coupling = mode;
      spec.action = [](Session&, const EventOccurrence&) -> Status {
        return Status::OK();
      };
      ASSERT_TRUE((*db)->rules()->DefineRule(std::move(spec)).ok());
    };
    define("imm", *ev, CouplingMode::kImmediate);
    define("def", *triple, CouplingMode::kDeferred);
    define("det", *triple, CouplingMode::kDetached);
    define("par", *triple, CouplingMode::kParallelCausallyDependent);
    define("seq", *triple, CouplingMode::kSequentialCausallyDependent);
    define("exc", *triple, CouplingMode::kExclusiveCausallyDependent);

    // One committing and one aborting trigger transaction, so both sides
    // of every causal dependency are exercised.
    for (bool commit : {true, false}) {
      Session s((*db)->database());
      ASSERT_TRUE(s.Begin().ok());
      auto oid = s.PersistNew("Counter", {});
      ASSERT_TRUE(oid.ok());
      for (int i = 0; i < 9; ++i) {
        ASSERT_TRUE(s.Invoke(*oid, "bump").ok());
      }
      // Deliver all composite detections before end-of-transaction: the
      // deferred phase and the causal bookkeeping run at commit/abort.
      (*db)->events()->Quiesce();
      ASSERT_TRUE((commit ? s.Commit() : s.Abort()).ok());
    }
    (*db)->Drain();

    std::map<std::string, uint64_t> counts;
    for (const char* name : {"imm", "def", "det", "par", "seq", "exc"}) {
      auto stats = (*db)->rules()->StatsOf(name);
      ASSERT_TRUE(stats.ok());
      counts[std::string(name) + ".triggered"] = stats->triggered;
      counts[std::string(name) + ".actions"] = stats->actions_run;
    }
    EXPECT_GT(counts["imm.actions"], 0u);
    EXPECT_GT(counts["def.actions"], 0u);
    per_mode.push_back(std::move(counts));
  }
  EXPECT_EQ(per_mode[0], per_mode[1]);
}

// Multi-threaded producers with the batch path on (the CI TSan stress
// target): per-transaction completion counts are exact because History(4)
// under chronicle consumption completes on every 4th feed regardless of
// worker interleaving.
TEST_F(EventBatchTest, StressExactCompletionCounts) {
  EventManagerOptions opts;
  opts.async_composition = true;
  opts.composition_mode = CompositionMode::kWorkStealing;
  opts.composition_threads = 4;
  opts.batch_mode = true;
  auto em = std::make_unique<EventManager>(db_.get(), opts);
  auto id = em->DefineMethodEvent("px", "C", "mx");
  ASSERT_TRUE(id.ok());
  auto comp = em->DefineComposite("quad",
                                  EventExpr::History(EventExpr::Prim(*id), 4),
                                  CompositeScope::kSingleTxn);
  ASSERT_TRUE(comp.ok());

  std::mutex mu;
  std::map<TxnId, uint64_t> completions;
  em->AddEventListener(*comp, [&](const EventOccurrencePtr& occ) {
    std::lock_guard<std::mutex> lock(mu);
    completions[occ->txn]++;
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      const TxnId txn = static_cast<TxnId>(w) + 1;
      for (int i = 0; i < kPerThread; ++i) {
        SignalOne(em.get(), *id, txn,
                  static_cast<Timestamp>(w) * 1000000 + i + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  em->Quiesce();

  for (int w = 0; w < kThreads; ++w) {
    const TxnId txn = static_cast<TxnId>(w) + 1;
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(completions[txn], static_cast<uint64_t>(kPerThread / 4))
        << "txn " << txn;
  }
  EXPECT_EQ(em->signaled_count(),
            static_cast<uint64_t>(kThreads) * kPerThread +
                em->composite_count());
  for (TxnId txn = 1; txn <= kThreads; ++txn) EndTxn(em.get(), txn, true);
  em->Quiesce();
  EXPECT_EQ(em->LivePartials(), 0u);
}

}  // namespace
}  // namespace reach
