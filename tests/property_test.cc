// Property-based tests: randomized streams and operation sequences checked
// against invariants rather than fixed expectations.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "core/events/compositor.h"
#include "core/events/event_registry.h"
#include "oodb/db_object.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::DurableLogCommit;
using reach::testing::TempDir;

// ---------------------------------------------------------------------------
// Value properties
// ---------------------------------------------------------------------------

Value RandomValue(Random* rng, int depth = 0) {
  switch (rng->Uniform(depth >= 2 ? 6 : 7)) {
    case 0: return Value();
    case 1: return Value(rng->Bernoulli(0.5));
    case 2: return Value(static_cast<int64_t>(rng->Next()));
    case 3: return Value(rng->NextDouble() * 1e6 - 5e5);
    case 4: {
      std::string s;
      for (size_t i = 0, n = rng->Uniform(20); i < n; ++i) {
        s.push_back(static_cast<char>(rng->Uniform(256)));
      }
      return Value(std::move(s));
    }
    case 5:
      return Value(Oid{static_cast<PageId>(rng->Uniform(1000)),
                       static_cast<SlotId>(rng->Uniform(100)),
                       static_cast<uint16_t>(rng->Uniform(10))});
    default: {
      std::vector<Value> list;
      for (size_t i = 0, n = rng->Uniform(4); i < n; ++i) {
        list.push_back(RandomValue(rng, depth + 1));
      }
      return Value(std::move(list));
    }
  }
}

TEST(ValueProperty, EncodeDecodeIsIdentity) {
  Random rng(99);
  for (int i = 0; i < 2000; ++i) {
    Value v = RandomValue(&rng);
    std::string buf;
    v.Encode(&buf);
    size_t pos = 0;
    auto decoded = Value::Decode(buf, &pos);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(ValueProperty, ComparisonConsistency) {
  Random rng(123);
  for (int i = 0; i < 2000; ++i) {
    Value a = RandomValue(&rng);
    Value b = RandomValue(&rng);
    // Equality is symmetric and consistent with <=>.
    EXPECT_EQ(a == b, b == a);
    auto ab = a <=> b;
    auto ba = b <=> a;
    if (ab == std::partial_ordering::less) {
      EXPECT_EQ(ba, std::partial_ordering::greater);
    } else if (ab == std::partial_ordering::greater) {
      EXPECT_EQ(ba, std::partial_ordering::less);
    }
  }
}

TEST(DbObjectProperty, SerializeDeserializeIsIdentity) {
  Random rng(7);
  for (int round = 0; round < 200; ++round) {
    DbObject obj("Class" + std::to_string(rng.Uniform(5)));
    for (size_t i = 0, n = rng.Uniform(10); i < n; ++i) {
      obj.Set("attr" + std::to_string(i), RandomValue(&rng));
    }
    auto back = DbObject::Deserialize(obj.Serialize());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->class_name(), obj.class_name());
    EXPECT_EQ(back->attributes().size(), obj.attributes().size());
    for (const auto& [name, value] : obj.attributes()) {
      EXPECT_EQ(back->Get(name), value);
    }
  }
}

// ---------------------------------------------------------------------------
// Object store: random op sequences vs an in-memory model
// ---------------------------------------------------------------------------

TEST(ObjectStoreProperty, MatchesInMemoryModel) {
  TempDir dir;
  auto sm = StorageManager::Open(dir.DbPath());
  ASSERT_TRUE(sm.ok());
  ObjectStore* store = (*sm)->objects();
  Random rng(2025);
  std::map<std::string, Oid> model;  // payload -> oid (payloads unique)
  int seq = 0;
  for (int round = 0; round < 3000; ++round) {
    int op = static_cast<int>(rng.Uniform(4));
    if (op == 0 || model.empty()) {
      size_t len = 1 + rng.Uniform(rng.Bernoulli(0.05) ? 9000 : 400);
      std::string payload =
          "obj" + std::to_string(++seq) + std::string(len, 'x');
      auto oid = store->Insert(1, payload);
      ASSERT_TRUE(oid.ok());
      model[payload] = *oid;
    } else if (op == 1) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      auto read = store->Read(it->second);
      ASSERT_TRUE(read.ok());
      ASSERT_EQ(*read, it->first);
    } else if (op == 2) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      size_t len = 1 + rng.Uniform(rng.Bernoulli(0.05) ? 9000 : 400);
      std::string payload =
          "obj" + std::to_string(++seq) + std::string(len, 'u');
      ASSERT_TRUE(store->Update(1, it->second, payload).ok());
      Oid oid = it->second;
      model.erase(it);
      model[payload] = oid;
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(store->Delete(1, it->second).ok());
      ASSERT_TRUE(store->Read(it->second).status().IsNotFound());
      model.erase(it);
    }
  }
  // Full verification sweep at the end.
  auto scan = store->ScanAll();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), model.size());
  for (const auto& [payload, oid] : model) {
    ASSERT_EQ(*store->Read(oid), payload);
  }
}

TEST(ObjectStoreProperty, RandomWorkloadSurvivesCrash) {
  TempDir dir;
  Random rng(31);
  std::map<std::string, Oid> committed_model;
  {
    auto sm = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE(sm.ok());
    ObjectStore* store = (*sm)->objects();
    int seq = 0;
    for (TxnId txn = 1; txn <= 50; ++txn) {
      ASSERT_TRUE((*sm)->LogBegin(txn).ok());
      std::map<std::string, Oid> txn_model = committed_model;
      for (int i = 0, n = 1 + static_cast<int>(rng.Uniform(8)); i < n; ++i) {
        std::string payload = "p" + std::to_string(++seq) +
                              std::string(rng.Uniform(300), 'd');
        auto oid = store->Insert(txn, payload);
        ASSERT_TRUE(oid.ok());
        txn_model[payload] = *oid;
      }
      if (rng.Bernoulli(0.6)) {
        ASSERT_TRUE(DurableLogCommit(sm->get(), txn).ok());
        committed_model = std::move(txn_model);
      }
      // else: crash with this txn in flight (never aborted cleanly)
      if (rng.Bernoulli(0.3)) {
        ASSERT_TRUE((*sm)->buffer_pool()->FlushAll().ok());
      }
    }
  }
  auto sm = StorageManager::Open(dir.DbPath());
  ASSERT_TRUE(sm.ok());
  for (const auto& [payload, oid] : committed_model) {
    auto read = (*sm)->objects()->Read(oid);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_EQ(*read, payload);
  }
}

// ---------------------------------------------------------------------------
// Compositor invariants under random streams
// ---------------------------------------------------------------------------

class CompositorProperty
    : public ::testing::TestWithParam<ConsumptionPolicy> {};

TEST_P(CompositorProperty, InvariantsUnderRandomStreams) {
  ConsumptionPolicy policy = GetParam();
  Random rng(static_cast<uint64_t>(policy) * 31 + 5);
  EventRegistry registry;
  std::vector<EventTypeId> prims;
  for (int i = 0; i < 4; ++i) {
    prims.push_back(*registry.RegisterMethodEvent(
        "P" + std::to_string(i), "C", "m" + std::to_string(i)));
  }
  std::vector<EventExprPtr> exprs = {
      EventExpr::Seq(EventExpr::Prim(prims[0]), EventExpr::Prim(prims[1])),
      EventExpr::And(EventExpr::Prim(prims[0]), EventExpr::Prim(prims[2])),
      EventExpr::Not(EventExpr::Prim(prims[0]), EventExpr::Prim(prims[1]),
                     EventExpr::Prim(prims[2])),
      EventExpr::Closure(EventExpr::Prim(prims[1]),
                         EventExpr::Prim(prims[3])),
      EventExpr::History(EventExpr::Prim(prims[2]), 3),
      EventExpr::Seq(
          EventExpr::Or(EventExpr::Prim(prims[0]), EventExpr::Prim(prims[1])),
          EventExpr::And(EventExpr::Prim(prims[2]),
                         EventExpr::Prim(prims[3]))),
  };
  for (size_t e = 0; e < exprs.size(); ++e) {
    auto id = registry.RegisterComposite(
        "X" + std::to_string(static_cast<int>(policy)) + "_" +
            std::to_string(e),
        exprs[e], CompositeScope::kSingleTxn, policy);
    ASSERT_TRUE(id.ok());
    Compositor compositor(registry.Find(*id));
    uint64_t seq = 0;
    std::vector<EventOccurrencePtr> out;
    for (int i = 0; i < 3000; ++i) {
      auto occ = std::make_shared<EventOccurrence>();
      occ->type = prims[rng.Uniform(prims.size())];
      occ->sequence = ++seq;
      occ->timestamp = static_cast<Timestamp>(seq * 3);
      occ->txn = 1 + rng.Uniform(3);
      compositor.Feed(occ, &out);
      if (rng.Bernoulli(0.01)) {
        compositor.OnTxnEnd(1 + rng.Uniform(3));
      }
    }
    for (const auto& comp : out) {
      // 1. Completions carry the composite's type id.
      ASSERT_EQ(comp->type, *id);
      // 2. Constituents are non-empty leaves of the right primitive types.
      ASSERT_FALSE(comp->constituents.empty());
      std::vector<const EventOccurrence*> leaves;
      comp->CollectLeaves(&leaves);
      for (const EventOccurrence* leaf : leaves) {
        ASSERT_NE(std::find(prims.begin(), prims.end(), leaf->type),
                  prims.end());
      }
      // 3. Single-txn scope: every constituent from the same transaction.
      ASSERT_EQ(comp->InvolvedTxns().size(), 1u);
      // 4. The composite's sequence equals its last constituent's.
      uint64_t max_seq = 0;
      for (const EventOccurrence* leaf : leaves) {
        max_seq = std::max(max_seq, leaf->sequence);
      }
      ASSERT_EQ(comp->sequence, max_seq);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CompositorProperty,
    ::testing::Values(ConsumptionPolicy::kRecent,
                      ConsumptionPolicy::kChronicle,
                      ConsumptionPolicy::kContinuous,
                      ConsumptionPolicy::kCumulative),
    [](const ::testing::TestParamInfo<ConsumptionPolicy>& param_info) {
      return ConsumptionPolicyName(param_info.param);
    });

TEST(CompositorProperty, ValidityWindowNeverViolated) {
  Random rng(404);
  EventRegistry registry;
  EventTypeId a = *registry.RegisterMethodEvent("A", "C", "a");
  EventTypeId b = *registry.RegisterMethodEvent("B", "C", "b");
  constexpr Timestamp kValidity = 500;
  auto id = registry.RegisterComposite(
      "W", EventExpr::Seq(EventExpr::Prim(a), EventExpr::Prim(b)),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kContinuous, kValidity);
  ASSERT_TRUE(id.ok());
  Compositor compositor(registry.Find(*id));
  uint64_t seq = 0;
  Timestamp now = 0;
  std::vector<EventOccurrencePtr> out;
  for (int i = 0; i < 5000; ++i) {
    now += rng.Uniform(200);
    auto occ = std::make_shared<EventOccurrence>();
    occ->type = rng.Bernoulli(0.5) ? a : b;
    occ->sequence = ++seq;
    occ->timestamp = now;
    occ->txn = 1 + rng.Uniform(5);
    compositor.Feed(occ, &out);
  }
  for (const auto& comp : out) {
    std::vector<const EventOccurrence*> leaves;
    comp->CollectLeaves(&leaves);
    Timestamp first = leaves.front()->timestamp;
    Timestamp last = leaves.back()->timestamp;
    // No completion spans more than the validity interval.
    EXPECT_LE(last - first, kValidity);
  }
}

}  // namespace
}  // namespace reach
