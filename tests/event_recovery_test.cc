// Recovery differential for the durable event history (docs/EVENTS.md
// "Durability & recovery"): for each SNOOP consumption policy, crash
// mid-composition under fault injection, recover, and assert the detection
// output is identical to an uninterrupted run. Detections are canonicalized
// as composite name + leaf logical timestamps — sequences are process-local
// and shift across a restart, timestamps come from the shared virtual clock
// and identify leaves exactly.
//
// Composition runs inline: crash faults may only fire on the test's own
// thread (a FaultInjectedCrash on a pool worker would terminate the
// process), and inline feeds make the detection order deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/reach/reach_db.h"
#include "test_util.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {
namespace {

using reach::testing::TempDir;

constexpr Timestamp kSec = 1000000;

/// One scripted driver step: raise primitive 'A' or 'B' at a virtual time.
struct Step {
  char event;
  Timestamp at;
};

std::string CanonOne(const EventOccurrencePtr& det) {
  std::vector<const EventOccurrence*> leaves;
  det->CollectLeaves(&leaves);
  std::vector<Timestamp> ts;
  for (const EventOccurrence* leaf : leaves) ts.push_back(leaf->timestamp);
  std::sort(ts.begin(), ts.end());
  std::string out = "AB:";
  for (Timestamp t : ts) out += std::to_string(t) + ",";
  return out;
}

std::multiset<std::string> Canon(const std::vector<EventOccurrencePtr>& dets) {
  std::multiset<std::string> out;
  for (const auto& d : dets) out.insert(CanonOne(d));
  return out;
}

/// One open database phase: primitives A and B, composite AB = Seq(A, B)
/// with the policy under test, listener collecting completions.
struct Phase {
  std::unique_ptr<ReachDb> db;
  EventTypeId a = kInvalidEventType;
  EventTypeId b = kInvalidEventType;
  EventTypeId ab = kInvalidEventType;
  std::shared_ptr<std::vector<EventOccurrencePtr>> detections =
      std::make_shared<std::vector<EventOccurrencePtr>>();

  Status RunStep(VirtualClock* clock, const Step& step) {
    clock->Set(step.at);
    return db->events()->Raise(step.event == 'A' ? a : b, kNoTxn);
  }
};

Phase OpenPhase(const std::string& base, VirtualClock* clock,
                ConsumptionPolicy policy, Timestamp validity_us) {
  ReachOptions options;
  options.database.clock = clock;
  options.events.async_composition = false;
  auto db = ReachDb::Open(base, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  Phase p;
  p.db = std::move(*db);
  EXPECT_TRUE(p.db->RegisterClass(
                      ClassBuilder("Obj")
                          .Method("a",
                                  [](Session&, DbObject&,
                                     const std::vector<Value>&)
                                      -> Result<Value> { return Value(); })
                          .Method("b",
                                  [](Session&, DbObject&,
                                     const std::vector<Value>&)
                                      -> Result<Value> { return Value(); }))
                  .ok());
  p.a = *p.db->events()->DefineMethodEvent("A", "Obj", "a");
  p.b = *p.db->events()->DefineMethodEvent("B", "Obj", "b");
  auto ab = p.db->events()->DefineComposite(
      "AB", EventExpr::Seq(EventExpr::Prim(p.a), EventExpr::Prim(p.b)),
      CompositeScope::kCrossTxn, policy, validity_us);
  EXPECT_TRUE(ab.ok()) << ab.status().ToString();
  p.ab = *ab;
  auto sink = p.detections;
  p.db->events()->AddEventListener(
      p.ab, [sink](const EventOccurrencePtr& occ) { sink->push_back(occ); });
  return p;
}

const std::vector<Step> kSchedule = {
    {'A', 10 * kSec}, {'A', 20 * kSec}, {'A', 30 * kSec},
    {'B', 40 * kSec}, {'B', 50 * kSec},
};

/// The reference: same schedule, no interruption.
std::multiset<std::string> RunUninterrupted(ConsumptionPolicy policy,
                                            Timestamp validity_us,
                                            const std::vector<Step>& steps) {
  TempDir dir;
  VirtualClock clock;
  Phase p = OpenPhase(dir.DbPath(), &clock, policy, validity_us);
  for (const Step& s : steps) EXPECT_TRUE(p.RunStep(&clock, s).ok());
  p.db->Drain();
  return Canon(*p.detections);
}

struct InterruptedResult {
  std::multiset<std::string> detections;
  uint64_t replayed = 0;
};

/// Crash-and-recover run: steps [0, crash_idx) execute normally; the crash
/// fault (if any) is armed, step crash_idx runs (it may throw the injected
/// crash), the process "dies" (phase torn down), and a fresh phase replays
/// the history before running the remaining steps.
InterruptedResult RunWithRestart(ConsumptionPolicy policy,
                                 Timestamp validity_us,
                                 const std::vector<Step>& steps,
                                 size_t crash_idx, const char* crash_point,
                                 bool checkpoint_before_crash) {
  auto& reg = FaultRegistry::Instance();
  TempDir dir;
  VirtualClock clock;
  InterruptedResult result;
  size_t resume_from = crash_idx;
  {
    Phase p = OpenPhase(dir.DbPath(), &clock, policy, validity_us);
    for (size_t i = 0; i < crash_idx; ++i) {
      EXPECT_TRUE(p.RunStep(&clock, steps[i]).ok());
    }
    if (checkpoint_before_crash) EXPECT_TRUE(p.db->Checkpoint().ok());
    // Steps before the crash reached the durable log (group commit would
    // have flushed them in a real workload; Raise has no commit to ride).
    EXPECT_TRUE(p.db->events()->FlushEventLog().ok());
    if (crash_point != nullptr) {
      reg.ArmCrash(crash_point, /*nth=*/1);
      try {
        Status st = p.RunStep(&clock, steps[crash_idx]);
        // The crash point may sit past the step's effect (e.g. a checkpoint
        // fault never fires from a plain Raise).
        EXPECT_TRUE(st.ok()) << st.ToString();
        resume_from = crash_idx + 1;
      } catch (const FaultInjectedCrash& crash) {
        EXPECT_EQ(std::string(crash.point()), std::string(crash_point));
        resume_from = crash_idx;  // the step never happened; re-run it
      }
      reg.DisarmAll();
    } else {
      // Plain restart (no fault): the boundary step still runs and reaches
      // the durable log before teardown, so it forms the post-checkpoint
      // tail that recovery must replay.
      EXPECT_TRUE(p.RunStep(&clock, steps[crash_idx]).ok());
      EXPECT_TRUE(p.db->events()->FlushEventLog().ok());
      resume_from = crash_idx + 1;
    }
    for (const auto& d : *p.detections) result.detections.insert(CanonOne(d));
    // Phase torn down here with whatever state the "crash" left behind.
  }
  Phase p2 = OpenPhase(dir.DbPath(), &clock, policy, validity_us);
  result.replayed = p2.db->events()->history_replayed();
  for (size_t i = resume_from; i < steps.size(); ++i) {
    EXPECT_TRUE(p2.RunStep(&clock, steps[i]).ok());
  }
  p2.db->Drain();
  for (const auto& d : *p2.detections) result.detections.insert(CanonOne(d));
  return result;
}

class EventRecoveryTest
    : public ::testing::TestWithParam<ConsumptionPolicy> {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

// The headline differential: crash while appending the third occurrence to
// the event history (before any terminator arrived), recover, finish the
// schedule — detections must match the uninterrupted run exactly.
TEST_P(EventRecoveryTest, CrashDuringOccurrenceAppendIsLossless) {
  const Timestamp validity = 100 * kSec;
  auto expected = RunUninterrupted(GetParam(), validity, kSchedule);
  ASSERT_FALSE(expected.empty());
  auto crashed = RunWithRestart(GetParam(), validity, kSchedule,
                                /*crash_idx=*/2, faults::kEventHistoryAppend,
                                /*checkpoint_before_crash=*/false);
  EXPECT_EQ(crashed.detections, expected);
  // The surviving tail (A@10, A@20) was actually replayed, not re-raised.
  EXPECT_GE(crashed.replayed, 2u);
}

// Restart after a completion already fired: the consumption tombstone must
// suppress the replayed completion, or the differential double-counts it.
TEST_P(EventRecoveryTest, RestartAfterCompletionDoesNotRefire) {
  const Timestamp validity = 100 * kSec;
  auto expected = RunUninterrupted(GetParam(), validity, kSchedule);
  auto restarted = RunWithRestart(GetParam(), validity, kSchedule,
                                  /*crash_idx=*/4, /*crash_point=*/nullptr,
                                  /*checkpoint_before_crash=*/false);
  EXPECT_EQ(restarted.detections, expected);
}

// Recovery replays checkpoint + tail: partial state checkpointed after two
// occurrences, one more logged after it, then restart.
TEST_P(EventRecoveryTest, CheckpointPlusTailReplay) {
  const Timestamp validity = 100 * kSec;
  auto expected = RunUninterrupted(GetParam(), validity, kSchedule);
  auto restarted = RunWithRestart(GetParam(), validity, kSchedule,
                                  /*crash_idx=*/2, /*crash_point=*/nullptr,
                                  /*checkpoint_before_crash=*/true);
  EXPECT_EQ(restarted.detections, expected);
  // The checkpoint absorbed A@10 and A@20; only the post-checkpoint tail
  // (A@30, fed before teardown) replays.
  EXPECT_LE(restarted.replayed, 1u);
}

// Crash inside the checkpoint write itself: the torn checkpoint must not
// replace the tail it was about to subsume.
TEST_P(EventRecoveryTest, CrashDuringCheckpointKeepsTail) {
  const Timestamp validity = 100 * kSec;
  auto& reg = FaultRegistry::Instance();
  auto expected = RunUninterrupted(GetParam(), validity, kSchedule);
  TempDir dir;
  VirtualClock clock;
  std::multiset<std::string> detections;
  {
    Phase p = OpenPhase(dir.DbPath(), &clock, GetParam(), validity);
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(p.RunStep(&clock, kSchedule[i]).ok());
    }
    ASSERT_TRUE(p.db->events()->FlushEventLog().ok());
    reg.ArmCrash(faults::kEventHistoryCheckpoint, /*nth=*/1);
    EXPECT_THROW((void)p.db->Checkpoint(), FaultInjectedCrash);
    reg.DisarmAll();
    for (const auto& d : *p.detections) detections.insert(CanonOne(d));
  }
  Phase p2 = OpenPhase(dir.DbPath(), &clock, GetParam(), validity);
  EXPECT_GE(p2.db->events()->history_replayed(), 3u);
  for (size_t i = 3; i < kSchedule.size(); ++i) {
    ASSERT_TRUE(p2.RunStep(&clock, kSchedule[i]).ok());
  }
  p2.db->Drain();
  for (const auto& d : *p2.detections) detections.insert(CanonOne(d));
  EXPECT_EQ(detections, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, EventRecoveryTest,
    ::testing::Values(ConsumptionPolicy::kRecent,
                      ConsumptionPolicy::kChronicle,
                      ConsumptionPolicy::kContinuous,
                      ConsumptionPolicy::kCumulative),
    [](const ::testing::TestParamInfo<ConsumptionPolicy>& info) {
      switch (info.param) {
        case ConsumptionPolicy::kRecent: return std::string("Recent");
        case ConsumptionPolicy::kChronicle: return std::string("Chronicle");
        case ConsumptionPolicy::kContinuous: return std::string("Continuous");
        case ConsumptionPolicy::kCumulative: return std::string("Cumulative");
      }
      return std::string("Unknown");
    });

// ---------------------------------------------------------------------------
// Validity intervals across the restart gap
// ---------------------------------------------------------------------------

// An initiator whose validity interval lapses while the process is down is
// expired at recovery (before any feed), so the terminator finds nothing; an
// initiator still inside its window survives the restart and completes.
TEST(EventValidityRecoveryTest, ExpiryInsideDowntimeWindowIsHonored) {
  const Timestamp validity = 15 * kSec;
  TempDir dir;
  VirtualClock clock;
  {
    Phase p = OpenPhase(dir.DbPath(), &clock, ConsumptionPolicy::kChronicle,
                        validity);
    ASSERT_TRUE(p.RunStep(&clock, {'A', 10 * kSec}).ok());
    ASSERT_TRUE(p.db->events()->FlushEventLog().ok());
    EXPECT_EQ(p.db->events()->CompositorOf(p.ab)->LivePartialCount(), 1u);
  }
  // Downtime: the validity interval of A@10 (10s..25s) lapses at 40s.
  clock.Set(40 * kSec);
  Phase p2 = OpenPhase(dir.DbPath(), &clock, ConsumptionPolicy::kChronicle,
                       validity);
  const Compositor* comp = p2.db->events()->CompositorOf(p2.ab);
  ASSERT_NE(comp, nullptr);
  // Expired during recovery, before any new occurrence arrived.
  EXPECT_EQ(comp->LivePartialCount(), 0u);
  EXPECT_GE(comp->stats().expired_partials, 1u);
  ASSERT_TRUE(p2.RunStep(&clock, {'B', 41 * kSec}).ok());
  p2.db->Drain();
  EXPECT_TRUE(p2.detections->empty())
      << "completion used an initiator that expired during downtime";

  // Positive control: an initiator still inside its window at reopen time
  // survives the restart and pairs with the terminator.
  ASSERT_TRUE(p2.RunStep(&clock, {'A', 42 * kSec}).ok());
  ASSERT_TRUE(p2.db->events()->FlushEventLog().ok());
  std::multiset<std::string> expected = {"AB:" + std::to_string(42 * kSec) +
                                         "," + std::to_string(50 * kSec) +
                                         ","};
  clock.Set(50 * kSec);
  Phase p3 = OpenPhase(dir.DbPath(), &clock, ConsumptionPolicy::kChronicle,
                       validity);
  ASSERT_TRUE(p3.RunStep(&clock, {'B', 50 * kSec}).ok());
  p3.db->Drain();
  EXPECT_EQ(Canon(*p3.detections), expected);
}

// ---------------------------------------------------------------------------
// Validity GC property test (satellite: random interleavings vs. a model)
// ---------------------------------------------------------------------------

// Drive a cross-txn Seq(E1, E2) chronicle compositor with a random
// interleaving and mirror it with an exact reference model: on every feed,
// partials older than the validity cutoff drop first, then an E1 opens an
// initiator and an E2 consumes the oldest open one. Invariants: no partial
// survives past its cutoff, the expired_partials counter equals the model's
// drops exactly, completions and live counts match — and a
// snapshot/restore "restart" in the middle changes nothing.
TEST(EventValidityRecoveryTest, RandomInterleavingsMatchGcModel) {
  for (uint32_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EventRegistry registry;
    EventTypeId e1 = *registry.RegisterMethodEvent("E1", "C", "m1");
    EventTypeId e2 = *registry.RegisterMethodEvent("E2", "C", "m2");
    const Timestamp validity = 50;
    auto id = registry.RegisterComposite(
        "pair", EventExpr::Seq(EventExpr::Prim(e1), EventExpr::Prim(e2)),
        CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle, validity);
    ASSERT_TRUE(id.ok());
    const EventDescriptor* desc = registry.Find(*id);
    auto compositor = std::make_unique<Compositor>(desc);

    std::mt19937 rng(seed);
    std::vector<Timestamp> open;  // model: open initiators' timestamps
    uint64_t model_drops = 0, model_completions = 0;
    uint64_t actual_completions = 0;
    Timestamp t = 0;
    uint64_t seq = 0;
    for (int step = 0; step < 400; ++step) {
      t += 1 + static_cast<Timestamp>(rng() % 40);
      bool is_e1 = (rng() % 2) == 0;
      // Model: lazy GC first (the compositor expires before feeding).
      Timestamp cutoff = t - validity;
      size_t before = open.size();
      open.erase(std::remove_if(open.begin(), open.end(),
                                [cutoff](Timestamp ts) {
                                  return ts < cutoff;
                                }),
                 open.end());
      model_drops += before - open.size();
      if (is_e1) {
        open.push_back(t);
      } else if (!open.empty()) {
        open.erase(open.begin());  // chronicle: oldest initiator consumed
        model_completions++;
      }

      auto occ = std::make_shared<EventOccurrence>();
      occ->type = is_e1 ? e1 : e2;
      occ->timestamp = t;
      occ->sequence = ++seq;
      occ->txn = 1;
      std::vector<EventOccurrencePtr> out;
      compositor->Feed(occ, &out);
      actual_completions += out.size();

      ASSERT_EQ(compositor->LivePartialCount(), open.size())
          << "at step " << step;
      for (Timestamp ts : open) {
        ASSERT_GE(ts, cutoff) << "model partial survived past its cutoff";
      }

      if (step == 200) {
        // Mid-stream "restart": serialize, restore into a fresh compositor,
        // and continue on the restored instance.
        std::string state = compositor->SnapshotState(&registry);
        ASSERT_FALSE(state.empty());
        auto restored = std::make_unique<Compositor>(desc);
        ASSERT_TRUE(restored->RestoreState(state, &registry).ok());
        ASSERT_EQ(restored->LivePartialCount(), open.size());
        uint64_t expired_so_far = compositor->stats().expired_partials;
        ASSERT_EQ(expired_so_far, model_drops);
        model_drops = 0;  // the fresh instance counts from zero
        compositor = std::move(restored);
      }
    }
    EXPECT_EQ(actual_completions, model_completions);
    EXPECT_EQ(compositor->stats().expired_partials, model_drops);
  }
}

// Corrupt checkpoint state is a typed Corruption error, not a crash.
TEST(EventValidityRecoveryTest, ShapeMismatchIsCorruption) {
  EventRegistry registry;
  EventTypeId e1 = *registry.RegisterMethodEvent("E1", "C", "m1");
  EventTypeId e2 = *registry.RegisterMethodEvent("E2", "C", "m2");
  auto seq_id = registry.RegisterComposite(
      "pair", EventExpr::Seq(EventExpr::Prim(e1), EventExpr::Prim(e2)),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle, 1000);
  auto and_id = registry.RegisterComposite(
      "both", EventExpr::And(EventExpr::Prim(e1), EventExpr::Prim(e2)),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle, 1000);
  ASSERT_TRUE(seq_id.ok() && and_id.ok());
  Compositor seq_comp(registry.Find(*seq_id));
  Compositor and_comp(registry.Find(*and_id));
  auto occ = std::make_shared<EventOccurrence>();
  occ->type = e1;
  occ->timestamp = 5;
  occ->sequence = 1;
  occ->txn = 1;
  std::vector<EventOccurrencePtr> out;
  seq_comp.Feed(occ, &out);
  std::string state = seq_comp.SnapshotState(&registry);
  ASSERT_FALSE(state.empty());
  Status st = and_comp.RestoreState(state, &registry);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  Status truncated =
      seq_comp.RestoreState(state.substr(0, state.size() / 2), &registry);
  EXPECT_TRUE(truncated.IsCorruption()) << truncated.ToString();
}

}  // namespace
}  // namespace reach
