// Pluggable disk backend tests (docs/STORAGE.md "Async disk backend"):
// option parsing, write-run coalescing, per-backend batched roundtrips,
// buffer-pool readahead, the disk.backend.{submit,complete} fault points,
// and recovery equivalence — the on-disk state a crash leaves behind must
// recover identically no matter which backend replays it.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_backend.h"
#include "storage/disk_manager.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::DurableLogCommit;
using reach::testing::TempDir;

// The backends every build can instantiate. kUring resolves to the async
// backend when io_uring is compiled out or the kernel refuses the ring, so
// requesting it is always safe; the roundtrip/equivalence tests sweep it
// regardless and exercise whatever it resolved to.
const DiskBackendKind kAllKinds[] = {
    DiskBackendKind::kPosix, DiskBackendKind::kAsync, DiskBackendKind::kUring};

const char* KindLabel(DiskBackendKind kind) {
  switch (kind) {
    case DiskBackendKind::kPosix:
      return "posix";
    case DiskBackendKind::kAsync:
      return "async";
    case DiskBackendKind::kUring:
      return "uring";
    default:
      return "default";
  }
}

TEST(DiskBackendOptionsTest, ParsesBackendAndThreads) {
  auto opts = DiskBackendOptions::Parse("backend=async,io_threads=3");
  EXPECT_EQ(opts.kind, DiskBackendKind::kAsync);
  EXPECT_EQ(opts.io_threads, 3u);

  opts = DiskBackendOptions::Parse("backend=uring");
  EXPECT_EQ(opts.kind, DiskBackendKind::kUring);

  opts = DiskBackendOptions::Parse("backend=posix;io_threads=1");
  EXPECT_EQ(opts.kind, DiskBackendKind::kPosix);
  EXPECT_EQ(opts.io_threads, 1u);
}

TEST(DiskBackendOptionsTest, IgnoresUnknownEntriesAndDefaults) {
  // Shares REACH_STORAGE with the buffer pool's shards=<N> knob.
  auto opts = DiskBackendOptions::Parse("shards=8,backend=async,group=on");
  EXPECT_EQ(opts.kind, DiskBackendKind::kAsync);

  opts = DiskBackendOptions::Parse(nullptr);
  EXPECT_EQ(opts.kind, DiskBackendKind::kDefault);
  EXPECT_EQ(opts.io_threads, 0u);

  opts = DiskBackendOptions::Parse("backend=bogus");
  EXPECT_EQ(opts.kind, DiskBackendKind::kDefault);
}

TEST(BuildWriteRunsTest, SortsAndCoalescesContiguousPages) {
  // Pages {5, 3, 4, 9} arrive unsorted: expect runs [3,4,5] and [9].
  char bufs[4][1];
  std::vector<std::pair<PageId, const char*>> batch = {
      {5, bufs[0]}, {3, bufs[1]}, {4, bufs[2]}, {9, bufs[3]}};
  auto runs = BuildWriteRuns(std::move(batch));
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].first_page, 3u);
  ASSERT_EQ(runs[0].iov.size(), 3u);
  EXPECT_EQ(runs[0].iov[0].iov_base, static_cast<void*>(bufs[1]));
  EXPECT_EQ(runs[0].iov[1].iov_base, static_cast<void*>(bufs[2]));
  EXPECT_EQ(runs[0].iov[2].iov_base, static_cast<void*>(bufs[0]));
  EXPECT_EQ(runs[1].first_page, 9u);
  ASSERT_EQ(runs[1].iov.size(), 1u);
  for (const auto& run : runs) {
    for (const auto& iov : run.iov) EXPECT_EQ(iov.iov_len, kPageSize);
  }
}

TEST(BuildWriteRunsTest, CapsRunLength) {
  char buf[1];
  std::vector<std::pair<PageId, const char*>> batch;
  for (PageId p = 0; p < 10; ++p) batch.emplace_back(p, buf);
  auto runs = BuildWriteRuns(std::move(batch), /*max_run_pages=*/4);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].first_page, 0u);
  EXPECT_EQ(runs[0].iov.size(), 4u);
  EXPECT_EQ(runs[1].first_page, 4u);
  EXPECT_EQ(runs[1].iov.size(), 4u);
  EXPECT_EQ(runs[2].first_page, 8u);
  EXPECT_EQ(runs[2].iov.size(), 2u);
}

TEST(BuildWriteRunsTest, EmptyBatchYieldsNoRuns) {
  EXPECT_TRUE(BuildWriteRuns({}).empty());
}

// Every backend must write and read back a scattered batch identically —
// including the coalesced multi-page runs and the single-request fast path.
TEST(DiskBackendRoundtripTest, BatchedWriteThenReadAcrossBackends) {
  for (DiskBackendKind kind : kAllKinds) {
    SCOPED_TRACE(KindLabel(kind));
    TempDir dir;
    auto dm_or = DiskManager::Open(dir.DbPath() + ".db", kind);
    ASSERT_TRUE(dm_or.ok());
    auto dm = std::move(*dm_or);
    if (kind == DiskBackendKind::kPosix) {
      EXPECT_STREQ(dm->backend_name(), "posix");
    } else if (kind == DiskBackendKind::kAsync) {
      EXPECT_STREQ(dm->backend_name(), "async");
    } else {
      // uring falls back to async when unavailable.
      EXPECT_STREQ(dm->backend_name(),
                   UringBackendAvailable() ? "uring" : "async");
    }

    constexpr PageId kPages = 24;
    for (PageId p = 0; p < kPages; ++p) {
      auto id = dm->AllocatePage();
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(*id, p);
    }
    EXPECT_EQ(dm->num_pages(), kPages);

    // Distinct content per page; submit in shuffled order with a gap so
    // coalescing produces several runs.
    std::vector<std::string> images(kPages);
    std::vector<std::pair<PageId, const char*>> writes;
    for (PageId p = 0; p < kPages; ++p) {
      if (p == 11) continue;  // gap: page 11 stays zero
      images[p].assign(kPageSize, static_cast<char>('a' + (p % 26)));
      images[p][0] = static_cast<char>(p);
      writes.emplace_back(p, images[p].data());
    }
    // Shuffle deterministically: reverse order.
    std::reverse(writes.begin(), writes.end());
    ASSERT_TRUE(dm->WritePages(std::move(writes)).ok());

    std::vector<std::string> readback(kPages, std::string(kPageSize, 'x'));
    std::vector<PageReadRequest> reads;
    for (PageId p = 0; p < kPages; ++p) {
      reads.push_back({p, readback[p].data()});
    }
    ASSERT_TRUE(dm->ReadPages(reads).ok());
    for (PageId p = 0; p < kPages; ++p) {
      SCOPED_TRACE(p);
      if (p == 11) {
        EXPECT_EQ(readback[p], std::string(kPageSize, '\0'));
      } else {
        EXPECT_EQ(readback[p], images[p]);
      }
    }

    // Single-element batch exercises each backend's fast path.
    std::string one(kPageSize, 'Z');
    ASSERT_TRUE(dm->WritePages({{3, one.data()}}).ok());
    std::string got(kPageSize, '?');
    std::vector<PageReadRequest> single = {{3, got.data()}};
    ASSERT_TRUE(dm->ReadPages(single).ok());
    EXPECT_EQ(got, one);

    // Out-of-range member fails the whole batch.
    std::string oob(kPageSize, 'q');
    std::vector<PageReadRequest> bad = {{kPages + 5, oob.data()}};
    EXPECT_FALSE(dm->ReadPages(bad).ok());
    EXPECT_FALSE(dm->WritePages({{kPages + 5, oob.data()}}).ok());

    // Empty batches are no-ops (they still cross the fault points).
    EXPECT_TRUE(dm->ReadPages({}).ok());
    EXPECT_TRUE(dm->WritePages({}).ok());
  }
}

// The WAL's fused append path: whatever backend it resolves, appended
// records must be durable and readable; the uring backend reports
// fused_append and still produces a byte-identical log.
TEST(DiskBackendRoundtripTest, WalAppendSyncAcrossBackends) {
  for (DiskBackendKind kind : kAllKinds) {
    SCOPED_TRACE(KindLabel(kind));
    TempDir dir;
    WalOptions wopts;
    wopts.group_commit = true;
    auto wal_or = Wal::Open(dir.DbPath() + ".wal", wopts, kind);
    ASSERT_TRUE(wal_or.ok());
    auto wal = std::move(*wal_or);
    for (int i = 0; i < 20; ++i) {
      WalRecord rec;
      rec.type = WalRecordType::kPhysical;
      rec.txn = 1;
      rec.page = static_cast<PageId>(i + 1);
      rec.slot = 0;
      rec.after.flag = 1;
      rec.after.bytes = "record_" + std::to_string(i);
      ASSERT_TRUE(wal->Append(std::move(rec)).ok());
    }
    ASSERT_TRUE(wal->Flush().ok());
    EXPECT_EQ(wal->unflushed_records(), 0u);

    std::vector<WalRecord> records;
    ASSERT_TRUE(wal->ReadAll(&records).ok());
    ASSERT_EQ(records.size(), 20u);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(records[i].after.bytes, "record_" + std::to_string(i));
    }
  }
}

TEST(BufferPoolReadAheadTest, WarmsPoolAndServesHits) {
  TempDir dir;
  auto dm_or = DiskManager::Open(dir.DbPath() + ".db", DiskBackendKind::kAsync);
  ASSERT_TRUE(dm_or.ok());
  auto dm = std::move(*dm_or);
  constexpr PageId kPages = 16;
  std::vector<std::string> images(kPages);
  std::vector<std::pair<PageId, const char*>> writes;
  for (PageId p = 0; p < kPages; ++p) {
    ASSERT_TRUE(dm->AllocatePage().ok());
    images[p].assign(kPageSize, static_cast<char>('A' + p));
    writes.emplace_back(p, images[p].data());
  }
  ASSERT_TRUE(dm->WritePages(std::move(writes)).ok());

  BufferPool pool(dm.get(), /*pool_size=*/kPages + 4, /*shards=*/2);
  std::vector<PageId> all;
  for (PageId p = 0; p < kPages; ++p) all.push_back(p);
  ASSERT_TRUE(pool.ReadAhead(all).ok());
  const uint64_t misses_after_warm = pool.miss_count();

  for (PageId p = 0; p < kPages; ++p) {
    auto page = pool.FetchPage(p);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(std::memcmp((*page)->data(), images[p].data(), kPageSize), 0);
    ASSERT_TRUE(pool.UnpinPage(p, /*dirty=*/false).ok());
  }
  // Every post-warm fetch was a hit.
  EXPECT_EQ(pool.miss_count(), misses_after_warm);

  // Re-warming resident pages is a no-op, and unknown pages are skipped.
  ASSERT_TRUE(pool.ReadAhead(all).ok());
  ASSERT_TRUE(pool.ReadAhead({kPages + 100}).ok());
}

// Concurrent FetchPage during ReadAhead of the same pages: the io_pending
// handshake must hand every reader a fully-filled frame, never a frame
// whose fill is still in flight.
TEST(BufferPoolReadAheadTest, ConcurrentFetchDuringWarmup) {
  TempDir dir;
  auto dm_or = DiskManager::Open(dir.DbPath() + ".db", DiskBackendKind::kAsync);
  ASSERT_TRUE(dm_or.ok());
  auto dm = std::move(*dm_or);
  constexpr PageId kPages = 32;
  std::vector<std::string> images(kPages);
  std::vector<std::pair<PageId, const char*>> writes;
  for (PageId p = 0; p < kPages; ++p) {
    ASSERT_TRUE(dm->AllocatePage().ok());
    images[p].assign(kPageSize, static_cast<char>('a' + (p % 26)));
    writes.emplace_back(p, images[p].data());
  }
  ASSERT_TRUE(dm->WritePages(std::move(writes)).ok());

  BufferPool pool(dm.get(), /*pool_size=*/kPages + 4, /*shards=*/4);
  std::vector<PageId> all;
  for (PageId p = 0; p < kPages; ++p) all.push_back(p);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        PageId p = static_cast<PageId>((t * 13 + round * 7) % kPages);
        auto page = pool.FetchPage(p);
        if (!page.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        if (std::memcmp((*page)->data(), images[p].data(), kPageSize) != 0) {
          mismatches.fetch_add(1);
        }
        if (!pool.UnpinPage(p, false).ok()) mismatches.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(pool.ReadAhead(all).ok());
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// AllocatePage/num_pages without the old mutexed getter: concurrent
// allocators must produce dense unique ids and a consistent final count.
TEST(DiskManagerTest, ConcurrentAllocateAndNumPages) {
  TempDir dir;
  auto dm_or = DiskManager::Open(dir.DbPath() + ".db");
  ASSERT_TRUE(dm_or.ok());
  auto dm = std::move(*dm_or);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  std::vector<std::vector<PageId>> got(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto id = dm->AllocatePage();
        if (!id.ok()) {
          failures.fetch_add(1);
          continue;
        }
        got[t].push_back(*id);
        // The getter must always trail or match the extension.
        if (dm->num_pages() < *id + 1) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(dm->num_pages(), kThreads * kPerThread);
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (const auto& ids : got) {
    for (PageId id : ids) {
      ASSERT_LT(id, seen.size());
      EXPECT_FALSE(seen[id]) << "duplicate page id " << id;
      seen[id] = true;
    }
  }
}

class DiskBackendFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

// An injected failure at submit or complete must surface as a Status (no
// crash, no partial success reported as OK), and the database must reopen
// cleanly once the fault clears.
TEST_F(DiskBackendFaultTest, SubmitAndCompleteFaultsDegradeGracefully) {
  for (const char* point :
       {faults::kDiskBackendSubmit, faults::kDiskBackendComplete}) {
    SCOPED_TRACE(point);
    TempDir dir;
    Oid oid;
    {
      auto sm_or = StorageManager::Open(dir.DbPath());
      ASSERT_TRUE(sm_or.ok());
      auto sm = std::move(*sm_or);
      ASSERT_TRUE(sm->LogBegin(1).ok());
      auto ins = sm->objects()->Insert(1, "survives the fault");
      ASSERT_TRUE(ins.ok());
      oid = *ins;
      ASSERT_TRUE(DurableLogCommit(sm.get(), 1).ok());

      auto& reg = FaultRegistry::Instance();
      reg.ArmError(point, Status::Code::kIoError, /*nth=*/1,
                   /*one_shot=*/false);
      EXPECT_FALSE(sm->Checkpoint().ok());
      EXPECT_GT(reg.FiredCount(point), 0u);
      reg.DisarmAll();
      // Cleared fault: the same checkpoint succeeds.
      EXPECT_TRUE(sm->Checkpoint().ok());
    }
    auto reopened = StorageManager::Open(dir.DbPath());
    ASSERT_TRUE(reopened.ok()) << (*reopened)->recovery_stats().committed_txns;
    auto body = (*reopened)->objects()->Read(oid);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(*body, "survives the fault");
  }
}

// Write a workload (committed work, an update, a delete, a loser txn, plus
// a mid-run injected I/O failure), crash without checkpoint, then recover
// the identical image under every backend. The backend is an I/O strategy;
// it must be invisible to ARIES.
TEST_F(DiskBackendFaultTest, RecoveryEquivalentAcrossBackends) {
  TempDir dir;
  std::vector<Oid> committed;
  Oid loser;
  {
    StorageOptions opts;
    opts.buffer_pool_pages = 8;  // eviction traffic while the log is live
    auto sm_or = StorageManager::Open(dir.DbPath("origin"), opts);
    ASSERT_TRUE(sm_or.ok());
    auto sm = std::move(*sm_or);
    ASSERT_TRUE(sm->LogBegin(1).ok());
    for (int i = 0; i < 40; ++i) {
      auto oid = sm->objects()->Insert(
          1, "payload_" + std::to_string(i) + std::string(i * 17 % 300, 'b'));
      ASSERT_TRUE(oid.ok());
      committed.push_back(*oid);
    }
    ASSERT_TRUE(sm->objects()->Update(1, committed[5], "rewritten").ok());
    ASSERT_TRUE(sm->objects()->Delete(1, committed[9]).ok());
    ASSERT_TRUE(DurableLogCommit(sm.get(), 1).ok());

    // A flush attempt dies mid-run; the workload shrugs it off and the
    // surviving WAL still carries everything recovery needs.
    auto& reg = FaultRegistry::Instance();
    reg.ArmError(faults::kDiskBackendSubmit, Status::Code::kIoError);
    EXPECT_FALSE(sm->buffer_pool()->FlushAll().ok());
    reg.DisarmAll();

    ASSERT_TRUE(sm->LogBegin(2).ok());
    auto l = sm->objects()->Insert(2, "loser");
    ASSERT_TRUE(l.ok());
    loser = *l;
    ASSERT_TRUE(sm->buffer_pool()->FlushAll().ok());
    // Crash: destroy without checkpoint.
  }

  auto clone = [&](const std::string& to) {
    std::filesystem::copy_file(dir.DbPath("origin") + ".db",
                               dir.DbPath(to) + ".db");
    std::filesystem::copy_file(dir.DbPath("origin") + ".wal",
                               dir.DbPath(to) + ".wal");
  };

  struct Recovered {
    std::unique_ptr<StorageManager> sm;
  };
  std::vector<Recovered> recovered;
  for (DiskBackendKind kind : kAllKinds) {
    SCOPED_TRACE(KindLabel(kind));
    const std::string tag = KindLabel(kind);
    clone(tag);
    StorageOptions opts;
    opts.buffer_pool_pages = 8;
    opts.disk_backend = kind;
    auto sm_or = StorageManager::Open(dir.DbPath(tag), opts);
    ASSERT_TRUE(sm_or.ok()) << sm_or.status().ToString();
    recovered.push_back({std::move(*sm_or)});
  }

  auto scan0 = recovered[0].sm->objects()->ScanAll();
  ASSERT_TRUE(scan0.ok());
  for (size_t i = 1; i < recovered.size(); ++i) {
    SCOPED_TRACE(KindLabel(kAllKinds[i]));
    EXPECT_EQ(recovered[i].sm->recovery_stats().committed_txns,
              recovered[0].sm->recovery_stats().committed_txns);
    EXPECT_EQ(recovered[i].sm->recovery_stats().loser_txns,
              recovered[0].sm->recovery_stats().loser_txns);
    auto scan = recovered[i].sm->objects()->ScanAll();
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(*scan, *scan0) << "backend changed the recovered OID set";
    for (const Oid& oid : *scan0) {
      auto b0 = recovered[0].sm->objects()->Read(oid);
      auto bi = recovered[i].sm->objects()->Read(oid);
      ASSERT_TRUE(b0.ok());
      ASSERT_TRUE(bi.ok());
      EXPECT_EQ(*bi, *b0) << "divergent contents at " << oid.ToString();
    }
  }
  for (auto& r : recovered) {
    EXPECT_TRUE(r.sm->objects()->Read(loser).status().IsNotFound());
    EXPECT_EQ(*r.sm->objects()->Read(committed[5]), "rewritten");
    EXPECT_TRUE(r.sm->objects()->Read(committed[9]).status().IsNotFound());
  }
}

// Striped page locking (satellite): readers of other pages proceed while a
// writer holds one page's stripe. Smoke-level: hammer disjoint reads and
// writes concurrently and demand zero failures and intact contents.
TEST(ObjectStoreStripedLockTest, ReadersProceedDuringDisjointWrites) {
  TempDir dir;
  auto sm_or = StorageManager::Open(dir.DbPath());
  ASSERT_TRUE(sm_or.ok());
  auto sm = std::move(*sm_or);
  ASSERT_TRUE(sm->LogBegin(1).ok());
  std::vector<Oid> oids;
  std::string payload(600, 's');  // whole cells: fast-path eligible
  for (int i = 0; i < 64; ++i) {
    auto oid = sm->objects()->Insert(1, payload);
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE(DurableLogCommit(sm.get(), 1).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const Oid& oid = oids[(t * 23 + i) % oids.size()];
        auto body = sm->objects()->Read(oid);
        if (!body.ok() || body->size() != payload.size()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 100; ++i) {
      TxnId txn = static_cast<TxnId>(10 + i);
      if (!sm->LogBegin(txn).ok()) return;
      if (!sm->objects()->Update(txn, oids[i % oids.size()], payload).ok()) {
        failures.fetch_add(1);
      }
      if (!DurableLogCommit(sm.get(), txn).ok()) failures.fetch_add(1);
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace reach
