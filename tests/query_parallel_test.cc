// Morsel-parallel query executor (docs/QUERY.md): serial/parallel
// equivalence over randomized extents and morsel sizes, deterministic
// aggregate merges, subclass-extent coverage, fault-injected morsel
// failure, and a stress run racing queries against concurrent mutations
// (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "oodb/database.h"
#include "oodb/session.h"
#include "query/query_pm.h"
#include "test_util.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {
namespace {

using reach::testing::TempDir;

QueryOptions Serial() {
  QueryOptions o;
  o.parallel = 0;
  return o;
}

QueryOptions Parallel(size_t workers, size_t morsel_pages = 4) {
  QueryOptions o;
  o.parallel = 1;
  o.workers = workers;
  o.morsel_pages = morsel_pages;
  return o;
}

class QueryParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(dir_.DbPath());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->types()
                    ->RegisterClass(
                        ClassBuilder("P")
                            .Attribute("k", ValueType::kInt, Value(0))
                            .Attribute("v", ValueType::kInt, Value(0))
                            .Attribute("cat", ValueType::kString, Value(""))
                            .Attribute("pad", ValueType::kString, Value(""))
                            .Build())
                    .ok());
    ASSERT_TRUE(db_->types()
                    ->RegisterClass(
                        ClassBuilder("PSub", "P")
                            .Attribute("extra", ValueType::kInt, Value(0))
                            .Build())
                    .ok());
    session_ = std::make_unique<Session>(db_.get());
    ASSERT_TRUE(session_->Begin().ok());
  }

  /// Persist `n_base` P and `n_sub` PSub objects with seeded pseudo-random
  /// attributes; the pad spreads the extent over many pages.
  void Seed(size_t n_base, size_t n_sub, uint64_t seed = 42) {
    std::mt19937_64 rng(seed);
    const char* cats[] = {"a", "b", "c"};
    for (size_t i = 0; i < n_base + n_sub; ++i) {
      bool sub = i >= n_base;
      std::vector<std::pair<std::string, Value>> attrs = {
          {"k", Value(static_cast<int64_t>(rng() % 1000))},
          {"v", Value(static_cast<int64_t>(rng() % 100))},
          {"cat", Value(cats[rng() % 3])},
          {"pad", Value(std::string(300, 'x'))},
      };
      if (sub) attrs.emplace_back("extra", Value(static_cast<int64_t>(i)));
      ASSERT_TRUE(
          session_->PersistNew(sub ? "PSub" : "P", std::move(attrs)).ok());
    }
  }

  QueryResult Run(const std::string& q, const QueryOptions& options) {
    auto r = qpm_.Execute(*session_, q, options);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  static void ExpectSameRows(const QueryResult& a, const QueryResult& b,
                             const std::string& label) {
    ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
    for (size_t i = 0; i < a.rows.size(); ++i) {
      EXPECT_EQ(a.rows[i].oid, b.rows[i].oid) << label << " row " << i;
      ASSERT_EQ(a.rows[i].values.size(), b.rows[i].values.size())
          << label << " row " << i;
      for (size_t j = 0; j < a.rows[i].values.size(); ++j) {
        EXPECT_EQ(a.rows[i].values[j], b.rows[i].values[j])
            << label << " row " << i << " col " << j;
      }
    }
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
  QueryPm qpm_;
};

TEST_F(QueryParallelTest, SerialParallelEquivalenceAcrossMorselSizes) {
  Seed(120, 40);
  const char* queries[] = {
      "select * from P",
      "select k, v from P where k < 500",
      "select k from P where k >= 250 && v != 3 order by k desc limit 17",
      // Residual predicate (arithmetic defeats the fast path).
      "select k from P where k >= 250 && v + 0 >= 10 order by k",
      "select v from P as p where 500 > p.k",  // flipped literal
  };
  for (size_t morsel_pages : {size_t{1}, size_t{4}, size_t{7}}) {
    for (const char* q : queries) {
      QueryResult serial = Run(q, Serial());
      QueryResult parallel = Run(q, Parallel(4, morsel_pages));
      std::string label =
          std::string(q) + " @morsel_pages=" + std::to_string(morsel_pages);
      ExpectSameRows(serial, parallel, label);
      EXPECT_EQ(serial.scanned, parallel.scanned) << label;
      if (parallel.morsels > 1) {
        EXPECT_GT(parallel.workers, 1u) << label;
      }
    }
  }
}

TEST_F(QueryParallelTest, AggregateMergeIsDeterministic) {
  Seed(150, 30);
  const std::string q =
      "select cat, count(*), sum(v), avg(v), min(k), max(k) from P "
      "group by cat";
  QueryResult serial = Run(q, Serial());
  EXPECT_EQ(serial.rows.size(), 3u);
  QueryResult first = Run(q, Parallel(4, 1));
  ExpectSameRows(serial, first, q + " (serial vs parallel)");
  // Integer inputs fold into exactly-representable partial sums, so
  // repeated parallel runs (and any worker split) match byte-for-byte.
  for (int run = 0; run < 3; ++run) {
    QueryResult again = Run(q, Parallel(run + 2, run % 2 ? 4 : 1));
    ExpectSameRows(first, again, q + " rerun");
  }
}

TEST_F(QueryParallelTest, SubclassExtentsAreCovered) {
  Seed(60, 25);
  QueryResult serial = Run("select k from P", Serial());
  QueryResult parallel = Run("select k from P", Parallel(4, 1));
  EXPECT_EQ(serial.rows.size(), 85u);
  ExpectSameRows(serial, parallel, "base+subclass scan");
  QueryResult sub = Run("select extra from PSub where extra >= 0",
                        Parallel(4, 1));
  EXPECT_EQ(sub.rows.size(), 25u);
}

TEST_F(QueryParallelTest, SingleMorselFallsBackToSerial) {
  Seed(8, 0);
  QueryResult r = Run("select k from P", Parallel(4, /*morsel_pages=*/64));
  EXPECT_EQ(r.morsels, 1u);
  EXPECT_EQ(r.workers, 1u);
  EXPECT_EQ(r.rows.size(), 8u);
}

TEST_F(QueryParallelTest, IndexPlansStaySerial) {
  Seed(50, 0);
  ASSERT_TRUE(db_->indexing()
                  ->CreateIndex(session_->current_txn(), "P", "cat")
                  .ok());
  QueryResult indexed =
      Run("select k from P where cat == \"a\"", Parallel(4, 1));
  EXPECT_TRUE(indexed.used_index);
  EXPECT_EQ(indexed.morsels, 0u);
  EXPECT_EQ(indexed.workers, 1u);
  // Same rows as the scan plan, modulo candidate order.
  ASSERT_TRUE(db_->indexing()->DropIndex("P", "cat").ok());
  QueryResult scanned =
      Run("select k from P where cat == \"a\"", Parallel(4, 1));
  EXPECT_FALSE(scanned.used_index);
  auto by_oid = [](const QueryRow& a, const QueryRow& b) {
    return a.oid < b.oid;
  };
  std::vector<QueryRow> a = indexed.rows, b = scanned.rows;
  std::sort(a.begin(), a.end(), by_oid);
  std::sort(b.begin(), b.end(), by_oid);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].oid, b[i].oid);
    EXPECT_EQ(a[i].values, b[i].values);
  }
}

TEST_F(QueryParallelTest, EvaluationErrorsSurfaceFromWorkers) {
  Seed(60, 0);
  for (const QueryOptions& o : {Serial(), Parallel(4, 1)}) {
    auto r = qpm_.Execute(*session_, "select k from P where v / 0 > 1", o);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  }
}

TEST_F(QueryParallelTest, FaultedMorselFailsWholeQueryWithoutPartialRows) {
  Seed(80, 0);
  auto& reg = FaultRegistry::Instance();
  reg.DisarmAll();
  reg.ArmError(faults::kQueryMorsel, Status::Code::kIoError, /*nth=*/1,
               /*one_shot=*/false);
  for (const QueryOptions& o : {Serial(), Parallel(4, 1)}) {
    auto r = qpm_.Execute(*session_, "select k from P", o);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsIoError()) << r.status().ToString();
  }
  reg.DisarmAll();
  // The failure left no residue: the same query now runs clean.
  QueryResult ok = Run("select k from P", Parallel(4, 1));
  EXPECT_EQ(ok.rows.size(), 80u);
}

TEST_F(QueryParallelTest, CrashFaultRethrowsOnQueryingThread) {
  Seed(80, 0);
  auto& reg = FaultRegistry::Instance();
  reg.DisarmAll();
  reg.ArmCrash(faults::kQueryMorsel, /*nth=*/1);
  EXPECT_THROW((void)qpm_.Execute(*session_, "select k from P",
                                  Parallel(4, 1)),
               FaultInjectedCrash);
  reg.DisarmAll();
  EXPECT_EQ(Run("select k from P", Parallel(4, 1)).rows.size(), 80u);
}

TEST_F(QueryParallelTest, QueryOptionsParseAndDefaults) {
  QueryOptions o =
      QueryOptions::Parse("parallel=off,morsel_pages=2,workers=3,future=x");
  EXPECT_EQ(o.parallel, 0);
  EXPECT_EQ(o.morsel_pages, 2u);
  EXPECT_EQ(o.workers, 3u);
  EXPECT_FALSE(o.ResolvedParallel());
  EXPECT_EQ(o.ResolvedMorselPages(), 2u);
  EXPECT_EQ(o.ResolvedWorkers(), 3u);
  QueryOptions defaults = QueryOptions::Parse(nullptr);
  EXPECT_TRUE(defaults.ResolvedParallel());
  EXPECT_EQ(defaults.ResolvedMorselPages(),
            QueryOptions::kDefaultMorselPages);
  EXPECT_GE(defaults.ResolvedWorkers(), 1u);
  QueryOptions on = QueryOptions::Parse("parallel=on");
  EXPECT_EQ(on.parallel, 1);
}

// Parallel queries racing Insert/Update/Delete from other sessions: every
// statement may succeed or fail with a transactional status (deadlocks
// resolve as Aborted), but nothing may crash or race (TSan).
TEST_F(QueryParallelTest, StressQueriesAgainstConcurrentMutations) {
  Seed(100, 0);
  ASSERT_TRUE(session_->Commit().ok());  // release the seeding S/X locks
  std::atomic<bool> stop{false};
  std::atomic<int> query_ok{0};

  auto tolerable = [](const Status& st) {
    return st.ok() || st.IsAborted() || st.IsTimedOut() || st.IsNotFound();
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      QueryPm qpm;
      Session s(db_.get());
      for (int i = 0; i < 25 && !stop.load(); ++i) {
        Status st = s.InTxn([&](Session& txn) -> Status {
          auto r = qpm.Execute(txn, "select k, v from P where k < 500",
                               Parallel(4, 1));
          if (!r.ok()) return r.status();
          query_ok.fetch_add(1);
          return Status::OK();
        });
        ASSERT_TRUE(tolerable(st)) << st.ToString();
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      Session s(db_.get());
      std::vector<Oid> mine;
      for (int i = 0; i < 60 && !stop.load(); ++i) {
        Status st = s.InTxn([&](Session& txn) -> Status {
          switch (rng() % 3) {
            case 0: {
              auto oid = txn.PersistNew(
                  "P", {{"k", Value(static_cast<int64_t>(rng() % 1000))},
                        {"pad", Value(std::string(300, 'y'))}});
              if (oid.ok()) mine.push_back(*oid);
              return oid.status();
            }
            case 1: {
              if (mine.empty()) return Status::OK();
              return txn.SetAttr(mine[rng() % mine.size()], "v",
                                 Value(static_cast<int64_t>(rng() % 100)));
            }
            default: {
              if (mine.empty()) return Status::OK();
              size_t at = rng() % mine.size();
              Status del = txn.Delete(mine[at]);
              if (del.ok()) mine.erase(mine.begin() + at);
              return del;
            }
          }
        });
        ASSERT_TRUE(tolerable(st)) << st.ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true);
  EXPECT_GT(query_ok.load(), 0);
}

}  // namespace
}  // namespace reach
