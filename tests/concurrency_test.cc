// Concurrency: deadlock detection and retry at the session level, lock
// isolation between sessions, parallel detached rules, and compositor
// thread-safety.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/reach/reach_db.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = ReachDb::Open(dir_.DbPath());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->RegisterClass(
                       ClassBuilder("Cell")
                           .Attribute("v", ValueType::kInt, Value(0)))
                    .ok());
  }
  TempDir dir_;
  std::unique_ptr<ReachDb> db_;
};

TEST_F(ConcurrencyTest, WriteLocksIsolateUncommittedState) {
  Session a(db_->database()), b(db_->database());
  ASSERT_TRUE(a.Begin().ok());
  auto oid = a.PersistNew("Cell", {{"v", Value(1)}});
  ASSERT_TRUE(a.Commit().ok());

  ASSERT_TRUE(a.Begin().ok());
  ASSERT_TRUE(a.SetAttr(*oid, "v", Value(2)).ok());

  // Reader blocks on the X lock until the writer commits.
  std::atomic<int64_t> seen{-1};
  std::thread reader([&] {
    ASSERT_TRUE(b.Begin().ok());
    auto v = b.GetAttr(*oid, "v");
    ASSERT_TRUE(v.ok());
    seen = v->as_int();
    ASSERT_TRUE(b.Commit().ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(seen.load(), -1);  // still blocked
  ASSERT_TRUE(a.Commit().ok());
  reader.join();
  EXPECT_EQ(seen.load(), 2);  // only the committed value was visible
}

TEST_F(ConcurrencyTest, DeadlockVictimCanRetry) {
  Session setup(db_->database());
  ASSERT_TRUE(setup.Begin().ok());
  auto x = setup.PersistNew("Cell", {});
  auto y = setup.PersistNew("Cell", {});
  ASSERT_TRUE(setup.Commit().ok());

  std::atomic<int> successes{0}, aborted{0};
  auto worker = [&](const Oid& first, const Oid& second) {
    Session s(db_->database());
    for (int attempt = 0; attempt < 20; ++attempt) {
      if (!s.Begin().ok()) continue;
      Status st1 = s.SetAttr(first, "v", Value(attempt));
      if (st1.ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        Status st2 = s.SetAttr(second, "v", Value(attempt));
        if (st2.ok() && s.Commit().ok()) {
          successes++;
          continue;
        }
        if (st2.IsAborted()) aborted++;
      } else if (st1.IsAborted()) {
        aborted++;
      }
      (void)s.AbortAll();
    }
  };
  std::thread t1(worker, *x, *y);
  std::thread t2(worker, *y, *x);  // opposite order: deadlock-prone
  t1.join();
  t2.join();
  // Both workers finish; deadlocks (if any occurred) were broken by the
  // wait-for-graph detector, not by hanging.
  EXPECT_GT(successes.load(), 0);
  Session check(db_->database());
  ASSERT_TRUE(check.Begin().ok());
  EXPECT_TRUE(check.GetAttr(*x, "v").ok());
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(ConcurrencyTest, DetachedRulesFromManyTxnsAllRun) {
  auto ev = db_->events()->DefineFlowEvent("cell_persist",
                                           SentryKind::kPersist, "Cell");
  std::atomic<int> runs{0};
  RuleSpec spec;
  spec.name = "count";
  spec.event = *ev;
  spec.coupling = CouplingMode::kDetached;
  spec.action = [&](Session&, const EventOccurrence&) -> Status {
    runs++;
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  constexpr int kThreads = 4, kTxns = 20;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      Session s(db_->database());
      for (int i = 0; i < kTxns; ++i) {
        ASSERT_TRUE(s.Begin().ok());
        ASSERT_TRUE(s.PersistNew("Cell", {}).ok());
        ASSERT_TRUE(s.Commit().ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  db_->Drain();
  EXPECT_EQ(runs.load(), kThreads * kTxns);
}

TEST_F(ConcurrencyTest, CompositorSafeUnderConcurrentFeeds) {
  EventRegistry registry;
  EventTypeId a = *registry.RegisterMethodEvent("A", "C", "a");
  EventTypeId b = *registry.RegisterMethodEvent("B", "C", "b");
  auto id = registry.RegisterComposite(
      "AB", EventExpr::Seq(EventExpr::Prim(a), EventExpr::Prim(b)),
      CompositeScope::kSingleTxn, ConsumptionPolicy::kChronicle);
  ASSERT_TRUE(id.ok());
  Compositor compositor(registry.Find(*id));

  constexpr int kThreads = 4, kPairs = 2000;
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> completions{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<EventOccurrencePtr> out;
      for (int i = 0; i < kPairs; ++i) {
        for (EventTypeId type : {a, b}) {
          auto occ = std::make_shared<EventOccurrence>();
          occ->type = type;
          occ->sequence = seq.fetch_add(1) + 1;
          occ->timestamp = static_cast<Timestamp>(occ->sequence);
          occ->txn = static_cast<TxnId>(t + 1);  // one txn per thread
          compositor.Feed(occ, &out);
        }
        completions.fetch_add(out.size());
        out.clear();
      }
    });
  }
  for (auto& w : workers) w.join();
  // Each thread's txn-scoped instance pairs its own a;b stream; some pairs
  // may interleave as b;a within a thread's loop, but every a eventually
  // has a later b, so completions per thread = kPairs (chronicle).
  EXPECT_EQ(completions.load(),
            static_cast<uint64_t>(kThreads) * kPairs);
}

TEST_F(ConcurrencyTest, ExtentConsistentUnderConcurrentPersists) {
  constexpr int kThreads = 4, kObjects = 50;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      Session s(db_->database());
      for (int i = 0; i < kObjects; ++i) {
        if (!s.Begin().ok() || !s.PersistNew("Cell", {}).ok() ||
            !s.Commit().ok()) {
          failures++;
          (void)s.AbortAll();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  Session check(db_->database());
  ASSERT_TRUE(check.Begin().ok());
  auto extent = check.Extent("Cell");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->size(), static_cast<size_t>(kThreads * kObjects));
  ASSERT_TRUE(check.Commit().ok());
}

}  // namespace
}  // namespace reach
