// Rule engine: Table 1 legality matrix, coupling-mode execution semantics,
// priorities and tie-breaks, serial vs parallel execution, deferred rounds.
#include <gtest/gtest.h>

#include <atomic>

#include "core/reach/reach_db.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace reach {
namespace {

using reach::testing::TempDir;

class RulesTest : public ::testing::Test {
 protected:
  void SetUp() override { OpenDb({}); }

  void OpenDb(ReachOptions options) {
    db_.reset();
    options.database.clock = &clock_;
    options.events.async_composition = false;
    auto db = ReachDb::Open(dir_.DbPath(), options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    ASSERT_TRUE(
        db_->RegisterClass(
               ClassBuilder("Counter")
                   .Attribute("n", ValueType::kInt, Value(0))
                   .Attribute("log", ValueType::kString, Value(""))
                   .Method("bump",
                           [](Session& s, DbObject& self,
                              const std::vector<Value>& args) -> Result<Value> {
                             int64_t delta = args.empty() ? 1 : args[0].as_int();
                             int64_t now = self.Get("n").as_int() + delta;
                             REACH_RETURN_IF_ERROR(
                                 s.SetAttr(self.oid(), "n", Value(now)));
                             return Value(now);
                           }))
            .ok());
  }

  Oid MakeCounter() {
    Session s(db_->database());
    EXPECT_TRUE(s.Begin().ok());
    auto oid = s.PersistNew("Counter", {});
    EXPECT_TRUE(s.Bind("counter" + std::to_string(++counter_seq_), *oid).ok());
    EXPECT_TRUE(s.Commit().ok());
    return *oid;
  }

  TempDir dir_;
  VirtualClock clock_;
  std::unique_ptr<ReachDb> db_;
  int counter_seq_ = 0;
};

// ---------------------------------------------------------------------------
// Table 1: event category x coupling mode admission matrix.
// ---------------------------------------------------------------------------

struct Table1Case {
  EventCategory category;
  CouplingMode mode;
  bool supported;
};

class Table1Test : public ::testing::TestWithParam<Table1Case> {};

TEST_P(Table1Test, MatrixMatchesPaper) {
  const Table1Case& c = GetParam();
  Status st = CheckCoupling(c.category, c.mode);
  EXPECT_EQ(st.ok(), c.supported)
      << EventCategoryName(c.category) << " x " << CouplingModeName(c.mode)
      << ": " << st.ToString();
  if (!st.ok()) {
    EXPECT_TRUE(st.IsNotSupported());
  }
}

std::vector<Table1Case> Table1Cases() {
  using EC = EventCategory;
  using CM = CouplingMode;
  std::vector<Table1Case> cases;
  auto add = [&](EC category, CM mode, bool yes) {
    cases.push_back({category, mode, yes});
  };
  // Column 1: single method events — all six modes supported.
  for (CM m : {CM::kImmediate, CM::kDeferred, CM::kDetached,
               CM::kParallelCausallyDependent,
               CM::kSequentialCausallyDependent,
               CM::kExclusiveCausallyDependent}) {
    add(EC::kSingleMethod, m, true);
  }
  // Column 2: purely temporal — only detached.
  add(EC::kPurelyTemporal, CM::kImmediate, false);
  add(EC::kPurelyTemporal, CM::kDeferred, false);
  add(EC::kPurelyTemporal, CM::kDetached, true);
  add(EC::kPurelyTemporal, CM::kParallelCausallyDependent, false);
  add(EC::kPurelyTemporal, CM::kSequentialCausallyDependent, false);
  add(EC::kPurelyTemporal, CM::kExclusiveCausallyDependent, false);
  // Column 3: composite single-transaction — all but immediate.
  add(EC::kCompositeSingleTx, CM::kImmediate, false);
  add(EC::kCompositeSingleTx, CM::kDeferred, true);
  add(EC::kCompositeSingleTx, CM::kDetached, true);
  add(EC::kCompositeSingleTx, CM::kParallelCausallyDependent, true);
  add(EC::kCompositeSingleTx, CM::kSequentialCausallyDependent, true);
  add(EC::kCompositeSingleTx, CM::kExclusiveCausallyDependent, true);
  // Column 4: composite across transactions — detached family only.
  add(EC::kCompositeMultiTx, CM::kImmediate, false);
  add(EC::kCompositeMultiTx, CM::kDeferred, false);
  add(EC::kCompositeMultiTx, CM::kDetached, true);
  add(EC::kCompositeMultiTx, CM::kParallelCausallyDependent, true);
  add(EC::kCompositeMultiTx, CM::kSequentialCausallyDependent, true);
  add(EC::kCompositeMultiTx, CM::kExclusiveCausallyDependent, true);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, Table1Test,
                         ::testing::ValuesIn(Table1Cases()));

// ---------------------------------------------------------------------------
// Coupling-mode execution semantics
// ---------------------------------------------------------------------------

TEST_F(RulesTest, DefineRuleRejectsIllegalCombination) {
  auto timer = db_->events()->DefinePeriodicEvent("tick", 1000000);
  RuleSpec spec;
  spec.name = "bad";
  spec.event = *timer;
  spec.coupling = CouplingMode::kImmediate;
  spec.action = [](Session&, const EventOccurrence&) { return Status::OK(); };
  EXPECT_TRUE(db_->rules()->DefineRule(spec).status().IsNotSupported());
  spec.coupling = CouplingMode::kDetached;
  EXPECT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());
}

TEST_F(RulesTest, ImmediateRuleRunsInsideTriggeringTransaction) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  RuleSpec spec;
  spec.name = "echo";
  spec.event = *ev;
  spec.coupling = CouplingMode::kImmediate;
  spec.action = [counter](Session& s, const EventOccurrence&) -> Status {
    return s.SetAttr(counter, "log", Value("rule ran"));
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  // The immediate rule already ran (inside a subtransaction of ours).
  EXPECT_EQ(*s.GetAttr(counter, "log"), Value("rule ran"));
  ASSERT_TRUE(s.Abort().ok());

  // Abort of the triggering transaction rolls the rule's effect back too.
  ASSERT_TRUE(s.Begin().ok());
  EXPECT_EQ(*s.GetAttr(counter, "log"), Value(""));
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(RulesTest, ImmediateConditionFalseSkipsAction) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  std::atomic<int> actions{0};
  RuleSpec spec;
  spec.name = "guarded";
  spec.event = *ev;
  spec.coupling = CouplingMode::kImmediate;
  spec.condition = [](Session&, const EventOccurrence& occ) -> Result<bool> {
    return occ.params[0].as_int() > 100;  // bump delta > 100
  };
  spec.action = [&](Session&, const EventOccurrence&) -> Status {
    actions++;
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump", {Value(5)}).ok());
  EXPECT_EQ(actions.load(), 0);
  ASSERT_TRUE(s.Invoke(counter, "bump", {Value(500)}).ok());
  EXPECT_EQ(actions.load(), 1);
  ASSERT_TRUE(s.Commit().ok());
  auto stats = *db_->rules()->StatsOf("guarded");
  EXPECT_EQ(stats.triggered, 2u);
  EXPECT_EQ(stats.conditions_true, 1u);
  EXPECT_EQ(stats.actions_run, 1u);
}

TEST_F(RulesTest, DeferredRuleRunsAtPreCommit) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  std::atomic<int> runs{0};
  RuleSpec spec;
  spec.name = "deferred";
  spec.event = *ev;
  spec.coupling = CouplingMode::kDeferred;
  spec.action = [&](Session&, const EventOccurrence&) -> Status {
    runs++;
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  EXPECT_EQ(runs.load(), 0);  // nothing yet
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_EQ(runs.load(), 2);  // both firings at pre-commit
}

TEST_F(RulesTest, DeferredRuleDroppedOnAbort) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  std::atomic<int> runs{0};
  RuleSpec spec;
  spec.name = "deferred";
  spec.event = *ev;
  spec.coupling = CouplingMode::kDeferred;
  spec.action = [&](Session&, const EventOccurrence&) -> Status {
    runs++;
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Abort().ok());
  EXPECT_EQ(runs.load(), 0);
}

TEST_F(RulesTest, DeferredCascadeRuns) {
  // A deferred rule whose action raises the event again: the pre-commit
  // loop must execute the cascade (bounded).
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  RuleSpec spec;
  spec.name = "cascade";
  spec.event = *ev;
  spec.coupling = CouplingMode::kDeferred;
  spec.condition = [counter](Session& s,
                             const EventOccurrence&) -> Result<bool> {
    REACH_ASSIGN_OR_RETURN(Value n, s.GetAttr(counter, "n"));
    return n.as_int() < 5;
  };
  spec.action = [counter](Session& s, const EventOccurrence&) -> Status {
    auto r = s.Invoke(counter, "bump");
    return r.ok() ? Status::OK() : r.status();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());  // n = 1
  ASSERT_TRUE(s.Commit().ok());
  Session check(db_->database());
  ASSERT_TRUE(check.Begin().ok());
  EXPECT_EQ(check.GetAttr(counter, "n")->as_int(), 5);
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(RulesTest, DetachedRuleRunsInIndependentTransaction) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  RuleSpec spec;
  spec.name = "detached";
  spec.event = *ev;
  spec.coupling = CouplingMode::kDetached;
  spec.action = [counter](Session& s, const EventOccurrence&) -> Status {
    return s.SetAttr(counter, "log", Value("detached ran"));
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Commit().ok());
  db_->rules()->WaitDetachedIdle();
  Session check(db_->database());
  ASSERT_TRUE(check.Begin().ok());
  EXPECT_EQ(*check.GetAttr(counter, "log"), Value("detached ran"));
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(RulesTest, ParallelCausallyDependentFollowsTriggerOutcome) {
  Oid counter = MakeCounter();
  Oid sink = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  RuleSpec spec;
  spec.name = "par_dep";
  spec.event = *ev;
  spec.coupling = CouplingMode::kParallelCausallyDependent;
  spec.action = [sink](Session& s, const EventOccurrence&) -> Status {
    // Read-modify-write directly: invoking bump() would re-raise the
    // triggering event and recurse.
    auto n = s.GetAttr(sink, "n");
    if (!n.ok()) return n.status();
    return s.SetAttr(sink, "n", Value(n->as_int() + 1));
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  // Trigger commits -> rule effect commits.
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Commit().ok());
  db_->rules()->WaitDetachedIdle();
  Session c1(db_->database());
  ASSERT_TRUE(c1.Begin().ok());
  EXPECT_EQ(c1.GetAttr(sink, "n")->as_int(), 1);
  ASSERT_TRUE(c1.Commit().ok());

  // Trigger aborts -> rule transaction aborts with it.
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Abort().ok());
  db_->rules()->WaitDetachedIdle();
  Session c2(db_->database());
  ASSERT_TRUE(c2.Begin().ok());
  EXPECT_EQ(c2.GetAttr(sink, "n")->as_int(), 1);  // unchanged
  ASSERT_TRUE(c2.Commit().ok());
  auto stats = *db_->rules()->StatsOf("par_dep");
  EXPECT_EQ(stats.skipped_dependency, 1u);
}

TEST_F(RulesTest, SequentialCausallyDependentWaitsForCommit) {
  Oid counter = MakeCounter();
  Oid sink = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  std::atomic<int> ran{0};
  RuleSpec spec;
  spec.name = "seq_dep";
  spec.event = *ev;
  spec.coupling = CouplingMode::kSequentialCausallyDependent;
  spec.action = [&, sink](Session& s, const EventOccurrence&) -> Status {
    ran++;
    auto n = s.GetAttr(sink, "n");
    if (!n.ok()) return n.status();
    return s.SetAttr(sink, "n", Value(n->as_int() + 1));
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  // Rule must not start while the trigger is active.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ran.load(), 0);
  ASSERT_TRUE(s.Commit().ok());
  db_->rules()->WaitDetachedIdle();
  EXPECT_EQ(ran.load(), 1);

  // Aborted trigger: the rule never initiates.
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Abort().ok());
  db_->rules()->WaitDetachedIdle();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(db_->rules()->StatsOf("seq_dep")->skipped_dependency, 1u);
}

TEST_F(RulesTest, ExclusiveCausallyDependentContingency) {
  Oid counter = MakeCounter();
  Oid sink = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  RuleSpec spec;
  spec.name = "contingency";
  spec.event = *ev;
  spec.coupling = CouplingMode::kExclusiveCausallyDependent;
  spec.action = [sink](Session& s, const EventOccurrence&) -> Status {
    // Read-modify-write directly: invoking bump() would re-raise the
    // triggering event and recurse.
    auto n = s.GetAttr(sink, "n");
    if (!n.ok()) return n.status();
    return s.SetAttr(sink, "n", Value(n->as_int() + 1));
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  // Trigger commits: contingency must NOT commit.
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Commit().ok());
  db_->rules()->WaitDetachedIdle();
  Session c1(db_->database());
  ASSERT_TRUE(c1.Begin().ok());
  EXPECT_EQ(c1.GetAttr(sink, "n")->as_int(), 0);
  ASSERT_TRUE(c1.Commit().ok());

  // Trigger aborts: contingency commits.
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Abort().ok());
  db_->rules()->WaitDetachedIdle();
  Session c2(db_->database());
  ASSERT_TRUE(c2.Begin().ok());
  EXPECT_EQ(c2.GetAttr(sink, "n")->as_int(), 1);
  ASSERT_TRUE(c2.Commit().ok());
}

TEST_F(RulesTest, PriorityOrdersRuleExecution) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  std::vector<std::string> order;
  std::mutex order_mu;
  auto make_rule = [&](const std::string& name, int prio) {
    RuleSpec spec;
    spec.name = name;
    spec.event = *ev;
    spec.priority = prio;
    spec.coupling = CouplingMode::kImmediate;
    spec.action = [&, name](Session&, const EventOccurrence&) -> Status {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
      return Status::OK();
    };
    ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());
  };
  make_rule("low", 1);
  make_rule("high", 10);
  make_rule("mid", 5);

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Commit().ok());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "mid");
  EXPECT_EQ(order[2], "low");
}

TEST_F(RulesTest, TieBreakNewestFirstOption) {
  ReachOptions options;
  options.rules.tie_break = RuleEngineOptions::TieBreak::kNewestFirst;
  OpenDb(std::move(options));
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  std::vector<std::string> order;
  std::mutex order_mu;
  for (const char* name : {"first", "second"}) {
    RuleSpec spec;
    spec.name = name;
    spec.event = *ev;
    spec.coupling = CouplingMode::kImmediate;
    spec.action = [&, name](Session&, const EventOccurrence&) -> Status {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
      return Status::OK();
    };
    ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());
  }
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Commit().ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "second");  // newest registration first
}

TEST_F(RulesTest, ParallelSubtransactionExecution) {
  ReachOptions options;
  options.rules.multi_rule_execution =
      RuleEngineOptions::Execution::kParallelSubtransactions;
  options.rules.parallel_rule_threads = 4;
  OpenDb(std::move(options));
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    RuleSpec spec;
    spec.name = "par" + std::to_string(i);
    spec.event = *ev;
    spec.coupling = CouplingMode::kImmediate;
    spec.action = [&](Session&, const EventOccurrence&) -> Status {
      ran++;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return Status::OK();
    };
    ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());
  }
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  EXPECT_EQ(ran.load(), 4);  // all ran before the go-ahead
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(RulesTest, ParallelRulesWritingSameObjectStaySerializable) {
  ReachOptions options;
  options.rules.multi_rule_execution =
      RuleEngineOptions::Execution::kParallelSubtransactions;
  OpenDb(std::move(options));
  Oid counter = MakeCounter();
  Oid sink = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  for (int i = 0; i < 4; ++i) {
    RuleSpec spec;
    spec.name = "w" + std::to_string(i);
    spec.event = *ev;
    spec.coupling = CouplingMode::kImmediate;
    spec.action = [sink](Session& s, const EventOccurrence&) -> Status {
      auto n = s.GetAttr(sink, "n");
      if (!n.ok()) return n.status();
      return s.SetAttr(sink, "n", Value(n->as_int() + 1));
    };
    ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());
  }
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  EXPECT_EQ(s.GetAttr(sink, "n")->as_int(), 4);  // no lost updates
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(RulesTest, AbortTriggeringOnFailure) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  RuleSpec spec;
  spec.name = "veto";
  spec.event = *ev;
  spec.coupling = CouplingMode::kImmediate;
  spec.condition = [](Session&, const EventOccurrence& occ) -> Result<bool> {
    return occ.params[0].as_int() > 1000;  // forbid big bumps
  };
  spec.action = [](Session&, const EventOccurrence&) -> Status {
    return Status::Aborted("constraint violated");
  };
  spec.abort_triggering_on_failure = true;
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump", {Value(5000)}).ok());
  // The rule aborted the root transaction out from under us.
  EXPECT_FALSE(db_->database()->txns()->IsActive(s.current_txn()));
  EXPECT_FALSE(s.Commit().ok());
  // The forbidden update never became durable.
  Session check(db_->database());
  ASSERT_TRUE(check.Begin().ok());
  EXPECT_EQ(check.GetAttr(counter, "n")->as_int(), 0);
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(RulesTest, CompositeEventRuleDeferred) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  auto twice = db_->events()->DefineComposite(
      "twice", EventExpr::History(EventExpr::Prim(*ev), 2),
      CompositeScope::kSingleTxn);
  ASSERT_TRUE(twice.ok());
  std::atomic<int> fired{0};
  RuleSpec spec;
  spec.name = "double_bump";
  spec.event = *twice;
  spec.coupling = CouplingMode::kDeferred;
  spec.action = [&](Session&, const EventOccurrence& occ) -> Status {
    EXPECT_EQ(occ.constituents.size(), 2u);
    fired++;
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(RulesTest, CrossTxnCompositeDetachedRule) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  auto cross = db_->events()->DefineComposite(
      "cross", EventExpr::History(EventExpr::Prim(*ev), 2),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
      /*validity=*/60LL * 1000000);
  ASSERT_TRUE(cross.ok());
  std::atomic<int> fired{0};
  RuleSpec spec;
  spec.name = "cross_rule";
  spec.event = *cross;
  spec.coupling = CouplingMode::kDetached;
  spec.action = [&](Session&, const EventOccurrence& occ) -> Status {
    EXPECT_EQ(occ.InvolvedTxns().size(), 2u);
    fired++;
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  for (int i = 0; i < 2; ++i) {
    Session s(db_->database());
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Invoke(counter, "bump").ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  db_->Drain();
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(RulesTest, EnableDisableDrop) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  std::atomic<int> runs{0};
  RuleSpec spec;
  spec.name = "toggled";
  spec.event = *ev;
  spec.coupling = CouplingMode::kImmediate;
  spec.action = [&](Session&, const EventOccurrence&) -> Status {
    runs++;
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  EXPECT_EQ(runs.load(), 1);
  ASSERT_TRUE(db_->rules()->SetRuleEnabled("toggled", false).ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  EXPECT_EQ(runs.load(), 1);
  ASSERT_TRUE(db_->rules()->SetRuleEnabled("toggled", true).ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  EXPECT_EQ(runs.load(), 2);
  ASSERT_TRUE(db_->rules()->DropRule("toggled").ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  EXPECT_EQ(runs.load(), 2);
  EXPECT_TRUE(db_->rules()->DropRule("toggled").IsNotFound());
  ASSERT_TRUE(s.Commit().ok());
}

TEST_F(RulesTest, DeferredPhaseFiresSimpleEventRulesFirst) {
  // §6.4's third deferred-phase ordering policy: with equal priorities,
  // rules triggered by simple events fire ahead of rules triggered by
  // composite events.
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  auto pair = db_->events()->DefineComposite(
      "pair", EventExpr::History(EventExpr::Prim(*ev), 2),
      CompositeScope::kSingleTxn);
  ASSERT_TRUE(pair.ok());

  std::vector<std::string> order;
  std::mutex order_mu;
  auto record = [&](const char* name) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(name);
  };
  // Define the composite-event rule FIRST so registration order would put
  // it ahead under the plain oldest-first tie-break.
  RuleSpec comp;
  comp.name = "on_composite";
  comp.event = *pair;
  comp.coupling = CouplingMode::kDeferred;
  comp.action = [&](Session&, const EventOccurrence&) -> Status {
    record("composite");
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(comp)).ok());
  RuleSpec simple;
  simple.name = "on_simple";
  simple.event = *ev;
  simple.coupling = CouplingMode::kDeferred;
  simple.action = [&](Session&, const EventOccurrence&) -> Status {
    record("simple");
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(simple)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Commit().ok());
  ASSERT_EQ(order.size(), 3u);  // two simple firings + one composite
  EXPECT_EQ(order[0], "simple");
  EXPECT_EQ(order[1], "simple");
  EXPECT_EQ(order[2], "composite");
}

TEST_F(RulesTest, PriorityStillBeatsSimpleFirstPolicy) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  auto pair = db_->events()->DefineComposite(
      "pair", EventExpr::History(EventExpr::Prim(*ev), 2),
      CompositeScope::kSingleTxn);
  std::vector<std::string> order;
  std::mutex order_mu;
  RuleSpec comp;
  comp.name = "urgent_composite";
  comp.event = *pair;
  comp.priority = 100;
  comp.coupling = CouplingMode::kDeferred;
  comp.action = [&](Session&, const EventOccurrence&) -> Status {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back("composite");
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(comp)).ok());
  RuleSpec simple;
  simple.name = "casual_simple";
  simple.event = *ev;
  simple.priority = 1;
  simple.coupling = CouplingMode::kDeferred;
  simple.action = [&](Session&, const EventOccurrence&) -> Status {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back("simple");
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(simple)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  ASSERT_TRUE(s.Commit().ok());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "composite");  // priority dominates the policy
}

TEST_F(RulesTest, RuleEffectsOnOtherObjectsRollBackWithTrigger) {
  // Regression: the rule writes an object the triggering transaction never
  // touches. When the trigger aborts, the rule's (sub)transaction effects
  // must disappear from the object cache and any indexes too, not just
  // from storage.
  Oid counter = MakeCounter();
  Oid other = MakeCounter();
  Session setup(db_->database());
  ASSERT_TRUE(setup.Begin().ok());
  ASSERT_TRUE(db_->database()
                  ->indexing()
                  ->CreateIndex(setup.current_txn(), "Counter", "n")
                  .ok());
  ASSERT_TRUE(setup.Commit().ok());

  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  RuleSpec spec;
  spec.name = "sidewriter";
  spec.event = *ev;
  spec.coupling = CouplingMode::kImmediate;
  spec.action = [other](Session& s, const EventOccurrence&) -> Status {
    return s.SetAttr(other, "n", Value(777));
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  EXPECT_EQ(s.GetAttr(other, "n")->as_int(), 777);
  ASSERT_TRUE(s.Abort().ok());

  Session check(db_->database());
  ASSERT_TRUE(check.Begin().ok());
  EXPECT_EQ(check.GetAttr(other, "n")->as_int(), 0);  // cache invalidated
  // Index reverted as well: no entry under 777, `other` back under 0.
  EXPECT_EQ(db_->database()
                ->indexing()
                ->Lookup("Counter", "n", Value(777))
                ->size(),
            0u);
  auto zeros = db_->database()->indexing()->Lookup("Counter", "n", Value(0));
  ASSERT_TRUE(zeros.ok());
  EXPECT_NE(std::find(zeros->begin(), zeros->end(), other), zeros->end());
  ASSERT_TRUE(check.Commit().ok());
}

TEST_F(RulesTest, RuleTraceRecordsFirings) {
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  RuleSpec spec;
  spec.name = "traced";
  spec.event = *ev;
  spec.coupling = CouplingMode::kImmediate;
  spec.condition = [](Session&, const EventOccurrence& occ) -> Result<bool> {
    return occ.params[0].as_int() > 10;
  };
  spec.action = [](Session&, const EventOccurrence&) { return Status::OK(); };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());

  db_->rules()->trace()->set_enabled(true);
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump", {Value(5)}).ok());
  ASSERT_TRUE(s.Invoke(counter, "bump", {Value(50)}).ok());
  ASSERT_TRUE(s.Commit().ok());

  auto entries = db_->rules()->trace()->ForRule("traced");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_FALSE(entries[0].condition_true);
  EXPECT_FALSE(entries[0].action_ran);
  EXPECT_TRUE(entries[1].condition_true);
  EXPECT_TRUE(entries[1].action_ran);
  EXPECT_TRUE(entries[1].succeeded);
  EXPECT_EQ(entries[1].mode, CouplingMode::kImmediate);
  EXPECT_FALSE(entries[1].ToString().empty());

  // Disabled trace records nothing further.
  db_->rules()->trace()->set_enabled(false);
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump", {Value(50)}).ok());
  ASSERT_TRUE(s.Commit().ok());
  EXPECT_EQ(db_->rules()->trace()->ForRule("traced").size(), 2u);
}

TEST_F(RulesTest, TemporalRuleRunsDetached) {
  Oid counter = MakeCounter();
  auto tick = db_->events()->DefinePeriodicEvent("tick", 1000);
  RuleSpec spec;
  spec.name = "on_tick";
  spec.event = *tick;
  spec.coupling = CouplingMode::kDetached;
  spec.action = [counter](Session& s, const EventOccurrence&) -> Status {
    auto r = s.Invoke(counter, "bump");
    return r.ok() ? Status::OK() : r.status();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());
  clock_.Advance(1000);
  // Wait until the timer fired and the detached rule committed.
  for (int i = 0; i < 200; ++i) {
    db_->rules()->WaitDetachedIdle();
    Session s(db_->database());
    ASSERT_TRUE(s.Begin().ok());
    int64_t n = s.GetAttr(counter, "n")->as_int();
    ASSERT_TRUE(s.Commit().ok());
    if (n >= 1) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "temporal rule never ran";
}

// The per-rule exec histogram table is bounded (32 slots) with
// evict-and-replace admission: once every slot is held, a newly executing
// rule evicts the least-recently-executed holder after that holder has been
// idle long enough. A rule past the cap must eventually get its
// "rules.exec_ns.rule.<name>" histogram instead of being dropped forever.
TEST_F(RulesTest, PerRuleHistogramEvictsColdRules) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  reg.SetEnabled(true);
  Oid counter = MakeCounter();
  auto ev = db_->events()->DefineMethodEvent("bump_ev", "Counter", "bump");
  // 32 filler rules occupy every slot, then go cold (disabled); one late
  // rule keeps executing until the idle-eviction window lets it in.
  for (int i = 0; i < 32; ++i) {
    RuleSpec spec;
    spec.name = "filler" + std::to_string(i);
    spec.event = *ev;
    spec.coupling = CouplingMode::kImmediate;
    spec.action = [](Session&, const EventOccurrence&) -> Status {
      return Status::OK();
    };
    ASSERT_TRUE(db_->rules()->DefineRule(std::move(spec)).ok());
  }
  RuleSpec late;
  late.name = "late_comer";
  late.event = *ev;
  late.coupling = CouplingMode::kImmediate;
  late.action = [](Session&, const EventOccurrence&) -> Status {
    return Status::OK();
  };
  ASSERT_TRUE(db_->rules()->DefineRule(std::move(late)).ok());
  ASSERT_TRUE(db_->rules()->SetRuleEnabled("late_comer", false).ok());

  const uint64_t evicted_before =
      reg.counter(obs::kRulesHistogramEvicted)->value();
  Session s(db_->database());
  ASSERT_TRUE(s.Begin().ok());
  ASSERT_TRUE(s.Invoke(counter, "bump").ok());  // fillers claim their slots
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        db_->rules()->SetRuleEnabled("filler" + std::to_string(i), false)
            .ok());
  }
  ASSERT_TRUE(db_->rules()->SetRuleEnabled("late_comer", true).ok());
  // Each execution advances the admission clock by one tick; the idle
  // window is 64 ticks, so ~100 executions guarantee an eviction.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s.Invoke(counter, "bump").ok());
  }
  ASSERT_TRUE(s.Commit().ok());

  EXPECT_GT(reg.counter(obs::kRulesHistogramEvicted)->value(),
            evicted_before);
  obs::HistogramSnapshot snap =
      reg.histogram(std::string(obs::kRulesExecNsRulePrefix) + "late_comer")
          ->Snapshot();
  EXPECT_GT(snap.count, 0u);
  reg.SetEnabled(false);
  reg.ResetAll();
}

}  // namespace
}  // namespace reach
