// Crash-recovery torture: a seeded workload runs against the storage and
// transaction layers while the fault registry kills the "process" (throws
// FaultInjectedCrash) at each WAL/storage fault point in turn; the stack is
// then dropped without clean shutdown — the repo-wide crash convention —
// and reopened, and recovery must leave exactly the committed transactions
// visible.
//
// Reproducing a failure: every torture test prints its seed; rerunning with
// REACH_TORTURE_SEED=<seed> replays the identical fault schedule (see
// docs/TESTING.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "common/random.h"
#include "core/reach/reach_db.h"
#include "storage/storage_manager.h"
#include "test_util.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"
#include "txn/transaction_manager.h"

namespace reach {
namespace {

using reach::testing::TempDir;

uint64_t TortureSeed() {
  if (const char* env = std::getenv("REACH_TORTURE_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xC0FFEEULL;
}

// One object mutation a transaction performed: value nullopt = deleted.
using TxnEffects = std::vector<std::pair<Oid, std::optional<std::string>>>;

struct WorkloadOutcome {
  bool crashed = false;
  std::string crash_point;
  // Expected post-recovery state from transactions whose LogCommit returned
  // OK (latest committed value; nullopt = committed delete).
  std::map<Oid, std::optional<std::string>> committed;
  // Effects of the transaction (if any) interrupted mid-commit: recovery
  // must apply all of them or none of them. Its first effect is always an
  // insert of a fresh object, which disambiguates the outcome.
  TxnEffects uncertain;
  // Objects touched by transactions that never reached commit.
  std::vector<Oid> loser_oids;
  // Deterministic fingerprint of the schedule for replay checking.
  std::string fingerprint;
};

// Seeded storage-level workload: `txns` transactions, each inserting 1-3
// objects and sometimes updating/deleting a previously committed one, with
// ~70% committing and the rest rolled back through the transaction manager
// (abandoning a transaction without rollback would break the strict-2PL
// assumption recovery's physical undo relies on), and occasional FlushAll
// pushing dirty pages (and the eviction/write-back fault points) to disk.
WorkloadOutcome RunStorageWorkload(const std::string& base, uint64_t seed,
                                   int txns) {
  WorkloadOutcome out;
  Random rng(seed);
  std::vector<std::pair<Oid, std::string>> committed_live;  // update targets
  std::ostringstream schedule;

  // Open is inside the try: its recovery/checkpoint path runs the same WAL
  // and buffer-pool fault points as the workload.
  try {
    auto sm_or = StorageManager::Open(base, {.buffer_pool_pages = 8});
    if (!sm_or.ok()) {
      out.fingerprint = "open-failed:" + sm_or.status().ToString();
      return out;
    }
    auto sm = std::move(*sm_or);
    TransactionManager tm(sm.get());
    for (int n = 1; n <= txns; ++n) {
      auto t_or = tm.Begin();
      if (!t_or.ok()) break;
      TxnId t = *t_or;
      TxnEffects effects;
      int ops = 1 + static_cast<int>(rng.Uniform(3));
      for (int i = 0; i < ops; ++i) {
        std::string value =
            "t" + std::to_string(n) + "-o" + std::to_string(i) +
            std::string(rng.Uniform(600), 'x');
        auto oid = sm->objects()->Insert(t, value);
        if (!oid.ok()) break;
        effects.emplace_back(*oid, value);
        schedule << "i" << n << "." << i << ";";
      }
      if (!committed_live.empty() && rng.Bernoulli(0.5)) {
        auto& [oid, _] = committed_live[rng.Uniform(committed_live.size())];
        if (rng.Bernoulli(0.3)) {
          if (sm->objects()->Delete(t, oid).ok()) {
            effects.emplace_back(oid, std::nullopt);
            schedule << "d" << n << ";";
          }
        } else {
          std::string value = "u" + std::to_string(n);
          if (sm->objects()->Update(t, oid, value).ok()) {
            effects.emplace_back(oid, value);
            schedule << "u" << n << ";";
          }
        }
      }
      if (rng.Bernoulli(0.25)) (void)sm->buffer_pool()->FlushAll();

      if (rng.Bernoulli(0.7)) {
        out.uncertain = effects;  // commit in flight: outcome uncertain
        Status commit = tm.Commit(t);
        if (commit.ok()) {
          out.uncertain.clear();
          for (auto& [oid, value] : effects) {
            out.committed[oid] = value;
            if (value.has_value()) committed_live.emplace_back(oid, *value);
          }
          schedule << "C" << n << ";";
        } else {
          out.uncertain.clear();
          for (auto& [oid, value] : effects) out.loser_oids.push_back(oid);
          // Failed commit implies rollback (the commit path usually aborts
          // internally, but an early failure can leave the txn active).
          if (tm.IsActive(t)) (void)tm.Abort(t);
          schedule << "E" << n << ";";
        }
      } else {
        for (auto& [oid, value] : effects) out.loser_oids.push_back(oid);
        (void)tm.Abort(t);
        schedule << "L" << n << ";";
      }
    }
  } catch (const FaultInjectedCrash& crash) {
    out.crashed = true;
    out.crash_point = crash.point();
    schedule << "CRASH@" << crash.point();
  }
  out.fingerprint = schedule.str();
  // Crash convention: the caller destroys `sm` without FlushAll/Checkpoint —
  // dirty pages and the unflushed WAL buffer are dropped on the floor.
  return out;
}

// Reopen after the crash and check committed-durable / aborted-invisible,
// with all-or-nothing semantics for a transaction interrupted mid-commit.
// Returns a fingerprint of the recovered state for determinism checks.
std::string VerifyRecovered(const std::string& base,
                            const WorkloadOutcome& out) {
  auto sm_or = StorageManager::Open(base, {.buffer_pool_pages = 8});
  EXPECT_TRUE(sm_or.ok()) << sm_or.status().ToString();
  if (!sm_or.ok()) return "reopen-failed";
  auto sm = std::move(*sm_or);

  // Resolve the uncertain transaction from its first effect (always a fresh
  // insert), then demand atomicity for the rest of its effects.
  bool uncertain_committed = false;
  if (!out.uncertain.empty()) {
    uncertain_committed = sm->objects()->Read(out.uncertain.front().first).ok();
    for (const auto& [u_oid, u_value] : out.uncertain) {
      auto u_read = sm->objects()->Read(u_oid);
      if (uncertain_committed && u_value.has_value()) {
        EXPECT_TRUE(u_read.ok()) << "mid-commit txn applied partially";
        if (u_read.ok()) {
          EXPECT_EQ(*u_read, *u_value);
        }
      } else if (uncertain_committed && !u_value.has_value()) {
        EXPECT_FALSE(u_read.ok()) << "mid-commit delete not applied";
      } else if (!uncertain_committed && u_value.has_value() &&
                 !out.committed.contains(u_oid)) {
        EXPECT_FALSE(u_read.ok()) << "mid-commit txn leaked an insert";
      }
    }
  }
  auto touched_by_uncertain = [&](const Oid& oid) {
    for (const auto& [u_oid, _] : out.uncertain) {
      if (u_oid == oid) return true;
    }
    return false;
  };

  std::ostringstream state;
  state << "uncertain=" << uncertain_committed << ";";
  for (const auto& [oid, value] : out.committed) {
    // If the mid-commit txn won and rewrote this object, it wrote last.
    if (uncertain_committed && touched_by_uncertain(oid)) continue;
    auto read = sm->objects()->Read(oid);
    if (value.has_value()) {
      EXPECT_TRUE(read.ok()) << "committed object lost: " << oid.ToString();
      if (read.ok()) {
        EXPECT_EQ(*read, *value);
        state << oid.ToString() << "=" << value->size() << ";";
      }
    } else {
      EXPECT_FALSE(read.ok()) << "committed delete resurrected: "
                              << oid.ToString() << " sched=" << out.fingerprint
                              << " bytes=" << (read.ok() ? read->size() : 0);
      state << oid.ToString() << "=gone;";
    }
  }
  for (const Oid& oid : out.loser_oids) {
    // Updates/deletes of committed objects by losers are covered above. A
    // runtime abort restores the slot's generation, so a later transaction
    // can mint the same OID — skip oids rewritten by the winning mid-commit
    // transaction.
    if (out.committed.contains(oid)) continue;
    if (uncertain_committed && touched_by_uncertain(oid)) continue;
    EXPECT_FALSE(sm->objects()->Read(oid).ok())
        << "loser transaction leaked an object: " << oid.ToString()
        << " sched=" << out.fingerprint;
  }
  return state.str();
}

class CrashTortureTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

TEST_F(CrashTortureTest, KillAtEveryStorageFaultPoint) {
  const uint64_t seed = TortureSeed();
  const char* crash_points[] = {
      faults::kWalAppend,         faults::kWalFlushWrite,
      faults::kWalFlushFsync,     faults::kWalTruncate,
      faults::kWalFlusherBatch,   faults::kDiskWritePage,
      faults::kDiskAllocatePage,  faults::kDiskSync,
      faults::kBufEvictWriteback, faults::kBufFlushAll,
      faults::kBufFlushPage,      faults::kBufFetch,
      faults::kDiskReadPage,
  };
  auto& reg = FaultRegistry::Instance();
  int crashes = 0;
  for (const char* point : crash_points) {
    for (uint64_t nth : {1ULL, 3ULL, 9ULL}) {
      SCOPED_TRACE(std::string("point=") + point + " nth=" +
                   std::to_string(nth) + " seed=" + std::to_string(seed));
      TempDir dir;
      reg.DisarmAll();
      reg.SetSeed(seed);
      reg.ArmCrash(point, nth);
      WorkloadOutcome out = RunStorageWorkload(dir.DbPath(), seed, 12);
      reg.DisarmAll();
      if (out.crashed) {
        ++crashes;
        EXPECT_EQ(out.crash_point, point);
      }
      VerifyRecovered(dir.DbPath(), out);
    }
  }
  std::cout << "[torture] seed=" << seed << " crashes=" << crashes << "\n";
  EXPECT_GT(crashes, 0) << "no fault point ever fired — wiring broken?";
}

TEST_F(CrashTortureTest, SameSeedReplaysIdenticalSchedule) {
  const uint64_t seed = TortureSeed();
  auto& reg = FaultRegistry::Instance();
  for (const char* point : {faults::kWalFlushWrite, faults::kDiskWritePage}) {
    std::string fp1, fp2, state1, state2;
    {
      TempDir dir;
      reg.DisarmAll();
      reg.SetSeed(seed);
      reg.ArmCrash(point, 2);
      WorkloadOutcome out = RunStorageWorkload(dir.DbPath(), seed, 12);
      reg.DisarmAll();
      fp1 = out.fingerprint;
      state1 = VerifyRecovered(dir.DbPath(), out);
    }
    {
      TempDir dir;
      reg.DisarmAll();
      reg.SetSeed(seed);
      reg.ArmCrash(point, 2);
      WorkloadOutcome out = RunStorageWorkload(dir.DbPath(), seed, 12);
      reg.DisarmAll();
      fp2 = out.fingerprint;
      state2 = VerifyRecovered(dir.DbPath(), out);
    }
    std::cout << "[torture] seed=" << seed << " point=" << point
              << " schedule=" << fp1.substr(0, 60) << "...\n";
    EXPECT_EQ(fp1, fp2) << "fault schedule not deterministic for " << point;
    EXPECT_EQ(state1, state2) << "recovered state diverged for " << point;
  }
}

TEST_F(CrashTortureTest, CrashAtCommitForceRollsBackWholeTree) {
  // Transaction-manager level: the crash fires between the merged-subtxn
  // commit records and the log force, so the whole nested tree must be a
  // loser after recovery.
  const uint64_t seed = TortureSeed();
  auto& reg = FaultRegistry::Instance();
  TempDir dir;
  Oid committed_oid, parent_oid, child_oid;
  {
    auto sm = StorageManager::Open(dir.DbPath()).value();
    TransactionManager tm(sm.get());

    TxnId t1 = *tm.Begin();
    committed_oid = *sm->objects()->Insert(t1, "survivor");
    ASSERT_TRUE(tm.Commit(t1).ok());

    TxnId t2 = *tm.Begin();
    parent_oid = *sm->objects()->Insert(t2, "parent-write");
    TxnId t3 = *tm.Begin(t2);
    child_oid = *sm->objects()->Insert(t3, "child-write");
    ASSERT_TRUE(tm.Commit(t3).ok());  // merges into t2

    reg.SetSeed(seed);
    reg.ArmCrash(faults::kTxnCommitForce, 1);
    EXPECT_THROW((void)tm.Commit(t2), FaultInjectedCrash);
    reg.DisarmAll();
    // Crash: drop the stack with no flush.
  }
  auto sm = StorageManager::Open(dir.DbPath()).value();
  EXPECT_EQ(*sm->objects()->Read(committed_oid), "survivor");
  EXPECT_FALSE(sm->objects()->Read(parent_oid).ok())
      << "unforced commit became durable";
  EXPECT_FALSE(sm->objects()->Read(child_oid).ok())
      << "merged subtransaction survived its root's crash";
}

TEST_F(CrashTortureTest, CrossTxnCompositorPartialsSurviveInjectedAborts) {
  // Life-span semantics at the failure boundary (§3.3): a cross-transaction
  // composite's partial, contributed by a committed transaction, must
  // survive an unrelated transaction's injected abort and still complete
  // within its validity interval.
  auto& reg = FaultRegistry::Instance();
  TempDir dir;
  auto db_or = ReachDb::Open(dir.DbPath());
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(*db_or);
  ASSERT_TRUE(db->RegisterClass(
                    ClassBuilder("S")
                        .Attribute("v", ValueType::kInt, Value(0))
                        .Method("m1", [](Session&, DbObject&,
                                         const std::vector<Value>&)
                                    -> Result<Value> { return Value(); })
                        .Method("m2", [](Session&, DbObject&,
                                         const std::vector<Value>&)
                                    -> Result<Value> { return Value(); }))
                  .ok());
  auto ev1 = db->events()->DefineMethodEvent("ev1", "S", "m1");
  auto ev2 = db->events()->DefineMethodEvent("ev2", "S", "m2");
  ASSERT_TRUE(ev1.ok() && ev2.ok());
  auto pair_ev = db->events()->DefineComposite(
      "pair", EventExpr::Seq(EventExpr::Prim(*ev1), EventExpr::Prim(*ev2)),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
      /*validity_us=*/60'000'000);
  ASSERT_TRUE(pair_ev.ok()) << pair_ev.status().ToString();

  auto fired = std::make_shared<std::atomic<int>>(0);
  RuleSpec spec;
  spec.name = "pair_rule";
  spec.event = *pair_ev;
  spec.coupling = CouplingMode::kDetached;
  spec.action = [fired](Session&, const EventOccurrence&) {
    fired->fetch_add(1);
    return Status::OK();
  };
  ASSERT_TRUE(db->rules()->DefineRule(std::move(spec)).ok());

  Oid obj;
  {
    Session s(db->database());
    ASSERT_TRUE(s.Begin().ok());
    obj = *s.PersistNew("S", {});
    ASSERT_TRUE(s.Commit().ok());
  }
  // Txn A: raises the first constituent, commits — partial buffered.
  {
    Session s(db->database());
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Invoke(obj, "m1", {}).ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  // Txn B: aborted by an injected commit-entry fault. The cross-txn partial
  // from A must not be collateral damage.
  {
    Session s(db->database());
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.SetAttr(obj, "v", Value(int64_t{42})).ok());
    reg.ArmError(faults::kTxnCommitEntry, Status::Code::kAborted, 1);
    EXPECT_FALSE(s.Commit().ok());
    reg.DisarmAll();
    // Failed commit implies rollback: the transaction is gone and its locks
    // are released (a leaked lock would wedge txn C below).
    EXPECT_TRUE(s.Abort().IsFailedPrecondition());
  }
  // Txn C: second constituent completes the pair within validity.
  {
    Session s(db->database());
    ASSERT_TRUE(s.Begin().ok());
    ASSERT_TRUE(s.Invoke(obj, "m2", {}).ok());
    ASSERT_TRUE(s.Commit().ok());
  }
  db->Drain();
  db->rules()->WaitDetachedIdle();
  EXPECT_EQ(fired->load(), 1)
      << "cross-txn partial did not survive the injected abort";
}

TEST_F(CrashTortureTest, CleanRunRecoversExactCommittedState) {
  // No-fault baseline: destroying the stack without a checkpoint (dirty
  // pages and the WAL tail dropped) must still recover exactly the
  // committed state. Failures here are recovery bugs, not fault wiring.
  TempDir dir;
  WorkloadOutcome out = RunStorageWorkload(dir.DbPath(), TortureSeed(), 12);
  EXPECT_FALSE(out.crashed);
  VerifyRecovered(dir.DbPath(), out);
}

}  // namespace
}  // namespace reach
