// Background writeback and lock-free page table (docs/STORAGE.md):
// REACH_STORAGE writeback knob parsing, dirty-ratio accounting and the
// writeback stats surface, crash/error injection at bufferpool.writeback
// (via TriggerWriteback, so the fault fires on this thread), a TSan-able
// stress of concurrent FetchPage / writeback passes / FlushAll, a torture
// loop for the open-addressing table's insert/erase/rebuild cycle, and a
// recovery-equivalence sweep proving writeback on/off is invisible to
// ARIES recovery on every disk backend.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "test_util.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {
namespace {

using reach::testing::DurableLogCommit;
using reach::testing::TempDir;

TEST(WritebackOptionsTest, ParsesWritebackKnobs) {
  EXPECT_EQ(BufferPoolOptions::Parse(nullptr).writeback, -1);
  EXPECT_EQ(BufferPoolOptions::Parse("").writeback, -1);
  EXPECT_EQ(BufferPoolOptions::Parse("writeback=on").writeback, 1);
  EXPECT_EQ(BufferPoolOptions::Parse("writeback=1").writeback, 1);
  EXPECT_EQ(BufferPoolOptions::Parse("writeback=off").writeback, 0);
  EXPECT_EQ(BufferPoolOptions::Parse("writeback=0").writeback, 0);
  BufferPoolOptions o =
      BufferPoolOptions::Parse("shards=2,writeback=on,writeback_watermark=30");
  EXPECT_EQ(o.shards, 2u);
  EXPECT_EQ(o.writeback, 1);
  EXPECT_EQ(o.writeback_watermark, 30u);
  // Watermarks are percentages; parse clamps to 100.
  EXPECT_LE(BufferPoolOptions::Parse("writeback_watermark=250")
                .writeback_watermark,
            100u);
}

TEST(WritebackOptionsTest, ResolveDefaultsAndPassThrough) {
  // Explicit requests win regardless of the environment.
  EXPECT_TRUE(BufferPoolOptions::ResolveWriteback(1));
  EXPECT_FALSE(BufferPoolOptions::ResolveWriteback(0));
  EXPECT_EQ(BufferPoolOptions::ResolveWatermark(25), 25u);
  // 0 defers: the resolved default is the documented constant unless
  // REACH_STORAGE overrides it (either way it is a valid percentage).
  size_t w = BufferPoolOptions::ResolveWatermark(0);
  EXPECT_GT(w, 0u);
  EXPECT_LE(w, 100u);
}

class WritebackPoolTest : public ::testing::Test {
 protected:
  void Open(size_t pool_size, size_t shards, int writeback,
            size_t watermark = 25) {
    pool_.reset();
    auto dm = DiskManager::Open(dir_.DbPath() + ".db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(*dm);
    BufferPoolOptions options;
    options.shards = shards;
    options.writeback = writeback;
    options.writeback_watermark = watermark;
    pool_ = std::make_unique<BufferPool>(disk_.get(), pool_size, options);
  }
  TempDir dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(WritebackPoolTest, StatsSurfaceReflectsOptions) {
  Open(8, 2, /*writeback=*/1, /*watermark=*/30);
  auto stats = pool_->writeback_stats();
  EXPECT_TRUE(stats.enabled);
  EXPECT_TRUE(pool_->writeback_enabled());
  EXPECT_EQ(stats.watermark_pct, 30u);
  Open(8, 2, /*writeback=*/0);
  EXPECT_FALSE(pool_->writeback_stats().enabled);
  EXPECT_FALSE(pool_->writeback_enabled());
}

TEST_F(WritebackPoolTest, TriggerWritebackCleansDirtyFramesAndCounts) {
  // Thread off: the pass runs only when this test asks for it.
  Open(8, 2, /*writeback=*/0);
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) {
    auto page = pool_->NewPage();
    ASSERT_TRUE(page.ok());
    (*page)->data()[0] = static_cast<char>('a' + i);
    ids.push_back((*page)->page_id());
    ASSERT_TRUE(pool_->UnpinPage(ids.back(), true).ok());
  }
  EXPECT_GT(pool_->dirty_ratio(), 0.0);
  ASSERT_TRUE(pool_->TriggerWriteback().ok());
  EXPECT_EQ(pool_->dirty_ratio(), 0.0);
  auto stats = pool_->writeback_stats();
  EXPECT_EQ(stats.pages, 6u);
  EXPECT_EQ(stats.batches, 1u);
  // The images the pass wrote are the ones a cold pool reads back.
  Open(8, 2, /*writeback=*/0);
  for (int i = 0; i < 6; ++i) {
    auto page = pool_->FetchPage(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->data()[0], static_cast<char>('a' + i));
    ASSERT_TRUE(pool_->UnpinPage(ids[i], false).ok());
  }
}

TEST_F(WritebackPoolTest, PassSkipsPinnedFramesAndCatchesThemLater) {
  Open(8, 2, /*writeback=*/0);
  auto pinned = pool_->NewPage();
  ASSERT_TRUE(pinned.ok());
  PageId pinned_id = (*pinned)->page_id();
  auto other = pool_->NewPage();
  ASSERT_TRUE(other.ok());
  PageId other_id = (*other)->page_id();
  ASSERT_TRUE(pool_->UnpinPage(other_id, true).ok());
  // `pinned` stays pinned (and dirty through the unpin below never runs):
  // the pass must clean `other` and leave the pinned frame dirty.
  ASSERT_TRUE(pool_->TriggerWriteback().ok());
  EXPECT_EQ(pool_->writeback_stats().pages, 1u);
  EXPECT_GT(pool_->dirty_ratio(), 0.0);
  ASSERT_TRUE(pool_->UnpinPage(pinned_id, true).ok());
  ASSERT_TRUE(pool_->TriggerWriteback().ok());
  EXPECT_EQ(pool_->writeback_stats().pages, 2u);
  EXPECT_EQ(pool_->dirty_ratio(), 0.0);
}

TEST_F(WritebackPoolTest, ErrorInjectionLeavesFramesDirtyForRetry) {
  Open(8, 2, /*writeback=*/0);
  auto page = pool_->NewPage();
  ASSERT_TRUE(page.ok());
  PageId id = (*page)->page_id();
  ASSERT_TRUE(pool_->UnpinPage(id, true).ok());
  auto& reg = FaultRegistry::Instance();
  reg.DisarmAll();
  reg.ArmError(faults::kBufWriteback, Status::Code::kIoError, /*nth=*/1,
               /*one_shot=*/true);
  Status st = pool_->TriggerWriteback();
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_GT(pool_->dirty_ratio(), 0.0) << "failed pass must not mark clean";
  reg.DisarmAll();
  ASSERT_TRUE(pool_->TriggerWriteback().ok());
  EXPECT_EQ(pool_->dirty_ratio(), 0.0);
}

TEST_F(WritebackPoolTest, CrashInjectionPropagatesOnCallingThread) {
  Open(8, 2, /*writeback=*/0);
  auto page = pool_->NewPage();
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(pool_->UnpinPage((*page)->page_id(), true).ok());
  auto& reg = FaultRegistry::Instance();
  reg.DisarmAll();
  reg.ArmCrash(faults::kBufWriteback, /*nth=*/1);
  EXPECT_THROW((void)pool_->TriggerWriteback(), FaultInjectedCrash);
  reg.DisarmAll();
  // The aborted pass touched nothing: the frame is still dirty and the next
  // pass completes normally.
  EXPECT_GT(pool_->dirty_ratio(), 0.0);
  ASSERT_TRUE(pool_->TriggerWriteback().ok());
  EXPECT_EQ(pool_->dirty_ratio(), 0.0);
}

TEST_F(WritebackPoolTest, ConcurrentFetchWritebackFlushStress) {
  // TSan target: readers (lock-free hit path), dirtying writers, explicit
  // writeback passes, FlushPage and FlushAll all running against the same
  // small pool, with the background thread kicking its own passes too.
  Open(16, 4, /*writeback=*/1, /*watermark=*/10);
  std::vector<PageId> ids;
  for (int i = 0; i < 48; ++i) {
    auto page = pool_->NewPage();
    ASSERT_TRUE(page.ok());
    (*page)->data()[0] = 'w';
    ids.push_back((*page)->page_id());
    ASSERT_TRUE(pool_->UnpinPage(ids.back(), true).ok());
  }
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 400; ++round) {
        PageId id = ids[(t * 131 + round) % ids.size()];
        auto page = pool_->FetchPage(id);
        if (!page.ok()) {
          if (!page.status().IsBusy()) failures.fetch_add(1);
          continue;
        }
        if ((*page)->data()[0] != 'w') failures.fetch_add(1);
        if (!pool_->UnpinPage(id, round % 4 == 0).ok()) failures.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      if (!pool_->TriggerWriteback().ok()) failures.fetch_add(1);
    }
  });
  threads.emplace_back([&] {
    int i = 0;
    while (!stop.load()) {
      (void)pool_->FlushPage(ids[i++ % ids.size()]);
      if (i % 16 == 0 && !pool_->FlushAll().ok()) failures.fetch_add(1);
    }
  });
  for (int t = 0; t < 4; ++t) threads[t].join();
  stop.store(true);
  for (size_t t = 4; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(pool_->FlushAll().ok());
  EXPECT_EQ(pool_->dirty_ratio(), 0.0);
}

TEST_F(WritebackPoolTest, LockFreeTableSurvivesEvictChurnAndRebuilds) {
  // Torture for the open-addressing table: a single-shard pool far smaller
  // than its working set erases a mapping (tombstone) on every eviction, so
  // the probe chains fill with tombstones and force periodic same-size
  // rebuilds while readers probe lock-free.
  Open(8, 1, /*writeback=*/1, /*watermark=*/25);
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) {
    auto page = pool_->NewPage();
    ASSERT_TRUE(page.ok());
    (*page)->data()[0] = static_cast<char>('A' + i % 26);
    ids.push_back((*page)->page_id());
    ASSERT_TRUE(pool_->UnpinPage(ids.back(), true).ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 500; ++round) {
        size_t i = (t * 17 + round * 7) % ids.size();
        auto page = pool_->FetchPage(ids[i]);
        if (!page.ok()) {
          if (!page.status().IsBusy()) failures.fetch_add(1);
          continue;
        }
        if ((*page)->data()[0] != static_cast<char>('A' + i % 26)) {
          failures.fetch_add(1);
        }
        if (!pool_->UnpinPage(ids[i], round % 8 == 0).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Every page still round-trips after the churn.
  for (size_t i = 0; i < ids.size(); ++i) {
    auto page = pool_->FetchPage(ids[i]);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_EQ((*page)->data()[0], static_cast<char>('A' + i % 26));
    ASSERT_TRUE(pool_->UnpinPage(ids[i], false).ok());
  }
}

// Writeback must be invisible to ARIES recovery: the same crashed workload
// recovers to the same state with the writer thread on or off, on every
// disk backend (uring exercises the registered-buffer fixed-I/O path; where
// a backend is unavailable the runtime fallback ladder stands in, which is
// exactly what production would run).
TEST(WritebackRecoveryEquivalenceTest, SameStateAcrossBackendsAndModes) {
  for (DiskBackendKind backend :
       {DiskBackendKind::kPosix, DiskBackendKind::kAsync,
        DiskBackendKind::kUring}) {
    for (int writeback = 0; writeback < 2; ++writeback) {
      SCOPED_TRACE("backend=" + std::to_string(static_cast<int>(backend)) +
                   " writeback=" + std::to_string(writeback));
      TempDir dir;
      std::vector<Oid> committed;
      Oid loser;
      {
        StorageOptions opts;
        opts.buffer_pool_pages = 8;  // eviction traffic while the log lives
        opts.disk_backend = backend;
        opts.writeback = writeback;
        opts.writeback_watermark = 25;
        auto sm_or = StorageManager::Open(dir.DbPath(), opts);
        ASSERT_TRUE(sm_or.ok()) << sm_or.status().ToString();
        auto sm = std::move(*sm_or);
        ASSERT_TRUE(sm->LogBegin(1).ok());
        for (int i = 0; i < 40; ++i) {
          auto oid = sm->objects()->Insert(
              1, "payload_" + std::to_string(i) +
                     std::string(i * 13 % 300, 'p'));
          ASSERT_TRUE(oid.ok());
          committed.push_back(*oid);
        }
        ASSERT_TRUE(sm->objects()->Update(1, committed[3], "rewritten").ok());
        ASSERT_TRUE(sm->objects()->Delete(1, committed[7]).ok());
        ASSERT_TRUE(DurableLogCommit(sm.get(), 1).ok());
        // A loser transaction recovery must undo even though writeback may
        // have pushed its pages to disk (steal policy).
        ASSERT_TRUE(sm->LogBegin(2).ok());
        auto l = sm->objects()->Insert(2, "loser");
        ASSERT_TRUE(l.ok());
        loser = *l;
        ASSERT_TRUE(sm->objects()->Update(2, committed[5], "clobbered").ok());
        ASSERT_TRUE(sm->buffer_pool()->TriggerWriteback().ok());
        // Crash: destroy without checkpoint; disk now holds whatever mix of
        // page versions the writeback pass produced.
      }
      StorageOptions opts;
      opts.disk_backend = backend;
      opts.writeback = writeback;
      auto sm_or = StorageManager::Open(dir.DbPath(), opts);
      ASSERT_TRUE(sm_or.ok()) << sm_or.status().ToString();
      auto sm = std::move(*sm_or);
      for (size_t i = 0; i < committed.size(); ++i) {
        if (i == 7) {
          EXPECT_FALSE(sm->objects()->Read(committed[i]).ok());
          continue;
        }
        auto val = sm->objects()->Read(committed[i]);
        ASSERT_TRUE(val.ok()) << "i=" << i << " " << val.status().ToString();
        if (i == 3) {
          EXPECT_EQ(*val, "rewritten");
        } else if (i == 5) {
          EXPECT_EQ(*val, "payload_5" + std::string(5 * 13 % 300, 'p'))
              << "loser update must be undone";
        } else {
          EXPECT_EQ(*val,
                    "payload_" + std::to_string(i) +
                        std::string(i * 13 % 300, 'p'));
        }
      }
      EXPECT_FALSE(sm->objects()->Read(loser).ok())
          << "loser insert survived recovery";
    }
  }
}

}  // namespace
}  // namespace reach
