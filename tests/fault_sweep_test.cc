// Fault-sweep: registry unit tests, a coverage run proving every manifest
// point is actually compiled into the production paths, and the sweep
// itself — every registered point armed with a persistent I/O error in turn
// while a full active-OODBMS workload runs over it. The invariant is
// graceful degradation: every injected failure surfaces as a clean Status
// (no exception escapes, no hang — the ctest timeout is the watchdog) and
// the database reopens intact once the fault is disarmed.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/reach/reach_db.h"
#include "test_util.h"
#include "testing/fault_points.h"
#include "testing/fault_registry.h"

namespace reach {
namespace {

using reach::testing::TempDir;

class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

TEST_F(FaultRegistryTest, ManifestPointsAreRegistered) {
  auto points = FaultRegistry::Instance().Points();
  for (const char* name : faults::kAll) {
    EXPECT_NE(std::find(points.begin(), points.end(), name), points.end())
        << "manifest point not pre-registered: " << name;
  }
}

TEST_F(FaultRegistryTest, DisabledByDefaultAndGateTracksArming) {
  auto& reg = FaultRegistry::Instance();
  EXPECT_FALSE(FaultRegistry::enabled());
  reg.ArmError(faults::kDiskSync, Status::Code::kIoError);
  EXPECT_TRUE(FaultRegistry::enabled());
  reg.DisarmAll();
  EXPECT_FALSE(FaultRegistry::enabled());
  // Unarmed evaluation is a no-op.
  EXPECT_TRUE(reg.Evaluate(faults::kDiskSync).ok());
}

TEST_F(FaultRegistryTest, NthHitCountdownAndOneShot) {
  auto& reg = FaultRegistry::Instance();
  reg.ArmError(faults::kWalAppend, Status::Code::kIoError, /*nth=*/3);
  EXPECT_TRUE(reg.Evaluate(faults::kWalAppend).ok());
  EXPECT_TRUE(reg.Evaluate(faults::kWalAppend).ok());
  Status st = reg.Evaluate(faults::kWalAppend);
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  // one_shot (the default): disarmed after firing.
  EXPECT_TRUE(reg.Evaluate(faults::kWalAppend).ok());
  EXPECT_EQ(reg.HitCount(faults::kWalAppend), 4u);
  EXPECT_EQ(reg.FiredCount(faults::kWalAppend), 1u);
  EXPECT_EQ(reg.total_fired(), 1u);
}

TEST_F(FaultRegistryTest, PersistentErrorFiresEveryHitFromNth) {
  auto& reg = FaultRegistry::Instance();
  reg.ArmError(faults::kDiskWritePage, Status::Code::kCorruption, /*nth=*/2,
               /*one_shot=*/false);
  EXPECT_TRUE(reg.Evaluate(faults::kDiskWritePage).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(reg.Evaluate(faults::kDiskWritePage).IsCorruption());
  }
  EXPECT_EQ(reg.FiredCount(faults::kDiskWritePage), 3u);
}

TEST_F(FaultRegistryTest, CrashFaultThrows) {
  auto& reg = FaultRegistry::Instance();
  reg.ArmCrash(faults::kBufFlushAll, /*nth=*/2);
  EXPECT_TRUE(reg.Evaluate(faults::kBufFlushAll).ok());
  try {
    (void)reg.Evaluate(faults::kBufFlushAll);
    FAIL() << "expected FaultInjectedCrash";
  } catch (const FaultInjectedCrash& crash) {
    EXPECT_EQ(crash.point(), faults::kBufFlushAll);
  }
  // A crash fault is one-shot by nature: the "process" died.
  EXPECT_TRUE(reg.Evaluate(faults::kBufFlushAll).ok());
}

TEST_F(FaultRegistryTest, KeyedProbabilityIsDeterministicPerKey) {
  auto& reg = FaultRegistry::Instance();
  auto decide_all = [&](bool reversed) {
    reg.DisarmAll();
    reg.SetSeed(0xFEED);
    reg.ArmErrorWithProbability(faults::kRuleSubtxnExec,
                                Status::Code::kAborted, 0.4);
    std::vector<bool> fired(100);
    for (int i = 0; i < 100; ++i) {
      int key = reversed ? 99 - i : i;
      fired[key] =
          !reg.EvaluateKeyed(faults::kRuleSubtxnExec,
                             static_cast<uint64_t>(key))
               .ok();
    }
    return fired;
  };
  std::vector<bool> forward = decide_all(false);
  std::vector<bool> backward = decide_all(true);
  // Same seed + same key = same decision, independent of evaluation order —
  // the property the serial-vs-parallel differential test rests on.
  EXPECT_EQ(forward, backward);
  int n_fired = std::count(forward.begin(), forward.end(), true);
  EXPECT_GT(n_fired, 10);
  EXPECT_LT(n_fired, 90);

  // A different seed yields a different schedule.
  reg.DisarmAll();
  reg.SetSeed(0xBEEF);
  reg.ArmErrorWithProbability(faults::kRuleSubtxnExec, Status::Code::kAborted,
                              0.4);
  std::vector<bool> other(100);
  for (int i = 0; i < 100; ++i) {
    other[i] = !reg.EvaluateKeyed(faults::kRuleSubtxnExec,
                                  static_cast<uint64_t>(i))
                    .ok();
  }
  EXPECT_NE(forward, other);
}

TEST_F(FaultRegistryTest, DisarmAllZeroesCounters) {
  auto& reg = FaultRegistry::Instance();
  reg.ArmError(faults::kTxnBegin, Status::Code::kBusy);
  EXPECT_FALSE(reg.Evaluate(faults::kTxnBegin).ok());
  reg.DisarmAll();
  EXPECT_EQ(reg.HitCount(faults::kTxnBegin), 0u);
  EXPECT_EQ(reg.FiredCount(faults::kTxnBegin), 0u);
  EXPECT_EQ(reg.total_fired(), 0u);
}

// ---------------------------------------------------------------------------
// Workload used by the coverage run and the sweep. Statuses are deliberately
// ignored: under persistent injection most calls fail, and the assertion is
// that failure is *all* that happens — no exception, no crash, no hang.
// Rules use only kDetached coupling (never the causally-dependent modes):
// with persistent faults a dependency's outcome may never finalize, and a
// causally-dependent WaitForOutcome would deadlock the sweep.
// ---------------------------------------------------------------------------

void RunActiveWorkload(const std::string& base) {
  ReachOptions options;
  options.database.storage.buffer_pool_pages = 4;  // force eviction traffic
  // Writeback stays off for the main phase so dirty evictions
  // deterministically cross bufferpool.evict.writeback (a writeback thread
  // would clean the victims first); a second phase below runs with it on to
  // cover bufferpool.writeback.
  options.database.storage.writeback = 0;
  auto db_or = ReachDb::Open(base, options);
  if (!db_or.ok()) return;  // clean open failure is a valid outcome
  auto db = std::move(*db_or);

  if (!db->RegisterClass(
              ClassBuilder("Obj")
                  .Attribute("n", ValueType::kInt, Value(0))
                  .Attribute("pad", ValueType::kString, Value(""))
                  .Method("poke",
                          [](Session& s, DbObject& self,
                             const std::vector<Value>&) -> Result<Value> {
                            int64_t n = self.Get("n").as_int() + 1;
                            REACH_RETURN_IF_ERROR(
                                s.SetAttr(self.oid(), "n", Value(n)));
                            return Value(n);
                          }))
           .ok()) {
    return;
  }
  auto ev = db->events()->DefineMethodEvent("poked", "Obj", "poke");
  // A cross-txn composite routes every poke through the durable event
  // history (wal.event_history.append at Signal, .replay at definition,
  // .checkpoint at Checkpoint, .carryover at Open).
  if (ev.ok()) {
    (void)db->events()->DefineComposite(
        "poke_pair", EventExpr::Seq(EventExpr::Prim(*ev), EventExpr::Prim(*ev)),
        CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
        /*validity_us=*/60 * 1000000);
  }
  if (ev.ok()) {
    RuleSpec immediate;
    immediate.name = "imm";
    immediate.event = *ev;
    immediate.coupling = CouplingMode::kImmediate;
    immediate.action = [](Session&, const EventOccurrence&) {
      return Status::OK();
    };
    (void)db->rules()->DefineRule(std::move(immediate));

    RuleSpec detached;
    detached.name = "det";
    detached.event = *ev;
    detached.coupling = CouplingMode::kDetached;
    detached.action = [](Session&, const EventOccurrence&) {
      return Status::OK();
    };
    (void)db->rules()->DefineRule(std::move(detached));
  }

  std::vector<Oid> oids;
  for (int batch = 0; batch < 4; ++batch) {
      Session s(db->database());
    if (!s.Begin().ok()) continue;
    for (int i = 0; i < 10; ++i) {
      auto oid = s.PersistNew("Obj", {{"pad", Value(std::string(600, 'p'))}});
      if (oid.ok()) oids.push_back(*oid);
    }
    if (!oids.empty()) (void)s.Invoke(oids.front(), "poke", {});
    if (!s.Commit().ok()) (void)s.AbortAll();
  }
  // Reads across more pages than the pool holds → fetch + evict traffic.
  {
    Session s(db->database());
    if (s.Begin().ok()) {
      for (const Oid& oid : oids) (void)s.GetAttr(oid, "n");
      (void)s.Commit();
    }
  }
  // An extent-scan query crosses query.morsel (no index on Obj, so the
  // planner cannot sidestep the scan).
  {
    Session s(db->database());
    if (s.Begin().ok()) {
      (void)db->Query(s, "select n from Obj where n >= 0");
      (void)s.Commit();
    }
  }
  // An explicitly aborted transaction.
  {
    Session s(db->database());
    if (s.Begin().ok()) {
      (void)s.PersistNew("Obj", {});
      (void)s.Abort();
    }
  }
  db->Drain();
  db->rules()->WaitDetachedIdle();
  (void)db->Checkpoint();
  db.reset();

  // Phase 2: reopen with background writeback on. The dirtying inserts give
  // a pass real work, and the explicit TriggerWriteback — a pass on this
  // thread, per the crash-fault convention — guarantees bufferpool.writeback
  // is crossed even if every background pass loses a race.
  options.database.storage.writeback = 1;
  options.database.storage.writeback_watermark = 25;
  auto wb_db_or = ReachDb::Open(base, options);
  if (!wb_db_or.ok()) return;
  auto wb_db = std::move(*wb_db_or);
  {
    Session s(wb_db->database());
    if (s.Begin().ok()) {
      for (int i = 0; i < 10; ++i) {
        (void)s.PersistNew("Obj", {{"pad", Value(std::string(600, 'p'))}});
      }
      if (!s.Commit().ok()) (void)s.AbortAll();
    }
  }
  (void)wb_db->database()->storage()->buffer_pool()->TriggerWriteback();
}

class FaultSweepTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

// With injection enabled but nothing ever firing, run the workload once and
// demand a nonzero hit count on every manifest point — proof the hooks are
// compiled into all five components, not just declared. (The armed-but-
// unreachable sentinel is needed because the disabled-gate skips counting.)
TEST_F(FaultSweepTest, WorkloadCoversEveryManifestPoint) {
  auto& reg = FaultRegistry::Instance();
  reg.DisarmAll();
  reg.ArmError(faults::kDiskSync, Status::Code::kIoError,
               /*nth=*/1'000'000'000);
  TempDir dir;
  RunActiveWorkload(dir.DbPath());
  EXPECT_EQ(reg.total_fired(), 0u) << "sentinel unexpectedly fired";
  for (const char* point : faults::kAll) {
    EXPECT_GT(reg.HitCount(point), 0u)
        << "fault point never reached by the coverage workload: " << point;
  }
}

// The sweep proper: every point, persistent error from the first hit.
TEST_F(FaultSweepTest, EveryPointDegradesGracefullyAndRecovers) {
  auto& reg = FaultRegistry::Instance();
  auto points = reg.Points();
  ASSERT_FALSE(points.empty());
  for (const std::string& point : points) {
    SCOPED_TRACE("fault point: " + point);
    TempDir dir;
    reg.DisarmAll();
    reg.ArmError(point, Status::Code::kIoError, /*nth=*/1,
                 /*one_shot=*/false);
    EXPECT_NO_THROW(RunActiveWorkload(dir.DbPath()))
        << "injected error escaped as an exception at " << point;
    reg.DisarmAll();
    // Whatever the fault wrecked mid-flight, recovery must bring the store
    // back to a consistent, openable state once the fault clears.
    auto reopened = ReachDb::Open(dir.DbPath());
    EXPECT_TRUE(reopened.ok())
        << "database did not recover after " << point << ": "
        << reopened.status().ToString();
  }
}

// The event-history points degrade with *typed* errors, not silent loss:
// an append failure is recorded in EventManager::history_status(), a replay
// failure surfaces from DefineComposite, a checkpoint failure from
// Checkpoint — and detection itself keeps working throughout.
TEST_F(FaultSweepTest, EventHistoryFaultsSurfaceTypedErrors) {
  auto& reg = FaultRegistry::Instance();
  TempDir dir;
  ReachOptions options;
  options.events.async_composition = false;
  auto db = ReachDb::Open(dir.DbPath(), options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->RegisterClass(ClassBuilder("Obj").Method(
                      "poke",
                      [](Session&, DbObject&,
                         const std::vector<Value>&) -> Result<Value> {
                        return Value();
                      }))
                  .ok());
  auto ev = (*db)->events()->DefineMethodEvent("poked", "Obj", "poke");
  ASSERT_TRUE(ev.ok());

  // Replay fault: DefineComposite surfaces the injected status.
  reg.ArmError(faults::kEventHistoryReplay, Status::Code::kIoError);
  auto failed = (*db)->events()->DefineComposite(
      "pair_a", EventExpr::Seq(EventExpr::Prim(*ev), EventExpr::Prim(*ev)),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
      /*validity_us=*/60 * 1000000);
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIoError()) << failed.status().ToString();
  reg.DisarmAll();

  auto pair = (*db)->events()->DefineComposite(
      "pair_b", EventExpr::Seq(EventExpr::Prim(*ev), EventExpr::Prim(*ev)),
      CompositeScope::kCrossTxn, ConsumptionPolicy::kChronicle,
      /*validity_us=*/60 * 1000000);
  ASSERT_TRUE(pair.ok());
  std::atomic<int> detected{0};
  (*db)->events()->AddEventListener(
      *pair, [&](const EventOccurrencePtr&) { detected++; });

  // Append fault: the occurrence still dispatches (degraded durability, not
  // lost detection) and the failure lands in history_status().
  reg.ArmError(faults::kEventHistoryAppend, Status::Code::kIoError, /*nth=*/1,
               /*one_shot=*/false);
  Session s((*db)->database());
  Oid obj;
  ASSERT_TRUE(s.Begin().ok());
  obj = *s.PersistNew("Obj", {});
  ASSERT_TRUE(s.Commit().ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(s.Begin().ok());
    (void)s.Invoke(obj, "poke");
    ASSERT_TRUE(s.Commit().ok());
  }
  (*db)->Drain();
  EXPECT_EQ(detected.load(), 1);
  EXPECT_TRUE((*db)->events()->history_status().IsIoError());
  reg.DisarmAll();

  // Checkpoint fault: ReachDb::Checkpoint propagates the typed error.
  reg.ArmError(faults::kEventHistoryCheckpoint, Status::Code::kIoError);
  Status ckpt = (*db)->Checkpoint();
  EXPECT_TRUE(ckpt.IsIoError()) << ckpt.ToString();
  reg.DisarmAll();
  EXPECT_TRUE((*db)->Checkpoint().ok());
}

// Same sweep at a later hit: the component is mid-flight rather than at the
// operation's entry, exercising cleanup paths instead of precondition paths.
TEST_F(FaultSweepTest, LateNthHitAlsoDegradesGracefully) {
  auto& reg = FaultRegistry::Instance();
  for (const char* point : faults::kAll) {
    SCOPED_TRACE(std::string("fault point: ") + point);
    TempDir dir;
    reg.DisarmAll();
    reg.ArmError(point, Status::Code::kIoError, /*nth=*/7,
                 /*one_shot=*/false);
    EXPECT_NO_THROW(RunActiveWorkload(dir.DbPath()));
    reg.DisarmAll();
    auto reopened = ReachDb::Open(dir.DbPath());
    EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
  }
}

}  // namespace
}  // namespace reach
